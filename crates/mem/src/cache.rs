//! Generic set-associative cache model.
//!
//! Tag-array-only (trace-driven simulators carry no data). Supports the
//! geometries of Fig. 1 — including the L2's 12 ways, which forces a
//! non-power-of-two set count (handled by modulo indexing).

use crate::addr::{line_index, LINE_BYTES};

/// Replacement policy for a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (exact stamps).
    Lru,
    /// Evict a pseudo-random way (xorshift over an internal counter) —
    /// deterministic across runs.
    Random,
}

/// Size/shape of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (64 across the paper's hierarchy).
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// Number of sets (capacity / (ways × line)). Rounded down for
    /// non-power-of-two shapes like the paper's 12-way L2.
    pub fn sets(&self) -> u64 {
        (self.bytes / (self.ways as u64 * self.line_bytes as u64)).max(1)
    }

    /// Validate the geometry.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes as u64 != LINE_BYTES {
            return Err(format!(
                "line_bytes {} unsupported (hierarchy uses {LINE_BYTES})",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("ways == 0".into());
        }
        if self.bytes < self.ways as u64 * self.line_bytes as u64 {
            return Err("capacity smaller than one set".into());
        }
        Ok(())
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    Hit,
    Miss,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// Tag-only set-associative cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    sets: u64,
    ways: usize,
    lines: Vec<Line>,
    stamp: u64,
    rng_state: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build an empty cache. Panics on invalid geometry (construction is
    /// configuration time, not simulation time).
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        geometry.validate().expect("invalid cache geometry");
        let sets = geometry.sets();
        let ways = geometry.ways as usize;
        SetAssocCache {
            geometry,
            policy,
            sets,
            ways,
            lines: vec![Line::default(); (sets as usize) * ways],
            stamp: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        (line_index(addr) % self.sets) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        line_index(addr) / self.sets
    }

    #[inline]
    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let start = set * self.ways;
        &mut self.lines[start..start + self.ways]
    }

    /// Probe without updating replacement state or stats (used by tag
    /// checks that should not disturb LRU, e.g. MSHR merging checks).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let start = set * self.ways;
        self.lines[start..start + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Access `addr`; on a hit, update recency (and the dirty bit for
    /// writes). Misses do **not** allocate — call [`SetAssocCache::fill`]
    /// when the refill arrives, as a real cache would.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        for l in self.set_slice(set) {
            if l.valid && l.tag == tag {
                l.last_use = stamp;
                if is_write {
                    l.dirty = true;
                }
                self.hits += 1;
                return AccessOutcome::Hit;
            }
        }
        self.misses += 1;
        AccessOutcome::Miss
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Install the line for `addr`. Returns the evicted line's base
    /// address if a **dirty** line had to be written back.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        let sets = self.sets;

        // Already present (e.g. racing fills after an MSHR merge): just
        // refresh.
        let slice_start = set * self.ways;
        for l in self.set_slice(set) {
            if l.valid && l.tag == tag {
                l.last_use = stamp;
                l.dirty |= dirty;
                return None;
            }
        }
        // Pick a victim: first invalid way, else by policy.
        let victim_idx = {
            let slice = &self.lines[slice_start..slice_start + self.ways];
            if let Some(i) = slice.iter().position(|l| !l.valid) {
                i
            } else {
                match self.policy {
                    // `unwrap_or(0)` never fires: a set has ≥ 1 way by
                    // geometry validation, and way 0 is a sound victim.
                    ReplacementPolicy::Lru => slice
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.last_use)
                        .map(|(i, _)| i)
                        .unwrap_or(0),
                    ReplacementPolicy::Random => {
                        (self.xorshift() % self.ways as u64) as usize
                    }
                }
            }
        };
        let victim = &mut self.lines[slice_start + victim_idx];
        let writeback = if victim.valid && victim.dirty {
            // Reconstruct the victim's base address from (tag, set).
            Some((victim.tag * sets + set as u64) * LINE_BYTES)
        } else {
            None
        };
        *victim = Line {
            tag,
            valid: true,
            dirty,
            last_use: stamp,
        };
        writeback
    }

    /// Invalidate the line holding `addr`, if present. Returns true when
    /// a line was invalidated.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        let set = self.set_of(addr);
        for l in self.set_slice(set) {
            if l.valid && l.tag == tag {
                l.valid = false;
                return true;
            }
        }
        false
    }

    /// (hits, misses) recorded by [`SetAssocCache::access`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid lines (for tests / occupancy reporting).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Total line slots.
    pub fn capacity_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32) -> SetAssocCache {
        SetAssocCache::new(
            CacheGeometry {
                bytes: 4 * ways as u64 * 64, // 4 sets
                ways,
                line_bytes: 64,
            },
            ReplacementPolicy::Lru,
        )
    }

    #[test]
    fn geometry_of_paper_l2_bank() {
        // One of the 4 banks of the 4 MB 12-way L2: 1 MB, 12-way.
        let g = CacheGeometry {
            bytes: 1 << 20,
            ways: 12,
            line_bytes: 64,
        };
        g.validate().unwrap();
        assert_eq!(g.sets(), (1u64 << 20) / (12 * 64));
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(2);
        assert_eq!(c.access(0x1000, false), AccessOutcome::Miss);
        assert!(c.fill(0x1000, false).is_none());
        assert_eq!(c.access(0x1000, false), AccessOutcome::Hit);
        assert!(c.probe(0x1000));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(2); // 4 sets × 2 ways
        // Three lines mapping to set 0: line indices 0, 4, 8.
        let (a, b, x) = (0u64, 4 * 64, 8 * 64);
        c.fill(a, false);
        c.fill(b, false);
        c.access(a, false); // a most recent
        c.fill(x, false); // must evict b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(x));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small_cache(1); // direct-mapped, 4 sets
        let a = 0u64;
        let conflict = 4 * 64; // same set
        c.fill(a, true); // dirty
        let wb = c.fill(conflict, false);
        assert_eq!(wb, Some(a), "dirty victim address must be reported");
        let wb2 = c.fill(a, false); // clean victim now
        assert_eq!(wb2, None);
    }

    #[test]
    fn writes_mark_dirty() {
        let mut c = small_cache(1);
        c.fill(0, false);
        assert_eq!(c.access(0, true), AccessOutcome::Hit);
        let wb = c.fill(4 * 64, false);
        assert_eq!(wb, Some(0), "written line must write back");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(2);
        c.fill(0x40, false);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = small_cache(2);
        c.fill(0, false);
        c.fill(4 * 64, false);
        let (h0, m0) = c.stats();
        for _ in 0..10 {
            c.probe(0);
        }
        assert_eq!(c.stats(), (h0, m0));
        // LRU untouched by probes: line 0 is still the LRU victim.
        c.fill(8 * 64, false);
        assert!(!c.probe(0));
    }

    #[test]
    fn non_power_of_two_sets_cover_all_lines() {
        // 12-way 1 MB bank: exercise modulo indexing with many fills.
        let mut c = SetAssocCache::new(
            CacheGeometry {
                bytes: 1 << 20,
                ways: 12,
                line_bytes: 64,
            },
            ReplacementPolicy::Lru,
        );
        for i in 0..50_000u64 {
            c.fill(i * 64 * 11, false); // 11 is coprime with the set count
        }
        assert!(c.valid_lines() <= c.capacity_lines());
        assert!(c.valid_lines() > c.capacity_lines() / 2);
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let mk = || {
            let mut c = SetAssocCache::new(
                CacheGeometry {
                    bytes: 2 * 64 * 4,
                    ways: 2,
                    line_bytes: 64,
                },
                ReplacementPolicy::Random,
            );
            let mut resident = Vec::new();
            for i in 0..100u64 {
                c.fill(i * 64, false);
                resident.push(c.probe(0));
            }
            resident
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = small_cache(4); // 4 sets × 4 ways = 16 lines
        // 64-line working set, round-robin: second pass must still miss.
        for i in 0..64u64 {
            assert_eq!(c.access(i * 64, false), AccessOutcome::Miss);
            c.fill(i * 64, false);
        }
        let mut hits = 0;
        for i in 0..64u64 {
            if c.access(i * 64, false) == AccessOutcome::Hit {
                hits += 1;
            }
        }
        assert!(hits < 32, "LRU round-robin over 4x capacity should thrash");
    }

    #[test]
    fn small_working_set_hits() {
        let mut c = small_cache(4);
        for i in 0..8u64 {
            c.access(i * 64, false);
            c.fill(i * 64, false);
        }
        for i in 0..8u64 {
            assert_eq!(c.access(i * 64, false), AccessOutcome::Hit);
        }
    }
}
