//! Deterministic fault injection for robustness tests.
//!
//! A [`FaultPlan`] rides on [`crate::MemConfig`] and arms up to three
//! failure modes at configured cycles:
//!
//! * **swallow DRAM responses** — main-memory returns are dropped, so
//!   the MSHR entries waiting on them leak and the machine livelocks
//!   once every thread is blocked on a lost line;
//! * **pin an L2 bank busy** — the bank stops ticking, so every request
//!   routed to it queues forever;
//! * **exhaust a core's MSHRs** — every L1 miss on that core reports
//!   `MshrFull`, starving it of new memory parallelism.
//!
//! Faults are pure functions of the simulated cycle — no randomness, no
//! wall clock — so a faulted run is as reproducible as a healthy one.
//! They exist to *prove* the driver's forward-progress watchdog fires
//! with the right diagnosis; nothing in the production figure path arms
//! them.

/// Deterministic fault schedule for one [`crate::MemorySystem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Swallow every DRAM response from this cycle on (`u64::MAX` =
    /// never).
    pub drop_dram_from: u64,
    /// Pin this global bank index busy…
    pub pin_bank: Option<u32>,
    /// …from this cycle on.
    pub pin_bank_from: u64,
    /// Report `MshrFull` for every L1 miss of this core…
    pub mshr_exhaust_core: Option<u32>,
    /// …from this cycle on.
    pub mshr_exhaust_from: u64,
}

impl FaultPlan {
    /// No faults — the production configuration.
    pub fn none() -> Self {
        FaultPlan {
            drop_dram_from: u64::MAX,
            pin_bank: None,
            pin_bank_from: 0,
            mshr_exhaust_core: None,
            mshr_exhaust_from: 0,
        }
    }

    /// True when no fault can ever trigger.
    pub fn is_none(&self) -> bool {
        self.drop_dram_from == u64::MAX
            && self.pin_bank.is_none()
            && self.mshr_exhaust_core.is_none()
    }

    /// Swallow DRAM responses from `cycle` on.
    pub fn dropping_dram_from(mut self, cycle: u64) -> Self {
        self.drop_dram_from = cycle;
        self
    }

    /// Pin global bank `bank` busy from `cycle` on.
    pub fn pinning_bank_from(mut self, bank: u32, cycle: u64) -> Self {
        self.pin_bank = Some(bank);
        self.pin_bank_from = cycle;
        self
    }

    /// Exhaust core `core`'s MSHR file from `cycle` on.
    pub fn exhausting_mshr_from(mut self, core: u32, cycle: u64) -> Self {
        self.mshr_exhaust_core = Some(core);
        self.mshr_exhaust_from = cycle;
        self
    }

    /// Should the DRAM response at `now` be swallowed?
    pub fn drops_dram(&self, now: u64) -> bool {
        now >= self.drop_dram_from
    }

    /// Is global bank `bank` pinned busy at `now`?
    pub fn pins_bank(&self, bank: u32, now: u64) -> bool {
        self.pin_bank == Some(bank) && now >= self.pin_bank_from
    }

    /// Is core `core`'s MSHR file force-exhausted at `now`?
    pub fn exhausts_mshr(&self, core: u32, now: u64) -> bool {
        self.mshr_exhaust_core == Some(core) && now >= self.mshr_exhaust_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(!p.drops_dram(u64::MAX - 1));
        assert!(!p.pins_bank(0, u64::MAX));
        assert!(!p.exhausts_mshr(0, u64::MAX));
    }

    #[test]
    fn faults_arm_at_their_cycle() {
        let p = FaultPlan::none()
            .dropping_dram_from(100)
            .pinning_bank_from(2, 200)
            .exhausting_mshr_from(1, 300);
        assert!(!p.is_none());
        assert!(!p.drops_dram(99));
        assert!(p.drops_dram(100));
        assert!(!p.pins_bank(2, 199));
        assert!(p.pins_bank(2, 200));
        assert!(!p.pins_bank(3, 200), "only the named bank is pinned");
        assert!(!p.exhausts_mshr(1, 299));
        assert!(p.exhausts_mshr(1, 300));
        assert!(!p.exhausts_mshr(0, 300), "only the named core is starved");
    }
}
