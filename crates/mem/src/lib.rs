#![forbid(unsafe_code)]
//! # smtsim-mem — memory hierarchy for the MFLUSH reproduction
//!
//! Implements the Fig. 1 cache hierarchy of the paper:
//!
//! * per-core L1 I-cache (64 KB, 4-way, 8 banks) and D-cache
//!   (32 KB, 4-way, 8 banks), 3-cycle hits;
//! * per-core fully-associative 512-entry I/D TLBs with a 300-cycle miss
//!   penalty;
//! * a per-core 16-entry MSHR file tracking outstanding misses;
//! * a shared L1↔L2 **bus** (4-cycle transit; with the 3-cycle L1 probe
//!   and the 15-cycle L2 bank access this yields the paper's 22-cycle
//!   uncontended L1-miss/L2-hit latency);
//! * a shared **4 MB, 12-way L2 split into 4 single-ported banks** with a
//!   15-cycle bank occupancy per access — two consecutive accesses to the
//!   same bank cannot be served in less than 15 cycles, so "the fourth
//!   consecutive L2 hit to the same bank experiences a 45-cycle delay"
//!   (paper §3.2); this queueing is the source of the L2-hit-latency
//!   variability that breaks the static FLUSH trigger;
//! * a 250-cycle main memory.
//!
//! The crate is self-contained: cores talk to [`system::MemorySystem`]
//! through an access/completion interface and the system advances one
//! cycle at a time, in lock-step with the core models.
//!
//! ```
//! use smtsim_mem::{AccessKind, AccessResult, MemConfig, MemorySystem};
//!
//! let cfg = MemConfig::paper(4);
//! assert_eq!(cfg.l1_miss_nominal(), 22);      // 3 + 4 + 15
//! assert_eq!(cfg.l2_miss_nominal(), 272);     // + 250 DRAM
//! assert_eq!(cfg.multicore_traffic_delay(), 57); // (4+15)·3 — MFLUSH's MT
//!
//! let mut mem = MemorySystem::new(cfg);
//! let req = match mem.access(0, AccessKind::Load, 0x1000, 0) {
//!     AccessResult::Miss { req, .. } => req, // cold caches miss
//!     other => panic!("{other:?}"),
//! };
//! for now in 1..2_000 {
//!     mem.tick(now);
//!     if let Some(c) = mem.drain_completions(0).into_iter().find(|c| c.req == req) {
//!         assert!(!c.l2_hit);
//!         return;
//!     }
//! }
//! panic!("load never completed");
//! ```

pub mod addr;
pub mod bus;
pub mod cache;
pub mod dram;
pub mod fastmem;
pub mod fault;
pub mod histogram;
pub mod l2bank;
pub mod metrics;
pub mod model;
pub mod mshr;
pub mod system;
pub mod tlb;
pub mod util;

pub use cache::{AccessOutcome, CacheGeometry, ReplacementPolicy, SetAssocCache};
pub use fastmem::FastMemory;
pub use fault::FaultPlan;
pub use histogram::LatencyHistogram;
pub use metrics::METRICS;
pub use model::{MemFidelity, MemoryModel};
pub use system::{
    AccessKind, AccessResult, Completion, CoreMemStats, MemConfig, MemEvent, MemStats,
    MemorySystem, ReqId,
};
pub use tlb::Tlb;
