//! The complete memory system: per-core L1s/TLBs/MSHRs, the shared bus,
//! the banked L2 and main memory, advanced in lock-step with the cores.
//!
//! Cores call [`MemorySystem::access`] when an instruction fetch, load or
//! store probes the hierarchy, then poll [`MemorySystem::drain_completions`]
//! each cycle for finished misses and [`MemorySystem::drain_events`] for
//! intermediate events (currently: L2-miss detection, the hook the
//! non-speculative FLUSH policy needs).

use crate::addr::{bank_of, l1_bank_of, line_base, LINE_BYTES};
use crate::fault::FaultPlan;

/// Local alias keeping arithmetic sites terse.
const LINE_BYTES_U64: u64 = LINE_BYTES;
use crate::bus::{BusMsg, SharedBus};
use crate::cache::{AccessOutcome, CacheGeometry, SetAssocCache, ReplacementPolicy};
use crate::dram::Dram;
use crate::histogram::LatencyHistogram;
use crate::l2bank::{BankOp, BankOutcome, L2Bank};
use crate::mshr::{MshrAlloc, MshrFile};
use crate::tlb::Tlb;
use crate::util::Slab;
use smtsim_obs::{EventRing, TraceEvent};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque handle for an in-flight miss.
pub type ReqId = u32;

/// What kind of access the core performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I + I-TLB path).
    IFetch,
    /// Data load (L1D + D-TLB path) — the instruction class the fetch
    /// policies react to.
    Load,
    /// Data store (write-allocate into L1D).
    Store,
}

/// Outcome of [`MemorySystem::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// L1 hit: data available at `ready_at` (includes any TLB-walk
    /// penalty and L1 bank-conflict delay).
    L1Hit { ready_at: u64, tlb_miss: bool },
    /// L1 miss: a completion for `req` will appear later.
    Miss { req: ReqId, tlb_miss: bool },
    /// The core's MSHR file is full; retry next cycle.
    MshrFull,
}

/// A finished miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub req: ReqId,
    pub core: u32,
    pub kind: AccessKind,
    pub addr: u64,
    /// L2 bank that serviced the line.
    pub bank: u32,
    /// True if the line was found in the shared L2.
    pub l2_hit: bool,
    /// Cycle the core issued the access.
    pub issued_at: u64,
    /// Cycle the data became available.
    pub completed_at: u64,
    /// Cycle the L2 lookup discovered a miss (None on L2 hits).
    pub l2_miss_detected_at: Option<u64>,
    /// The access paid a TLB walk.
    pub tlb_miss: bool,
}

impl Completion {
    /// End-to-end latency seen by the core.
    pub fn latency(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

/// Intermediate memory event (delivered the cycle it happens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// The L2 lookup for `req` missed at cycle `at` — the trigger moment
    /// of the non-speculative FLUSH policy.
    L2MissDetected { req: ReqId, at: u64 },
}

/// Configuration of the whole hierarchy (defaults = paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of SMT cores sharing the L2.
    pub num_cores: u32,
    /// L1 I-cache geometry (64 KB, 4-way).
    pub l1i: CacheGeometry,
    /// L1 D-cache geometry (32 KB, 4-way).
    pub l1d: CacheGeometry,
    /// L1 banks (8) — used for same-cycle port-conflict penalties.
    pub l1_banks: u32,
    /// L1 hit latency (3).
    pub l1_hit_cycles: u64,
    /// I/D TLB entries (512, fully associative).
    pub tlb_entries: usize,
    /// TLB miss penalty (300).
    pub tlb_miss_cycles: u64,
    /// MSHR entries per core (16).
    pub mshr_entries: usize,
    /// One-way L1→L2 bus transit (4; 3 + 4 + 15 = paper's 22-cycle
    /// uncontended L1-miss/L2-hit).
    pub bus_latency: u64,
    /// Bus grants per cycle (arbitration bandwidth).
    pub bus_grants_per_cycle: u32,
    /// Total shared L2 capacity (4 MB).
    pub l2_bytes: u64,
    /// L2 associativity (12).
    pub l2_ways: u32,
    /// Number of single-ported L2 banks (4).
    pub l2_banks: u32,
    /// L2 bank service occupancy per access (15).
    pub l2_bank_cycles: u64,
    /// Main memory latency (250).
    pub dram_cycles: u64,
    /// Max concurrent DRAM accesses (0 = unlimited).
    pub dram_max_inflight: usize,
    /// Enable a next-line L1D prefetcher: every demand load miss also
    /// fetches the following line (if it is absent and an MSHR is
    /// free). Off in the paper's machine; exists for the future-work
    /// ablation benches.
    pub next_line_prefetch: bool,
    /// Number of independent L2 clusters. The paper's machine is a
    /// single shared L2 (`1`); the paper's §4 explicitly frames MFLUSH
    /// for "SMT cores sharing one or multiple L2 Caches", so clustered
    /// configurations exist as an extension: cores are partitioned
    /// evenly across clusters, each cluster gets its own bus and its
    /// own `l2_banks` banks, and the total L2 capacity is split evenly.
    pub l2_clusters: u32,
    /// Deterministic fault-injection schedule ([`FaultPlan::none`] in
    /// every production configuration; armed only by robustness tests).
    pub faults: FaultPlan,
}

impl MemConfig {
    /// The paper's Fig. 1 hierarchy for `num_cores` cores.
    pub fn paper(num_cores: u32) -> Self {
        MemConfig {
            num_cores,
            l1i: CacheGeometry {
                bytes: 64 << 10,
                ways: 4,
                line_bytes: 64,
            },
            l1d: CacheGeometry {
                bytes: 32 << 10,
                ways: 4,
                line_bytes: 64,
            },
            l1_banks: 8,
            l1_hit_cycles: 3,
            tlb_entries: 512,
            tlb_miss_cycles: 300,
            mshr_entries: 16,
            bus_latency: 4,
            bus_grants_per_cycle: 2,
            l2_bytes: 4 << 20,
            l2_ways: 12,
            l2_banks: 4,
            l2_bank_cycles: 15,
            dram_cycles: 250,
            dram_max_inflight: 0,
            next_line_prefetch: false,
            l2_clusters: 1,
            faults: FaultPlan::none(),
        }
    }

    /// Nominal uncontended L1-miss / L2-hit latency — the paper's
    /// "L1 miss" figure (22 cycles) and the MFLUSH `MIN` parameter.
    pub fn l1_miss_nominal(&self) -> u64 {
        self.l1_hit_cycles + self.bus_latency + self.l2_bank_cycles
    }

    /// Nominal L2-miss latency — the MFLUSH `MAX` parameter
    /// (MIN + main-memory latency).
    pub fn l2_miss_nominal(&self) -> u64 {
        self.l1_miss_nominal() + self.dram_cycles
    }

    /// The paper's Multicore-Traffic delay:
    /// `MT = (L1_L2_Bus_delay + L2_Bank_Acc_delay) * (Num_Cores - 1)`
    /// where `Num_Cores` is the number of cores *sharing one L2*.
    pub fn multicore_traffic_delay(&self) -> u64 {
        (self.bus_latency + self.l2_bank_cycles) * (self.cores_per_cluster() as u64 - 1)
    }

    /// Cores sharing each L2 cluster.
    pub fn cores_per_cluster(&self) -> u32 {
        self.num_cores / self.l2_clusters.max(1)
    }

    /// L2 cluster serving `core`.
    pub fn cluster_of(&self, core: u32) -> u32 {
        core / self.cores_per_cluster().max(1)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores == 0".into());
        }
        self.l1i.validate().map_err(|e| format!("l1i: {e}"))?;
        self.l1d.validate().map_err(|e| format!("l1d: {e}"))?;
        if self.l2_banks == 0 || !self.l2_bytes.is_multiple_of(self.l2_banks as u64) {
            return Err("l2_bytes must divide evenly across banks".into());
        }
        if self.l2_clusters == 0
            || !self.num_cores.is_multiple_of(self.l2_clusters)
            || !self.l2_bytes.is_multiple_of(self.l2_clusters as u64 * self.l2_banks as u64)
        {
            return Err(format!(
                "{} cores / {} bytes do not partition into {} L2 clusters",
                self.num_cores, self.l2_bytes, self.l2_clusters
            ));
        }
        if self.mshr_entries == 0 || self.tlb_entries == 0 {
            return Err("mshr/tlb entries must be > 0".into());
        }
        CacheGeometry {
            bytes: self.l2_bytes / self.l2_banks as u64,
            ways: self.l2_ways,
            line_bytes: 64,
        }
        .validate()
        .map_err(|e| format!("l2 bank: {e}"))?;
        if let Some(bank) = self.faults.pin_bank {
            if bank >= self.l2_clusters * self.l2_banks {
                return Err(format!(
                    "fault plan pins bank {bank} but only {} exist",
                    self.l2_clusters * self.l2_banks
                ));
            }
        }
        if let Some(core) = self.faults.mshr_exhaust_core {
            if core >= self.num_cores {
                return Err(format!(
                    "fault plan exhausts MSHRs of core {core} but only {} exist",
                    self.num_cores
                ));
            }
        }
        Ok(())
    }
}

/// Per-core memory statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreMemStats {
    pub ifetches: u64,
    pub ifetch_l1_misses: u64,
    pub loads: u64,
    pub load_l1_misses: u64,
    pub stores: u64,
    pub store_l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub itlb_misses: u64,
    pub dtlb_misses: u64,
    pub mshr_merges: u64,
    pub mshr_full_stalls: u64,
    pub writebacks: u64,
    pub prefetches: u64,
}

/// Aggregate statistics for the whole system.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    pub cores: Vec<CoreMemStats>,
}

impl MemStats {
    /// Sum a field across cores.
    pub fn total<F: Fn(&CoreMemStats) -> u64>(&self, f: F) -> u64 {
        self.cores.iter().map(f).sum()
    }

    /// Global L2 demand hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        let h = self.total(|c| c.l2_hits);
        let m = self.total(|c| c.l2_misses);
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    core: u32,
    kind: AccessKind,
    addr: u64,
    issued_at: u64,
    tlb_miss: bool,
    l2_miss_detected_at: Option<u64>,
    /// Hardware prefetch: fills caches, delivers no completion.
    prefetch: bool,
}

#[derive(Debug, Clone, Copy)]
enum BusItem {
    Demand { req: ReqId, addr: u64, write: bool },
    Writeback { addr: u64 },
}

#[derive(Debug, Clone, Copy)]
enum BankToken {
    Demand(ReqId),
    Fill { core: u32 },
    Writeback,
}

#[derive(Debug, Clone, Copy)]
enum DramToken {
    /// Demand fetch for the primary request of a line.
    Demand(ReqId),
}

struct CorePort {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    itlb: Tlb,
    dtlb: Tlb,
    mshr: MshrFile,
    outbox: Vec<Completion>,
    events: Vec<MemEvent>,
    /// Last cycle each L1D bank was used (port-conflict penalty).
    l1d_bank_cycle: Vec<u64>,
    stats: CoreMemStats,
}

#[derive(PartialEq, Eq)]
struct Release {
    at: u64,
    seq: u64,
    core: u32,
    item_idx: usize,
}

impl Ord for Release {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Release {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The shared memory system.
pub struct MemorySystem {
    cfg: MemConfig,
    cores: Vec<CorePort>,
    inflight: Slab<InFlight>,
    /// Items waiting to enter the bus (L1 probe + TLB walk delay).
    release_heap: BinaryHeap<Reverse<Release>>,
    release_items: Vec<Option<BusItem>>,
    release_free: Vec<usize>,
    release_seq: u64,
    /// One bus per L2 cluster.
    buses: Vec<SharedBus<BusItem>>,
    /// `l2_clusters × l2_banks` banks; bank index =
    /// `cluster * l2_banks + addr_bank`.
    banks: Vec<L2Bank<BankToken>>,
    dram: Dram<DramToken>,
    /// Tick-loop scratch (rule D10: `tick` runs every cycle and must
    /// not allocate): bus deliveries, DRAM completions, and the waiter
    /// list copied out of an MSHR entry while its core port is mutated.
    bus_scratch: Vec<BusMsg<BusItem>>,
    dram_scratch: Vec<DramToken>,
    waiter_scratch: Vec<u64>,
    l2_hit_hist: LatencyHistogram,
    /// Per-load L2 *hit* latencies, including queueing — Fig. 4.
    total_completions: u64,
    /// Demand responses returned by DRAM (feeds `mem.dram.round_trips`).
    dram_round_trips: u64,
    /// Optional event trace (None unless enabled — DESIGN.md §12).
    trace: Option<EventRing>,
}

impl MemorySystem {
    /// Build the hierarchy. Panics on invalid configuration.
    pub fn new(cfg: MemConfig) -> Self {
        cfg.validate().expect("invalid MemConfig");
        let bank_geom = CacheGeometry {
            bytes: cfg.l2_bytes / (cfg.l2_clusters as u64 * cfg.l2_banks as u64),
            ways: cfg.l2_ways,
            line_bytes: 64,
        };
        MemorySystem {
            cores: (0..cfg.num_cores)
                .map(|_| CorePort {
                    l1i: SetAssocCache::new(cfg.l1i, ReplacementPolicy::Lru),
                    l1d: SetAssocCache::new(cfg.l1d, ReplacementPolicy::Lru),
                    itlb: Tlb::new(cfg.tlb_entries),
                    dtlb: Tlb::new(cfg.tlb_entries),
                    mshr: MshrFile::new(cfg.mshr_entries),
                    outbox: Vec::new(),
                    events: Vec::new(),
                    l1d_bank_cycle: vec![u64::MAX; cfg.l1_banks as usize],
                    stats: CoreMemStats::default(),
                })
                .collect(),
            inflight: Slab::with_capacity(cfg.mshr_entries * cfg.num_cores as usize * 2),
            release_heap: BinaryHeap::new(),
            release_items: Vec::new(),
            release_free: Vec::new(),
            release_seq: 0,
            buses: (0..cfg.l2_clusters)
                .map(|_| {
                    SharedBus::new(
                        cfg.cores_per_cluster(),
                        cfg.bus_latency,
                        cfg.bus_grants_per_cycle,
                    )
                })
                .collect(),
            banks: (0..cfg.l2_clusters * cfg.l2_banks)
                .map(|_| L2Bank::new(bank_geom, cfg.l2_bank_cycles))
                .collect(),
            dram: Dram::new(cfg.dram_cycles, cfg.dram_max_inflight),
            bus_scratch: Vec::new(),
            dram_scratch: Vec::new(),
            waiter_scratch: Vec::new(),
            l2_hit_hist: LatencyHistogram::for_l2_hit_time(),
            total_completions: 0,
            dram_round_trips: 0,
            trace: None,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    fn schedule_release(&mut self, at: u64, core: u32, item: BusItem) {
        let idx = if let Some(i) = self.release_free.pop() {
            self.release_items[i] = Some(item);
            i
        } else {
            self.release_items.push(Some(item));
            self.release_items.len() - 1
        };
        self.release_seq += 1;
        self.release_heap.push(Reverse(Release {
            at,
            seq: self.release_seq,
            core,
            item_idx: idx,
        }));
    }

    /// Global bank slot for an address within a cluster.
    #[inline]
    fn bank_index(&self, cluster: u32, addr: u64) -> usize {
        (cluster * self.cfg.l2_banks + bank_of(addr, self.cfg.l2_banks)) as usize
    }

    /// Issue a next-line prefetch for `line` (no completion will be
    /// delivered; the line fills the L1D and L2 on arrival).
    fn issue_prefetch(&mut self, core: u32, line: u64, release_at: u64) {
        let cidx = core as usize;
        if self.cores[cidx].l1d.probe(line) || self.cores[cidx].mshr.is_full() {
            return;
        }
        let req = self.inflight.insert(InFlight {
            core,
            kind: AccessKind::Load,
            addr: line,
            issued_at: release_at,
            tlb_miss: false,
            l2_miss_detected_at: None,
            prefetch: true,
        });
        match self.cores[cidx].mshr.allocate(line, req as u64) {
            MshrAlloc::Primary => {
                self.cores[cidx].stats.prefetches += 1;
                self.schedule_release(
                    release_at,
                    core,
                    BusItem::Demand {
                        req,
                        addr: line,
                        write: false,
                    },
                );
            }
            // Already being fetched or no room: drop the prefetch.
            MshrAlloc::Merged | MshrAlloc::Full => {
                // A merged prefetch would double-complete the waiter
                // list with a no-op; simplest is to forget it.
                if let Some(e) = self.cores[cidx].mshr.complete(line) {
                    // Restore the entry minus our request.
                    for &w in &e.waiters {
                        if w != req as u64 {
                            let _ = self.cores[cidx].mshr.allocate(line, w);
                        }
                    }
                    self.cores[cidx].mshr.recycle(e.waiters);
                }
                self.inflight.remove(req);
            }
        }
    }

    /// Core `core` performs an access at cycle `now`.
    pub fn access(&mut self, core: u32, kind: AccessKind, addr: u64, now: u64) -> AccessResult {
        let cidx = core as usize;
        let line = line_base(addr);

        // 1. TLB.
        let (tlb_miss, is_ifetch) = {
            let port = &mut self.cores[cidx];
            match kind {
                AccessKind::IFetch => (!port.itlb.access(addr), true),
                AccessKind::Load | AccessKind::Store => (!port.dtlb.access(addr), false),
            }
        };
        let tlb_penalty = if tlb_miss { self.cfg.tlb_miss_cycles } else { 0 };
        {
            let s = &mut self.cores[cidx].stats;
            match kind {
                AccessKind::IFetch => {
                    s.ifetches += 1;
                    if tlb_miss {
                        s.itlb_misses += 1;
                    }
                }
                AccessKind::Load => {
                    s.loads += 1;
                    if tlb_miss {
                        s.dtlb_misses += 1;
                    }
                }
                AccessKind::Store => {
                    s.stores += 1;
                    if tlb_miss {
                        s.dtlb_misses += 1;
                    }
                }
            }
        }

        // 2. L1 probe (with a one-cycle D-bank conflict penalty).
        let mut conflict = 0;
        if !is_ifetch {
            let b = l1_bank_of(addr, self.cfg.l1_banks) as usize;
            let port = &mut self.cores[cidx];
            if port.l1d_bank_cycle[b] == now {
                conflict = 1;
            }
            port.l1d_bank_cycle[b] = now;
        }
        let outcome = {
            let port = &mut self.cores[cidx];
            let is_write = kind == AccessKind::Store;
            if is_ifetch {
                port.l1i.access(addr, false)
            } else {
                port.l1d.access(addr, is_write)
            }
        };
        if outcome == AccessOutcome::Hit {
            return AccessResult::L1Hit {
                ready_at: now + self.cfg.l1_hit_cycles + tlb_penalty + conflict,
                tlb_miss,
            };
        }

        // 3. L1 miss: MSHR + request downstream.
        {
            let s = &mut self.cores[cidx].stats;
            match kind {
                AccessKind::IFetch => s.ifetch_l1_misses += 1,
                AccessKind::Load => s.load_l1_misses += 1,
                AccessKind::Store => s.store_l1_misses += 1,
            }
        }
        if self.cfg.faults.exhausts_mshr(core, now) {
            self.cores[cidx].stats.mshr_full_stalls += 1;
            return AccessResult::MshrFull;
        }
        let req = self.inflight.insert(InFlight {
            core,
            kind,
            addr,
            issued_at: now,
            tlb_miss,
            l2_miss_detected_at: None,
            prefetch: false,
        });
        match self.cores[cidx].mshr.allocate(line, req as u64) {
            MshrAlloc::Primary => {
                let release_at = now + self.cfg.l1_hit_cycles + tlb_penalty + conflict;
                self.schedule_release(
                    release_at,
                    core,
                    BusItem::Demand {
                        req,
                        addr: line,
                        write: kind == AccessKind::Store,
                    },
                );
                if self.cfg.next_line_prefetch && kind == AccessKind::Load {
                    self.issue_prefetch(core, line + LINE_BYTES_U64, release_at);
                }
                let occupancy = self.cores[cidx].mshr.occupancy() as u32;
                if let Some(ring) = &mut self.trace {
                    ring.emit(now, TraceEvent::MshrAlloc { core, merged: false, occupancy });
                }
                AccessResult::Miss { req, tlb_miss }
            }
            MshrAlloc::Merged => {
                self.cores[cidx].stats.mshr_merges += 1;
                let occupancy = self.cores[cidx].mshr.occupancy() as u32;
                if let Some(ring) = &mut self.trace {
                    ring.emit(now, TraceEvent::MshrAlloc { core, merged: true, occupancy });
                }
                AccessResult::Miss { req, tlb_miss }
            }
            MshrAlloc::Full => {
                self.inflight.remove(req);
                self.cores[cidx].stats.mshr_full_stalls += 1;
                AccessResult::MshrFull
            }
        }
    }

    /// Advance the hierarchy one cycle.
    pub fn tick(&mut self, now: u64) {
        // 1. Move matured L1-miss requests onto their cluster's bus.
        while let Some(Reverse(r)) = self.release_heap.peek() {
            if r.at > now {
                break;
            }
            let Some(Reverse(r)) = self.release_heap.pop() else {
                break; // unreachable: peek above returned Some
            };
            // lint: allow(D3) -- heap entries and release slots are filled/freed in lockstep
            let item = self.release_items[r.item_idx].take().expect("release slot");
            self.release_free.push(r.item_idx);
            let cluster = self.cfg.cluster_of(r.core) as usize;
            let local_core = r.core % self.cfg.cores_per_cluster();
            self.buses[cluster].send(local_core, item);
        }

        // 2. Buses: grants + deliveries to their cluster's bank queues.
        let mut delivered = std::mem::take(&mut self.bus_scratch);
        for cluster in 0..self.buses.len() {
            self.buses[cluster].tick_into(now, &mut delivered);
            for msg in delivered.drain(..) {
                match msg.payload {
                    BusItem::Demand { req, addr, write } => {
                        let bank = self.bank_index(cluster as u32, addr);
                        self.banks[bank].enqueue(
                            BankToken::Demand(req),
                            addr,
                            BankOp::Demand { write },
                            now,
                        );
                        let depth = self.banks[bank].queued() as u32;
                        if let Some(ring) = &mut self.trace {
                            ring.emit(now, TraceEvent::L2BankEnqueue { bank: bank as u32, depth });
                        }
                    }
                    BusItem::Writeback { addr } => {
                        let bank = self.bank_index(cluster as u32, addr);
                        self.banks[bank].enqueue(
                            BankToken::Writeback,
                            addr,
                            BankOp::Writeback,
                            now,
                        );
                        let depth = self.banks[bank].queued() as u32;
                        if let Some(ring) = &mut self.trace {
                            ring.emit(now, TraceEvent::L2BankEnqueue { bank: bank as u32, depth });
                        }
                    }
                }
            }
        }
        self.bus_scratch = delivered;

        // 3. Banks. Completions report the cluster-local bank id (what
        // a core's MCReg file indexes by).
        for b in 0..self.banks.len() {
            if self.banks[b].idle() {
                continue; // quiet-bank fast path: a tick would be a pure no-op
            }
            if self.cfg.faults.pins_bank(b as u32, now) {
                continue;
            }
            let local_bank = (b % self.cfg.l2_banks as usize) as u32;
            if let Some((token, outcome, _enq)) = self.banks[b].tick(now) {
                match (token, outcome) {
                    (BankToken::Demand(req), BankOutcome::Hit) => {
                        self.complete_line(req, local_bank, true, now);
                    }
                    (BankToken::Demand(req), BankOutcome::Miss) => {
                        // Record detection and fetch from memory.
                        if let Some(fl) = self.inflight.get_mut(req) {
                            fl.l2_miss_detected_at = Some(now);
                            let core = fl.core as usize;
                            let line = line_base(fl.addr);
                            // Notify every request waiting on this line
                            // (merged MSHR waiters miss the L2 too).
                            // Copied into scratch: the MSHR borrow must
                            // end before the event pushes on the same
                            // core port.
                            let mut waiters = std::mem::take(&mut self.waiter_scratch);
                            waiters.clear();
                            waiters.extend_from_slice(
                                self.cores[core].mshr.waiters(line).unwrap_or(&[]),
                            );
                            for &w in &waiters {
                                self.cores[core].events.push(MemEvent::L2MissDetected {
                                    req: w as ReqId,
                                    at: now,
                                });
                            }
                            self.waiter_scratch = waiters;
                        }
                        self.dram.request(now, DramToken::Demand(req));
                    }
                    (BankToken::Fill { core }, BankOutcome::FillDone(victim)) => {
                        if victim.is_some() {
                            // L2 dirty victim: write to memory,
                            // fire-and-forget (DRAM write bandwidth is
                            // not modelled, matching the paper's setup).
                            let _ = core;
                        }
                    }
                    (BankToken::Writeback, BankOutcome::WritebackAbsorbed(_present)) => {
                        // Absent lines would be forwarded to memory;
                        // writes are fire-and-forget.
                    }
                    (t, o) => {
                        // lint: allow(D11) -- bank enqueue pairs each token kind with its op; a mismatch is a modelling bug
                        unreachable!("inconsistent bank token/outcome: {t:?} vs {o:?}")
                    }
                }
            }
        }

        // 4. Main memory returns.
        let mut dram_done = std::mem::take(&mut self.dram_scratch);
        self.dram.tick_into(now, &mut dram_done);
        for token in dram_done.drain(..) {
            if self.cfg.faults.drops_dram(now) {
                // Swallow the response: the MSHR entry waiting on it
                // leaks deliberately, which is exactly the livelock the
                // watchdog must diagnose.
                continue;
            }
            match token {
                DramToken::Demand(req) => {
                    let (bank, line, core, issued_at) = match self.inflight.get(req) {
                        Some(fl) => {
                            let cluster = self.cfg.cluster_of(fl.core);
                            (
                                self.bank_index(cluster, fl.addr),
                                line_base(fl.addr),
                                fl.core,
                                fl.issued_at,
                            )
                        }
                        None => continue,
                    };
                    self.dram_round_trips += 1;
                    if let Some(ring) = &mut self.trace {
                        ring.emit(
                            now,
                            TraceEvent::DramRoundTrip {
                                core,
                                latency: now.saturating_sub(issued_at),
                            },
                        );
                    }
                    // Install in L2 (occupies the bank port) and hand the
                    // data to the core right away (critical-word-first
                    // forwarding past the fill).
                    self.banks[bank].enqueue(
                        BankToken::Fill { core },
                        line,
                        BankOp::Fill { dirty: false },
                        now,
                    );
                    self.complete_line(req, (bank % self.cfg.l2_banks as usize) as u32, false, now);
                }
            }
        }
        self.dram_scratch = dram_done;
    }

    /// Earliest cycle ≥ `from` at which a [`Self::tick`] would do
    /// observable work, assuming no new accesses arrive: the next
    /// release-heap maturity, bus grant or delivery, bank completion,
    /// or DRAM return. `u64::MAX` means the hierarchy is fully
    /// drained. This is the memory half of the stall skip-ahead
    /// horizon (DESIGN.md §16). Completions or events still awaiting a
    /// core's drain conservatively pin the horizon to `from`.
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        if self
            .cores
            .iter()
            .any(|p| !p.outbox.is_empty() || !p.events.is_empty())
        {
            return from;
        }
        let mut at = match self.release_heap.peek() {
            Some(Reverse(r)) => r.at.max(from),
            None => u64::MAX,
        };
        for bus in &self.buses {
            at = at.min(bus.next_event_cycle(from));
        }
        for bank in &self.banks {
            at = at.min(bank.next_event_cycle(from));
        }
        at.min(self.dram.next_event_cycle(from))
    }

    /// Account `cycles` ticks elided by skip-ahead. The only per-cycle
    /// bookkeeping in the hierarchy is each bus's queue-length
    /// integral; the release heap, banks and DRAM are purely
    /// event-timed, so nothing else needs repair.
    pub fn account_skip(&mut self, cycles: u64) {
        for bus in &mut self.buses {
            bus.account_skip(cycles);
        }
    }

    /// Finish the line of `req`: complete all MSHR waiters, refill L1.
    fn complete_line(&mut self, req: ReqId, bank: u32, l2_hit: bool, now: u64) {
        let fl = match self.inflight.get(req) {
            Some(f) => *f,
            None => return,
        };
        let cidx = fl.core as usize;
        let line = line_base(fl.addr);
        {
            let s = &mut self.cores[cidx].stats;
            if l2_hit {
                s.l2_hits += 1;
            } else {
                s.l2_misses += 1;
            }
        }
        let entry = match self.cores[cidx].mshr.complete(line) {
            Some(e) => e,
            None => return,
        };
        let occupancy = self.cores[cidx].mshr.occupancy() as u32;
        if let Some(ring) = &mut self.trace {
            ring.emit(now, TraceEvent::MshrRetire { core: fl.core, occupancy });
        }

        // Refill the right L1 once; stores install dirty lines.
        let mut fill_dirty = false;
        let mut any_ifetch = false;
        for &w in &entry.waiters {
            if let Some(infl) = self.inflight.get(w as ReqId) {
                match infl.kind {
                    AccessKind::Store => fill_dirty = true,
                    AccessKind::IFetch => any_ifetch = true,
                    AccessKind::Load => {}
                }
            }
        }
        let victim = {
            let port = &mut self.cores[cidx];
            if any_ifetch {
                port.l1i.fill(line, false)
            } else {
                port.l1d.fill(line, fill_dirty)
            }
        };
        if let Some(victim_addr) = victim {
            self.cores[cidx].stats.writebacks += 1;
            // Dirty L1 victim travels back over the bus to the L2.
            self.schedule_release(now, fl.core, BusItem::Writeback { addr: victim_addr });
        }

        // Complete every waiter.
        for &w in &entry.waiters {
            let w = w as ReqId;
            if let Some(infl) = self.inflight.remove(w) {
                let completion = Completion {
                    req: w,
                    core: infl.core,
                    kind: infl.kind,
                    addr: infl.addr,
                    bank,
                    l2_hit,
                    issued_at: infl.issued_at,
                    completed_at: now,
                    l2_miss_detected_at: if l2_hit {
                        None
                    } else {
                        // Merged waiters share the primary's detection.
                        fl.l2_miss_detected_at
                    },
                    tlb_miss: infl.tlb_miss,
                };
                if infl.prefetch {
                    continue; // prefetches fill caches silently
                }
                if l2_hit && infl.kind == AccessKind::Load {
                    self.l2_hit_hist.record(completion.latency());
                }
                self.total_completions += 1;
                self.cores[cidx].outbox.push(completion);
            }
        }
        self.cores[cidx].mshr.recycle(entry.waiters);
    }

    /// Take all completions for `core` (delivered during the most recent
    /// ticks).
    pub fn drain_completions(&mut self, core: u32) -> Vec<Completion> {
        std::mem::take(&mut self.cores[core as usize].outbox)
    }

    /// Take all intermediate events for `core`.
    pub fn drain_events(&mut self, core: u32) -> Vec<MemEvent> {
        std::mem::take(&mut self.cores[core as usize].events)
    }

    /// Snapshot per-core statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            cores: self.cores.iter().map(|c| c.stats).collect(),
        }
    }

    /// Distribution of L2-hit service times for loads (Fig. 4).
    pub fn l2_hit_histogram(&self) -> &LatencyHistogram {
        &self.l2_hit_hist
    }

    /// Per-bank (serviced, queue-delay-sum, peak-queue) tuples.
    pub fn bank_stats(&self) -> Vec<(u64, u64, usize)> {
        self.banks.iter().map(|b| b.stats()).collect()
    }

    /// Per-bank L2 `(hits, misses)` tuples (feeds the
    /// `mem.l2.bank_miss_rate` metric).
    pub fn bank_cache_stats(&self) -> Vec<(u64, u64)> {
        self.banks.iter().map(|b| b.cache_stats()).collect()
    }

    /// Demand responses DRAM has returned so far (feeds the
    /// `mem.dram.round_trips` metric).
    pub fn dram_round_trips(&self) -> u64 {
        self.dram_round_trips
    }

    /// Start recording trace events into a ring keeping the most
    /// recent `capacity` records (DESIGN.md §12). Off by default; the
    /// disabled path costs one branch per instrumentation point.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventRing::new(capacity));
    }

    /// The memory system's event ring (`None` unless
    /// [`Self::enable_trace`] was called).
    pub fn trace(&self) -> Option<&EventRing> {
        self.trace.as_ref()
    }

    /// Mean bus input-queue length (contention indicator), averaged
    /// across clusters.
    pub fn bus_mean_queue(&self) -> f64 {
        let n = self.buses.len().max(1) as f64;
        self.buses.iter().map(|b| b.mean_queue_len()).sum::<f64>() / n
    }

    /// Requests still in flight (diagnostics; should drain to ~0 at the
    /// end of a quiesced simulation).
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// Total completions delivered.
    pub fn total_completions(&self) -> u64 {
        self.total_completions
    }

    /// Warm one line into the hierarchy without spending simulated time
    /// or touching statistics: the line is installed in the appropriate
    /// L1 of `core` and in its shared L2 bank.
    ///
    /// Trace-driven methodology: the paper simulates the most
    /// representative 300M-instruction SimPoint segment of each
    /// benchmark, i.e. the caches start *warm*. Drivers use this to
    /// reproduce that starting condition before measurement.
    pub fn prewarm_line(&mut self, core: u32, kind: AccessKind, addr: u64) {
        let line = line_base(addr);
        let port = &mut self.cores[core as usize];
        match kind {
            AccessKind::IFetch => {
                port.l1i.fill(line, false);
            }
            AccessKind::Load | AccessKind::Store => {
                port.l1d.fill(line, kind == AccessKind::Store);
            }
        }
        // Direct tag-array install, bypassing the port timing.
        let bank = self.bank_index(self.cfg.cluster_of(core), line);
        self.banks[bank].prewarm(line);
    }

    /// Warm a line into `core`'s shared L2 cluster only (for working
    /// sets larger than the L1s).
    pub fn prewarm_l2_line(&mut self, core: u32, addr: u64) {
        let line = line_base(addr);
        let bank = self.bank_index(self.cfg.cluster_of(core), line);
        self.banks[bank].prewarm(line);
    }

    /// Warm the page of `addr` into `core`'s I- or D-TLB.
    pub fn prewarm_tlb(&mut self, core: u32, kind: AccessKind, addr: u64) {
        let port = &mut self.cores[core as usize];
        match kind {
            AccessKind::IFetch => {
                port.itlb.access(addr);
            }
            AccessKind::Load | AccessKind::Store => {
                port.dtlb.access(addr);
            }
        }
        // Warming must not perturb statistics.
        port.stats.itlb_misses = 0;
        port.stats.dtlb_misses = 0;
    }

    /// Diagnostic: live request ids with (core, kind, addr, issued_at).
    pub fn debug_inflight(&self) -> Vec<(ReqId, u32, AccessKind, u64, u64)> {
        self.inflight
            .iter()
            .map(|(k, f)| (k, f.core, f.kind, f.addr, f.issued_at))
            .collect()
    }

    /// Diagnostic: per-core MSHR occupancy and tracked lines.
    pub fn debug_mshr(&self, core: u32) -> (usize, bool) {
        let m = &self.cores[core as usize].mshr;
        (m.occupancy(), m.is_full())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: u32) -> MemorySystem {
        MemorySystem::new(MemConfig::paper(cores))
    }

    /// Tick `cycles` with nothing issued, letting pending L2 fills and
    /// writebacks drain so later latency measurements are uncontended.
    fn settle(m: &mut MemorySystem, now: u64, cycles: u64) -> u64 {
        for t in now + 1..=now + cycles {
            m.tick(t);
        }
        now + cycles
    }

    /// Run until the given request completes; returns the completion.
    fn run_until_complete(m: &mut MemorySystem, core: u32, req: ReqId, mut now: u64) -> (Completion, u64) {
        for _ in 0..100_000 {
            now += 1;
            m.tick(now);
            let done = m.drain_completions(core);
            if let Some(c) = done.iter().find(|c| c.req == req) {
                return (*c, now);
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn config_latency_identities() {
        let cfg = MemConfig::paper(4);
        assert_eq!(cfg.l1_miss_nominal(), 22);
        assert_eq!(cfg.l2_miss_nominal(), 272);
        assert_eq!(cfg.multicore_traffic_delay(), (4 + 15) * 3);
        cfg.validate().unwrap();
    }

    #[test]
    fn first_access_misses_to_dram_with_nominal_latency() {
        let mut m = sys(1);
        let r = m.access(0, AccessKind::Load, 0x5000, 0);
        let req = match r {
            AccessResult::Miss { req, tlb_miss } => {
                assert!(tlb_miss, "cold TLB");
                req
            }
            other => panic!("expected miss, got {other:?}"),
        };
        let (c, _) = run_until_complete(&mut m, 0, req, 0);
        assert!(!c.l2_hit);
        // 300 TLB + 3 L1 + 4 bus + 15 bank (miss detect) + 250 DRAM = 572.
        assert_eq!(c.latency(), 572);
        assert_eq!(c.l2_miss_detected_at, Some(300 + 3 + 4 + 15));
    }

    #[test]
    fn warm_access_is_l1_hit() {
        let mut m = sys(1);
        let r = m.access(0, AccessKind::Load, 0x5000, 0);
        let req = match r {
            AccessResult::Miss { req, .. } => req,
            _ => panic!(),
        };
        let (_, done_at) = run_until_complete(&mut m, 0, req, 0);
        let r2 = m.access(0, AccessKind::Load, 0x5000, done_at + 1);
        match r2 {
            AccessResult::L1Hit { ready_at, tlb_miss } => {
                assert!(!tlb_miss);
                assert_eq!(ready_at, done_at + 1 + 3);
            }
            other => panic!("expected L1 hit, got {other:?}"),
        }
    }

    #[test]
    fn l2_hit_after_l1_eviction_takes_22_cycles() {
        let mut m = sys(1);
        // Warm TLB + caches for the target line.
        let req = match m.access(0, AccessKind::Load, 0x8000, 0) {
            AccessResult::Miss { req, .. } => req,
            _ => panic!(),
        };
        let (_, mut now) = run_until_complete(&mut m, 0, req, 0);
        // Evict 0x8000 from L1D by filling its set (L1D: 32KB 4-way =
        // 128 sets; same set every 128 lines = 8192 bytes).
        for i in 1..=4u64 {
            now += 1;
            let a = 0x8000 + i * 8192;
            match m.access(0, AccessKind::Load, a, now) {
                AccessResult::Miss { req, .. } => {
                    let (_, t) = run_until_complete(&mut m, 0, req, now);
                    now = t;
                }
                AccessResult::L1Hit { .. } => {}
                AccessResult::MshrFull => panic!("mshr full"),
            }
        }
        // Now 0x8000 must be out of L1 but in L2. Let fills drain first.
        now = settle(&mut m, now, 50);
        now += 1;
        let req = match m.access(0, AccessKind::Load, 0x8000, now) {
            AccessResult::Miss { req, tlb_miss } => {
                assert!(!tlb_miss);
                req
            }
            other => panic!("expected L1 miss, got {other:?}"),
        };
        let (c, _) = run_until_complete(&mut m, 0, req, now);
        assert!(c.l2_hit, "line must hit in L2");
        assert_eq!(c.latency(), 22, "uncontended L2 hit = 3+4+15");
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut m = sys(1);
        let r1 = m.access(0, AccessKind::Load, 0x9000, 0);
        let r2 = m.access(0, AccessKind::Load, 0x9008, 0); // same line
        let (q1, q2) = match (r1, r2) {
            (AccessResult::Miss { req: a, .. }, AccessResult::Miss { req: b, .. }) => (a, b),
            other => panic!("{other:?}"),
        };
        let (c1, t) = run_until_complete(&mut m, 0, q1, 0);
        // Both complete in the same cycle (merged).
        let _ = c1;
        let mut found = false;
        // q2 completed in the same drain as q1 — re-check outbox history:
        // run_until_complete drained it, so issue a fresh check: the line
        // is now in L1.
        if let AccessResult::L1Hit { .. } = m.access(0, AccessKind::Load, 0x9008, t + 1) { found = true }
        assert!(found, "merged waiter's line must be resident");
        assert_eq!(m.stats().cores[0].mshr_merges, 1);
        let _ = q2;
    }

    #[test]
    fn mshr_fills_up_and_rejects() {
        let mut m = sys(1);
        // 16 entries; issue 17 distinct-line misses in one cycle.
        let mut rejected = false;
        for i in 0..17u64 {
            match m.access(0, AccessKind::Load, 0x10_0000 + i * 64, 0) {
                AccessResult::Miss { .. } => {}
                AccessResult::MshrFull => {
                    rejected = true;
                    assert_eq!(i, 16, "reject exactly at capacity");
                }
                AccessResult::L1Hit { .. } => panic!("cold cache cannot hit"),
            }
        }
        assert!(rejected);
        assert_eq!(m.stats().cores[0].mshr_full_stalls, 1);
    }

    #[test]
    fn bank_contention_raises_l2_hit_latency() {
        // Warm one L2 bank with lines, evict them from L1, then hammer
        // the bank from 4 cores at once: later hits must queue.
        let mut m = sys(4);
        let mut now = 0u64;
        // Each core warms a distinct line, all mapping to bank 0
        // (line index multiple of 4).
        let line_of = |i: u64| 0x40_0000 + i * 4 * 64; // bank 0
        for core in 0..4u32 {
            let req = match m.access(core, AccessKind::Load, line_of(core as u64), now) {
                AccessResult::Miss { req, .. } => req,
                _ => panic!(),
            };
            let (_, t) = run_until_complete(&mut m, core, req, now);
            now = t;
        }
        // Evict from each L1 (fill the set with conflicting lines).
        for core in 0..4u32 {
            for i in 1..=4u64 {
                now += 1;
                let a = line_of(core as u64) + i * 8192 * 4; // same L1 set, bank 0
                if let AccessResult::Miss { req, .. } =
                    m.access(core, AccessKind::Load, a, now)
                {
                    let (_, t) = run_until_complete(&mut m, core, req, now);
                    now = t;
                }
            }
        }
        // Simultaneous L2 hits from all 4 cores to bank 0 (after all
        // pending fills have drained).
        now = settle(&mut m, now, 100);
        now += 1;
        let mut reqs = Vec::new();
        for core in 0..4u32 {
            match m.access(core, AccessKind::Load, line_of(core as u64), now) {
                AccessResult::Miss { req, .. } => reqs.push((core, req)),
                other => panic!("core {core}: {other:?}"),
            }
        }
        let mut latencies = Vec::new();
        for (core, req) in reqs {
            // Completions may already be drained by earlier loops — run a
            // fresh wait for each request with its own clock.
            let mut t = now;
            'outer: for _ in 0..10_000 {
                t += 1;
                m.tick(t);
                for c in m.drain_completions(core) {
                    if c.req == req {
                        assert!(c.l2_hit, "expected L2 hit");
                        latencies.push(c.latency());
                        break 'outer;
                    }
                }
            }
        }
        assert_eq!(latencies.len(), 4, "all four hits must complete");
        latencies.sort_unstable();
        assert_eq!(latencies[0], 22, "first served is uncontended");
        assert!(
            *latencies.last().unwrap() >= 22 + 45,
            "fourth consecutive hit to one bank must wait ≥45 extra cycles, got {latencies:?}"
        );
    }

    #[test]
    fn l2_hit_histogram_collects_load_hits() {
        let mut m = sys(1);
        let mut now = 0;
        // Warm a line into L2, evict from L1, re-touch.
        let req = match m.access(0, AccessKind::Load, 0x8000, now) {
            AccessResult::Miss { req, .. } => req,
            _ => panic!(),
        };
        let (_, t) = run_until_complete(&mut m, 0, req, now);
        now = t;
        for i in 1..=4u64 {
            now += 1;
            if let AccessResult::Miss { req, .. } =
                m.access(0, AccessKind::Load, 0x8000 + i * 8192, now)
            {
                let (_, t) = run_until_complete(&mut m, 0, req, now);
                now = t;
            }
        }
        now = settle(&mut m, now, 50);
        now += 1;
        if let AccessResult::Miss { req, .. } = m.access(0, AccessKind::Load, 0x8000, now) {
            run_until_complete(&mut m, 0, req, now);
        }
        assert_eq!(m.l2_hit_histogram().count(), 1);
        assert_eq!(m.l2_hit_histogram().mean(), 22.0);
    }

    #[test]
    fn ifetch_uses_its_own_l1() {
        let mut m = sys(1);
        let req = match m.access(0, AccessKind::IFetch, 0x40_0000, 0) {
            AccessResult::Miss { req, .. } => req,
            _ => panic!(),
        };
        let (_, t) = run_until_complete(&mut m, 0, req, 0);
        // Now in L1I…
        match m.access(0, AccessKind::IFetch, 0x40_0000, t + 1) {
            AccessResult::L1Hit { .. } => {}
            other => panic!("{other:?}"),
        }
        // …but not in L1D.
        match m.access(0, AccessKind::Load, 0x40_0000, t + 2) {
            AccessResult::Miss { .. } => {}
            other => panic!("expected L1D miss: {other:?}"),
        }
    }

    #[test]
    fn stats_accumulate_sensibly() {
        let mut m = sys(2);
        m.access(0, AccessKind::Load, 0x1000, 0);
        m.access(1, AccessKind::Store, 0x2000, 0);
        m.access(0, AccessKind::IFetch, 0x40_0000, 0);
        let s = m.stats();
        assert_eq!(s.total(|c| c.loads), 1);
        assert_eq!(s.total(|c| c.stores), 1);
        assert_eq!(s.total(|c| c.ifetches), 1);
        assert_eq!(s.cores[0].loads, 1);
        assert_eq!(s.cores[1].stores, 1);
    }

    #[test]
    fn next_line_prefetch_fills_the_following_line() {
        let mut cfg = MemConfig::paper(1);
        cfg.next_line_prefetch = true;
        let mut m = MemorySystem::new(cfg);
        let req = match m.access(0, AccessKind::Load, 0x9000, 0) {
            AccessResult::Miss { req, .. } => req,
            other => panic!("{other:?}"),
        };
        let (_, t) = run_until_complete(&mut m, 0, req, 0);
        // Let the prefetch land too.
        let t = settle(&mut m, t, 700);
        assert_eq!(m.stats().cores[0].prefetches, 1);
        match m.access(0, AccessKind::Load, 0x9040, t + 1) {
            AccessResult::L1Hit { .. } => {}
            other => panic!("next line not prefetched: {other:?}"),
        }
        // Prefetches deliver no completions.
        assert!(m.drain_completions(0).is_empty());
    }

    #[test]
    fn prefetch_disabled_by_default() {
        let mut m = sys(1);
        let req = match m.access(0, AccessKind::Load, 0x9000, 0) {
            AccessResult::Miss { req, .. } => req,
            other => panic!("{other:?}"),
        };
        let (_, t) = run_until_complete(&mut m, 0, req, 0);
        let t = settle(&mut m, t, 700);
        assert_eq!(m.stats().cores[0].prefetches, 0);
        assert!(matches!(
            m.access(0, AccessKind::Load, 0x9040, t + 1),
            AccessResult::Miss { .. }
        ));
    }

    #[test]
    fn clusters_partition_cores_and_capacity() {
        let mut cfg = MemConfig::paper(4);
        cfg.l2_clusters = 2;
        cfg.validate().unwrap();
        assert_eq!(cfg.cores_per_cluster(), 2);
        assert_eq!(cfg.cluster_of(0), 0);
        assert_eq!(cfg.cluster_of(1), 0);
        assert_eq!(cfg.cluster_of(2), 1);
        assert_eq!(cfg.cluster_of(3), 1);
        // MT shrinks: only 2 cores share each L2.
        assert_eq!(cfg.multicore_traffic_delay(), 19);
        let m = MemorySystem::new(cfg);
        assert_eq!(m.bank_stats().len(), 8, "2 clusters × 4 banks");
    }

    #[test]
    fn clusters_isolate_traffic() {
        // Two cores in different clusters hammering the same bank-0
        // address pattern must not queue behind each other.
        let mut cfg = MemConfig::paper(2);
        cfg.l2_clusters = 2;
        let mut m = MemorySystem::new(cfg);
        // Warm the same line set into each core's own cluster.
        for core in 0..2u32 {
            m.prewarm_l2_line(core, 0x40_0000);
        }
        let mut reqs = Vec::new();
        for core in 0..2u32 {
            match m.access(core, AccessKind::Load, 0x40_0000, 0) {
                AccessResult::Miss { req, .. } => reqs.push((core, req)),
                other => panic!("{other:?}"),
            }
        }
        // Both L2 hits complete uncontended (22 + TLB walk 300 cycles)
        // because each cluster has its own bank 0.
        let mut latencies = Vec::new();
        for (core, req) in reqs {
            let (c, _) = run_until_complete(&mut m, core, req, 0);
            assert!(c.l2_hit);
            latencies.push(c.latency());
        }
        assert_eq!(latencies[0], latencies[1], "no cross-cluster queueing");
    }

    #[test]
    fn invalid_cluster_partition_rejected() {
        let mut cfg = MemConfig::paper(3);
        cfg.l2_clusters = 2; // 3 cores don't split in 2
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn inflight_drains_when_quiesced() {
        let mut m = sys(2);
        for core in 0..2u32 {
            for i in 0..5u64 {
                m.access(core, AccessKind::Load, 0x7000 + core as u64 * 0x10_0000 + i * 64, 0);
            }
        }
        for now in 1..5_000 {
            m.tick(now);
            m.drain_completions(0);
            m.drain_completions(1);
        }
        assert_eq!(m.inflight_count(), 0);
    }

    // ------------------------------------------------------------
    // Fault injection (the robustness suite's livelock triggers)
    // ------------------------------------------------------------

    #[test]
    fn dropped_dram_responses_leak_inflight_requests() {
        let mut cfg = MemConfig::paper(1);
        cfg.faults = FaultPlan::none().dropping_dram_from(0);
        cfg.validate().unwrap();
        let mut m = MemorySystem::new(cfg);
        let req = match m.access(0, AccessKind::Load, 0x5000, 0) {
            AccessResult::Miss { req, .. } => req,
            other => panic!("expected cold miss, got {other:?}"),
        };
        for now in 1..5_000 {
            m.tick(now);
            assert!(
                !m.drain_completions(0).iter().any(|c| c.req == req),
                "swallowed DRAM response must never complete"
            );
        }
        assert!(m.inflight_count() > 0, "the request leaks by design");
        assert_eq!(m.total_completions(), 0);
    }

    #[test]
    fn dram_drops_only_arm_at_their_cycle() {
        let mut cfg = MemConfig::paper(1);
        cfg.faults = FaultPlan::none().dropping_dram_from(10_000);
        let mut m = MemorySystem::new(cfg);
        let req = match m.access(0, AccessKind::Load, 0x5000, 0) {
            AccessResult::Miss { req, .. } => req,
            other => panic!("{other:?}"),
        };
        // Well before the arm cycle: identical to the fault-free path.
        let (c, _) = run_until_complete(&mut m, 0, req, 0);
        assert_eq!(c.latency(), 572, "unarmed fault must not perturb timing");
    }

    #[test]
    fn pinned_bank_starves_its_queue() {
        let mut cfg = MemConfig::paper(1);
        cfg.l2_banks = 1; // every L2 access funnels into the pinned bank
        cfg.faults = FaultPlan::none().pinning_bank_from(0, 0);
        cfg.validate().unwrap();
        let mut m = MemorySystem::new(cfg);
        match m.access(0, AccessKind::Load, 0x5000, 0) {
            AccessResult::Miss { .. } => {}
            other => panic!("{other:?}"),
        }
        for now in 1..5_000 {
            m.tick(now);
            assert!(
                m.drain_completions(0).is_empty(),
                "a permanently busy bank must never serve its queue"
            );
        }
        assert!(m.inflight_count() > 0);
    }

    #[test]
    fn exhausted_mshr_rejects_new_misses() {
        let mut cfg = MemConfig::paper(2);
        cfg.faults = FaultPlan::none().exhausting_mshr_from(0, 0);
        cfg.validate().unwrap();
        let mut m = MemorySystem::new(cfg);
        // Core 0 is saturated from cycle 0...
        match m.access(0, AccessKind::Load, 0x5000, 0) {
            AccessResult::MshrFull => {}
            other => panic!("expected MshrFull, got {other:?}"),
        }
        assert_eq!(m.stats().cores[0].mshr_full_stalls, 1);
        // ...while core 1 is untouched.
        match m.access(1, AccessKind::Load, 0x5000, 0) {
            AccessResult::Miss { .. } => {}
            other => panic!("core 1 must be unaffected, got {other:?}"),
        }
    }
}
