//! Small allocation-free utilities used across the memory system.

/// A slab allocator with stable `u32` keys and a free list.
///
/// The memory system keeps every in-flight request in a slab: insertion
/// and removal are O(1), keys stay valid until removed, and — unlike a
/// `HashMap` — the hot path never hashes or allocates once the slab has
/// warmed up (The Rust Performance Book's advice on avoiding default
/// `HashMap`s in hot loops).
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Empty slab with room for `cap` entries before reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Insert a value, returning its key.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(k) = self.free.pop() {
            self.entries[k as usize] = Some(value);
            k
        } else {
            self.entries.push(Some(value));
            (self.entries.len() - 1) as u32
        }
    }

    /// Remove and return the value under `key`.
    pub fn remove(&mut self, key: u32) -> Option<T> {
        let slot = self.entries.get_mut(key as usize)?;
        let v = slot.take();
        if v.is_some() {
            self.free.push(key);
            self.len -= 1;
        }
        v
    }

    /// Borrow the value under `key`.
    pub fn get(&self, key: u32) -> Option<&T> {
        self.entries.get(key as usize)?.as_ref()
    }

    /// Mutably borrow the value under `key`.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        self.entries.get_mut(key as usize)?.as_mut()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over `(key, &value)` pairs of live entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(k, v)| v.as_ref().map(|v| (k as u32, v)))
    }

    /// Iterate over `(key, &mut value)` pairs of live entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut T)> {
        self.entries
            .iter_mut()
            .enumerate()
            .filter_map(|(k, v)| v.as_mut().map(|v| (k as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keys_are_reused_after_removal() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(a, b, "slab should reuse freed slots");
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn double_remove_is_none() {
        let mut s = Slab::new();
        let a = s.insert(1);
        assert_eq!(s.remove(a), Some(1));
        assert_eq!(s.remove(a), None);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn iter_visits_only_live() {
        let mut s = Slab::new();
        let _a = s.insert(10);
        let b = s.insert(20);
        let _c = s.insert(30);
        s.remove(b);
        let vals: Vec<i32> = s.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![10, 30]);
    }

    #[test]
    fn get_mut_mutates() {
        let mut s = Slab::new();
        let a = s.insert(5);
        *s.get_mut(a).unwrap() += 1;
        assert_eq!(s.get(a), Some(&6));
    }

    #[test]
    fn out_of_range_keys_are_none() {
        let s: Slab<u8> = Slab::new();
        assert_eq!(s.get(42), None);
    }
}
