//! One single-ported bank of the shared L2 cache.
//!
//! Paper §3.2: "each of the 4 banks of the shared L2 cache is
//! single-ported and has an access latency of 15 cycles. That is, two
//! consecutive accesses to the same L2 cache bank cannot be served in
//! less than 15 cycles … the fourth consecutive L2 hit to the same L2
//! cache bank would experience a 45-cycle delay." The bank therefore
//! owns a FIFO of waiting requests and a busy timer; queueing here is
//! what produces the L2-hit-latency variability of Fig. 4.

use crate::cache::{AccessOutcome, CacheGeometry, ReplacementPolicy, SetAssocCache};
use std::collections::VecDeque;

/// What the bank did with a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankOutcome {
    /// Demand access hit in this bank.
    Hit,
    /// Demand access missed — caller forwards to memory.
    Miss,
    /// A refill (from memory) was installed; carries the dirty victim's
    /// address when one had to be written back.
    FillDone(Option<u64>),
    /// A writeback from an L1 was absorbed (`true`: line was present and
    /// marked dirty; `false`: line absent, caller forwards to memory).
    WritebackAbsorbed(bool),
}

/// Kind of work queued at a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankOp {
    /// Demand lookup (load / store / ifetch miss from an L1).
    Demand { write: bool },
    /// Install a refill returned by memory.
    Fill { dirty: bool },
    /// Absorb a dirty eviction from an L1.
    Writeback,
}

#[derive(Debug, Clone, Copy)]
struct QueuedReq<T> {
    token: T,
    addr: u64,
    op: BankOp,
    enqueued_at: u64,
}

/// A single-ported L2 bank: one access in service at a time, fixed
/// service latency, FIFO queue.
#[derive(Debug)]
pub struct L2Bank<T> {
    cache: SetAssocCache,
    access_cycles: u64,
    queue: VecDeque<QueuedReq<T>>,
    current: Option<(u64, QueuedReq<T>)>, // (done_at, req)
    serviced: u64,
    queue_delay_sum: u64,
    queue_peak: usize,
}

impl<T: Copy> L2Bank<T> {
    /// Bank with its slice geometry and port service latency.
    pub fn new(geometry: CacheGeometry, access_cycles: u64) -> Self {
        L2Bank {
            cache: SetAssocCache::new(geometry, ReplacementPolicy::Lru),
            access_cycles,
            queue: VecDeque::new(),
            current: None,
            serviced: 0,
            queue_delay_sum: 0,
            queue_peak: 0,
        }
    }

    /// Enqueue work for this bank.
    pub fn enqueue(&mut self, token: T, addr: u64, op: BankOp, now: u64) {
        self.queue.push_back(QueuedReq {
            token,
            addr,
            op,
            enqueued_at: now,
        });
        self.queue_peak = self.queue_peak.max(self.queue.len());
    }

    /// Advance one cycle. Returns `(token, outcome, started_at)` for the
    /// request whose service completed this cycle (at most one — the
    /// port is single).
    pub fn tick(&mut self, now: u64) -> Option<(T, BankOutcome, u64)> {
        let mut finished = None;
        if let Some((done_at, req)) = self.current {
            if done_at <= now {
                self.current = None;
                self.serviced += 1;
                let outcome = match req.op {
                    BankOp::Demand { write } => match self.cache.access(req.addr, write) {
                        AccessOutcome::Hit => BankOutcome::Hit,
                        AccessOutcome::Miss => BankOutcome::Miss,
                    },
                    BankOp::Fill { dirty } => BankOutcome::FillDone(self.cache.fill(req.addr, dirty)),
                    BankOp::Writeback => {
                        // Present: mark dirty. Absent: forward downstream.
                        if self.cache.probe(req.addr) {
                            self.cache.access(req.addr, true);
                            BankOutcome::WritebackAbsorbed(true)
                        } else {
                            BankOutcome::WritebackAbsorbed(false)
                        }
                    }
                };
                finished = Some((req.token, outcome, req.enqueued_at));
            }
        }
        // Start the next request if the port is free.
        if self.current.is_none() {
            if let Some(req) = self.queue.pop_front() {
                self.queue_delay_sum += now.saturating_sub(req.enqueued_at);
                self.current = Some((now + self.access_cycles, req));
            }
        }
        finished
    }

    /// Requests waiting (not counting the one in service).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// True while a request is in service.
    pub fn busy(&self) -> bool {
        self.current.is_some()
    }

    /// True when a tick would be a pure no-op: port free and nothing
    /// queued (the quiet-bank fast path skips such banks).
    pub fn idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    /// Earliest cycle ≥ `from` at which a tick does observable work:
    /// the in-service completion (ticks before `done_at` neither finish
    /// nor start anything), `from` itself when a request is queued with
    /// the port free (the next tick starts it and records its `now`-
    /// dependent queue delay), `u64::MAX` when idle.
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        match &self.current {
            Some((done_at, _)) => (*done_at).max(from),
            None if !self.queue.is_empty() => from,
            None => u64::MAX,
        }
    }

    /// (serviced, total queue delay, peak queue length).
    pub fn stats(&self) -> (u64, u64, usize) {
        (self.serviced, self.queue_delay_sum, self.queue_peak)
    }

    /// Install a line directly in the tag array, bypassing the port —
    /// cache warm-up before measurement (trace-driven methodology).
    pub fn prewarm(&mut self, addr: u64) {
        self.cache.fill(addr, false);
    }

    /// Direct cache stats (hits, misses) of the bank slice.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Test/diagnostic access to the underlying tag array.
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> L2Bank<u32> {
        L2Bank::new(
            CacheGeometry {
                bytes: 1 << 20,
                ways: 12,
                line_bytes: 64,
            },
            15,
        )
    }

    /// Drive the bank until it produces `n` outcomes; returns
    /// (finish_cycle, token, outcome) triples.
    fn run(bank: &mut L2Bank<u32>, until: u64) -> Vec<(u64, u32, BankOutcome)> {
        let mut out = Vec::new();
        for now in 0..until {
            if let Some((tok, o, _)) = bank.tick(now) {
                out.push((now, tok, o));
            }
        }
        out
    }

    #[test]
    fn single_access_takes_service_latency() {
        let mut b = bank();
        b.enqueue(1, 0x1000, BankOp::Demand { write: false }, 0);
        let done = run(&mut b, 40);
        assert_eq!(done.len(), 1);
        // Enqueued at 0, started at tick(0), done at 15.
        assert_eq!(done[0].0, 15);
        assert_eq!(done[0].2, BankOutcome::Miss);
    }

    #[test]
    fn fourth_consecutive_access_sees_45_cycle_queue_delay() {
        // The paper's example: 4 back-to-back accesses to one bank; the
        // 4th completes 60 cycles after issue (15 service + 45 queueing).
        let mut b = bank();
        for i in 0..4 {
            b.enqueue(i, 0x1000 + i as u64 * 0x400, BankOp::Demand { write: false }, 0);
        }
        let done = run(&mut b, 100);
        let finish: Vec<u64> = done.iter().map(|d| d.0).collect();
        assert_eq!(finish, vec![15, 30, 45, 60]);
    }

    #[test]
    fn fill_then_demand_hits() {
        let mut b = bank();
        b.enqueue(9, 0x2000, BankOp::Fill { dirty: false }, 0);
        b.enqueue(10, 0x2000, BankOp::Demand { write: false }, 0);
        let done = run(&mut b, 60);
        assert_eq!(done[0].2, BankOutcome::FillDone(None));
        assert_eq!(done[1].2, BankOutcome::Hit);
    }

    #[test]
    fn writeback_absorbed_when_present() {
        let mut b = bank();
        b.enqueue(1, 0x3000, BankOp::Fill { dirty: false }, 0);
        b.enqueue(2, 0x3000, BankOp::Writeback, 0);
        b.enqueue(3, 0x9000, BankOp::Writeback, 0);
        let done = run(&mut b, 80);
        assert_eq!(done[1].2, BankOutcome::WritebackAbsorbed(true));
        assert_eq!(done[2].2, BankOutcome::WritebackAbsorbed(false));
    }

    #[test]
    fn queue_stats_accumulate() {
        let mut b = bank();
        for i in 0..3 {
            b.enqueue(i, i as u64 * 64, BankOp::Demand { write: false }, 0);
        }
        run(&mut b, 60);
        let (serviced, delay, peak) = b.stats();
        assert_eq!(serviced, 3);
        // 2nd waits 15, 3rd waits 30.
        assert_eq!(delay, 45);
        assert_eq!(peak, 3);
    }

    #[test]
    fn port_idles_when_empty() {
        let mut b = bank();
        assert!(run(&mut b, 10).is_empty());
        assert!(!b.busy());
        assert_eq!(b.queued(), 0);
    }
}
