//! The pluggable-fidelity memory interface.
//!
//! [`MemoryModel`] is the seam between the cores and the memory
//! hierarchy: every caller that used to hold a concrete
//! [`MemorySystem`] now holds a `MemoryModel` and picks a fidelity at
//! construction time. Dispatch is a two-variant `enum` rather than a
//! `dyn` trait object — the variants are closed (a fidelity is a
//! simulator *mode*, not a plugin), enum dispatch keeps the model
//! inlinable in the per-cycle hot loop, and the measured cost gap is
//! recorded in DESIGN.md §13 (see `bench_dispatch` in `smtsim-bench`).
//!
//! The refactor invariant: [`MemoryModel::Detailed`] delegates every
//! call 1:1 to the pre-existing [`MemorySystem`], so
//! `fidelity = detailed` output is byte-identical to the pre-refactor
//! simulator (enforced by `crates/core/tests/fidelity.rs`).

use crate::fastmem::FastMemory;
use crate::histogram::LatencyHistogram;
use crate::system::{
    AccessKind, AccessResult, Completion, MemConfig, MemEvent, MemStats, MemorySystem, ReqId,
};
use smtsim_obs::EventRing;

/// Which memory implementation a simulation runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemFidelity {
    /// Cycle-level [`MemorySystem`]: MSHRs, shared bus, banked L2,
    /// DRAM queueing. The golden-figure fidelity.
    #[default]
    Detailed,
    /// Tag-array-only [`FastMemory`]: fixed latencies, no contention.
    /// Warm-up / fast-forward engine; never used for figures.
    Fast,
}

impl MemFidelity {
    /// Parse a CLI/config spelling. Accepts the canonical names only;
    /// callers turn `None` into their own "unknown fidelity" error.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "detailed" => Some(MemFidelity::Detailed),
            "fast" => Some(MemFidelity::Fast),
            _ => None,
        }
    }

    /// Canonical spelling, round-trips through [`MemFidelity::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            MemFidelity::Detailed => "detailed",
            MemFidelity::Fast => "fast",
        }
    }
}

/// A memory hierarchy at one of the available fidelities.
///
/// The API is the union of what `smtsim-cpu` and the drivers need:
/// construction, the per-cycle `access`/`tick`/`drain_*` protocol,
/// statistics export, trace hookup, prewarming and diagnostics. Both
/// variants implement all of it; reduced-fidelity variants answer the
/// contention queries with empty/zero values rather than panicking, so
/// observability code runs unmodified at any fidelity.
// lint: allow(D5) -- one MemoryModel per simulation, so the size gap never multiplies; boxing would put a pointer chase on every access/tick
#[allow(clippy::large_enum_variant)]
pub enum MemoryModel {
    /// Full cycle-level hierarchy (the pre-refactor `MemorySystem`).
    Detailed(MemorySystem),
    /// Fixed-latency tag-only hierarchy.
    Fast(FastMemory),
}

/// Every method body below is the same one-line delegation; the macro
/// keeps the 20-odd forwarding sites honest (no variant can diverge).
macro_rules! dispatch {
    ($self:expr, $m:ident ( $($a:expr),* )) => {
        match $self {
            MemoryModel::Detailed(inner) => inner.$m($($a),*),
            MemoryModel::Fast(inner) => inner.$m($($a),*),
        }
    };
}

impl MemoryModel {
    /// Build a hierarchy of the requested fidelity. Panics on invalid
    /// configuration (same contract as [`MemorySystem::new`]).
    pub fn new(cfg: MemConfig, fidelity: MemFidelity) -> Self {
        match fidelity {
            MemFidelity::Detailed => MemoryModel::Detailed(MemorySystem::new(cfg)),
            MemFidelity::Fast => MemoryModel::Fast(FastMemory::new(cfg)),
        }
    }

    /// Shorthand for [`MemoryModel::new`] at detailed fidelity.
    pub fn detailed(cfg: MemConfig) -> Self {
        MemoryModel::new(cfg, MemFidelity::Detailed)
    }

    /// Shorthand for [`MemoryModel::new`] at fast fidelity.
    pub fn fast(cfg: MemConfig) -> Self {
        MemoryModel::new(cfg, MemFidelity::Fast)
    }

    /// The fidelity this model runs at.
    pub fn fidelity(&self) -> MemFidelity {
        match self {
            MemoryModel::Detailed(_) => MemFidelity::Detailed,
            MemoryModel::Fast(_) => MemFidelity::Fast,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        dispatch!(self, config())
    }

    /// Core `core` performs an access at cycle `now`.
    pub fn access(&mut self, core: u32, kind: AccessKind, addr: u64, now: u64) -> AccessResult {
        dispatch!(self, access(core, kind, addr, now))
    }

    /// Advance the hierarchy one cycle.
    pub fn tick(&mut self, now: u64) {
        dispatch!(self, tick(now))
    }

    /// Earliest cycle ≥ `from` at which a tick would do observable
    /// work, assuming no new accesses arrive (`u64::MAX` = drained).
    /// The memory half of the stall skip-ahead horizon (DESIGN.md
    /// §16); the fast fidelity pins it to `from`, opting out of skip.
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        dispatch!(self, next_event_cycle(from))
    }

    /// Account `cycles` ticks elided by skip-ahead (per-cycle counters
    /// only; event-timed state needs no repair).
    pub fn account_skip(&mut self, cycles: u64) {
        dispatch!(self, account_skip(cycles))
    }

    /// Take all completions for `core` (delivered during the most
    /// recent ticks).
    pub fn drain_completions(&mut self, core: u32) -> Vec<Completion> {
        dispatch!(self, drain_completions(core))
    }

    /// Take all intermediate events for `core`.
    pub fn drain_events(&mut self, core: u32) -> Vec<MemEvent> {
        dispatch!(self, drain_events(core))
    }

    /// Snapshot per-core statistics.
    pub fn stats(&self) -> MemStats {
        dispatch!(self, stats())
    }

    /// Distribution of L2-hit service times for loads (Fig. 4).
    pub fn l2_hit_histogram(&self) -> &LatencyHistogram {
        dispatch!(self, l2_hit_histogram())
    }

    /// Per-bank (serviced, queue-delay-sum, peak-queue) tuples; empty
    /// at fidelities that do not model banks.
    pub fn bank_stats(&self) -> Vec<(u64, u64, usize)> {
        dispatch!(self, bank_stats())
    }

    /// Per-bank L2 `(hits, misses)` tuples; empty at fidelities that do
    /// not model banks.
    pub fn bank_cache_stats(&self) -> Vec<(u64, u64)> {
        dispatch!(self, bank_cache_stats())
    }

    /// Demand responses DRAM has returned so far.
    pub fn dram_round_trips(&self) -> u64 {
        dispatch!(self, dram_round_trips())
    }

    /// Start recording trace events into a ring keeping the most
    /// recent `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        dispatch!(self, enable_trace(capacity))
    }

    /// The memory event ring (`None` unless [`Self::enable_trace`] was
    /// called).
    pub fn trace(&self) -> Option<&EventRing> {
        dispatch!(self, trace())
    }

    /// Mean bus input-queue length; 0 at fidelities without a bus.
    pub fn bus_mean_queue(&self) -> f64 {
        dispatch!(self, bus_mean_queue())
    }

    /// Requests still in flight.
    pub fn inflight_count(&self) -> usize {
        dispatch!(self, inflight_count())
    }

    /// Total completions delivered.
    pub fn total_completions(&self) -> u64 {
        dispatch!(self, total_completions())
    }

    /// Warm one line into the hierarchy without spending simulated time
    /// or touching statistics.
    pub fn prewarm_line(&mut self, core: u32, kind: AccessKind, addr: u64) {
        dispatch!(self, prewarm_line(core, kind, addr))
    }

    /// Warm a line into `core`'s shared L2 cluster only.
    pub fn prewarm_l2_line(&mut self, core: u32, addr: u64) {
        dispatch!(self, prewarm_l2_line(core, addr))
    }

    /// Warm the page of `addr` into `core`'s I- or D-TLB.
    pub fn prewarm_tlb(&mut self, core: u32, kind: AccessKind, addr: u64) {
        dispatch!(self, prewarm_tlb(core, kind, addr))
    }

    /// Diagnostic: live request ids with (core, kind, addr, issued_at).
    pub fn debug_inflight(&self) -> Vec<(ReqId, u32, AccessKind, u64, u64)> {
        dispatch!(self, debug_inflight())
    }

    /// Diagnostic: per-core MSHR occupancy and fullness; `(0, false)`
    /// at fidelities without MSHRs.
    pub fn debug_mshr(&self, core: u32) -> (usize, bool) {
        dispatch!(self, debug_mshr(core))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_names_round_trip() {
        for f in [MemFidelity::Detailed, MemFidelity::Fast] {
            assert_eq!(MemFidelity::parse(f.as_str()), Some(f));
        }
        assert_eq!(MemFidelity::parse("cycle-accurate"), None);
        assert_eq!(MemFidelity::parse("Fast"), None, "spellings are exact");
    }

    #[test]
    fn constructors_pick_the_right_variant() {
        let cfg = MemConfig::paper(1);
        assert_eq!(MemoryModel::detailed(cfg).fidelity(), MemFidelity::Detailed);
        assert_eq!(MemoryModel::fast(cfg).fidelity(), MemFidelity::Fast);
    }

    #[test]
    fn detailed_variant_delegates_to_memory_system() {
        // Same access against MemoryModel::Detailed and a bare
        // MemorySystem must produce identical results — the facade adds
        // no behaviour.
        let cfg = MemConfig::paper(1);
        let mut facade = MemoryModel::detailed(cfg);
        let mut bare = MemorySystem::new(cfg);
        let a = facade.access(0, AccessKind::Load, 0x2000, 0);
        let b = bare.access(0, AccessKind::Load, 0x2000, 0);
        assert_eq!(a, b);
        for now in 1..2_000 {
            facade.tick(now);
            bare.tick(now);
        }
        let ca = facade.drain_completions(0);
        let cb = bare.drain_completions(0);
        assert_eq!(ca, cb);
        assert!(!ca.is_empty());
    }
}
