//! Tag-array-only "fast functional" memory model.
//!
//! [`FastMemory`] keeps the *state* of the hierarchy (L1/L2 tag arrays,
//! TLBs) but none of its *timing machinery*: no MSHR file, no shared
//! bus, no bank occupancy, no DRAM queue. Every access resolves to one
//! of three fixed latencies — L1 hit, nominal L1-miss/L2-hit, nominal
//! L2 miss — plus the TLB-walk penalty. That makes it 1-2 orders of
//! magnitude cheaper per access than [`crate::MemorySystem`] while
//! still producing the cache/TLB *contents* a detailed phase needs,
//! which is exactly the warm-up engine sampled simulation wants
//! (ROADMAP item 2, methodology per "Validating Simplified Processor
//! Models in Architectural Studies").
//!
//! The interface mirrors [`crate::MemorySystem`] call-for-call so that
//! [`crate::MemoryModel`] can dispatch to either without the caller
//! noticing. Behavioural differences, all deliberate:
//!
//! * the MSHR file is gone, so [`FastMemory::access`] never returns
//!   [`AccessResult::MshrFull`];
//! * tags fill at *access* time (functional warming): each line misses
//!   at most once, so there is no miss-merging bookkeeping;
//! * there is no contention, so completions arrive exactly at
//!   `issued_at + nominal latency` — deterministic by construction;
//! * bank/bus occupancy statistics report empty
//!   ([`FastMemory::bank_stats`] and friends return no rows).

use crate::addr::{bank_of, line_base};
use crate::cache::{AccessOutcome, CacheGeometry, ReplacementPolicy, SetAssocCache};
use crate::histogram::LatencyHistogram;
use crate::system::{
    AccessKind, AccessResult, Completion, CoreMemStats, MemConfig, MemEvent, MemStats, ReqId,
};
use crate::tlb::Tlb;
use smtsim_obs::{EventRing, TraceEvent};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-core tag/TLB state plus the delivery mailboxes.
struct FastPort {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    itlb: Tlb,
    dtlb: Tlb,
    outbox: Vec<Completion>,
    events: Vec<MemEvent>,
    stats: CoreMemStats,
}

/// A scheduled future delivery (completion or L2-miss detection).
#[derive(PartialEq, Eq)]
struct Pending {
    at: u64,
    /// Monotonic tie-break: same-cycle deliveries drain in issue order,
    /// keeping the model byte-deterministic.
    seq: u64,
    what: PendingKind,
}

#[derive(PartialEq, Eq)]
enum PendingKind {
    Complete(Completion),
    L2MissDetected { core: u32, req: ReqId },
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Fixed-latency, contention-free memory model (tag arrays + TLBs only).
///
/// See the module docs for how this differs from the detailed
/// [`crate::MemorySystem`]; the public API is intentionally identical.
pub struct FastMemory {
    cfg: MemConfig,
    cores: Vec<FastPort>,
    /// One shared tag array per L2 cluster (banking affects only the
    /// `bank` label on completions, never timing).
    l2: Vec<SetAssocCache>,
    pending: BinaryHeap<Reverse<Pending>>,
    seq: u64,
    next_req: ReqId,
    inflight: usize,
    l2_hit_hist: LatencyHistogram,
    total_completions: u64,
    dram_round_trips: u64,
    trace: Option<EventRing>,
}

impl FastMemory {
    /// Build the model. Panics on invalid configuration (same contract
    /// as [`crate::MemorySystem::new`]).
    pub fn new(cfg: MemConfig) -> Self {
        cfg.validate().expect("invalid MemConfig");
        let cluster_geom = CacheGeometry {
            bytes: cfg.l2_bytes / cfg.l2_clusters as u64,
            ways: cfg.l2_ways,
            line_bytes: 64,
        };
        FastMemory {
            cores: (0..cfg.num_cores)
                .map(|_| FastPort {
                    l1i: SetAssocCache::new(cfg.l1i, ReplacementPolicy::Lru),
                    l1d: SetAssocCache::new(cfg.l1d, ReplacementPolicy::Lru),
                    itlb: Tlb::new(cfg.tlb_entries),
                    dtlb: Tlb::new(cfg.tlb_entries),
                    outbox: Vec::new(),
                    events: Vec::new(),
                    stats: CoreMemStats::default(),
                })
                .collect(),
            l2: (0..cfg.l2_clusters)
                .map(|_| SetAssocCache::new(cluster_geom, ReplacementPolicy::Lru))
                .collect(),
            pending: BinaryHeap::new(),
            seq: 0,
            next_req: 0,
            inflight: 0,
            l2_hit_hist: LatencyHistogram::for_l2_hit_time(),
            total_completions: 0,
            dram_round_trips: 0,
            trace: None,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    fn push(&mut self, at: u64, what: PendingKind) {
        self.seq += 1;
        self.pending.push(Reverse(Pending {
            at,
            seq: self.seq,
            what,
        }));
    }

    /// Core `core` performs an access at cycle `now`.
    pub fn access(&mut self, core: u32, kind: AccessKind, addr: u64, now: u64) -> AccessResult {
        let cidx = core as usize;
        let line = line_base(addr);

        // 1. TLB, access counters and the L1 tag probe in one pass per
        // kind (same bookkeeping as the detailed model; this runs once
        // per load and store the reduced-fidelity core fetches, so the
        // branch structure is kept flat).
        let port = &mut self.cores[cidx];
        let (tlb_miss, is_ifetch, outcome) = match kind {
            AccessKind::IFetch => {
                let tlb_miss = !port.itlb.access(addr);
                port.stats.ifetches += 1;
                port.stats.itlb_misses += tlb_miss as u64;
                (tlb_miss, true, port.l1i.access(addr, false))
            }
            AccessKind::Load => {
                let tlb_miss = !port.dtlb.access(addr);
                port.stats.loads += 1;
                port.stats.dtlb_misses += tlb_miss as u64;
                (tlb_miss, false, port.l1d.access(addr, false))
            }
            AccessKind::Store => {
                let tlb_miss = !port.dtlb.access(addr);
                port.stats.stores += 1;
                port.stats.dtlb_misses += tlb_miss as u64;
                (tlb_miss, false, port.l1d.access(addr, true))
            }
        };
        let tlb_penalty = if tlb_miss { self.cfg.tlb_miss_cycles } else { 0 };
        if outcome == AccessOutcome::Hit {
            return AccessResult::L1Hit {
                ready_at: now + self.cfg.l1_hit_cycles + tlb_penalty,
                tlb_miss,
            };
        }

        // 3. L1 miss: fill the tag immediately (functional warming) so
        // each line misses at most once — no MSHR merge tracking.
        {
            let s = &mut self.cores[cidx].stats;
            match kind {
                AccessKind::IFetch => s.ifetch_l1_misses += 1,
                AccessKind::Load => s.load_l1_misses += 1,
                AccessKind::Store => s.store_l1_misses += 1,
            }
        }
        let victim = {
            let port = &mut self.cores[cidx];
            if is_ifetch {
                port.l1i.fill(line, false)
            } else {
                port.l1d.fill(line, kind == AccessKind::Store)
            }
        };
        if victim.is_some() {
            self.cores[cidx].stats.writebacks += 1;
        }

        // 4. L2 tag probe in the core's cluster; fixed latencies.
        let cluster = self.cfg.cluster_of(core) as usize;
        let l2_hit = self.l2[cluster].access(line, false) == AccessOutcome::Hit;
        if l2_hit {
            self.cores[cidx].stats.l2_hits += 1;
        } else {
            let _ = self.l2[cluster].fill(line, false);
            self.cores[cidx].stats.l2_misses += 1;
        }
        let req = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        let detect_at = (!l2_hit).then(|| now + self.cfg.l1_miss_nominal() + tlb_penalty);
        let latency = if l2_hit {
            self.cfg.l1_miss_nominal()
        } else {
            self.cfg.l2_miss_nominal()
        } + tlb_penalty;
        let completion = Completion {
            req,
            core,
            kind,
            addr,
            bank: bank_of(line, self.cfg.l2_banks),
            l2_hit,
            issued_at: now,
            completed_at: now + latency,
            l2_miss_detected_at: detect_at,
            tlb_miss,
        };
        if let Some(at) = detect_at {
            self.push(at, PendingKind::L2MissDetected { core, req });
        }
        self.inflight += 1;
        self.push(completion.completed_at, PendingKind::Complete(completion));
        AccessResult::Miss { req, tlb_miss }
    }

    /// Advance the model one cycle: deliver everything that matured.
    pub fn tick(&mut self, now: u64) {
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.at > now {
                break;
            }
            let Some(Reverse(p)) = self.pending.pop() else {
                break; // unreachable: peek above returned Some
            };
            match p.what {
                PendingKind::L2MissDetected { core, req } => {
                    self.cores[core as usize]
                        .events
                        .push(MemEvent::L2MissDetected { req, at: p.at });
                }
                PendingKind::Complete(c) => {
                    self.inflight -= 1;
                    if c.l2_hit && c.kind == AccessKind::Load {
                        self.l2_hit_hist.record(c.latency());
                    }
                    if !c.l2_hit {
                        self.dram_round_trips += 1;
                        if let Some(ring) = &mut self.trace {
                            ring.emit(
                                p.at,
                                TraceEvent::DramRoundTrip {
                                    core: c.core,
                                    latency: c.latency(),
                                },
                            );
                        }
                    }
                    self.total_completions += 1;
                    self.cores[c.core as usize].outbox.push(c);
                }
            }
        }
    }

    /// Take all completions for `core`.
    pub fn drain_completions(&mut self, core: u32) -> Vec<Completion> {
        std::mem::take(&mut self.cores[core as usize].outbox)
    }

    /// Take all intermediate events for `core`.
    pub fn drain_events(&mut self, core: u32) -> Vec<MemEvent> {
        std::mem::take(&mut self.cores[core as usize].events)
    }

    /// Snapshot per-core statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            cores: self.cores.iter().map(|c| c.stats).collect(),
        }
    }

    /// Distribution of L2-hit service times for loads. With no
    /// contention every sample lands in the nominal-latency bin.
    pub fn l2_hit_histogram(&self) -> &LatencyHistogram {
        &self.l2_hit_hist
    }

    /// No banks are modelled: always empty.
    pub fn bank_stats(&self) -> Vec<(u64, u64, usize)> {
        Vec::new()
    }

    /// No banks are modelled: always empty.
    pub fn bank_cache_stats(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// L2-miss completions delivered so far (the fast model's stand-in
    /// for DRAM round trips).
    pub fn dram_round_trips(&self) -> u64 {
        self.dram_round_trips
    }

    /// Start recording trace events (only `DramRoundTrip` is emitted —
    /// the contention events have nothing to describe here).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventRing::new(capacity));
    }

    /// The event ring (`None` unless [`Self::enable_trace`] was called).
    pub fn trace(&self) -> Option<&EventRing> {
        self.trace.as_ref()
    }

    /// No bus is modelled: always 0.
    pub fn bus_mean_queue(&self) -> f64 {
        0.0
    }

    /// Skip-ahead horizon: the fast model deliberately pins it to
    /// `from` (never skippable). Reduced fidelity is already ~5×
    /// faster and is not byte-pinned to the goldens, so it opts out of
    /// the skip invariant instead of proving it (DESIGN.md §16).
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        from
    }

    /// Companion of [`Self::next_event_cycle`]; unreachable while the
    /// horizon pins to `from`, kept for facade symmetry.
    pub fn account_skip(&mut self, _cycles: u64) {}

    /// Completions scheduled but not yet delivered.
    pub fn inflight_count(&self) -> usize {
        self.inflight
    }

    /// Total completions delivered.
    pub fn total_completions(&self) -> u64 {
        self.total_completions
    }

    /// Warm one line into the L1 of `core` and its cluster's L2 without
    /// spending simulated time or touching statistics.
    pub fn prewarm_line(&mut self, core: u32, kind: AccessKind, addr: u64) {
        let line = line_base(addr);
        let port = &mut self.cores[core as usize];
        match kind {
            AccessKind::IFetch => {
                port.l1i.fill(line, false);
            }
            AccessKind::Load | AccessKind::Store => {
                port.l1d.fill(line, kind == AccessKind::Store);
            }
        }
        let cluster = self.cfg.cluster_of(core) as usize;
        let _ = self.l2[cluster].fill(line, false);
    }

    /// Warm a line into `core`'s L2 cluster only.
    pub fn prewarm_l2_line(&mut self, core: u32, addr: u64) {
        let cluster = self.cfg.cluster_of(core) as usize;
        let _ = self.l2[cluster].fill(line_base(addr), false);
    }

    /// Warm the page of `addr` into `core`'s I- or D-TLB.
    pub fn prewarm_tlb(&mut self, core: u32, kind: AccessKind, addr: u64) {
        let port = &mut self.cores[core as usize];
        match kind {
            AccessKind::IFetch => {
                port.itlb.access(addr);
            }
            AccessKind::Load | AccessKind::Store => {
                port.dtlb.access(addr);
            }
        }
        // Warming must not perturb statistics.
        port.stats.itlb_misses = 0;
        port.stats.dtlb_misses = 0;
    }

    /// Diagnostic: scheduled completions as `(req, core, kind, addr,
    /// issued_at)`, ordered by request id.
    pub fn debug_inflight(&self) -> Vec<(ReqId, u32, AccessKind, u64, u64)> {
        let mut rows: Vec<_> = self
            .pending
            .iter()
            .filter_map(|Reverse(p)| match &p.what {
                PendingKind::Complete(c) => Some((c.req, c.core, c.kind, c.addr, c.issued_at)),
                PendingKind::L2MissDetected { .. } => None,
            })
            .collect();
        rows.sort_by_key(|r| r.0);
        rows
    }

    /// Diagnostic: no MSHR file exists, so occupancy is always
    /// `(0, false)` — the model can never stall on MSHRs.
    pub fn debug_mshr(&self, _core: u32) -> (usize, bool) {
        (0, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(cores: u32) -> FastMemory {
        FastMemory::new(MemConfig::paper(cores))
    }

    fn complete_one(m: &mut FastMemory, core: u32, req: ReqId, from: u64, until: u64) -> Completion {
        for now in from..until {
            m.tick(now);
            if let Some(c) = m.drain_completions(core).into_iter().find(|c| c.req == req) {
                return c;
            }
        }
        panic!("req {req} never completed");
    }

    #[test]
    fn cold_load_misses_l2_at_nominal_latency() {
        let mut m = fast(1);
        let req = match m.access(0, AccessKind::Load, 0x4000, 10) {
            AccessResult::Miss { req, tlb_miss } => {
                assert!(tlb_miss, "cold TLB");
                req
            }
            other => panic!("{other:?}"),
        };
        let c = complete_one(&mut m, 0, req, 10, 2_000);
        assert!(!c.l2_hit);
        // 272 nominal + 300 TLB walk.
        assert_eq!(c.latency(), m.config().l2_miss_nominal() + 300);
        assert_eq!(
            c.l2_miss_detected_at,
            Some(10 + m.config().l1_miss_nominal() + 300)
        );
        assert_eq!(m.dram_round_trips(), 1);
    }

    #[test]
    fn second_access_to_line_is_an_l1_hit() {
        let mut m = fast(1);
        let _ = m.access(0, AccessKind::Load, 0x4000, 0);
        // Tag filled at access time: the re-access hits immediately,
        // even though the first completion is still in flight.
        match m.access(0, AccessKind::Load, 0x4008, 1) {
            AccessResult::L1Hit { ready_at, .. } => {
                assert_eq!(ready_at, 1 + m.config().l1_hit_cycles)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn l2_hit_after_l1_eviction_uses_nominal_miss_latency() {
        let mut m = fast(1);
        // Prewarm the L2 (not the L1) so the access is an L1-miss/L2-hit.
        m.prewarm_l2_line(0, 0x8000);
        m.prewarm_tlb(0, AccessKind::Load, 0x8000);
        let req = match m.access(0, AccessKind::Load, 0x8000, 5) {
            AccessResult::Miss { req, tlb_miss } => {
                assert!(!tlb_miss);
                req
            }
            other => panic!("{other:?}"),
        };
        let c = complete_one(&mut m, 0, req, 5, 100);
        assert!(c.l2_hit);
        assert_eq!(c.latency(), m.config().l1_miss_nominal());
        assert_eq!(m.l2_hit_histogram().count(), 1);
    }

    #[test]
    fn l2_miss_detection_event_precedes_completion() {
        let mut m = fast(1);
        m.prewarm_tlb(0, AccessKind::Load, 0x9000);
        let req = match m.access(0, AccessKind::Load, 0x9000, 0) {
            AccessResult::Miss { req, .. } => req,
            other => panic!("{other:?}"),
        };
        let detect_at = m.config().l1_miss_nominal();
        for now in 0..=detect_at {
            m.tick(now);
        }
        assert_eq!(
            m.drain_events(0),
            vec![MemEvent::L2MissDetected { req, at: detect_at }]
        );
        assert!(m.drain_completions(0).is_empty(), "completion comes later");
    }

    #[test]
    fn never_reports_mshr_full() {
        let mut m = fast(1);
        for i in 0..256u64 {
            match m.access(0, AccessKind::Load, 0x10_0000 + i * 4096, 0) {
                AccessResult::Miss { .. } | AccessResult::L1Hit { .. } => {}
                AccessResult::MshrFull => panic!("fast model has no MSHR limit"),
            }
        }
        assert_eq!(m.debug_mshr(0), (0, false));
    }

    #[test]
    fn same_seed_access_pattern_is_deterministic() {
        let run = || {
            let mut m = fast(2);
            let mut log = Vec::new();
            for i in 0..2_000u64 {
                let core = (i % 2) as u32;
                let addr = (i * 2654435761) % (8 << 20);
                let _ = m.access(core, AccessKind::Load, addr, i);
                m.tick(i);
                for c in m.drain_completions(core) {
                    log.push((c.req, c.addr, c.completed_at, c.l2_hit));
                }
            }
            (log, m.stats().total(|c| c.l2_misses), m.dram_round_trips())
        };
        assert_eq!(run(), run());
    }
}
