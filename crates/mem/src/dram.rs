//! Main memory model.
//!
//! Fig. 1 specifies a flat 250-cycle main-memory latency. We model a
//! fixed-latency queue with an optional bound on concurrently open
//! requests (unbounded by default, matching the paper's setup where DRAM
//! bandwidth is never the bottleneck under study).

use std::collections::VecDeque;

/// Fixed-latency main memory.
#[derive(Debug)]
pub struct Dram<T> {
    latency: u64,
    /// Max requests in service at once; `0` = unlimited.
    max_inflight: usize,
    /// (ready_at, payload) in service, ordered by ready_at.
    in_service: VecDeque<(u64, T)>,
    /// Requests waiting for a service slot (only if bounded).
    waiting: VecDeque<T>,
    accepted: u64,
    completed: u64,
}

impl<T> Dram<T> {
    /// Memory with `latency` cycles per access and `max_inflight`
    /// concurrent requests (0 = unlimited).
    pub fn new(latency: u64, max_inflight: usize) -> Self {
        Dram {
            latency,
            max_inflight,
            in_service: VecDeque::new(),
            waiting: VecDeque::new(),
            accepted: 0,
            completed: 0,
        }
    }

    /// Submit a request at cycle `now`.
    pub fn request(&mut self, now: u64, payload: T) {
        self.accepted += 1;
        if self.max_inflight == 0 || self.in_service.len() < self.max_inflight {
            self.in_service.push_back((now + self.latency, payload));
        } else {
            self.waiting.push_back(payload);
        }
    }

    /// Advance to cycle `now`, appending payloads whose access
    /// completed to `out` (into-style: the caller's buffer is reused
    /// every cycle — rule D10: DRAM ticks inside the cycle loop and
    /// must not allocate).
    pub fn tick_into(&mut self, now: u64, out: &mut Vec<T>) {
        while self.in_service.front().is_some_and(|&(t, _)| t <= now) {
            if let Some((_, payload)) = self.in_service.pop_front() {
                out.push(payload);
                self.completed += 1;
                // Promote a waiter into the freed slot.
                if let Some(w) = self.waiting.pop_front() {
                    self.in_service.push_back((now + self.latency, w));
                }
            } else {
                break;
            }
        }
    }

    /// Requests currently in service or waiting.
    pub fn pending(&self) -> usize {
        self.in_service.len() + self.waiting.len()
    }

    /// Earliest cycle ≥ `from` at which a tick completes a request:
    /// the head of `in_service` (ordered by ready-at), `from` when a
    /// waiter exists without anything in service (defensive — promotion
    /// happens at completion time, so the state is unreachable through
    /// ticks), `u64::MAX` when empty (skip-ahead horizon).
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        match self.in_service.front() {
            Some(&(at, _)) => at.max(from),
            None if !self.waiting.is_empty() => from,
            None => u64::MAX,
        }
    }

    /// (accepted, completed).
    pub fn stats(&self) -> (u64, u64) {
        (self.accepted, self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collecting wrapper over [`Dram::tick_into`] for assertions.
    fn tick(d: &mut Dram<u32>, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        d.tick_into(now, &mut out);
        out
    }

    #[test]
    fn completes_after_latency() {
        let mut d: Dram<u32> = Dram::new(250, 0);
        d.request(0, 1);
        assert!(tick(&mut d, 249).is_empty());
        assert_eq!(tick(&mut d, 250), vec![1]);
    }

    #[test]
    fn unlimited_inflight_overlaps() {
        let mut d: Dram<u32> = Dram::new(10, 0);
        d.request(0, 1);
        d.request(0, 2);
        d.request(5, 3);
        assert_eq!(tick(&mut d, 10), vec![1, 2]);
        assert_eq!(tick(&mut d, 15), vec![3]);
    }

    #[test]
    fn bounded_inflight_queues() {
        let mut d: Dram<u32> = Dram::new(10, 1);
        d.request(0, 1);
        d.request(0, 2);
        assert_eq!(d.pending(), 2);
        assert_eq!(tick(&mut d, 10), vec![1]);
        // Request 2 started at cycle 10, finishes at 20.
        assert!(tick(&mut d, 19).is_empty());
        assert_eq!(tick(&mut d, 20), vec![2]);
    }

    #[test]
    fn stats_track_accepted_and_completed() {
        let mut d: Dram<u32> = Dram::new(5, 0);
        d.request(0, 1);
        d.request(1, 2);
        tick(&mut d, 100);
        assert_eq!(d.stats(), (2, 2));
        assert_eq!(d.pending(), 0);
    }
}
