//! Latency histogram used by the Fig. 4 analysis.
//!
//! The paper studies the distribution of cycles required by each load
//! that hits the shared L2, "since it is issued from the load/store
//! queue until it is finally served". We collect that distribution in
//! fixed-width bins with an overflow bucket.


/// Fixed-width latency histogram with overflow.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Histogram with `num_bins` bins of `bin_width` cycles each.
    pub fn new(bin_width: u64, num_bins: usize) -> Self {
        assert!(bin_width > 0 && num_bins > 0);
        LatencyHistogram {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Default shape for L2-hit-time analysis: 5-cycle bins up to 200.
    pub fn for_l2_hit_time() -> Self {
        Self::new(5, 40)
    }

    /// Reconstruct a histogram from serialized parts (the sweep
    /// journal's decoder). `min`/`max` are `None` for an empty
    /// histogram, mirroring [`LatencyHistogram::min`]/[`max`](Self::max).
    pub fn from_parts(
        bin_width: u64,
        bins: Vec<u64>,
        overflow: u64,
        count: u64,
        sum: u64,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Self {
        assert!(bin_width > 0 && !bins.is_empty());
        LatencyHistogram {
            bin_width,
            bins,
            overflow,
            count,
            sum,
            min: min.unwrap_or(u64::MAX),
            max: max.unwrap_or(0),
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let idx = (latency / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Width of one bin in cycles.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Raw per-bin counts (without the overflow bucket).
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Sum of all recorded samples (for exact mean recomputation).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean latency (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum sample (None if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample (None if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fraction of samples in `[lo, hi)` cycles (bin-resolution: `lo`
    /// and `hi` are rounded down to bin boundaries).
    pub fn fraction_between(&self, lo: u64, hi: u64) -> f64 {
        if self.count == 0 || hi <= lo {
            return 0.0;
        }
        let lo_bin = (lo / self.bin_width) as usize;
        let hi_bin = ((hi / self.bin_width) as usize).min(self.bins.len());
        let in_range: u64 = self.bins[lo_bin.min(self.bins.len())..hi_bin].iter().sum();
        let over = if hi_bin >= self.bins.len() && hi == u64::MAX {
            self.overflow
        } else {
            0
        };
        (in_range + over) as f64 / self.count as f64
    }

    /// Approximate percentile (by bin midpoint); `p` in `[0,1]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &b) in self.bins.iter().enumerate() {
            acc += b;
            if acc >= target {
                return Some(i as u64 * self.bin_width + self.bin_width / 2);
            }
        }
        Some(self.bins.len() as u64 * self.bin_width)
    }

    /// Standard deviation of the binned samples (bin midpoints; the
    /// overflow bucket is approximated at the histogram ceiling).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let mut var_sum = 0.0;
        for (i, &b) in self.bins.iter().enumerate() {
            if b > 0 {
                let mid = i as f64 * self.bin_width as f64 + self.bin_width as f64 / 2.0;
                var_sum += b as f64 * (mid - mean) * (mid - mean);
            }
        }
        if self.overflow > 0 {
            let ceil = self.bins.len() as f64 * self.bin_width as f64;
            var_sum += self.overflow as f64 * (ceil - mean) * (ceil - mean);
        }
        (var_sum / (self.count - 1) as f64).sqrt()
    }

    /// `(bin_start, count)` for every non-empty bin, plus the overflow
    /// bucket reported at `num_bins * bin_width`.
    pub fn non_empty_bins(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64 * self.bin_width, c))
            .collect();
        if self.overflow > 0 {
            v.push((self.bins.len() as u64 * self.bin_width, self.overflow));
        }
        v
    }

    /// Merge another histogram of identical shape into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.bin_width, other.bin_width);
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = LatencyHistogram::new(5, 10);
        for l in [10, 20, 30] {
            h.record(l);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-9);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn overflow_bucket() {
        let mut h = LatencyHistogram::new(5, 4); // covers [0,20)
        h.record(100);
        h.record(3);
        assert_eq!(h.count(), 2);
        let bins = h.non_empty_bins();
        assert!(bins.contains(&(0, 1)));
        assert!(bins.contains(&(20, 1)), "overflow at ceiling: {bins:?}");
    }

    #[test]
    fn fraction_between_works() {
        let mut h = LatencyHistogram::new(5, 40);
        for l in [22, 25, 40, 65, 150] {
            h.record(l);
        }
        // [20,70): 22,25,40,65 → 4/5
        let f = h.fraction_between(20, 70);
        assert!((f - 0.8).abs() < 1e-9, "{f}");
    }

    #[test]
    fn percentile_monotone() {
        let mut h = LatencyHistogram::new(5, 40);
        for l in 0..100 {
            h.record(l);
        }
        let p10 = h.percentile(0.1).unwrap();
        let p50 = h.percentile(0.5).unwrap();
        let p90 = h.percentile(0.9).unwrap();
        assert!(p10 <= p50 && p50 <= p90);
        assert!((45..=55).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn std_dev_grows_with_dispersion() {
        let mut tight = LatencyHistogram::new(5, 40);
        let mut wide = LatencyHistogram::new(5, 40);
        for _ in 0..100 {
            tight.record(50);
        }
        for i in 0..100 {
            wide.record(if i % 2 == 0 { 10 } else { 150 });
        }
        assert!(wide.std_dev() > tight.std_dev() + 10.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new(5, 10);
        let mut b = LatencyHistogram::new(5, 10);
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-9);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHistogram::new(5, 10);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.std_dev(), 0.0);
    }
}
