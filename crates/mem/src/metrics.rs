//! The mem crate's metric registrations — the single place a
//! mem-owned stat gets its name, unit and doc string (DESIGN.md §12).
//!
//! Lint rule D8 cross-checks every `MetricSpec` here against
//! METRICS.md; the interval sampler in `smtsim-core::obs` computes the
//! values from [`crate::MemorySystem`] accessors.

use smtsim_obs::{MetricKind, MetricSpec};

/// Per-bank L2 miss rate over the last sampling interval.
pub const METRIC_L2_BANK_MISS_RATE: MetricSpec = MetricSpec {
    name: "mem.l2.bank_miss_rate",
    unit: "fraction",
    kind: MetricKind::Gauge,
    krate: "mem",
    doc: "Per-L2-bank miss rate (misses / accesses) over the last sampling interval (0 when the bank saw no accesses).",
    figure: "Fig. 4",
};

/// Per-core MSHR occupancy at the sample instant.
pub const METRIC_MSHR_OCCUPANCY: MetricSpec = MetricSpec {
    name: "mem.mshr.occupancy",
    unit: "entries",
    kind: MetricKind::Gauge,
    krate: "mem",
    doc: "Per-core MSHR entries in use at the sample instant.",
    figure: "",
};

/// Cumulative DRAM demand round-trips.
pub const METRIC_DRAM_ROUND_TRIPS: MetricSpec = MetricSpec {
    name: "mem.dram.round_trips",
    unit: "events",
    kind: MetricKind::Counter,
    krate: "mem",
    doc: "Cumulative demand responses returned by DRAM, machine-wide.",
    figure: "",
};

/// All mem-crate metrics, in registration order.
pub const METRICS: &[MetricSpec] = &[
    METRIC_L2_BANK_MISS_RATE,
    METRIC_MSHR_OCCUPANCY,
    METRIC_DRAM_ROUND_TRIPS,
];
