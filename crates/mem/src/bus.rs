//! Shared L1↔L2 interconnection bus.
//!
//! The paper's cores connect their private L1s to all shared L2 banks
//! through an on-chip bus (§3, Fig. 7). We model a pipelined bus with a
//! fixed transit latency and a bounded number of new grants per cycle,
//! arbitrated round-robin across cores. Every additional SMT core adds
//! up to two more loads issued per cycle, so under load the grant limit
//! creates exactly the queueing growth the paper describes.

use std::collections::VecDeque;

/// A request travelling on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusMsg<T> {
    /// Issuing core (arbitration key).
    pub core: u32,
    /// Payload forwarded to the destination.
    pub payload: T,
}

/// Pipelined shared bus with round-robin arbitration.
#[derive(Debug)]
pub struct SharedBus<T> {
    /// Per-core input queues awaiting a grant.
    inputs: Vec<VecDeque<BusMsg<T>>>,
    /// Granted messages in transit: (deliver_at, msg).
    in_flight: VecDeque<(u64, BusMsg<T>)>,
    /// Cycles between grant and delivery.
    latency: u64,
    /// Grants issued per cycle.
    grants_per_cycle: u32,
    /// Round-robin pointer.
    rr: usize,
    /// Total messages granted.
    granted: u64,
    /// Sum of queueing delays (cycles spent waiting for a grant would
    /// require per-message timestamps; we track queue length integral
    /// instead, sampled at each tick).
    queue_len_integral: u64,
    ticks: u64,
}

impl<T> SharedBus<T> {
    /// Bus for `cores` requesters with `latency`-cycle transit and
    /// `grants_per_cycle` arbitration bandwidth.
    pub fn new(cores: u32, latency: u64, grants_per_cycle: u32) -> Self {
        assert!(cores > 0 && grants_per_cycle > 0);
        SharedBus {
            inputs: (0..cores).map(|_| VecDeque::new()).collect(),
            in_flight: VecDeque::new(),
            latency,
            grants_per_cycle,
            rr: 0,
            granted: 0,
            queue_len_integral: 0,
            ticks: 0,
        }
    }

    /// Enqueue a message from `core`.
    pub fn send(&mut self, core: u32, payload: T) {
        self.inputs[core as usize].push_back(BusMsg { core, payload });
    }

    /// Advance one cycle: arbitrate grants, then deliver everything whose
    /// transit has finished, appending delivered payloads to `out`
    /// (into-style: the caller's buffer is reused every cycle — rule
    /// D10: the bus ticks inside the cycle loop and must not allocate).
    pub fn tick_into(&mut self, now: u64, out: &mut Vec<BusMsg<T>>) {
        self.ticks += 1;
        let queued: u64 = self.inputs.iter().map(|q| q.len() as u64).sum();
        self.queue_len_integral += queued;

        // Quiet-bus fast path: with nothing queued the round-robin scan
        // is a no-op (no grant, no rr movement) — skip it.
        if queued > 0 {
            // Round-robin grants.
            let n = self.inputs.len();
            let mut grants = 0;
            let mut scanned = 0;
            while grants < self.grants_per_cycle && scanned < n {
                let idx = (self.rr + scanned) % n;
                if let Some(msg) = self.inputs[idx].pop_front() {
                    self.in_flight.push_back((now + self.latency, msg));
                    self.granted += 1;
                    grants += 1;
                    // Advance RR past the served core for fairness.
                    self.rr = (idx + 1) % n;
                    scanned = 0;
                    continue;
                }
                scanned += 1;
            }
        }

        // Deliveries (in_flight is ordered by deliver_at because latency
        // is constant and grants are appended in time order).
        while self.in_flight.front().is_some_and(|&(t, _)| t <= now) {
            if let Some((_, payload)) = self.in_flight.pop_front() {
                out.push(payload);
            }
        }
    }

    /// Messages waiting for a grant.
    pub fn queued(&self) -> usize {
        self.inputs.iter().map(|q| q.len()).sum()
    }

    /// Earliest cycle ≥ `from` at which a tick could do observable
    /// work: `from` itself while any input awaits a grant, else the
    /// first in-flight delivery; `u64::MAX` when fully idle (the
    /// skip-ahead horizon, DESIGN.md §16).
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        if self.inputs.iter().any(|q| !q.is_empty()) {
            return from;
        }
        match self.in_flight.front() {
            Some(&(at, _)) => at.max(from),
            None => u64::MAX,
        }
    }

    /// Account `cycles` ticks elided by skip-ahead. Only the
    /// [`Self::mean_queue_len`] denominator needs repair: a window is
    /// only skippable when every input queue is empty, so the queue
    /// length integral gains exactly zero.
    pub fn account_skip(&mut self, cycles: u64) {
        debug_assert!(
            self.inputs.iter().all(|q| q.is_empty()),
            "skip-ahead over a bus with queued inputs"
        );
        self.ticks += cycles;
    }

    /// Messages granted so far.
    pub fn total_granted(&self) -> u64 {
        self.granted
    }

    /// Mean input-queue length over all ticks (contention indicator).
    pub fn mean_queue_len(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.queue_len_integral as f64 / self.ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collecting wrapper over [`SharedBus::tick_into`] for assertions.
    fn tick(bus: &mut SharedBus<u32>, now: u64) -> Vec<BusMsg<u32>> {
        let mut out = Vec::new();
        bus.tick_into(now, &mut out);
        out
    }

    #[test]
    fn delivers_after_latency() {
        let mut bus: SharedBus<u32> = SharedBus::new(1, 4, 1);
        bus.send(0, 7);
        // Granted at cycle 0, delivered at cycle 4.
        for now in 0..4 {
            assert!(tick(&mut bus, now).is_empty(), "early delivery at {now}");
        }
        let d = tick(&mut bus, 4);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].payload, 7);
    }

    #[test]
    fn grant_limit_serialises() {
        let mut bus: SharedBus<u32> = SharedBus::new(1, 0, 1);
        for i in 0..3 {
            bus.send(0, i);
        }
        // One grant per cycle, zero latency: one delivery per tick.
        assert_eq!(tick(&mut bus, 0).len(), 1);
        assert_eq!(tick(&mut bus, 1).len(), 1);
        assert_eq!(tick(&mut bus, 2).len(), 1);
        assert_eq!(tick(&mut bus, 3).len(), 0);
    }

    #[test]
    fn round_robin_is_fair() {
        let mut bus: SharedBus<u32> = SharedBus::new(4, 0, 1);
        for core in 0..4 {
            bus.send(core, core);
            bus.send(core, core + 10);
        }
        let mut order = Vec::new();
        for now in 0..8 {
            for m in tick(&mut bus, now) {
                order.push(m.core);
            }
        }
        // Every core served once before any core is served twice.
        let first_four: Vec<u32> = order[..4].to_vec();
        let mut sorted = first_four.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "unfair start: {order:?}");
    }

    #[test]
    fn multiple_grants_per_cycle() {
        let mut bus: SharedBus<u32> = SharedBus::new(4, 0, 4);
        for core in 0..4 {
            bus.send(core, core);
        }
        assert_eq!(tick(&mut bus, 0).len(), 4);
    }

    #[test]
    fn queue_metrics_track_backlog() {
        let mut bus: SharedBus<u32> = SharedBus::new(1, 0, 1);
        for i in 0..10 {
            bus.send(0, i);
        }
        for now in 0..10 {
            tick(&mut bus, now);
        }
        assert_eq!(bus.total_granted(), 10);
        assert!(bus.mean_queue_len() > 0.0);
        assert_eq!(bus.queued(), 0);
    }
}
