//! Miss Status Holding Registers.
//!
//! Paper §3.2: "Within each core it is also implemented a 16-entry MSHR
//! queue that keeps track of the outstanding memory requests." Secondary
//! misses to a line already being fetched merge into the existing entry
//! instead of generating new bus traffic; a full MSHR file stalls further
//! misses.

/// Result of trying to allocate an MSHR entry for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// New entry allocated — the caller must send the request downstream.
    Primary,
    /// Merged into an existing entry for the same line — no new traffic.
    Merged,
    /// No entry free and no matching line: the miss cannot proceed.
    Full,
}

/// One in-flight line fetch.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// Line base address being fetched.
    pub line: u64,
    /// Request ids waiting on this line (primary first).
    pub waiters: Vec<u64>,
}

/// A fixed-capacity MSHR file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    /// Retired waiter vectors kept for reuse (their capacity survives),
    /// so steady-state [`Self::allocate`] never allocates (rule D10).
    /// Callers of [`Self::complete`] hand the vector back through
    /// [`Self::recycle`].
    spare_waiters: Vec<Vec<u64>>,
    merges: u64,
    full_rejects: u64,
    peak_occupancy: usize,
}

impl MshrFile {
    /// File with `capacity` entries (16 in the paper's cores).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            spare_waiters: Vec::with_capacity(capacity),
            merges: 0,
            full_rejects: 0,
            peak_occupancy: 0,
        }
    }

    /// Try to track a miss of `req` on `line`.
    pub fn allocate(&mut self, line: u64, req: u64) -> MshrAlloc {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.waiters.push(req);
            self.merges += 1;
            return MshrAlloc::Merged;
        }
        if self.entries.len() == self.capacity {
            self.full_rejects += 1;
            return MshrAlloc::Full;
        }
        let mut waiters = self.spare_waiters.pop().unwrap_or_default();
        waiters.clear();
        waiters.push(req);
        self.entries.push(MshrEntry { line, waiters });
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrAlloc::Primary
    }

    /// Return a completed entry's waiter vector to the spare pool so
    /// its capacity is reused by the next primary miss. Dropping the
    /// vector instead is harmless but reintroduces steady-state
    /// allocation.
    pub fn recycle(&mut self, mut waiters: Vec<u64>) {
        if self.spare_waiters.len() < self.capacity {
            waiters.clear();
            self.spare_waiters.push(waiters);
        }
    }

    /// The line fetch completed: remove its entry and return all waiting
    /// request ids.
    pub fn complete(&mut self, line: u64) -> Option<MshrEntry> {
        let idx = self.entries.iter().position(|e| e.line == line)?;
        Some(self.entries.swap_remove(idx))
    }

    /// True when `line` is already being fetched.
    pub fn contains(&self, line: u64) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Requests currently waiting on `line`, if it is being fetched.
    pub fn waiters(&self, line: u64) -> Option<&[u64]> {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.waiters.as_slice())
    }

    /// Live entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// True when no further primary miss can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// (merges, full-rejects, peak occupancy).
    pub fn stats(&self) -> (u64, u64, usize) {
        (self.merges, self.full_rejects, self.peak_occupancy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(0x40, 1), MshrAlloc::Primary);
        assert_eq!(m.allocate(0x40, 2), MshrAlloc::Merged);
        assert_eq!(m.occupancy(), 1);
        let e = m.complete(0x40).unwrap();
        assert_eq!(e.waiters, vec![1, 2]);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn full_rejects_new_lines_but_merges_existing() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(0x00, 1), MshrAlloc::Primary);
        assert_eq!(m.allocate(0x40, 2), MshrAlloc::Primary);
        assert!(m.is_full());
        assert_eq!(m.allocate(0x80, 3), MshrAlloc::Full);
        assert_eq!(m.allocate(0x40, 4), MshrAlloc::Merged);
        let (merges, rejects, peak) = m.stats();
        assert_eq!((merges, rejects, peak), (1, 1, 2));
    }

    #[test]
    fn complete_unknown_line_is_none() {
        let mut m = MshrFile::new(2);
        assert!(m.complete(0x1000).is_none());
    }

    #[test]
    fn contains_tracks_lines() {
        let mut m = MshrFile::new(2);
        m.allocate(0x40, 1);
        assert!(m.contains(0x40));
        assert!(!m.contains(0x80));
        m.complete(0x40);
        assert!(!m.contains(0x40));
    }

    #[test]
    fn freed_entry_reusable() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.allocate(0x00, 1), MshrAlloc::Primary);
        assert_eq!(m.allocate(0x40, 2), MshrAlloc::Full);
        m.complete(0x00);
        assert_eq!(m.allocate(0x40, 2), MshrAlloc::Primary);
    }
}
