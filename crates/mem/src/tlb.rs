//! Fully-associative translation lookaside buffer.
//!
//! Fig. 1: 512-entry fully-associative I-TLB and D-TLB with a 300-cycle
//! miss penalty. The simulator has no page tables; a TLB miss simply
//! charges the hardware-walk latency to the access and installs the
//! translation.

use crate::addr::page_base;

/// Slot marker for "no translation here". Pages are page-aligned, so
/// an all-ones key can never collide with a real page base.
const EMPTY: u64 = u64::MAX;

/// Fully-associative, true-LRU TLB.
///
/// Backed by a linear-probe hash table sized at twice the capacity:
/// every access translates, so the hit path must stay one or two cache
/// lines. Misses pay an O(capacity) LRU scan, but misses are rare by
/// definition. Replacement is exact LRU over unique use-stamps, so the
/// observable behaviour (hit/miss sequence, victim choice, stats) is
/// independent of the table layout.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// `(page, last-use stamp)`; `page == EMPTY` marks a free slot.
    slots: Vec<(u64, u64)>,
    /// `slots.len() - 1`; the table size is a power of two.
    mask: usize,
    len: usize,
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        let table = (capacity * 2).next_power_of_two();
        Tlb {
            slots: vec![(EMPTY, 0); table],
            mask: table - 1,
            len: 0,
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot_of(&self, page: u64) -> usize {
        // Fibonacci hashing on the page number; pages are 8 KiB-aligned.
        (((page >> 13).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & self.mask
    }

    /// Translate the page of `addr`. Returns `true` on a hit; on a miss
    /// the translation is installed (evicting the LRU entry if full).
    pub fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let page = page_base(addr);
        let mut i = self.slot_of(page);
        loop {
            let (key, _) = self.slots[i];
            if key == page {
                self.slots[i].1 = self.stamp;
                self.hits += 1;
                return true;
            }
            if key == EMPTY {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.misses += 1;
        if self.len == self.capacity {
            self.evict_lru();
        }
        self.insert(page, self.stamp);
        false
    }

    /// Install `page` (assumes it is absent and the table has room).
    fn insert(&mut self, page: u64, stamp: u64) {
        let mut i = self.slot_of(page);
        while self.slots[i].0 != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = (page, stamp);
        self.len += 1;
    }

    /// Remove the least-recently-used translation. Stamps are unique,
    /// so the minimum identifies exactly one victim — the same one a
    /// linear-scan implementation would pick.
    fn evict_lru(&mut self) {
        let mut victim = usize::MAX;
        let mut best = u64::MAX;
        for (i, &(key, stamp)) in self.slots.iter().enumerate() {
            if key != EMPTY && stamp < best {
                best = stamp;
                victim = i;
            }
        }
        // `victim` is always found: eviction only runs on a full table.
        self.remove_at(victim);
    }

    /// Delete the entry at `i` with backward-shift deletion, keeping
    /// every remaining entry reachable from its home slot.
    fn remove_at(&mut self, i: usize) {
        self.slots[i] = (EMPTY, 0);
        self.len -= 1;
        let mut gap = i;
        let mut j = (i + 1) & self.mask;
        while self.slots[j].0 != EMPTY {
            let home = self.slot_of(self.slots[j].0);
            // Shift `j` into the gap unless it sits between the gap and
            // its home slot (cyclic comparison).
            let between = if gap <= j {
                gap < home && home <= j
            } else {
                home > gap || home <= j
            };
            if !between {
                self.slots[gap] = self.slots[j];
                self.slots[j] = (EMPTY, 0);
                gap = j;
            }
            j = (j + 1) & self.mask;
        }
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of resident translations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no translations are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_BYTES;

    #[test]
    fn first_access_misses_then_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1234));
        assert!(t.access(0x1234));
        assert!(t.access(0x1fff)); // same page
        assert!(!t.access(PAGE_BYTES)); // next page
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(0); // page 0
        t.access(PAGE_BYTES); // page 1
        t.access(0); // page 0 freshened
        t.access(2 * PAGE_BYTES); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(PAGE_BYTES));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = Tlb::new(8);
        for i in 0..100u64 {
            t.access(i * PAGE_BYTES);
            assert!(t.len() <= 8);
        }
    }

    #[test]
    fn stats_count_correctly() {
        let mut t = Tlb::new(512);
        for i in 0..10u64 {
            t.access(i * PAGE_BYTES);
        }
        for i in 0..10u64 {
            t.access(i * PAGE_BYTES);
        }
        assert_eq!(t.stats(), (10, 10));
    }

    #[test]
    fn eviction_heavy_workload_matches_reference_lru() {
        // Cross-check the hash-table implementation against a naive
        // Vec-based true-LRU model under heavy eviction pressure.
        struct Naive {
            entries: Vec<(u64, u64)>,
            cap: usize,
            stamp: u64,
        }
        impl Naive {
            fn access(&mut self, addr: u64) -> bool {
                self.stamp += 1;
                let page = page_base(addr);
                if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
                    e.1 = self.stamp;
                    return true;
                }
                if self.entries.len() == self.cap {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.1)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    self.entries.swap_remove(lru);
                }
                self.entries.push((page, self.stamp));
                false
            }
        }
        let mut fast = Tlb::new(16);
        let mut naive = Naive {
            entries: Vec::new(),
            cap: 16,
            stamp: 0,
        };
        // Deterministic pseudo-random page sequence over 64 pages.
        let mut x = 0x1234_5678_u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x % 64) * PAGE_BYTES + (x % PAGE_BYTES);
            assert_eq!(fast.access(addr), naive.access(addr));
            assert_eq!(fast.len(), naive.entries.len());
        }
        let (h, m) = fast.stats();
        assert!(h > 0 && m > 0, "exercise both paths: {h} hits {m} misses");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
