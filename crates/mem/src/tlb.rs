//! Fully-associative translation lookaside buffer.
//!
//! Fig. 1: 512-entry fully-associative I-TLB and D-TLB with a 300-cycle
//! miss penalty. The simulator has no page tables; a TLB miss simply
//! charges the hardware-walk latency to the access and installs the
//! translation.

use crate::addr::page_base;

/// Fully-associative, true-LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// (page base, last-use stamp); linear scan — 512 entries is small
    /// and misses are rare enough that simplicity wins.
    entries: Vec<(u64, u64)>,
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translate the page of `addr`. Returns `true` on a hit; on a miss
    /// the translation is installed (evicting the LRU entry if full).
    pub fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let page = page_base(addr);
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            // `unwrap_or(0)` never fires: capacity > 0, and the branch
            // is only taken when the TLB is full.
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.stamp));
        false
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of resident translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no translations are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_BYTES;

    #[test]
    fn first_access_misses_then_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1234));
        assert!(t.access(0x1234));
        assert!(t.access(0x1fff)); // same page
        assert!(!t.access(PAGE_BYTES)); // next page
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(0); // page 0
        t.access(PAGE_BYTES); // page 1
        t.access(0); // page 0 freshened
        t.access(2 * PAGE_BYTES); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(PAGE_BYTES));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = Tlb::new(8);
        for i in 0..100u64 {
            t.access(i * PAGE_BYTES);
            assert!(t.len() <= 8);
        }
    }

    #[test]
    fn stats_count_correctly() {
        let mut t = Tlb::new(512);
        for i in 0..10u64 {
            t.access(i * PAGE_BYTES);
        }
        for i in 0..10u64 {
            t.access(i * PAGE_BYTES);
        }
        assert_eq!(t.stats(), (10, 10));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
