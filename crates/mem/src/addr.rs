//! Physical address arithmetic.
//!
//! All caches in the hierarchy use the same 64-byte line; the shared L2
//! interleaves consecutive lines across its banks, which is what spreads
//! (or fails to spread) concurrent traffic over bank ports.

/// Cache line size in bytes. Fixed across the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// Page size in bytes (Alpha-style 8 KB pages).
pub const PAGE_BYTES: u64 = 8192;

/// Line index of an address (address divided by the line size).
#[inline]
pub fn line_index(addr: u64) -> u64 {
    addr / LINE_BYTES
}

/// First byte of the line containing `addr`.
#[inline]
pub fn line_base(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// First byte of the page containing `addr`.
#[inline]
pub fn page_base(addr: u64) -> u64 {
    addr & !(PAGE_BYTES - 1)
}

/// L2 bank servicing `addr` with `num_banks` line-interleaved banks.
#[inline]
pub fn bank_of(addr: u64, num_banks: u32) -> u32 {
    (line_index(addr) % num_banks as u64) as u32
}

/// L1 bank servicing `addr` with `num_banks` line-interleaved banks.
/// Identical mapping to [`bank_of`]; a separate name keeps call sites
/// self-documenting.
#[inline]
pub fn l1_bank_of(addr: u64, num_banks: u32) -> u32 {
    bank_of(addr, num_banks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_arithmetic() {
        assert_eq!(line_base(0), 0);
        assert_eq!(line_base(63), 0);
        assert_eq!(line_base(64), 64);
        assert_eq!(line_index(128), 2);
        assert_eq!(line_base(0xdead_beef), 0xdead_beef & !63);
    }

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_base(0), 0);
        assert_eq!(page_base(8191), 0);
        assert_eq!(page_base(8192), 8192);
    }

    #[test]
    fn banks_interleave_by_line() {
        // Consecutive lines land on consecutive banks.
        for i in 0..16u64 {
            assert_eq!(bank_of(i * LINE_BYTES, 4), (i % 4) as u32);
        }
        // All bytes of one line map to the same bank.
        for off in 0..LINE_BYTES {
            assert_eq!(bank_of(5 * LINE_BYTES + off, 4), bank_of(5 * LINE_BYTES, 4));
        }
    }

    #[test]
    fn bank_of_covers_all_banks() {
        let mut seen = [false; 8];
        for i in 0..64u64 {
            seen[bank_of(i * LINE_BYTES, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
