//! Property-based tests of the memory substrates against simple
//! reference models, on the in-repo harness (`smtsim_trace::check`).

use smtsim_mem::util::Slab;
use smtsim_mem::{CacheGeometry, LatencyHistogram, ReplacementPolicy, SetAssocCache, Tlb};
use smtsim_trace::check::Cases;
use std::collections::{BTreeMap, BTreeSet};

/// The slab behaves like a map: inserted values are retrievable until
/// removed, never after; len always matches the model.
#[test]
fn slab_matches_hashmap_model() {
    Cases::new(48).run("slab_matches_hashmap_model", |g| {
        let ops = g.vec_of(1..400, |g| (g.bool(), g.u32_in(0..0x1_0000) as u16));
        let mut slab: Slab<u16> = Slab::new();
        let mut model: BTreeMap<u32, u16> = BTreeMap::new();
        let mut live: Vec<u32> = Vec::new();
        for (insert, v) in ops {
            if insert || live.is_empty() {
                let k = slab.insert(v);
                assert!(!model.contains_key(&k), "key {k} double-alive");
                model.insert(k, v);
                live.push(k);
            } else {
                let k = live.swap_remove((v as usize) % live.len());
                assert_eq!(slab.remove(k), model.remove(&k));
            }
            assert_eq!(slab.len(), model.len());
            for (&k, &mv) in &model {
                assert_eq!(slab.get(k), Some(&mv));
            }
        }
    });
}

/// A cache access hits iff the line is resident under an LRU model with
/// the same geometry.
#[test]
fn cache_matches_lru_model() {
    Cases::new(48).run("cache_matches_lru_model", |g| {
        let addrs = g.vec_of(1..500, |g| g.u64_in(0..(1 << 16)));
        let geom = CacheGeometry {
            bytes: 8 * 64 * 4,
            ways: 4,
            line_bytes: 64,
        }; // 8 sets
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        // Model: per set, an LRU-ordered vec of tags.
        let sets = geom.sets();
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for a in addrs {
            let line = a / 64;
            let set = (line % sets) as usize;
            let tag = line / sets;
            let hit_model = model[set].contains(&tag);
            let hit = cache.access(a, false) == smtsim_mem::AccessOutcome::Hit;
            assert_eq!(hit, hit_model, "addr {a:#x}");
            if hit_model {
                // refresh
                model[set].retain(|&t| t != tag);
                model[set].push(tag);
            } else {
                cache.fill(a, false);
                if model[set].len() == 4 {
                    model[set].remove(0);
                }
                model[set].push(tag);
            }
        }
    });
}

/// The TLB hits iff the page is in the model's LRU window.
#[test]
fn tlb_matches_lru_model() {
    Cases::new(48).run("tlb_matches_lru_model", |g| {
        let pages = g.vec_of(1..300, |g| g.u64_in(0..32));
        let mut tlb = Tlb::new(8);
        let mut model: Vec<u64> = Vec::new();
        for p in pages {
            let addr = p * 8192 + 12;
            let hit_model = model.contains(&p);
            assert_eq!(tlb.access(addr), hit_model);
            model.retain(|&q| q != p);
            model.push(p);
            if model.len() > 8 {
                model.remove(0);
            }
        }
    });
}

/// Histogram statistics match naive recomputation.
#[test]
fn histogram_matches_naive_stats() {
    Cases::new(48).run("histogram_matches_naive_stats", |g| {
        let samples = g.vec_of(1..300, |g| g.u64_in(0..400));
        let mut h = LatencyHistogram::new(5, 40); // covers [0, 200)
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), samples.len() as u64);
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((h.mean() - mean).abs() < 1e-9);
        assert_eq!(h.min(), samples.iter().min().copied());
        assert_eq!(h.max(), samples.iter().max().copied());
        // fraction_between over the whole range is 1.
        assert!((h.fraction_between(0, u64::MAX) - 1.0).abs() < 1e-9);
    });
}

/// Cache fills never exceed capacity and invalidation removes exactly
/// the requested lines.
#[test]
fn cache_capacity_and_invalidate() {
    Cases::new(48).run("cache_capacity_and_invalidate", |g| {
        let addrs = g.vec_of(1..400, |g| g.u64_in(0..(1 << 20)));
        let geom = CacheGeometry {
            bytes: 16 << 10,
            ways: 4,
            line_bytes: 64,
        };
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut filled: BTreeSet<u64> = BTreeSet::new();
        for &a in &addrs {
            cache.fill(a, false);
            filled.insert(a & !63);
            assert!(cache.valid_lines() <= cache.capacity_lines());
        }
        for &line in filled.iter().take(20) {
            if cache.probe(line) {
                assert!(cache.invalidate(line));
                assert!(!cache.probe(line));
            }
        }
    });
}
