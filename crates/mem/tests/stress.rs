//! Randomised liveness stress for the memory system: every accepted
//! miss must complete within a bounded number of cycles, under mixed
//! ifetch/load/store traffic from several cores, with address streams
//! that exercise MSHR merging, bank queueing and TLB walks.

use smtsim_mem::{AccessKind, AccessResult, MemConfig, MemorySystem, ReqId};
use smtsim_trace::rng::Xoshiro256pp;
use std::collections::BTreeMap;

/// Worst-case legitimate latency: TLB walk + L1 + bus queue + bank
/// queue + DRAM, with generous queueing margin.
const DEADLINE: u64 = 4_000;

fn stress(cores: u32, cycles: u64, seed: u64, addr_pool: u64) {
    let mut m = MemorySystem::new(MemConfig::paper(cores));
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut outstanding: BTreeMap<(u32, ReqId), u64> = BTreeMap::new();
    for now in 0..cycles {
        m.tick(now);
        for core in 0..cores {
            for c in m.drain_completions(core) {
                outstanding
                    .remove(&(core, c.req))
                    .expect("completion for unknown request");
            }
            m.drain_events(core);
            // Issue up to 2 random accesses per core per cycle.
            for _ in 0..rng.gen_range(0..=2u32) {
                let kind = match rng.gen_range(0..10u32) {
                    0..=1 => AccessKind::IFetch,
                    2..=7 => AccessKind::Load,
                    _ => AccessKind::Store,
                };
                let base = match kind {
                    AccessKind::IFetch => 0x40_0000,
                    _ => 0x1_0000_0000u64 + core as u64 * 0x1000_0000,
                };
                let addr = (base + (rng.gen::<u64>() % addr_pool)) & !7;
                match m.access(core, kind, addr, now) {
                    AccessResult::Miss { req, .. } => {
                        outstanding.insert((core, req), now);
                    }
                    AccessResult::L1Hit { .. } | AccessResult::MshrFull => {}
                }
            }
        }
        // Liveness: nothing outstanding beyond the deadline.
        if now % 512 == 0 {
            for (&(core, req), &t) in &outstanding {
                assert!(
                    now - t < DEADLINE,
                    "req {req} of core {core} stuck since cycle {t} (now {now})"
                );
            }
        }
    }
}

#[test]
fn single_core_small_pool_merges_heavily() {
    stress(1, 30_000, 1, 4 * 1024);
}

#[test]
fn single_core_large_pool_misses_heavily() {
    stress(1, 30_000, 2, 64 << 20);
}

#[test]
fn four_cores_contend_on_banks() {
    stress(4, 30_000, 3, 1 << 20);
}

#[test]
fn two_cores_mixed() {
    stress(2, 30_000, 4, 256 * 1024);
}
