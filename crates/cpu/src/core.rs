//! The pluggable-fidelity core: a thin front-end over a swappable
//! [`CoreBackend`].
//!
//! [`SmtCore`] keeps the public surface every driver and test was
//! already written against (construction, `prewarm`, the in-order
//! `tick` protocol, statistics, tracing, commit logs) and routes each
//! call to one of two backends behind enum dispatch:
//!
//! * [`CoreBackend::Detailed`] — the original ROB/IQ out-of-order
//!   pipeline ([`DetailedCore`]), byte-identical to the pre-refactor
//!   `SmtCore`;
//! * [`CoreBackend::IpcApprox`] — the commit-rate model
//!   ([`IpcApproxCore`]) that still drives fetch-policy and flush
//!   decisions but elides rename/issue/execute.
//!
//! Enum dispatch (not `dyn`) for the same reasons as
//! `smtsim_mem::MemoryModel`: the variant set is closed, the calls sit
//! in the per-cycle hot loop, and the measured trait-object penalty is
//! recorded in DESIGN.md §13. [`SmtCore::new`] defaults to the detailed
//! backend so every existing call site keeps its exact behaviour.

use crate::approx::IpcApproxCore;
use crate::config::CoreConfig;
use crate::detailed::DetailedCore;
use crate::stats::{CoreStats, ThreadProbe};
use crate::thread::ThreadProgram;
use smtsim_mem::MemoryModel;
use smtsim_obs::EventRing;
use smtsim_policy::FetchPolicy;

/// Which core implementation a simulation runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreFidelity {
    /// Cycle-level out-of-order pipeline. The golden-figure fidelity.
    #[default]
    Detailed,
    /// In-order commit-window model; fast-forward / warm-up engine.
    IpcApprox,
}

impl CoreFidelity {
    /// Parse a CLI/config spelling. Accepts the canonical names only;
    /// callers turn `None` into their own "unknown fidelity" error.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "detailed" => Some(CoreFidelity::Detailed),
            "approx" => Some(CoreFidelity::IpcApprox),
            _ => None,
        }
    }

    /// Canonical spelling, round-trips through [`CoreFidelity::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            CoreFidelity::Detailed => "detailed",
            CoreFidelity::IpcApprox => "approx",
        }
    }
}

/// A core backend at one of the available fidelities.
// lint: allow(D5) -- a handful of cores per simulation, so the size gap never multiplies; boxing would cost a pointer chase every cycle
#[allow(clippy::large_enum_variant)]
pub enum CoreBackend {
    /// Full out-of-order pipeline (the pre-refactor `SmtCore` body).
    Detailed(DetailedCore),
    /// Commit-rate approximation.
    IpcApprox(IpcApproxCore),
}

/// Every method body below is the same one-line delegation; the macro
/// keeps the forwarding sites honest (no variant can diverge).
macro_rules! dispatch {
    ($self:expr, $m:ident ( $($a:expr),* )) => {
        match $self {
            CoreBackend::Detailed(inner) => inner.$m($($a),*),
            CoreBackend::IpcApprox(inner) => inner.$m($($a),*),
        }
    };
}

/// One SMT core: the stable front-end over a [`CoreBackend`].
pub struct SmtCore {
    backend: CoreBackend,
}

impl SmtCore {
    /// Build a core running `programs` (one per hardware context) under
    /// `policy`, at **detailed** fidelity — the pre-refactor behaviour,
    /// unchanged for every existing call site.
    pub fn new(
        core_id: u32,
        cfg: CoreConfig,
        policy: Box<dyn FetchPolicy>,
        programs: Vec<ThreadProgram>,
    ) -> Self {
        Self::with_fidelity(CoreFidelity::Detailed, core_id, cfg, policy, programs)
    }

    /// Build a core with an explicit backend fidelity.
    pub fn with_fidelity(
        fidelity: CoreFidelity,
        core_id: u32,
        cfg: CoreConfig,
        policy: Box<dyn FetchPolicy>,
        programs: Vec<ThreadProgram>,
    ) -> Self {
        let backend = match fidelity {
            CoreFidelity::Detailed => {
                CoreBackend::Detailed(DetailedCore::new(core_id, cfg, policy, programs))
            }
            CoreFidelity::IpcApprox => {
                CoreBackend::IpcApprox(IpcApproxCore::new(core_id, cfg, policy, programs))
            }
        };
        SmtCore { backend }
    }

    /// The fidelity this core runs at.
    pub fn fidelity(&self) -> CoreFidelity {
        match &self.backend {
            CoreBackend::Detailed(_) => CoreFidelity::Detailed,
            CoreBackend::IpcApprox(_) => CoreFidelity::IpcApprox,
        }
    }

    /// This core's id (its port index on the shared memory system).
    pub fn id(&self) -> u32 {
        dispatch!(&self.backend, id())
    }

    /// Name of the active fetch policy.
    pub fn policy_name(&self) -> String {
        dispatch!(&self.backend, policy_name())
    }

    /// Access the policy (e.g. for MFLUSH statistics downcasts).
    pub fn policy(&self) -> &dyn FetchPolicy {
        dispatch!(&self.backend, policy())
    }

    /// Warm caches and TLBs to the trace-driven starting condition.
    /// Call once before the measurement loop.
    pub fn prewarm(&mut self, mem: &mut MemoryModel) {
        dispatch!(&mut self.backend, prewarm(mem))
    }

    /// Advance one cycle. The caller must have ticked `mem` for `now`
    /// already.
    pub fn tick(&mut self, now: u64, mem: &mut MemoryModel) {
        dispatch!(&mut self.backend, tick(now, mem))
    }

    /// Earliest cycle ≥ `from` at which a tick could do observable
    /// work, assuming no memory deliveries in between — the core half
    /// of the stall skip-ahead horizon (DESIGN.md §16). The approx
    /// backend pins this to `from`, opting out of skip.
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        dispatch!(&self.backend, next_event_cycle(from))
    }

    /// Tell the core the simulator skipped `cycles` cycles starting at
    /// `from` (no ticks ran for them), so per-call policy state can
    /// compensate.
    pub fn notify_skip(&mut self, from: u64, cycles: u64) {
        dispatch!(&mut self.backend, notify_skip(from, cycles))
    }

    /// Snapshot the core's statistics.
    pub fn stats(&self) -> CoreStats {
        dispatch!(&self.backend, stats())
    }

    /// Branch predictor accuracy so far (1.0 at fidelities that elide
    /// prediction).
    pub fn branch_accuracy(&self) -> f64 {
        dispatch!(&self.backend, branch_accuracy())
    }

    /// One-line diagnostic snapshot of pipeline occupancy.
    pub fn debug_state(&self) -> String {
        dispatch!(&self.backend, debug_state())
    }

    /// Start recording `(tid, trace_seq)` for every commit.
    pub fn enable_commit_log(&mut self) {
        dispatch!(&mut self.backend, enable_commit_log())
    }

    /// Start recording trace events into a ring keeping the most
    /// recent `capacity` records (DESIGN.md §12).
    pub fn enable_trace(&mut self, capacity: usize) {
        dispatch!(&mut self.backend, enable_trace(capacity))
    }

    /// The core's event ring (`None` unless [`Self::enable_trace`] was
    /// called).
    pub fn trace(&self) -> Option<&EventRing> {
        dispatch!(&self.backend, trace())
    }

    /// The recorded commit log (empty when not enabled).
    pub fn commit_log(&self) -> &[(usize, u64)] {
        dispatch!(&self.backend, commit_log())
    }

    /// Total committed instructions.
    pub fn total_committed(&self) -> u64 {
        dispatch!(&self.backend, total_committed())
    }

    /// Structured per-thread pipeline snapshots.
    pub fn thread_snapshots(&self) -> Vec<ThreadProbe> {
        dispatch!(&self.backend, thread_snapshots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_policy::{build_policy, PolicyEnv, PolicyKind};
    use smtsim_trace::{spec, TraceGenerator};

    fn programs(names: [&str; 2]) -> Vec<ThreadProgram> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                ThreadProgram::from_generator(TraceGenerator::new(
                    spec::benchmark_by_name(n).unwrap(),
                    1 + i as u64 * 1000,
                ))
            })
            .collect()
    }

    fn run(fidelity: CoreFidelity, cycles: u64) -> u64 {
        let mut core = SmtCore::with_fidelity(
            fidelity,
            0,
            CoreConfig::paper(),
            build_policy(PolicyKind::Icount, &PolicyEnv::paper(1)),
            programs(["gzip", "mcf"]),
        );
        let mut mem = MemoryModel::detailed(smtsim_mem::MemConfig::paper(1));
        core.prewarm(&mut mem);
        for now in 0..cycles {
            mem.tick(now);
            core.tick(now, &mut mem);
        }
        core.total_committed()
    }

    #[test]
    fn fidelity_names_round_trip() {
        for f in [CoreFidelity::Detailed, CoreFidelity::IpcApprox] {
            assert_eq!(CoreFidelity::parse(f.as_str()), Some(f));
        }
        assert_eq!(CoreFidelity::parse("ipc"), None);
        assert_eq!(CoreFidelity::parse("Approx"), None, "spellings are exact");
    }

    #[test]
    fn default_constructor_is_detailed() {
        let core = SmtCore::new(
            0,
            CoreConfig::paper(),
            build_policy(PolicyKind::Icount, &PolicyEnv::paper(1)),
            programs(["gzip", "mcf"]),
        );
        assert_eq!(core.fidelity(), CoreFidelity::Detailed);
    }

    #[test]
    fn both_backends_make_progress() {
        assert!(run(CoreFidelity::Detailed, 4_000) > 1_000);
        assert!(run(CoreFidelity::IpcApprox, 4_000) > 1_000);
    }

    #[test]
    fn approx_backend_is_same_seed_deterministic() {
        let a = run(CoreFidelity::IpcApprox, 3_000);
        let b = run(CoreFidelity::IpcApprox, 3_000);
        assert_eq!(a, b);
    }
}
