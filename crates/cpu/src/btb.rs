//! Branch Target Buffer: 256 entries, 4-way set associative (Fig. 1).
//!
//! The front-end can only redirect fetch to a taken branch's target in
//! the same cycle if the BTB knows the target; a BTB miss on a taken
//! branch costs a misfetch, handled by the core as a misprediction.

/// Set-associative BTB with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Btb {
    /// (tag, target, stamp) per way; tag = pc (full tags — this is a
    /// simulator, aliasing is modelled by capacity/conflict only).
    sets: Vec<Vec<(u64, u64, u64)>>,
    ways: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// BTB with `entries` total entries and `ways` associativity.
    pub fn new(entries: u32, ways: u32) -> Self {
        assert!(ways > 0 && entries.is_multiple_of(ways), "entries must divide by ways");
        let num_sets = (entries / ways) as usize;
        Btb {
            sets: vec![Vec::with_capacity(ways as usize); num_sets],
            ways: ways as usize,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.sets.len()
    }

    /// Look up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(pc);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.0 == pc) {
            e.2 = stamp;
            self.hits += 1;
            Some(e.1)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Install/refresh the target for `pc` (done when a taken branch
    /// resolves).
    pub fn update(&mut self, pc: u64, target: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.ways;
        let set = self.set_of(pc);
        let set = &mut self.sets[set];
        if let Some(e) = set.iter_mut().find(|e| e.0 == pc) {
            e.1 = target;
            e.2 = stamp;
            return;
        }
        if set.len() < ways {
            set.push((pc, target, stamp));
            return;
        }
        // `unwrap_or(0)` never fires: this branch requires a full set,
        // and ways ≥ 1.
        let lru = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.2)
            .map(|(i, _)| i)
            .unwrap_or(0);
        set[lru] = (pc, target, stamp);
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut b = Btb::new(256, 4);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
    }

    #[test]
    fn update_overwrites_target() {
        let mut b = Btb::new(256, 4);
        b.update(0x1000, 0x2000);
        b.update(0x1000, 0x3000);
        assert_eq!(b.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn lru_within_a_set() {
        let mut b = Btb::new(8, 2); // 4 sets × 2 ways
        // Three branches mapping to the same set: pcs differing by
        // 4*num_sets increments.
        let (p1, p2, p3) = (0x1000, 0x1000 + 16, 0x1000 + 32);
        b.update(p1, 0xa);
        b.update(p2, 0xb);
        b.lookup(p1); // refresh p1
        b.update(p3, 0xc); // evicts p2
        assert_eq!(b.lookup(p1), Some(0xa));
        assert_eq!(b.lookup(p2), None);
        assert_eq!(b.lookup(p3), Some(0xc));
    }

    #[test]
    fn capacity_pressure_causes_misses() {
        let mut b = Btb::new(256, 4);
        for i in 0..1024u64 {
            b.update(0x10_0000 + i * 4, i);
        }
        let mut hits = 0;
        for i in 0..1024u64 {
            if b.lookup(0x10_0000 + i * 4).is_some() {
                hits += 1;
            }
        }
        assert!(hits <= 256, "only 256 entries can survive, got {hits}");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_geometry_rejected() {
        let _ = Btb::new(10, 4);
    }
}
