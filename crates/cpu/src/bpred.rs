//! Perceptron branch direction predictor (Fig. 1: "perceptron — 4K
//! local, 256 perceps.").
//!
//! 256 perceptrons indexed by PC hash; each perceptron's inputs combine
//! a 12-bit local history (from a 4096-entry local history table) with a
//! 20-bit global history register — the "4K local, 256 perceptrons"
//! organisation of the paper's table. Weights are 8-bit saturating, with
//! the usual Jiménez–Lin threshold training rule.

/// Local-history bits per branch.
const LOCAL_BITS: usize = 12;
/// Global-history bits.
const GLOBAL_BITS: usize = 20;
/// Inputs per perceptron (local + global + bias).
const INPUTS: usize = LOCAL_BITS + GLOBAL_BITS;

/// A perceptron direction predictor with per-thread global history.
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    /// `perceptrons × (INPUTS + 1)` weights; last weight is the bias.
    weights: Vec<i8>,
    perceptrons: usize,
    /// Local history table (shared across contexts, as the paper's
    /// single predictor per core suggests).
    local: Vec<u16>,
    /// Global history, one register per hardware context.
    global: Vec<u32>,
    /// Training threshold (Jiménez–Lin: ⌊1.93·n + 14⌋).
    theta: i32,
    lookups: u64,
    mispredicts: u64,
}

impl PerceptronPredictor {
    /// Predictor with `perceptrons` entries, a `local_entries` local
    /// history table and `contexts` independent global histories.
    pub fn new(perceptrons: u32, local_entries: u32, contexts: u32) -> Self {
        assert!(perceptrons > 0 && local_entries > 0 && contexts > 0);
        PerceptronPredictor {
            weights: vec![0; perceptrons as usize * (INPUTS + 1)],
            perceptrons: perceptrons as usize,
            local: vec![0; local_entries as usize],
            global: vec![0; contexts as usize],
            theta: (1.93 * INPUTS as f64 + 14.0) as i32,
            lookups: 0,
            mispredicts: 0,
        }
    }

    #[inline]
    fn table_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.perceptrons
    }

    #[inline]
    fn local_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.local.len()
    }

    fn output(&self, pc: u64, ctx: usize) -> i32 {
        let w = &self.weights[self.table_index(pc) * (INPUTS + 1)..][..INPUTS + 1];
        let lh = self.local[self.local_index(pc)];
        let gh = self.global[ctx];
        let mut y = w[INPUTS] as i32; // bias
        for (i, &wi) in w[..LOCAL_BITS].iter().enumerate() {
            let bit = (lh >> i) & 1 == 1;
            y += if bit { wi as i32 } else { -(wi as i32) };
        }
        for (i, &wi) in w[LOCAL_BITS..INPUTS].iter().enumerate() {
            let bit = (gh >> i) & 1 == 1;
            y += if bit { wi as i32 } else { -(wi as i32) };
        }
        y
    }

    /// Predict the direction of the conditional branch at `pc` for
    /// hardware context `ctx`.
    pub fn predict(&mut self, pc: u64, ctx: usize) -> bool {
        self.lookups += 1;
        self.output(pc, ctx) >= 0
    }

    /// Train with the actual outcome and advance the histories. Call
    /// once per dynamic conditional branch, after `predict`.
    pub fn update(&mut self, pc: u64, ctx: usize, taken: bool) {
        let y = self.output(pc, ctx);
        let predicted = y >= 0;
        if predicted != taken {
            self.mispredicts += 1;
        }
        if predicted != taken || y.abs() <= self.theta {
            let lh = self.local[self.local_index(pc)];
            let gh = self.global[ctx];
            let t: i32 = if taken { 1 } else { -1 };
            let idx = self.table_index(pc) * (INPUTS + 1);
            let w = &mut self.weights[idx..idx + INPUTS + 1];
            for (i, wi) in w[..LOCAL_BITS].iter_mut().enumerate() {
                let x: i32 = if (lh >> i) & 1 == 1 { 1 } else { -1 };
                *wi = (*wi as i32 + t * x).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            }
            for (i, wi) in w[LOCAL_BITS..INPUTS].iter_mut().enumerate() {
                let x: i32 = if (gh >> i) & 1 == 1 { 1 } else { -1 };
                *wi = (*wi as i32 + t * x).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            }
            let b = &mut w[INPUTS];
            *b = (*b as i32 + t).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
        }
        // History updates happen on every branch.
        let li = self.local_index(pc);
        self.local[li] = ((self.local[li] << 1) | taken as u16) & ((1 << LOCAL_BITS) - 1);
        self.global[ctx] =
            ((self.global[ctx] << 1) | taken as u32) & ((1 << GLOBAL_BITS) - 1);
    }

    /// (lookups, mispredicts).
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts)
    }

    /// Observed accuracy so far (1.0 before any lookup).
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_run(outcomes: impl Iterator<Item = (u64, bool)>) -> f64 {
        let mut p = PerceptronPredictor::new(256, 4096, 2);
        let mut correct = 0u64;
        let mut total = 0u64;
        for (pc, taken) in outcomes {
            let pred = p.predict(pc, 0);
            if pred == taken {
                correct += 1;
            }
            total += 1;
            p.update(pc, 0, taken);
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_strongly_biased_branches() {
        let acc = train_run((0..20_000u64).map(|i| (0x1000 + (i % 16) * 4, true)));
        assert!(acc > 0.98, "always-taken accuracy {acc}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // T,N,T,N… is perfectly predictable from 1 bit of history.
        let acc = train_run((0..20_000u64).map(|i| (0x2000, i % 2 == 0)));
        assert!(acc > 0.95, "alternating accuracy {acc}");
    }

    #[test]
    fn learns_short_loops() {
        // 7 taken then 1 not-taken (an 8-iteration loop).
        let acc = train_run((0..40_000u64).map(|i| (0x3000, i % 8 != 7)));
        assert!(acc > 0.9, "loop accuracy {acc}");
    }

    #[test]
    fn random_branches_are_hard() {
        // Deterministic pseudo-random outcomes: accuracy ≈ 0.5.
        let mut x = 0x12345678u64;
        let acc = train_run((0..20_000u64).map(move |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (0x4000, x & 1 == 1)
        }));
        assert!((0.40..0.65).contains(&acc), "random accuracy {acc}");
    }

    #[test]
    fn contexts_have_independent_global_history() {
        let mut p = PerceptronPredictor::new(256, 4096, 2);
        // Context 0 trains an alternating pattern at a PC; context 1's
        // history must not disturb it catastrophically.
        for i in 0..10_000u64 {
            let t0 = i % 2 == 0;
            p.predict(0x5000, 0);
            p.update(0x5000, 0, t0);
            p.predict(0x6000, 1);
            p.update(0x6000, 1, i % 3 == 0);
        }
        let mut correct = 0;
        for i in 0..1_000u64 {
            let t0 = i % 2 == 0;
            if p.predict(0x5000, 0) == t0 {
                correct += 1;
            }
            p.update(0x5000, 0, t0);
        }
        assert!(correct > 900, "ctx-0 accuracy after interference {correct}/1000");
    }

    #[test]
    fn stats_track_lookups() {
        let mut p = PerceptronPredictor::new(16, 64, 1);
        for i in 0..100u64 {
            p.predict(i * 4, 0);
            p.update(i * 4, 0, true);
        }
        let (lookups, _) = p.stats();
        // update() also computes the output, but only predict() counts.
        assert_eq!(lookups, 100);
        assert!(p.accuracy() <= 1.0);
    }
}
