//! Core configuration (paper Fig. 1, "Core Parameters").


/// Configuration of one SMT core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Hardware contexts (2 in every paper configuration).
    pub contexts: u32,
    /// Instructions fetched per cycle (ICOUNT.2.**8**).
    pub fetch_width: u32,
    /// Threads fetched from per cycle (ICOUNT.**2**.8).
    pub fetch_threads: u32,
    /// Front-end depth in cycles between fetch and rename-complete.
    /// With the 3-cycle I-cache and the back-end stages this models the
    /// paper's 11-stage pipeline.
    pub frontend_latency: u64,
    /// Rename/dispatch width per cycle.
    pub dispatch_width: u32,
    /// Commit width per thread per cycle.
    pub commit_width: u32,
    /// Shared integer issue-queue entries (64).
    pub int_queue: u32,
    /// Shared floating-point issue-queue entries (64).
    pub fp_queue: u32,
    /// Shared load/store issue-queue entries (64).
    pub ls_queue: u32,
    /// Integer execution units (4).
    pub int_units: u32,
    /// Floating-point execution units (3).
    pub fp_units: u32,
    /// Load/store units (2).
    pub ls_units: u32,
    /// Shared physical registers (320).
    pub phys_regs: u32,
    /// Reorder-buffer entries per thread (256, replicated).
    pub rob_per_thread: u32,
    /// Return-address-stack entries per thread (100, replicated).
    pub ras_entries: u32,
    /// BTB entries (256).
    pub btb_entries: u32,
    /// BTB associativity (4).
    pub btb_ways: u32,
    /// Perceptron count (256).
    pub perceptrons: u32,
    /// Local-history table entries (4K).
    pub local_history_entries: u32,
    /// Pending-store buffer entries per core.
    pub store_buffer: u32,
    /// Fetch-queue (front-end buffer) entries per thread; fetch stalls
    /// when full, bounding run-ahead (especially down the wrong path).
    pub fetch_queue: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl CoreConfig {
    /// The paper's Fig. 1 core.
    pub fn paper() -> Self {
        CoreConfig {
            contexts: 2,
            fetch_width: 8,
            fetch_threads: 2,
            frontend_latency: 5,
            dispatch_width: 8,
            commit_width: 4,
            int_queue: 64,
            fp_queue: 64,
            ls_queue: 64,
            int_units: 4,
            fp_units: 3,
            ls_units: 2,
            phys_regs: 320,
            rob_per_thread: 256,
            ras_entries: 100,
            btb_entries: 256,
            btb_ways: 4,
            perceptrons: 256,
            local_history_entries: 4096,
            store_buffer: 32,
            fetch_queue: 16,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.contexts == 0 {
            return Err("contexts == 0".into());
        }
        if self.fetch_width == 0 || self.fetch_threads == 0 {
            return Err("fetch width/threads == 0".into());
        }
        if self.fetch_threads > self.contexts {
            return Err("fetch_threads > contexts".into());
        }
        // Each context pins NUM_LOG_REGS physical registers for its
        // architectural state; some must remain for renaming.
        let pinned = self.contexts as u64 * smtsim_trace::NUM_LOG_REGS as u64;
        if (self.phys_regs as u64) <= pinned {
            return Err(format!(
                "phys_regs {} must exceed pinned architectural state {pinned}",
                self.phys_regs
            ));
        }
        if self.int_units == 0 || self.ls_units == 0 {
            return Err("need at least one int and one ld/st unit".into());
        }
        if self.rob_per_thread == 0 || self.store_buffer == 0 {
            return Err("rob/store buffer must be > 0".into());
        }
        if self.fetch_queue < self.fetch_width {
            return Err("fetch_queue must hold at least one fetch group".into());
        }
        if !self.btb_entries.is_multiple_of(self.btb_ways) {
            return Err("btb entries must divide by ways".into());
        }
        Ok(())
    }

    /// Physical registers available for renaming after pinning each
    /// context's architectural state.
    pub fn rename_regs(&self) -> u32 {
        self.phys_regs - self.contexts * smtsim_trace::NUM_LOG_REGS as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_fig1() {
        let c = CoreConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.contexts, 2);
        assert_eq!(c.int_queue, 64);
        assert_eq!(c.fp_queue, 64);
        assert_eq!(c.ls_queue, 64);
        assert_eq!(c.int_units, 4);
        assert_eq!(c.fp_units, 3);
        assert_eq!(c.ls_units, 2);
        assert_eq!(c.phys_regs, 320);
        assert_eq!(c.rob_per_thread, 256);
        assert_eq!(c.ras_entries, 100);
        assert_eq!(c.btb_entries, 256);
        assert_eq!(c.btb_ways, 4);
    }

    #[test]
    fn rename_regs_subtract_pinned_state() {
        let c = CoreConfig::paper();
        assert_eq!(c.rename_regs(), 320 - 2 * 64);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = CoreConfig::paper();
        c.phys_regs = 128; // exactly pinned → no rename headroom
        assert!(c.validate().is_err());
        let mut c = CoreConfig::paper();
        c.fetch_threads = 3;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::paper();
        c.btb_ways = 3;
        assert!(c.validate().is_err());
    }
}
