//! Return Address Stack — 100 entries per thread (Fig. 1, replicated).
//!
//! The synthetic traces mark calls/returns as unconditional branches, so
//! in the default pipeline the RAS acts as a secondary target source for
//! unconditional branches whose target pops correctly; its main purpose
//! in this codebase is structural fidelity to Fig. 1 plus availability
//! for trace formats that do distinguish calls (the unit tests and the
//! public API treat it as a first-class predictor).

/// Fixed-depth return-address stack with wrap-around overwrite (the
/// standard hardware behaviour: pushing onto a full stack overwrites the
/// oldest entry; popping an empty stack mispredicts).
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    capacity: usize,
    top: usize,
    len: usize,
    pushes: u64,
    pops: u64,
    underflows: u64,
}

impl ReturnAddressStack {
    /// Stack with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ReturnAddressStack {
            entries: vec![0; capacity],
            capacity,
            top: 0,
            len: 0,
            pushes: 0,
            pops: 0,
            underflows: 0,
        }
    }

    /// Push a return address (call).
    pub fn push(&mut self, addr: u64) {
        self.pushes += 1;
        self.entries[self.top] = addr;
        self.top = (self.top + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Pop the predicted return address (return); `None` on underflow.
    pub fn pop(&mut self) -> Option<u64> {
        self.pops += 1;
        if self.len == 0 {
            self.underflows += 1;
            return None;
        }
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.len -= 1;
        Some(self.entries[self.top])
    }

    /// Peek without popping.
    pub fn peek(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            Some(self.entries[(self.top + self.capacity - 1) % self.capacity])
        }
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.len
    }

    /// (pushes, pops, underflows).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.pushes, self.pops, self.underflows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(100);
        r.push(0x10);
        r.push(0x20);
        r.push(0x30);
        assert_eq!(r.pop(), Some(0x30));
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_overwrites_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "entry 1 was overwritten");
    }

    #[test]
    fn peek_is_non_destructive() {
        let mut r = ReturnAddressStack::new(4);
        r.push(42);
        assert_eq!(r.peek(), Some(42));
        assert_eq!(r.depth(), 1);
        assert_eq!(r.pop(), Some(42));
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn underflow_counted() {
        let mut r = ReturnAddressStack::new(4);
        r.pop();
        r.pop();
        assert_eq!(r.stats(), (0, 2, 2));
    }

    #[test]
    fn deep_call_chains_within_capacity() {
        let mut r = ReturnAddressStack::new(100);
        for i in 0..100u64 {
            r.push(i);
        }
        assert_eq!(r.depth(), 100);
        for i in (0..100u64).rev() {
            assert_eq!(r.pop(), Some(i));
        }
    }
}
