//! Per-thread reorder buffer (256 entries each, replicated — Fig. 1).

use crate::regfile::PhysReg;
use smtsim_energy::PipelineStage;
use smtsim_mem::ReqId;
use smtsim_trace::{DynInstr, InstrClass};
use std::collections::VecDeque;

/// Which shared issue queue an instruction occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    Int,
    Fp,
    Ls,
}

impl QueueKind {
    /// Map an instruction class to its queue.
    pub fn of(class: InstrClass) -> QueueKind {
        if class.is_fp() {
            QueueKind::Fp
        } else if class.is_mem() {
            QueueKind::Ls
        } else {
            QueueKind::Int
        }
    }

    /// Queue index for counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            QueueKind::Int => 0,
            QueueKind::Fp => 1,
            QueueKind::Ls => 2,
        }
    }
}

/// Execution state of a dispatched instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrState {
    /// In an issue queue, waiting for operands / a unit.
    InQueue,
    /// Executing on a unit; result at `done_at`.
    Executing { done_at: u64 },
    /// A load waiting on the memory hierarchy.
    WaitingMem { req: ReqId },
    /// Completed, waiting to commit.
    Done,
}

/// One in-flight instruction past rename.
#[derive(Debug, Clone, Copy)]
pub struct RobEntry {
    /// Core-wide monotonically increasing id (also the policy's
    /// `LoadToken` for loads).
    pub token: u64,
    pub instr: DynInstr,
    /// Wrong-path junk (never commits; squashed on branch resolution).
    pub wrong_path: bool,
    pub state: InstrState,
    pub queue: QueueKind,
    /// Source physical registers.
    pub srcs: [Option<PhysReg>; 2],
    /// `(allocated, previous)` physical destination mapping.
    pub dst: Option<(PhysReg, PhysReg)>,
    /// Correct-path branch whose prediction was wrong; resolves (and
    /// squashes) at execute.
    pub mispredicted: bool,
    /// The fetch policy was told about this load at issue.
    pub load_tracked: bool,
}

impl RobEntry {
    /// Deepest pipeline stage this instruction *completed*, for squash
    /// energy accounting (Fig. 10/11): dispatched instructions completed
    /// Rename and occupy the Queue; issued ones have executed; done ones
    /// have written their result back.
    pub fn deepest_stage(&self) -> PipelineStage {
        match self.state {
            InstrState::InQueue => PipelineStage::Queue,
            InstrState::Executing { .. } | InstrState::WaitingMem { .. } => {
                PipelineStage::Execute
            }
            InstrState::Done => PipelineStage::RegWrite,
        }
    }
}

/// A bounded, in-order reorder buffer for one hardware context.
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    /// ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// True when another instruction can dispatch.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append a dispatched instruction (program order). Panics when
    /// full — callers must check [`Rob::has_room`].
    pub fn push(&mut self, e: RobEntry) {
        assert!(self.has_room(), "ROB overflow");
        if let Some(last) = self.entries.back() {
            debug_assert!(e.token > last.token, "ROB must stay in program order");
        }
        self.entries.push_back(e);
    }

    /// Oldest instruction.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Remove and return the oldest instruction (commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Remove every entry younger than `keep_token`, appending them to
    /// `out` **newest first** (the order rename rollback requires).
    /// Into-style so the caller's scratch buffer survives across
    /// squashes (rule D10: the squash path must not allocate).
    pub fn squash_younger_into(&mut self, keep_token: u64, out: &mut Vec<RobEntry>) {
        while self.entries.back().is_some_and(|b| b.token > keep_token) {
            if let Some(e) = self.entries.pop_back() {
                out.push(e);
            }
        }
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Iterate with mutation, oldest → newest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// Find an entry by token, scanning from the head. Tokens are
    /// strictly increasing in program order ([`Rob::push`] asserts it),
    /// so a binary search would also work — but completions and memory
    /// returns overwhelmingly resolve instructions near the head, where
    /// a forward linear scan finds them in a couple of probes (measured
    /// faster than `VecDeque::binary_search_by`'s ~8 scattered ones).
    pub fn find_mut(&mut self, token: u64) -> Option<&mut RobEntry> {
        self.entries.iter_mut().find(|e| e.token == token)
    }

    /// Index of `token`, by binary search on the strictly-increasing
    /// token order. The issue stage resolves candidates through this:
    /// freshly-woken instructions sit near the *tail* of a deep ROB,
    /// where the head-first scan of [`Rob::find_mut`] degenerates. The
    /// index stays valid only until the next push/pop/squash.
    pub fn index_of(&self, token: u64) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.entries.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let t = self.entries[mid].token;
            if t == token {
                return Some(mid);
            } else if t < token {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        None
    }

    /// Entry at `index` (from [`Rob::index_of`]).
    pub fn entry_at(&self, index: usize) -> &RobEntry {
        &self.entries[index]
    }

    /// Mutable entry at `index` (from [`Rob::index_of`]).
    pub fn entry_at_mut(&mut self, index: usize) -> &mut RobEntry {
        &mut self.entries[index]
    }

    /// [`find_mut`](Self::find_mut) for tokens the core knows are
    /// resident. Invariant: every token parked in the issue queues, the
    /// exec heap or `req_map` is removed from those structures by the
    /// same squash that removes its ROB entry, so a tracked token
    /// always resolves. Centralising the panic here keeps the cycle
    /// loop's call sites free of bare `unwrap()`s (lint rule D3).
    pub fn tracked_mut(&mut self, token: u64) -> &mut RobEntry {
        // lint: allow(D3) -- documented invariant: tracked tokens are evicted from side structures before their ROB entry
        self.find_mut(token).expect("tracked token resident in ROB")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(token: u64) -> RobEntry {
        RobEntry {
            token,
            instr: DynInstr::nop(token, 0x1000 + token * 4),
            wrong_path: false,
            state: InstrState::InQueue,
            queue: QueueKind::Int,
            srcs: [None, None],
            dst: None,
            mispredicted: false,
            load_tracked: false,
        }
    }

    #[test]
    fn queue_kind_mapping() {
        assert_eq!(QueueKind::of(InstrClass::IntAlu), QueueKind::Int);
        assert_eq!(QueueKind::of(InstrClass::BranchCond), QueueKind::Int);
        assert_eq!(QueueKind::of(InstrClass::FpMul), QueueKind::Fp);
        assert_eq!(QueueKind::of(InstrClass::Load), QueueKind::Ls);
        assert_eq!(QueueKind::of(InstrClass::Store), QueueKind::Ls);
    }

    #[test]
    fn fifo_commit_order() {
        let mut r = Rob::new(8);
        for t in 0..5 {
            r.push(entry(t));
        }
        assert_eq!(r.head().unwrap().token, 0);
        assert_eq!(r.pop_head().unwrap().token, 0);
        assert_eq!(r.head().unwrap().token, 1);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn capacity_enforced() {
        let mut r = Rob::new(2);
        r.push(entry(0));
        r.push(entry(1));
        assert!(!r.has_room());
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut r = Rob::new(1);
        r.push(entry(0));
        r.push(entry(1));
    }

    #[test]
    fn squash_removes_younger_newest_first() {
        let mut r = Rob::new(16);
        for t in 0..10 {
            r.push(entry(t));
        }
        let mut removed = Vec::new();
        r.squash_younger_into(4, &mut removed);
        let tokens: Vec<u64> = removed.iter().map(|e| e.token).collect();
        assert_eq!(tokens, vec![9, 8, 7, 6, 5]);
        assert_eq!(r.len(), 5);
        assert_eq!(r.iter().last().unwrap().token, 4);
    }

    #[test]
    fn squash_with_future_token_is_noop() {
        let mut r = Rob::new(8);
        r.push(entry(0));
        let mut removed = Vec::new();
        r.squash_younger_into(100, &mut removed);
        assert!(removed.is_empty());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn deepest_stage_by_state() {
        let mut e = entry(0);
        assert_eq!(e.deepest_stage(), PipelineStage::Queue);
        e.state = InstrState::Executing { done_at: 5 };
        assert_eq!(e.deepest_stage(), PipelineStage::Execute);
        e.state = InstrState::WaitingMem { req: 3 };
        assert_eq!(e.deepest_stage(), PipelineStage::Execute);
        e.state = InstrState::Done;
        assert_eq!(e.deepest_stage(), PipelineStage::RegWrite);
    }

    #[test]
    fn find_mut_locates_entry() {
        let mut r = Rob::new(8);
        for t in 0..5 {
            r.push(entry(t));
        }
        r.find_mut(3).unwrap().state = InstrState::Done;
        assert_eq!(
            r.iter().find(|e| e.token == 3).unwrap().state,
            InstrState::Done
        );
        assert!(r.find_mut(99).is_none());
    }
}
