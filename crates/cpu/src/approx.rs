//! Commit-rate ("IPC approx") core backend.
//!
//! [`IpcApproxCore`] replaces the detailed ROB/IQ pipeline with a
//! single in-order commit window per thread: instructions are fetched
//! straight into the window and commit from its head at up to
//! `commit_width` per cycle, except that a load whose miss is still
//! outstanding blocks the head — the one mechanism this paper is
//! about. Everything else (rename, issue queues, execution units,
//! branch prediction, wrong-path fetch, store-to-load forwarding) is
//! elided, which is what makes the backend an order of magnitude
//! cheaper than [`crate::DetailedCore`].
//!
//! Crucially the backend still *drives the fetch policy*: it publishes
//! per-thread [`ThreadSnapshot`]s each cycle, forwards every memory
//! event ([`FetchPolicy::on_load_issue`] / `on_l1d_miss` / `on_l2_miss`
//! / `on_load_complete`), and executes [`PolicyAction::Flush`] /
//! `Stall` / `Resume` with the same replay semantics as the detailed
//! core (squashed correct-path work is un-fetched back into the stream
//! and re-fetched later). A policy study run at this fidelity sees the
//! same interface, only a coarser machine.
//!
//! Deliberate approximations, documented for consumers:
//!
//! * branch prediction is perfect ([`IpcApproxCore::branch_accuracy`]
//!   reports 1.0, `mispredicts` stays 0) and there is no wrong path;
//! * stores are fire-and-forget at fetch time (no store queue);
//! * non-memory execution latency is folded into the commit rate;
//! * squash energy is accounted at a flat [`PipelineStage::Queue`]
//!   depth rather than per-stage.

use crate::config::CoreConfig;
use crate::stats::{CoreStats, ThreadProbe, ThreadStats};
use crate::thread::{FetchGate, ThreadProgram};
use smtsim_energy::{EnergyAccount, PipelineStage, SquashCause};
use smtsim_mem::addr::bank_of;
use smtsim_mem::{AccessKind, AccessResult, MemEvent, MemoryModel, ReqId};
use smtsim_obs::{EventRing, TraceEvent};
use smtsim_policy::{FetchPolicy, PolicyAction, ThreadSnapshot};
use smtsim_trace::{BasicBlockDict, DynInstr, InstrClass, InstrStream, ReplayableStream};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// One instruction in a thread's commit window.
struct WindowEntry {
    token: u64,
    instr: DynInstr,
    /// A load whose miss is still outstanding (the request id lives in
    /// [`IpcApproxCore::waiters`], keyed back to this token).
    waiting: bool,
}

/// Per-thread state of the approximate backend.
struct ApproxThread {
    stream: ReplayableStream<Box<dyn InstrStream + Send>>,
    dict: Arc<BasicBlockDict>,
    warm_regions: [(u64, u64); 2],
    /// In-order commit window (the ROB stand-in), oldest at the front.
    window: VecDeque<WindowEntry>,
    gate: FetchGate,
    energy: EnergyAccount,
    committed: u64,
    fetched: u64,
    branches: u64,
    loads_issued: u64,
    flushes: u64,
    branches_in_flight: u32,
    l1d_misses_in_flight: u32,
}

impl ApproxThread {
    /// Outstanding loads in the window. Every `waiting` entry is one
    /// L1D miss in flight, so the incrementally-maintained counter is
    /// the window scan's answer at O(1).
    fn waiting_count(&self) -> u32 {
        self.l1d_misses_in_flight
    }
}

/// The reduced-fidelity core backend (see module docs).
pub struct IpcApproxCore {
    core_id: u32,
    cfg: CoreConfig,
    threads: Vec<ApproxThread>,
    policy: Box<dyn FetchPolicy>,
    next_token: u64,
    /// Outstanding memory request → (thread, window token). Kept in
    /// lock-step with the windows' `waiting` slots so completions
    /// resolve without scanning every window.
    waiters: BTreeMap<ReqId, (usize, u64)>,
    commit_log: Option<Vec<(usize, u64)>>,
    trace: Option<EventRing>,
    snaps: Vec<ThreadSnapshot>,
    prio: Vec<usize>,
    actions: Vec<PolicyAction>,
    /// FLUSH-path scratch (D10: flushes happen inside the cycle loop
    /// and must not allocate).
    replay_scratch: Vec<DynInstr>,
    squashed_loads_scratch: Vec<u64>,
    fetch_active_cycles: u64,
    rob_full_stalls: u64,
    mshr_retries: u64,
    flushes_executed: u64,
    stalls_executed: u64,
}

impl IpcApproxCore {
    /// Build a core running `programs` (one per hardware context) under
    /// `policy`. Same contract as [`crate::DetailedCore::new`].
    pub fn new(
        core_id: u32,
        cfg: CoreConfig,
        policy: Box<dyn FetchPolicy>,
        programs: Vec<ThreadProgram>,
    ) -> Self {
        cfg.validate().expect("invalid CoreConfig");
        assert_eq!(
            programs.len(),
            cfg.contexts as usize,
            "one program per hardware context"
        );
        let threads = programs
            .into_iter()
            .map(|p| ApproxThread {
                stream: ReplayableStream::new(p.stream),
                dict: p.dict,
                warm_regions: p.warm_regions,
                window: VecDeque::new(),
                gate: FetchGate::Open,
                energy: EnergyAccount::new(),
                committed: 0,
                fetched: 0,
                branches: 0,
                loads_issued: 0,
                flushes: 0,
                branches_in_flight: 0,
                l1d_misses_in_flight: 0,
            })
            .collect();
        IpcApproxCore {
            core_id,
            cfg,
            threads,
            policy,
            next_token: 1,
            waiters: BTreeMap::new(),
            commit_log: None,
            trace: None,
            snaps: Vec::new(),
            prio: Vec::new(),
            actions: Vec::new(),
            replay_scratch: Vec::new(),
            squashed_loads_scratch: Vec::new(),
            fetch_active_cycles: 0,
            rob_full_stalls: 0,
            mshr_retries: 0,
            flushes_executed: 0,
            stalls_executed: 0,
        }
    }

    /// This core's id (its port index on the shared memory system).
    pub fn id(&self) -> u32 {
        self.core_id
    }

    /// Name of the active fetch policy.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Access the policy (e.g. for MFLUSH statistics downcasts).
    pub fn policy(&self) -> &dyn FetchPolicy {
        self.policy.as_ref()
    }

    /// Warm caches and TLBs exactly like the detailed core: each
    /// thread's code, its L1-resident and its L2-resident working set.
    pub fn prewarm(&mut self, mem: &mut MemoryModel) {
        const LINE: u64 = 64;
        const PAGE: u64 = 8192;
        for t in &self.threads {
            let base = t.dict.entry_pc();
            let bytes = t.dict.code_bytes();
            let mut a = base;
            while a < base + bytes {
                mem.prewarm_line(self.core_id, AccessKind::IFetch, a);
                a += LINE;
            }
            let mut p = base & !(PAGE - 1);
            while p < base + bytes {
                mem.prewarm_tlb(self.core_id, AccessKind::IFetch, p);
                p += PAGE;
            }
            let [(l1b, l1s), (l2b, l2s)] = t.warm_regions;
            let mut a = l1b;
            while a < l1b + l1s {
                mem.prewarm_line(self.core_id, AccessKind::Load, a);
                a += LINE;
            }
            let mut a = l2b;
            while a < l2b + l2s {
                mem.prewarm_l2_line(self.core_id, a);
                a += LINE;
            }
            for (rb, rs) in [(l1b, l1s), (l2b, l2s)] {
                let mut p = rb & !(PAGE - 1);
                while p < rb + rs {
                    mem.prewarm_tlb(self.core_id, AccessKind::Load, p);
                    p += PAGE;
                }
            }
        }
    }

    /// Advance one cycle. The caller must have ticked `mem` for `now`
    /// already (same protocol as the detailed core).
    pub fn tick(&mut self, now: u64, mem: &mut MemoryModel) {
        self.process_mem(now, mem);
        self.commit(now);
        let acted = self.run_policy(now);
        self.fetch(now, mem, acted);
    }

    /// This backend opts out of stall skip-ahead: it returns `from`
    /// ("could act every cycle"), so the simulator never skips. It is
    /// already an order of magnitude cheaper than the detailed core,
    /// and the commit-window model has no cheap quiescence proof (the
    /// window head may unblock any cycle a completion lands).
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        from
    }

    /// No-op: with [`Self::next_event_cycle`] pinned to `from`, cycles
    /// are never skipped at this fidelity.
    pub fn notify_skip(&mut self, _from: u64, _cycles: u64) {}

    fn process_mem(&mut self, now: u64, mem: &mut MemoryModel) {
        for ev in mem.drain_events(self.core_id) {
            match ev {
                MemEvent::L2MissDetected { req, at } => {
                    if let Some(&(tid, token)) = self.waiters.get(&req) {
                        self.policy.on_l2_miss(tid, token, at);
                    }
                }
            }
        }
        for c in mem.drain_completions(self.core_id) {
            let Some((tid, token)) = self.waiters.remove(&c.req) else {
                continue; // stores and squash orphans complete silently
            };
            let t = &mut self.threads[tid];
            if let Some(e) = t.window.iter_mut().find(|e| e.token == token) {
                e.waiting = false;
            }
            t.l1d_misses_in_flight = t.l1d_misses_in_flight.saturating_sub(1);
            let mut resume = false;
            if let FetchGate::Flushed { offender } = t.gate {
                if offender == token {
                    t.gate = FetchGate::Open;
                    resume = true;
                }
            }
            self.policy
                .on_load_complete(tid, token, c.bank, Some(c.l2_hit), c.latency(), now);
            if resume {
                self.policy.on_thread_resumed(tid, now);
            }
        }
    }

    fn commit(&mut self, _now: u64) {
        let log = &mut self.commit_log;
        for (tid, t) in self.threads.iter_mut().enumerate() {
            let mut budget = self.cfg.commit_width;
            while budget > 0 {
                match t.window.front() {
                    Some(e) if !e.waiting => {
                        // lint: allow(D3) -- front() above proved the window is non-empty
                        let e = t.window.pop_front().expect("window head");
                        t.committed += 1;
                        t.energy.commit();
                        if e.instr.class == InstrClass::BranchCond {
                            t.branches += 1;
                            t.branches_in_flight = t.branches_in_flight.saturating_sub(1);
                        }
                        if let Some(log) = log.as_mut() {
                            log.push((tid, e.instr.seq));
                        }
                        budget -= 1;
                    }
                    _ => break, // empty, or the head load is outstanding
                }
            }
        }
    }

    fn build_snapshots(&mut self) {
        self.snaps.clear();
        for (tid, t) in self.threads.iter().enumerate() {
            self.snaps.push(ThreadSnapshot {
                tid,
                in_frontend: 0,
                // Un-executed window residents play the issue-queue
                // role for ICOUNT-style priority.
                in_queues: t.waiting_count(),
                in_rob: t.window.len() as u32,
                branches_in_flight: t.branches_in_flight,
                l1d_misses_in_flight: t.l1d_misses_in_flight,
                gated: t.gate != FetchGate::Open,
                committed: t.committed,
            });
        }
    }

    /// Run the policy. Returns `true` if any action was executed (so
    /// the snapshots built here are stale for the fetch stage).
    fn run_policy(&mut self, now: u64) -> bool {
        self.build_snapshots();
        self.actions.clear();
        let mut actions = std::mem::take(&mut self.actions);
        self.policy.tick(now, &self.snaps, &mut actions);
        let acted = !actions.is_empty();
        for a in actions.drain(..) {
            match a {
                PolicyAction::Flush { tid, token } => self.execute_flush(tid, token, now),
                PolicyAction::Stall { tid } => {
                    if self.threads[tid].gate == FetchGate::Open {
                        self.threads[tid].gate = FetchGate::PolicyStall;
                        self.stalls_executed += 1;
                        if let Some(ring) = &mut self.trace {
                            ring.emit(
                                now,
                                TraceEvent::Stall {
                                    core: self.core_id,
                                    tid: tid as u32,
                                },
                            );
                        }
                    }
                }
                PolicyAction::Resume { tid } => {
                    if self.threads[tid].gate == FetchGate::PolicyStall {
                        self.threads[tid].gate = FetchGate::Open;
                    }
                }
            }
        }
        self.actions = actions;
        acted
    }

    /// FLUSH response action: drop every window entry younger than the
    /// offending load, replay them into the stream, gate fetch until
    /// the load completes.
    fn execute_flush(&mut self, tid: usize, token: u64, now: u64) {
        let outstanding = self.threads[tid]
            .window
            .iter()
            .any(|e| e.token == token && e.waiting);
        if !outstanding {
            // Raced with the completion; tell the policy the thread runs.
            self.policy.on_thread_resumed(tid, now);
            return;
        }
        let mut squashed: u32 = 0;
        let mut replay = std::mem::take(&mut self.replay_scratch);
        replay.clear();
        let mut squashed_loads = std::mem::take(&mut self.squashed_loads_scratch);
        squashed_loads.clear();
        {
            let t = &mut self.threads[tid];
            while let Some(e) = t.window.back() {
                if e.token <= token {
                    break;
                }
                // lint: allow(D3) -- back() above proved the window is non-empty
                let e = t.window.pop_back().expect("window tail");
                squashed += 1;
                if e.instr.class == InstrClass::BranchCond {
                    t.branches_in_flight = t.branches_in_flight.saturating_sub(1);
                }
                if e.waiting {
                    t.l1d_misses_in_flight = t.l1d_misses_in_flight.saturating_sub(1);
                }
                if e.instr.class == InstrClass::Load {
                    squashed_loads.push(e.token);
                }
                t.energy.squash(SquashCause::Flush, PipelineStage::Queue);
                replay.push(e.instr);
            }
            replay.reverse(); // back-to-front pops → program order
            t.stream.unfetch(replay.drain(..));
            // Squashed loads' requests stay in flight in the memory
            // system; dropping their waiter entries makes each
            // completion a silent squash orphan. Flushes are rare and
            // the map is small, so the scan is off the hot path.
            self.waiters
                .retain(|_, &mut (wtid, wtok)| wtid != tid || wtok <= token);
            t.gate = FetchGate::Flushed { offender: token };
            t.flushes += 1;
        }
        for lt in squashed_loads.drain(..) {
            self.policy.on_load_squashed(tid, lt);
        }
        self.replay_scratch = replay;
        self.squashed_loads_scratch = squashed_loads;
        self.flushes_executed += 1;
        if let Some(ring) = &mut self.trace {
            ring.emit(
                now,
                TraceEvent::Flush {
                    core: self.core_id,
                    tid: tid as u32,
                    squashed,
                },
            );
        }
    }

    fn fetch(&mut self, now: u64, mem: &mut MemoryModel, snaps_stale: bool) {
        // Nothing between run_policy's snapshot build and here mutates
        // thread state unless an action was executed, so the common
        // (no-action) cycle reuses the snapshots as-is.
        if snaps_stale {
            self.build_snapshots();
        }
        let mut prio = std::mem::take(&mut self.prio);
        self.policy.fetch_priority(now, &self.snaps, &mut prio);
        let mut budget = self.cfg.fetch_width;
        let mut threads_used = 0;
        let mut fetched_any_cycle = false;
        for &tid in prio.iter() {
            if budget == 0 || threads_used == self.cfg.fetch_threads {
                break;
            }
            if self.threads[tid].gate != FetchGate::Open {
                continue;
            }
            let fetched = self.fetch_thread(tid, now, mem, &mut budget);
            if fetched > 0 {
                fetched_any_cycle = true;
                threads_used += 1;
                if let Some(ring) = &mut self.trace {
                    ring.emit(
                        now,
                        TraceEvent::FetchSlots {
                            core: self.core_id,
                            tid: tid as u32,
                            slots: fetched,
                        },
                    );
                }
            }
        }
        if fetched_any_cycle {
            self.fetch_active_cycles += 1;
        }
        self.prio = prio;
    }

    /// Fetch up to `budget` instructions into `tid`'s window. Returns
    /// the number fetched.
    fn fetch_thread(&mut self, tid: usize, now: u64, mem: &mut MemoryModel, budget: &mut u32) -> u32 {
        let mut fetched = 0;
        // Field-disjoint borrows: the thread, the policy and the waiter
        // map are separate fields, so one bounds check serves the whole
        // loop (this runs once per fetched instruction).
        let t = &mut self.threads[tid];
        let policy = &mut *self.policy;
        while *budget > 0 {
            if t.window.len() >= self.cfg.rob_per_thread as usize {
                self.rob_full_stalls += 1;
                break;
            }
            let instr = t.stream.fetch();
            let token = self.next_token;
            self.next_token += 1;
            let mut waiting = false;
            match instr.class {
                InstrClass::Load => match mem.access(self.core_id, AccessKind::Load, instr.mem_addr, now) {
                    AccessResult::L1Hit { .. } => {
                        t.loads_issued += 1;
                        policy.on_load_l1_hit(tid, token, instr.pc, now);
                    }
                    AccessResult::Miss { req, .. } => {
                        let bank = bank_of(instr.mem_addr, mem.config().l2_banks);
                        waiting = true;
                        self.waiters.insert(req, (tid, token));
                        t.loads_issued += 1;
                        t.l1d_misses_in_flight += 1;
                        policy.on_load_issue(tid, token, instr.pc, now);
                        policy.on_l1d_miss(tid, token, bank, now);
                    }
                    AccessResult::MshrFull => {
                        // Put the load back and retry next cycle.
                        t.stream.unfetch([instr]);
                        self.next_token -= 1;
                        self.mshr_retries += 1;
                        break;
                    }
                },
                InstrClass::Store => {
                    // Fire-and-forget: warms the hierarchy, never blocks.
                    let _ = mem.access(self.core_id, AccessKind::Store, instr.mem_addr, now);
                }
                InstrClass::BranchCond => {
                    t.branches_in_flight += 1;
                }
                _ => {}
            }
            t.fetched += 1;
            t.window.push_back(WindowEntry {
                token,
                instr,
                waiting,
            });
            *budget -= 1;
            fetched += 1;
        }
        fetched
    }

    /// Snapshot the core's statistics. Counters the backend does not
    /// model (mispredicts, queue/register stalls, store forwards) stay
    /// zero — consumers see "none happened", not garbage.
    pub fn stats(&self) -> CoreStats {
        CoreStats {
            threads: self
                .threads
                .iter()
                .map(|t| ThreadStats {
                    committed: t.committed,
                    fetched: t.fetched,
                    branches: t.branches,
                    mispredicts: 0,
                    loads_issued: t.loads_issued,
                    flushes: t.flushes,
                    energy: t.energy.clone(),
                })
                .collect(),
            fetch_active_cycles: self.fetch_active_cycles,
            iq_full_stalls: 0,
            reg_full_stalls: 0,
            rob_full_stalls: self.rob_full_stalls,
            mshr_retries: self.mshr_retries,
            flushes_executed: self.flushes_executed,
            stalls_executed: self.stalls_executed,
            store_forwards: 0,
        }
    }

    /// Branch prediction is perfect at this fidelity.
    pub fn branch_accuracy(&self) -> f64 {
        1.0
    }

    /// One-line diagnostic snapshot of window occupancy.
    pub fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("ipc-approx ");
        for (tid, t) in self.threads.iter().enumerate() {
            let _ = write!(
                s,
                "| t{tid}: window={} waiting={} gate={:?} ",
                t.window.len(),
                t.waiting_count(),
                t.gate,
            );
        }
        s
    }

    /// Start recording `(tid, trace_seq)` for every commit.
    pub fn enable_commit_log(&mut self) {
        self.commit_log = Some(Vec::new());
    }

    /// Start recording trace events into a ring keeping the most
    /// recent `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventRing::new(capacity));
    }

    /// The core's event ring (`None` unless [`Self::enable_trace`] was
    /// called).
    pub fn trace(&self) -> Option<&EventRing> {
        self.trace.as_ref()
    }

    /// The recorded commit log (empty when not enabled).
    pub fn commit_log(&self) -> &[(usize, u64)] {
        self.commit_log.as_deref().unwrap_or(&[])
    }

    /// Total committed instructions.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Structured per-thread pipeline snapshots (window depth reported
    /// as ROB occupancy).
    pub fn thread_snapshots(&self) -> Vec<ThreadProbe> {
        self.threads
            .iter()
            .enumerate()
            .map(|(tid, t)| ThreadProbe {
                tid: tid as u32,
                gate: format!("{:?}", t.gate),
                frontend: 0,
                rob: t.window.len() as u32,
                icache_wait: false,
                committed: t.committed,
            })
            .collect()
    }
}
