//! Core and thread statistics snapshots.

use smtsim_energy::EnergyAccount;

/// Per-thread statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct ThreadStats {
    pub committed: u64,
    pub fetched: u64,
    pub branches: u64,
    pub mispredicts: u64,
    pub loads_issued: u64,
    pub flushes: u64,
    pub energy: EnergyAccount,
}

impl ThreadStats {
    /// Committed instructions per cycle over `cycles`.
    pub fn ipc(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.committed as f64 / cycles as f64
        }
    }

    /// Branch prediction accuracy (1.0 when no branches committed).
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// Point-in-time view of one hardware thread's pipeline state, taken
/// by the forward-progress watchdog when it aborts a livelocked run.
/// Unlike [`ThreadStats`] (cumulative counters), this captures *where*
/// the thread is stuck right now.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadProbe {
    /// Hardware thread id within the core.
    pub tid: u32,
    /// Fetch-gate state rendered as text (`"Open"`,
    /// `"PolicyStall"`, `"Flushed { offender: .. }"`).
    pub gate: String,
    /// Instructions waiting in the frontend buffer.
    pub frontend: u32,
    /// ROB occupancy.
    pub rob: u32,
    /// Whether fetch is blocked on an outstanding I-cache miss.
    pub icache_wait: bool,
    /// Instructions committed so far.
    pub committed: u64,
}

/// Per-core statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    pub threads: Vec<ThreadStats>,
    /// Cycles in which at least one instruction was fetched.
    pub fetch_active_cycles: u64,
    /// Issue-queue-full dispatch stalls.
    pub iq_full_stalls: u64,
    /// Register-file-exhausted dispatch stalls.
    pub reg_full_stalls: u64,
    /// ROB-full dispatch stalls.
    pub rob_full_stalls: u64,
    /// Load issues rejected because the MSHR file was full.
    pub mshr_retries: u64,
    /// FLUSH response actions executed.
    pub flushes_executed: u64,
    /// Policy stall actions executed.
    pub stalls_executed: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub store_forwards: u64,
}

impl CoreStats {
    /// Total committed instructions across contexts.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Core throughput in instructions per cycle.
    pub fn throughput(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / cycles as f64
        }
    }

    /// Merged energy ledger across contexts.
    pub fn energy(&self) -> EnergyAccount {
        let mut acc = EnergyAccount::new();
        for t in &self.threads {
            acc.merge(&t.energy);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_throughput() {
        let mut s = CoreStats::default();
        s.threads.push(ThreadStats {
            committed: 100,
            ..Default::default()
        });
        s.threads.push(ThreadStats {
            committed: 50,
            ..Default::default()
        });
        assert_eq!(s.total_committed(), 150);
        assert!((s.throughput(100) - 1.5).abs() < 1e-12);
        assert!((s.threads[0].ipc(100) - 1.0).abs() < 1e-12);
        assert_eq!(s.throughput(0), 0.0);
    }

    #[test]
    fn branch_accuracy() {
        let t = ThreadStats {
            branches: 100,
            mispredicts: 8,
            ..Default::default()
        };
        assert!((t.branch_accuracy() - 0.92).abs() < 1e-12);
        assert_eq!(ThreadStats::default().branch_accuracy(), 1.0);
    }

    #[test]
    fn energy_merges_threads() {
        use smtsim_energy::{PipelineStage, SquashCause};
        let mut a = ThreadStats::default();
        a.energy.commit_n(10);
        let mut b = ThreadStats::default();
        b.energy.squash(SquashCause::Flush, PipelineStage::Commit);
        let s = CoreStats {
            threads: vec![a, b],
            ..Default::default()
        };
        let e = s.energy();
        assert_eq!(e.committed(), 10);
        assert!((e.wasted_energy() - 1.0).abs() < 1e-12);
    }
}
