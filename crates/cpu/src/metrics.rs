//! The cpu crate's metric registrations — the single place a
//! cpu-owned stat gets its name, unit and doc string (DESIGN.md §12).
//!
//! Lint rule D8 cross-checks every `MetricSpec` here against
//! METRICS.md; the interval sampler in `smtsim-core::obs` computes the
//! values from [`crate::CoreStats`] deltas.

use smtsim_obs::{MetricKind, MetricSpec};

/// Per-thread committed instructions per cycle over the last interval.
pub const METRIC_THREAD_IPC: MetricSpec = MetricSpec {
    name: "cpu.thread.ipc",
    unit: "instr/cycle",
    kind: MetricKind::Gauge,
    krate: "cpu",
    doc: "Per-thread committed IPC over the last sampling interval.",
    figure: "Fig. 2",
};

/// Per-thread share of its core's fetch slots over the last interval.
pub const METRIC_THREAD_FETCH_SHARE: MetricSpec = MetricSpec {
    name: "cpu.thread.fetch_share",
    unit: "fraction",
    kind: MetricKind::Gauge,
    krate: "cpu",
    doc: "Thread's fraction of its core's fetched instructions over the last interval (0 when the core fetched nothing).",
    figure: "Fig. 6",
};

/// Cumulative FLUSH response actions executed per core.
pub const METRIC_CORE_FLUSHES: MetricSpec = MetricSpec {
    name: "cpu.core.flushes",
    unit: "events",
    kind: MetricKind::Counter,
    krate: "cpu",
    doc: "Cumulative FLUSH response actions executed on the core.",
    figure: "Fig. 9",
};

/// Cumulative STALL response actions executed per core.
pub const METRIC_CORE_STALLS: MetricSpec = MetricSpec {
    name: "cpu.core.stalls",
    unit: "events",
    kind: MetricKind::Counter,
    krate: "cpu",
    doc: "Cumulative STALL response actions executed on the core.",
    figure: "Fig. 9",
};

/// All cpu-crate metrics, in registration order.
pub const METRICS: &[MetricSpec] = &[
    METRIC_THREAD_IPC,
    METRIC_THREAD_FETCH_SHARE,
    METRIC_CORE_FLUSHES,
    METRIC_CORE_STALLS,
];
