//! Shared physical register file and per-context rename maps.
//!
//! Fig. 1: 320 physical registers shared by the core's two contexts.
//! Each context permanently pins one physical register per architectural
//! register; the remainder form the rename free list. Register pressure
//! is one of the resources a blocked thread monopolises — and one of the
//! resources FLUSH reclaims.

use smtsim_trace::{LogReg, NUM_LOG_REGS};

/// Physical register index.
pub type PhysReg = u16;

/// The register file + rename state.
#[derive(Debug, Clone)]
pub struct RegFile {
    ready: Vec<bool>,
    free: Vec<PhysReg>,
    /// Per-context map: logical → physical.
    maps: Vec<[PhysReg; NUM_LOG_REGS as usize]>,
    allocs: u64,
    high_watermark: usize,
}

impl RegFile {
    /// File with `phys_regs` registers serving `contexts` contexts.
    /// Panics if there is no rename headroom.
    pub fn new(phys_regs: u32, contexts: u32) -> Self {
        let pinned = contexts as usize * NUM_LOG_REGS as usize;
        assert!(
            (phys_regs as usize) > pinned,
            "need more than {pinned} physical registers"
        );
        let mut maps = Vec::with_capacity(contexts as usize);
        let mut next: PhysReg = 0;
        for _ in 0..contexts {
            let mut m = [0 as PhysReg; NUM_LOG_REGS as usize];
            for slot in m.iter_mut() {
                *slot = next;
                next += 1;
            }
            maps.push(m);
        }
        let mut ready = vec![false; phys_regs as usize];
        for r in ready.iter_mut().take(pinned) {
            *r = true;
        }
        let free: Vec<PhysReg> = (pinned as PhysReg..phys_regs as PhysReg).collect();
        RegFile {
            ready,
            free,
            maps,
            allocs: 0,
            high_watermark: 0,
        }
    }

    /// Current mapping of a logical register.
    #[inline]
    pub fn lookup(&self, ctx: usize, log: LogReg) -> PhysReg {
        self.maps[ctx][log as usize]
    }

    /// Rename `log` in `ctx` to a fresh physical register. Returns
    /// `(new, previous)` or `None` when the free list is empty (dispatch
    /// must stall).
    pub fn alloc(&mut self, ctx: usize, log: LogReg) -> Option<(PhysReg, PhysReg)> {
        let new = self.free.pop()?;
        self.allocs += 1;
        let prev = self.maps[ctx][log as usize];
        self.maps[ctx][log as usize] = new;
        self.ready[new as usize] = false;
        let in_use = self.ready.len() - self.free.len();
        self.high_watermark = self.high_watermark.max(in_use);
        Some((new, prev))
    }

    /// Undo a rename during a squash: restore the map and free the
    /// squashed instruction's destination. Must be called newest-first.
    pub fn rollback(&mut self, ctx: usize, log: LogReg, allocated: PhysReg, prev: PhysReg) {
        debug_assert_eq!(self.maps[ctx][log as usize], allocated, "rollback order");
        self.maps[ctx][log as usize] = prev;
        self.ready[allocated as usize] = false;
        self.free.push(allocated);
    }

    /// Release the *previous* mapping at commit (the committed value now
    /// lives in the new register).
    pub fn release(&mut self, prev: PhysReg) {
        self.ready[prev as usize] = false;
        self.free.push(prev);
    }

    /// Mark a register's value available (writeback).
    #[inline]
    pub fn mark_ready(&mut self, p: PhysReg) {
        self.ready[p as usize] = true;
    }

    /// Is the register's value available?
    #[inline]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p as usize]
    }

    /// Registers on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// (total allocations, peak registers in use).
    pub fn stats(&self) -> (u64, usize) {
        (self.allocs, self.high_watermark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_pins_architectural_registers() {
        let rf = RegFile::new(320, 2);
        assert_eq!(rf.free_count(), 320 - 128);
        // Context maps are disjoint.
        assert_ne!(rf.lookup(0, 5), rf.lookup(1, 5));
        // Architectural registers are ready.
        assert!(rf.is_ready(rf.lookup(0, 5)));
        assert!(rf.is_ready(rf.lookup(1, 63)));
    }

    #[test]
    fn alloc_renames_and_marks_not_ready() {
        let mut rf = RegFile::new(320, 2);
        let before = rf.lookup(0, 7);
        let (new, prev) = rf.alloc(0, 7).unwrap();
        assert_eq!(prev, before);
        assert_eq!(rf.lookup(0, 7), new);
        assert!(!rf.is_ready(new));
        rf.mark_ready(new);
        assert!(rf.is_ready(new));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = RegFile::new(130, 2); // only 2 rename regs
        assert!(rf.alloc(0, 0).is_some());
        assert!(rf.alloc(0, 1).is_some());
        assert!(rf.alloc(0, 2).is_none());
        assert_eq!(rf.free_count(), 0);
    }

    #[test]
    fn rollback_restores_map_and_frees() {
        let mut rf = RegFile::new(320, 2);
        let orig = rf.lookup(1, 3);
        let (a, p1) = rf.alloc(1, 3).unwrap();
        let (b, p2) = rf.alloc(1, 3).unwrap();
        assert_eq!(p2, a);
        let free_before = rf.free_count();
        // Newest first.
        rf.rollback(1, 3, b, p2);
        rf.rollback(1, 3, a, p1);
        assert_eq!(rf.lookup(1, 3), orig);
        assert_eq!(rf.free_count(), free_before + 2);
    }

    #[test]
    fn commit_releases_previous_mapping() {
        let mut rf = RegFile::new(320, 2);
        let (new, prev) = rf.alloc(0, 9).unwrap();
        rf.mark_ready(new);
        let free_before = rf.free_count();
        rf.release(prev);
        assert_eq!(rf.free_count(), free_before + 1);
        assert_eq!(rf.lookup(0, 9), new);
    }

    #[test]
    fn alloc_release_cycle_is_stable() {
        let mut rf = RegFile::new(140, 2); // 12 rename regs
        for i in 0..1000u64 {
            let log = (i % 60) as LogReg;
            let (new, prev) = rf.alloc(0, log).expect("steady state never exhausts");
            rf.mark_ready(new);
            rf.release(prev);
        }
        assert_eq!(rf.free_count(), (12 - 1 + 1)); // 12: every alloc paired with release
    }

    #[test]
    fn watermark_tracks_peak_usage() {
        let mut rf = RegFile::new(320, 2);
        let mut allocated = Vec::new();
        for i in 0..50 {
            allocated.push(rf.alloc(0, (i % 64) as LogReg).unwrap());
        }
        let (allocs, peak) = rf.stats();
        assert_eq!(allocs, 50);
        assert!(peak >= 128 + 50);
    }
}
