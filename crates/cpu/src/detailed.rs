//! The SMT core: fetch → decode/rename → issue → execute → commit, with
//! policy-driven fetch gating and the FLUSH response action.
//!
//! One [`DetailedCore::tick`] advances a cycle in reverse pipeline order
//! (memory returns, execute completions, commit, stores, issue,
//! dispatch, policy, fetch), matching SMTsim's structure. The core talks
//! to the shared [`MemoryModel`] for instruction fetches, loads and
//! stores, and to its [`FetchPolicy`] through snapshots, events and
//! actions.

use crate::config::CoreConfig;
use crate::bpred::PerceptronPredictor;
use crate::btb::Btb;
use crate::regfile::RegFile;
use crate::rob::{InstrState, QueueKind, RobEntry};
use crate::stats::{CoreStats, ThreadProbe, ThreadStats};
use crate::thread::{FetchGate, FrontendEntry, ThreadCtx, ThreadProgram, WrongPathMode};
use smtsim_energy::{PipelineStage, SquashCause};
use smtsim_mem::addr::{bank_of, line_base};
use smtsim_mem::{AccessKind, AccessResult, MemEvent, MemoryModel, ReqId};
use smtsim_obs::{EventRing, TraceEvent};
use smtsim_policy::{FetchPolicy, PolicyAction, ThreadSnapshot};
use smtsim_trace::{DynInstr, InstrClass, UncondKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// What an in-flight memory request resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemTarget {
    Load { tid: usize, token: u64 },
    IFetch { tid: usize },
    Store,
}

/// One SMT core.
pub struct DetailedCore {
    core_id: u32,
    cfg: CoreConfig,
    threads: Vec<ThreadCtx>,
    policy: Box<dyn FetchPolicy>,
    regs: RegFile,
    bpred: PerceptronPredictor,
    btb: Btb,
    /// Issue-queue occupancy [int, fp, ls] (shared).
    iq_used: [u32; 3],
    /// Per-thread issue-queue residency (for ICOUNT snapshots).
    iq_per_thread: Vec<u32>,
    /// Outstanding memory requests → what they complete.
    req_map: Vec<(ReqId, MemTarget)>,
    /// Committed stores awaiting their L1D access.
    store_queue: VecDeque<u64>,
    /// Scheduled execution completions: (done_at, tid, token).
    exec_heap: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Per-thread wrong-path prefetch buffers.
    wp_buffers: Vec<VecDeque<DynInstr>>,
    next_token: u64,
    /// Optional commit log: (tid, trace seq) per committed instruction.
    /// Used by tests to verify the golden property that every thread
    /// commits its trace in order, exactly once, across flushes and
    /// mispredicts.
    commit_log: Option<Vec<(usize, u64)>>,
    /// Optional event trace (None unless enabled: the disabled path is
    /// one branch, zero allocation — see DESIGN.md §12).
    trace: Option<EventRing>,
    /// Per-thread ROB-occupancy high-water marks (tracked only while
    /// tracing, to emit `rob_high_water` events).
    rob_high: Vec<u32>,
    /// Shared-IQ occupancy high-water mark (tracing only).
    iq_high: u32,
    // Reusable scratch.
    snaps: Vec<ThreadSnapshot>,
    prio: Vec<usize>,
    actions: Vec<PolicyAction>,
    /// Issue-stage candidate lists, one per queue kind (D10: the issue
    /// stage runs every cycle and must not allocate).
    iq_cands: [Vec<(u64, usize)>; 3],
    /// Squash-path scratch: drained front-end entries, removed ROB
    /// entries, and the two replay lists. Squashes are frequent enough
    /// (every mispredict, every FLUSH) to live inside the D10 contract.
    squash_fes: Vec<FrontendEntry>,
    squash_rob: Vec<RobEntry>,
    replay_buf: Vec<DynInstr>,
    replay_fe: Vec<DynInstr>,
    // Core-level stats.
    fetch_active_cycles: u64,
    iq_full_stalls: u64,
    reg_full_stalls: u64,
    rob_full_stalls: u64,
    mshr_retries: u64,
    flushes_executed: u64,
    stalls_executed: u64,
    store_forwards: u64,
}

impl DetailedCore {
    /// Build a core running `programs` (one per hardware context) under
    /// `policy`.
    pub fn new(
        core_id: u32,
        cfg: CoreConfig,
        policy: Box<dyn FetchPolicy>,
        programs: Vec<ThreadProgram>,
    ) -> Self {
        cfg.validate().expect("invalid CoreConfig");
        assert_eq!(
            programs.len(),
            cfg.contexts as usize,
            "one program per hardware context"
        );
        let threads: Vec<ThreadCtx> = programs
            .into_iter()
            .map(|p| ThreadCtx::new(p, cfg.rob_per_thread as usize, cfg.ras_entries as usize))
            .collect();
        DetailedCore {
            core_id,
            regs: RegFile::new(cfg.phys_regs, cfg.contexts),
            bpred: PerceptronPredictor::new(
                cfg.perceptrons,
                cfg.local_history_entries,
                cfg.contexts,
            ),
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            iq_used: [0; 3],
            iq_per_thread: vec![0; threads.len()],
            req_map: Vec::new(),
            store_queue: VecDeque::new(),
            exec_heap: BinaryHeap::new(),
            wp_buffers: (0..threads.len()).map(|_| VecDeque::new()).collect(),
            next_token: 1,
            commit_log: None,
            trace: None,
            rob_high: vec![0; threads.len()],
            iq_high: 0,
            snaps: Vec::new(),
            prio: Vec::new(),
            actions: Vec::new(),
            iq_cands: [Vec::new(), Vec::new(), Vec::new()],
            squash_fes: Vec::new(),
            squash_rob: Vec::new(),
            replay_buf: Vec::new(),
            replay_fe: Vec::new(),
            fetch_active_cycles: 0,
            iq_full_stalls: 0,
            reg_full_stalls: 0,
            rob_full_stalls: 0,
            mshr_retries: 0,
            flushes_executed: 0,
            stalls_executed: 0,
            store_forwards: 0,
            threads,
            policy,
            cfg,
        }
    }

    /// This core's id (its port index on the shared memory system).
    pub fn id(&self) -> u32 {
        self.core_id
    }

    /// Name of the active fetch policy.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Access the policy (e.g. for MFLUSH statistics downcasts).
    pub fn policy(&self) -> &dyn FetchPolicy {
        self.policy.as_ref()
    }

    /// Warm caches and TLBs to the trace-driven starting condition:
    /// each thread's code (L1I + L2 + I-TLB), its L1-resident working
    /// set (L1D + L2 + D-TLB) and its L2-resident working set (L2 +
    /// D-TLB). The main-memory stream stays cold — those accesses are
    /// *supposed* to miss. Call once before the measurement loop.
    pub fn prewarm(&mut self, mem: &mut MemoryModel) {
        const LINE: u64 = 64;
        const PAGE: u64 = 8192;
        for t in &self.threads {
            // Code.
            let base = t.dict.entry_pc();
            let bytes = t.dict.code_bytes();
            let mut a = base;
            while a < base + bytes {
                mem.prewarm_line(self.core_id, AccessKind::IFetch, a);
                a += LINE;
            }
            let mut p = base & !(PAGE - 1);
            while p < base + bytes {
                mem.prewarm_tlb(self.core_id, AccessKind::IFetch, p);
                p += PAGE;
            }
            // Data: L1 region into L1D + L2; L2 region into L2 only.
            let [(l1b, l1s), (l2b, l2s)] = t.warm_regions;
            let mut a = l1b;
            while a < l1b + l1s {
                mem.prewarm_line(self.core_id, AccessKind::Load, a);
                a += LINE;
            }
            let mut a = l2b;
            while a < l2b + l2s {
                mem.prewarm_l2_line(self.core_id, a);
                a += LINE;
            }
            for (rb, rs) in [(l1b, l1s), (l2b, l2s)] {
                let mut p = rb & !(PAGE - 1);
                while p < rb + rs {
                    mem.prewarm_tlb(self.core_id, AccessKind::Load, p);
                    p += PAGE;
                }
            }
        }
    }

    /// Advance one cycle. The caller must have ticked `mem` for `now`
    /// already.
    pub fn tick(&mut self, now: u64, mem: &mut MemoryModel) {
        self.process_mem(now, mem);
        self.exec_complete(now);
        self.commit(now);
        self.drain_stores(now, mem);
        self.issue(now, mem);
        self.dispatch(now);
        self.run_policy(now);
        self.fetch(now, mem);
    }

    // ----------------------------------------------------------------
    // Memory returns
    // ----------------------------------------------------------------

    fn process_mem(&mut self, now: u64, mem: &mut MemoryModel) {
        for ev in mem.drain_events(self.core_id) {
            match ev {
                MemEvent::L2MissDetected { req, at } => {
                    if let Some(&(_, MemTarget::Load { tid, token })) =
                        self.req_map.iter().find(|(r, _)| *r == req)
                    {
                        // Only correct-path tracked loads reach the policy.
                        if self.threads[tid]
                            .rob
                            .find_mut(token)
                            .map(|e| e.load_tracked && !e.wrong_path)
                            .unwrap_or(false)
                        {
                            self.policy.on_l2_miss(tid, token, at);
                        }
                    }
                }
            }
        }
        for c in mem.drain_completions(self.core_id) {
            let Some(pos) = self.req_map.iter().position(|(r, _)| *r == c.req) else {
                continue; // orphaned by a squash
            };
            let (_, target) = self.req_map.swap_remove(pos);
            match target {
                MemTarget::Load { tid, token } => {
                    let mut resume = false;
                    let mut notify = false;
                    if let Some(e) = self.threads[tid].rob.find_mut(token) {
                        e.state = InstrState::Done;
                        notify = e.load_tracked && !e.wrong_path;
                        if let Some((newr, _)) = e.dst {
                            self.regs.mark_ready(newr);
                        }
                    }
                    let t = &mut self.threads[tid];
                    t.l1d_misses_in_flight = t.l1d_misses_in_flight.saturating_sub(1);
                    if let FetchGate::Flushed { offender } = t.gate {
                        if offender == token {
                            t.gate = FetchGate::Open;
                            t.redirect_at = now + 1;
                            resume = true;
                        }
                    }
                    if notify {
                        self.policy.on_load_complete(
                            tid,
                            token,
                            c.bank,
                            Some(c.l2_hit),
                            c.latency(),
                            now,
                        );
                    }
                    if resume {
                        self.policy.on_thread_resumed(tid, now);
                    }
                }
                MemTarget::IFetch { tid } => {
                    self.threads[tid].icache_wait = None;
                }
                MemTarget::Store => {}
            }
        }
    }

    // ----------------------------------------------------------------
    // Execute completions (non-memory latencies + L1-hit loads)
    // ----------------------------------------------------------------

    fn exec_complete(&mut self, now: u64) {
        while let Some(&Reverse((done_at, _, _))) = self.exec_heap.peek() {
            if done_at > now {
                break;
            }
            let Some(Reverse((_, tid, token))) = self.exec_heap.pop() else {
                break; // unreachable: peek above returned Some
            };
            let (resolve_mispredict, load_complete, is_cond_branch, dst) =
                match self.threads[tid].rob.find_mut(token) {
                    Some(e) if matches!(e.state, InstrState::Executing { .. }) => {
                        e.state = InstrState::Done;
                        (
                            e.mispredicted && !e.wrong_path,
                            e.instr.class == InstrClass::Load
                                && e.load_tracked
                                && !e.wrong_path,
                            e.instr.class == InstrClass::BranchCond && !e.wrong_path,
                            e.dst,
                        )
                    }
                    _ => continue, // squashed
                };
            if let Some((newr, _)) = dst {
                self.regs.mark_ready(newr);
            }
            if is_cond_branch {
                let t = &mut self.threads[tid];
                t.branches_in_flight = t.branches_in_flight.saturating_sub(1);
            }
            if load_complete {
                // An L1-hit load: report completion with no L2 verdict.
                self.policy.on_load_complete(tid, token, 0, None, 3, now);
            }
            if resolve_mispredict {
                self.resolve_mispredict(tid, token, now);
            }
        }
    }

    /// A mispredicted branch resolved: squash its wrong-path shadow and
    /// redirect fetch to the correct path.
    fn resolve_mispredict(&mut self, tid: usize, branch_token: u64, now: u64) {
        self.squash_younger(tid, branch_token, SquashCause::BranchMispredict, now);
        let t = &mut self.threads[tid];
        t.wrong_path = None;
        self.wp_buffers[tid].clear();
        t.redirect_at = now + 1;
    }

    // ----------------------------------------------------------------
    // Commit
    // ----------------------------------------------------------------

    fn commit(&mut self, _now: u64) {
        for tid in 0..self.threads.len() {
            let mut budget = self.cfg.commit_width;
            while budget > 0 {
                let Some(head) = self.threads[tid].rob.head() else {
                    break;
                };
                if head.state != InstrState::Done {
                    break;
                }
                debug_assert!(!head.wrong_path, "wrong-path instruction at ROB head");
                let is_store = head.instr.class == InstrClass::Store;
                if is_store && self.store_queue.len() >= self.cfg.store_buffer as usize {
                    break; // store buffer backpressure
                }
                let Some(e) = self.threads[tid].rob.pop_head() else {
                    break; // unreachable: head() above returned Some
                };
                if let Some(log) = &mut self.commit_log {
                    log.push((tid, e.instr.seq));
                }
                if let Some((_, prev)) = e.dst {
                    self.regs.release(prev);
                }
                let t = &mut self.threads[tid];
                t.committed += 1;
                t.energy.commit();
                if e.instr.class == InstrClass::BranchCond {
                    t.branches += 1;
                    if e.mispredicted {
                        t.mispredicts += 1;
                    }
                }
                if is_store {
                    self.store_queue.push_back(e.instr.mem_addr);
                }
                budget -= 1;
            }
        }
    }

    // ----------------------------------------------------------------
    // Store drain (committed stores access the L1D)
    // ----------------------------------------------------------------

    fn drain_stores(&mut self, now: u64, mem: &mut MemoryModel) {
        for _ in 0..2 {
            let Some(&addr) = self.store_queue.front() else {
                break;
            };
            match mem.access(self.core_id, AccessKind::Store, addr, now) {
                AccessResult::L1Hit { .. } => {
                    self.store_queue.pop_front();
                }
                AccessResult::Miss { req, .. } => {
                    self.store_queue.pop_front();
                    debug_assert!(!self.req_map.iter().any(|(r, _)| *r == req), "duplicate req id {req} in req_map (store)");
                    self.req_map.push((req, MemTarget::Store));
                }
                AccessResult::MshrFull => break,
            }
        }
    }

    // ----------------------------------------------------------------
    // Issue
    // ----------------------------------------------------------------

    fn issue(&mut self, now: u64, mem: &mut MemoryModel) {
        // Gather ready candidates per queue, oldest (smallest token)
        // first across both threads.
        let mut cands = std::mem::take(&mut self.iq_cands);
        for list in cands.iter_mut() {
            list.clear();
        }
        for (tid, t) in self.threads.iter().enumerate() {
            for e in t.rob.iter() {
                if e.state == InstrState::InQueue {
                    let ready = e
                        .srcs
                        .iter()
                        .flatten()
                        .all(|&p| self.regs.is_ready(p));
                    if ready {
                        cands[e.queue.index()].push((e.token, tid));
                    }
                }
            }
        }
        let units = [self.cfg.int_units, self.cfg.fp_units, self.cfg.ls_units];
        for (qi, list) in cands.iter_mut().enumerate() {
            list.sort_unstable();
            let mut issued = 0;
            for &(token, tid) in list.iter() {
                if issued == units[qi] {
                    break;
                }
                if self.try_issue_one(tid, token, now, mem) {
                    issued += 1;
                }
            }
        }
        self.iq_cands = cands;
    }

    /// Issue one instruction; returns false when it must stay queued
    /// (MSHR full).
    fn try_issue_one(&mut self, tid: usize, token: u64, now: u64, mem: &mut MemoryModel) -> bool {
        let (class, addr, queue, addr_pc) = {
            let e = self.threads[tid].rob.tracked_mut(token);
            (e.instr.class, e.instr.mem_addr, e.queue, e.instr.pc)
        };
        let wrong_path = self.threads[tid]
            .rob
            .find_mut(token)
            .map(|e| e.wrong_path)
            .unwrap_or(true);

        match class {
            InstrClass::Load => {
                // Wrong-path loads execute without touching the data
                // cache (SMTsim models wrong-path effects on the
                // I-cache and branch predictor only; junk data accesses
                // would fabricate MSHR/bank traffic at made-up
                // addresses).
                if wrong_path {
                    let e = self.threads[tid].rob.tracked_mut(token);
                    e.state = InstrState::Executing { done_at: now + 1 };
                    self.exec_heap.push(Reverse((now + 1, tid, token)));
                    self.iq_used[queue.index()] -= 1;
                    self.iq_per_thread[tid] = self.iq_per_thread[tid].saturating_sub(1);
                    return true;
                }
                // Store-to-load forwarding: an older in-flight store of
                // the same thread to the same word supplies the data
                // directly (no cache access).
                if self.store_forward_hit(tid, token, addr) {
                    let e = self.threads[tid].rob.tracked_mut(token);
                    e.state = InstrState::Executing { done_at: now + 1 };
                    e.load_tracked = false;
                    self.exec_heap.push(Reverse((now + 1, tid, token)));
                    self.store_forwards += 1;
                    self.iq_used[queue.index()] -= 1;
                    self.iq_per_thread[tid] = self.iq_per_thread[tid].saturating_sub(1);
                    return true;
                }
                match mem.access(self.core_id, AccessKind::Load, addr, now) {
                    AccessResult::L1Hit { ready_at, .. } => {
                        let e = self.threads[tid].rob.tracked_mut(token);
                        e.state = InstrState::Executing { done_at: ready_at };
                        e.load_tracked = !wrong_path;
                        self.exec_heap.push(Reverse((ready_at, tid, token)));
                        if !wrong_path {
                            self.threads[tid].loads_issued += 1;
                            self.policy.on_load_issue(tid, token, addr_pc, now);
                        }
                    }
                    AccessResult::Miss { req, .. } => {
                        let bank = bank_of(addr, mem.config().l2_banks);
                        let e = self.threads[tid].rob.tracked_mut(token);
                        e.state = InstrState::WaitingMem { req };
                        e.load_tracked = !wrong_path;
                        debug_assert!(!self.req_map.iter().any(|(r, _)| *r == req), "duplicate req id {req} in req_map");
                        self.req_map.push((req, MemTarget::Load { tid, token }));
                        self.threads[tid].l1d_misses_in_flight += 1;
                        if !wrong_path {
                            self.threads[tid].loads_issued += 1;
                            self.policy.on_load_issue(tid, token, addr_pc, now);
                            self.policy.on_l1d_miss(tid, token, bank, now);
                        }
                    }
                    AccessResult::MshrFull => {
                        self.mshr_retries += 1;
                        return false;
                    }
                }
            }
            InstrClass::Store => {
                // Address generation only; memory access happens at
                // commit via the store queue.
                let e = self.threads[tid].rob.tracked_mut(token);
                e.state = InstrState::Executing { done_at: now + 1 };
                self.exec_heap.push(Reverse((now + 1, tid, token)));
            }
            _ => {
                let done = now + class.exec_latency() as u64;
                let e = self.threads[tid].rob.tracked_mut(token);
                e.state = InstrState::Executing { done_at: done };
                self.exec_heap.push(Reverse((done, tid, token)));
            }
        }
        // The instruction left its issue queue.
        self.iq_used[queue.index()] -= 1;
        self.iq_per_thread[tid] = self.iq_per_thread[tid].saturating_sub(1);
        true
    }

    /// True when an older same-thread store to the same 8-byte word is
    /// still in flight (in the ROB or the committed-store queue) — the
    /// load's data can be forwarded.
    fn store_forward_hit(&self, tid: usize, load_token: u64, addr: u64) -> bool {
        let word = addr & !7;
        let in_rob = self.threads[tid].rob.iter().any(|e| {
            e.token < load_token
                && e.instr.class == InstrClass::Store
                && (e.instr.mem_addr & !7) == word
        });
        in_rob || self.store_queue.iter().any(|&a| (a & !7) == word)
    }

    // ----------------------------------------------------------------
    // Dispatch (rename + ROB/IQ allocation)
    // ----------------------------------------------------------------

    fn dispatch(&mut self, now: u64) {
        let mut budget = self.cfg.dispatch_width;
        let n = self.threads.len();
        // Alternate the scan start for fairness.
        let start = (now as usize) % n;
        for k in 0..n {
            let tid = (start + k) % n;
            while budget > 0 {
                let Some(fe) = self.threads[tid].frontend.front().copied() else {
                    break;
                };
                if fe.fetched_at + self.cfg.frontend_latency > now {
                    break; // still in the front-end pipe
                }
                if !self.threads[tid].rob.has_room() {
                    self.rob_full_stalls += 1;
                    break;
                }
                let queue = QueueKind::of(fe.instr.class);
                let cap = [self.cfg.int_queue, self.cfg.fp_queue, self.cfg.ls_queue]
                    [queue.index()];
                if self.iq_used[queue.index()] >= cap {
                    self.iq_full_stalls += 1;
                    break;
                }
                // Rename: read sources first, then allocate the dest.
                let srcs = {
                    let mut s = [None, None];
                    for (i, lr) in fe.instr.srcs.iter().enumerate() {
                        if let Some(lr) = lr {
                            s[i] = Some(self.regs.lookup(tid, *lr));
                        }
                    }
                    s
                };
                let dst = if let Some(lr) = fe.instr.dst {
                    match self.regs.alloc(tid, lr) {
                        Some(pair) => Some(pair),
                        None => {
                            self.reg_full_stalls += 1;
                            break;
                        }
                    }
                } else {
                    None
                };
                self.threads[tid].frontend.pop_front();
                self.threads[tid].rob.push(RobEntry {
                    token: fe.token,
                    instr: fe.instr,
                    wrong_path: fe.wrong_path,
                    state: InstrState::InQueue,
                    queue,
                    srcs,
                    dst,
                    mispredicted: fe.mispredicted,
                    load_tracked: false,
                });
                self.iq_used[queue.index()] += 1;
                self.iq_per_thread[tid] += 1;
                if let Some(ring) = &mut self.trace {
                    let rob_occ = self.threads[tid].rob.len() as u32;
                    if rob_occ > self.rob_high[tid] {
                        self.rob_high[tid] = rob_occ;
                        ring.emit(
                            now,
                            TraceEvent::RobHighWater {
                                core: self.core_id,
                                tid: tid as u32,
                                occupancy: rob_occ,
                            },
                        );
                    }
                    let iq_occ: u32 = self.iq_used.iter().sum();
                    if iq_occ > self.iq_high {
                        self.iq_high = iq_occ;
                        ring.emit(
                            now,
                            TraceEvent::IqHighWater {
                                core: self.core_id,
                                occupancy: iq_occ,
                            },
                        );
                    }
                }
                budget -= 1;
            }
        }
    }

    // ----------------------------------------------------------------
    // Policy
    // ----------------------------------------------------------------

    fn build_snapshots(&mut self) {
        self.snaps.clear();
        for (tid, t) in self.threads.iter().enumerate() {
            self.snaps.push(ThreadSnapshot {
                tid,
                in_frontend: t.in_frontend(),
                in_queues: self.iq_per_thread[tid],
                in_rob: t.rob.len() as u32,
                branches_in_flight: t.branches_in_flight,
                l1d_misses_in_flight: t.l1d_misses_in_flight,
                gated: t.is_gated(),
                committed: t.committed,
            });
        }
    }

    fn run_policy(&mut self, now: u64) {
        self.build_snapshots();
        self.actions.clear();
        let mut actions = std::mem::take(&mut self.actions);
        self.policy.tick(now, &self.snaps, &mut actions);
        for a in actions.drain(..) {
            match a {
                PolicyAction::Flush { tid, token } => self.execute_flush(tid, token, now),
                PolicyAction::Stall { tid } => {
                    if self.threads[tid].gate == FetchGate::Open {
                        self.threads[tid].gate = FetchGate::PolicyStall;
                        self.stalls_executed += 1;
                        if let Some(ring) = &mut self.trace {
                            ring.emit(
                                now,
                                TraceEvent::Stall {
                                    core: self.core_id,
                                    tid: tid as u32,
                                },
                            );
                        }
                    }
                }
                PolicyAction::Resume { tid } => {
                    if self.threads[tid].gate == FetchGate::PolicyStall {
                        self.threads[tid].gate = FetchGate::Open;
                    }
                }
            }
        }
        self.actions = actions;
    }

    /// Execute the FLUSH response action on `tid`, keeping the offending
    /// load `token` and squashing everything younger.
    fn execute_flush(&mut self, tid: usize, token: u64, now: u64) {
        // Validate: the load must still be outstanding.
        let outstanding = self.threads[tid]
            .rob
            .find_mut(token)
            .map(|e| {
                matches!(
                    e.state,
                    InstrState::WaitingMem { .. } | InstrState::Executing { .. }
                )
            })
            .unwrap_or(false);
        if !outstanding {
            // Raced with the completion; tell the policy the thread runs.
            self.policy.on_thread_resumed(tid, now);
            return;
        }
        let squashed = self.squash_younger(tid, token, SquashCause::Flush, now);
        let t = &mut self.threads[tid];
        t.gate = FetchGate::Flushed { offender: token };
        t.flushes += 1;
        self.flushes_executed += 1;
        if let Some(ring) = &mut self.trace {
            ring.emit(
                now,
                TraceEvent::Flush {
                    core: self.core_id,
                    tid: tid as u32,
                    squashed,
                },
            );
        }
    }

    // ----------------------------------------------------------------
    // Squash machinery (branch recovery + FLUSH)
    // ----------------------------------------------------------------

    /// Squash every instruction of `tid` younger than `keep_token`:
    /// restore rename state, free queue slots, replay correct-path
    /// instructions into the stream, account squash energy. Returns the
    /// number of instructions removed (front-end + ROB, wrong-path
    /// included) — the `flush` trace event's cost figure.
    fn squash_younger(&mut self, tid: usize, keep_token: u64, cause: SquashCause, now: u64) -> u32 {
        // Front-end entries are all younger than anything in the ROB.
        let mut squashed: u32 = 0;
        let mut replay_frontend = std::mem::take(&mut self.replay_fe);
        replay_frontend.clear();
        let mut fes = std::mem::take(&mut self.squash_fes);
        fes.clear();
        {
            let t = &mut self.threads[tid];
            fes.extend(t.frontend.drain(..));
            squashed += fes.len() as u32;
            for fe in fes.drain(..) {
                debug_assert!(fe.token > keep_token);
                let stage = if now >= fe.fetched_at + 2 {
                    PipelineStage::Decode
                } else {
                    PipelineStage::Fetch
                };
                t.energy.squash(cause, stage);
                if fe.instr.class == InstrClass::BranchCond && !fe.wrong_path {
                    t.branches_in_flight = t.branches_in_flight.saturating_sub(1);
                }
                if !fe.wrong_path {
                    replay_frontend.push(fe.instr);
                }
            }
        }
        let mut removed = std::mem::take(&mut self.squash_rob);
        removed.clear();
        self.threads[tid].rob.squash_younger_into(keep_token, &mut removed);
        squashed += removed.len() as u32;
        let mut replay_rob = std::mem::take(&mut self.replay_buf);
        replay_rob.clear();
        for e in &removed {
            // Newest-first: rename rollback order is correct.
            if let (Some(lr), Some((newr, prev))) = (e.instr.dst, e.dst) {
                self.regs.rollback(tid, lr, newr, prev);
            }
            match e.state {
                InstrState::InQueue => {
                    self.iq_used[e.queue.index()] -= 1;
                    self.iq_per_thread[tid] = self.iq_per_thread[tid].saturating_sub(1);
                }
                InstrState::WaitingMem { req } => {
                    if let Some(pos) = self.req_map.iter().position(|(r, _)| *r == req) {
                        self.req_map.swap_remove(pos);
                    }
                    self.threads[tid].l1d_misses_in_flight = self.threads[tid]
                        .l1d_misses_in_flight
                        .saturating_sub(1);
                }
                _ => {}
            }
            if e.instr.class == InstrClass::BranchCond && !e.wrong_path {
                self.threads[tid].branches_in_flight = self.threads[tid]
                    .branches_in_flight
                    .saturating_sub(1);
            }
            if e.load_tracked && !e.wrong_path {
                self.policy.on_load_squashed(tid, e.token);
            }
            self.threads[tid].energy.squash(cause, e.deepest_stage());
            if !e.wrong_path {
                replay_rob.push(e.instr);
            }
        }
        // Replay in program order: ROB entries (reversed to oldest
        // first) then front-end entries.
        replay_rob.reverse();
        replay_rob.append(&mut replay_frontend);
        self.threads[tid].stream.unfetch(replay_rob.drain(..));
        self.squash_fes = fes;
        self.squash_rob = removed;
        self.replay_buf = replay_rob;
        self.replay_fe = replay_frontend;

        // If the wrong-path resolver died, the thread is back on the
        // correct path.
        let t = &mut self.threads[tid];
        if let Some(wp) = &t.wrong_path {
            if wp.resolver > keep_token {
                t.wrong_path = None;
                self.wp_buffers[tid].clear();
            }
        }
        // If a flush offender died (mispredict squashing past it), the
        // gate must open.
        if let FetchGate::Flushed { offender } = t.gate {
            if offender > keep_token {
                t.gate = FetchGate::Open;
                self.policy.on_thread_resumed(tid, now);
            }
        }
        squashed
    }

    // ----------------------------------------------------------------
    // Fetch
    // ----------------------------------------------------------------

    fn fetch(&mut self, now: u64, mem: &mut MemoryModel) {
        self.build_snapshots();
        let mut prio = std::mem::take(&mut self.prio);
        self.policy.fetch_priority(now, &self.snaps, &mut prio);
        let mut budget = self.cfg.fetch_width;
        let mut threads_used = 0;
        let mut fetched_any_cycle = false;
        for &tid in prio.iter() {
            if budget == 0 || threads_used == self.cfg.fetch_threads {
                break;
            }
            let t = &self.threads[tid];
            if t.is_gated() || t.icache_wait.is_some() || now < t.redirect_at {
                continue;
            }
            let fetched = self.fetch_thread(tid, now, mem, &mut budget);
            if fetched > 0 {
                fetched_any_cycle = true;
                threads_used += 1;
                if let Some(ring) = &mut self.trace {
                    ring.emit(
                        now,
                        TraceEvent::FetchSlots {
                            core: self.core_id,
                            tid: tid as u32,
                            slots: fetched,
                        },
                    );
                }
            }
        }
        if fetched_any_cycle {
            self.fetch_active_cycles += 1;
        }
        self.prio = prio;
    }

    /// Fetch up to `budget` instructions for one thread. Returns the
    /// number fetched.
    fn fetch_thread(
        &mut self,
        tid: usize,
        now: u64,
        mem: &mut MemoryModel,
        budget: &mut u32,
    ) -> u32 {
        let mut fetched = 0;
        let mut line: Option<u64> = None;
        let mut crossed_lines = 0;
        while *budget > 0 {
            if self.threads[tid].frontend.len() >= self.cfg.fetch_queue as usize {
                break; // fetch queue full: bounded run-ahead
            }
            // Next PC on the active path.
            let wrong_path = self.threads[tid].wrong_path.is_some();
            let pc = if wrong_path {
                self.peek_wrong_path(tid).pc
            } else {
                self.threads[tid].stream.peek().pc
            };
            // I-cache: at most one new line per thread per cycle.
            let l = line_base(pc);
            if line != Some(l) {
                if crossed_lines == 1 {
                    break;
                }
                match mem.access(self.core_id, AccessKind::IFetch, pc, now) {
                    AccessResult::L1Hit { .. } => {
                        line = Some(l);
                        crossed_lines += 1;
                    }
                    AccessResult::Miss { req, .. } => {
                        self.threads[tid].icache_wait = Some(req);
                        debug_assert!(!self.req_map.iter().any(|(r, _)| *r == req), "duplicate req id {req} in req_map (ifetch)");
                        self.req_map.push((req, MemTarget::IFetch { tid }));
                        break;
                    }
                    AccessResult::MshrFull => break,
                }
            }
            // Pull the instruction.
            let (instr, is_wrong_path) = if wrong_path {
                (self.next_wrong_path(tid), true)
            } else {
                (self.threads[tid].stream.fetch(), false)
            };
            let token = self.next_token;
            self.next_token += 1;

            let mut branch_redirects = false;
            let mut mispredicted = false;
            if !is_wrong_path && instr.class.is_branch() {
                let (redirects, mispred) = self.predict_branch(tid, token, &instr);
                branch_redirects = redirects;
                mispredicted = mispred;
            } else if is_wrong_path && instr.class == InstrClass::BranchUncond {
                branch_redirects = true; // junk jump: stop the run
            }

            self.threads[tid].frontend.push_back(FrontendEntry {
                token,
                instr,
                wrong_path: is_wrong_path,
                mispredicted,
                fetched_at: now,
            });
            self.threads[tid].fetched += 1;
            *budget -= 1;
            fetched += 1;
            if branch_redirects {
                break;
            }
        }
        fetched
    }

    /// Predict a correct-path branch at fetch. Returns
    /// `(stop_fetch_run, mispredicted)`.
    fn predict_branch(&mut self, tid: usize, token: u64, instr: &DynInstr) -> (bool, bool) {
        let (predicted_taken, predicted_target) = match instr.class {
            InstrClass::BranchCond => {
                let dir = self.bpred.predict(instr.pc, tid);
                self.bpred.update(instr.pc, tid, instr.taken);
                (dir, self.btb.lookup(instr.pc))
            }
            InstrClass::BranchUncond => match instr.uncond_kind {
                // Calls push their return address; the target comes
                // from the BTB like any direct jump.
                UncondKind::Call => {
                    self.threads[tid].ras.push(instr.fallthrough());
                    (true, self.btb.lookup(instr.pc))
                }
                // Returns predict their (dynamic) target by popping the
                // RAS; an empty stack falls back to the BTB. Squashes
                // do not repair the stack — RAS corruption on the wrong
                // path is a real, modelled effect.
                UncondKind::Ret => {
                    let ras = self.threads[tid].ras.pop();
                    (true, ras.or_else(|| self.btb.lookup(instr.pc)))
                }
                UncondKind::Jump => (true, self.btb.lookup(instr.pc)),
            },
            // lint: allow(D11) -- fetch only calls predict_branch on branch-class instructions
            _ => unreachable!("predict_branch on non-branch"),
        };
        // Train the BTB with the resolved target (returns excluded:
        // their targets vary per dynamic instance and would only
        // pollute the BTB — the RAS is their predictor).
        if instr.taken && instr.uncond_kind != UncondKind::Ret {
            self.btb.update(instr.pc, instr.target);
        }
        if instr.class == InstrClass::BranchCond {
            self.threads[tid].branches_in_flight += 1;
        }

        // Decide misprediction and the wrong path the front-end follows.
        let actual_taken = instr.taken;
        let fallthrough = instr.fallthrough();
        let (mispredicted, wrong_pc) = match (predicted_taken, actual_taken) {
            (false, true) => (true, fallthrough),
            (true, false) => (true, predicted_target.unwrap_or(fallthrough)),
            (true, true) => match predicted_target {
                Some(t) if t == instr.target => (false, 0),
                Some(t) => (true, t),
                // BTB miss on a taken branch: misfetch down the
                // fall-through path.
                None => (true, fallthrough),
            },
            (false, false) => (false, 0),
        };
        if mispredicted {
            self.threads[tid].wrong_path = Some(WrongPathMode {
                resolver: token,
                cursor: wrong_pc,
            });
            self.wp_buffers[tid].clear();
            return (true, true);
        }
        // Correctly-predicted taken branches end the fetch run.
        (actual_taken, false)
    }

    fn peek_wrong_path(&mut self, tid: usize) -> DynInstr {
        if self.wp_buffers[tid].is_empty() {
            self.refill_wp(tid);
        }
        // lint: allow(D3) -- refill_wp synthesises a non-empty run before this read
        *self.wp_buffers[tid].front().expect("refilled wp buffer")
    }

    fn next_wrong_path(&mut self, tid: usize) -> DynInstr {
        if self.wp_buffers[tid].is_empty() {
            self.refill_wp(tid);
        }
        // lint: allow(D3) -- refill_wp synthesises a non-empty run before this pop
        let i = self.wp_buffers[tid].pop_front().expect("refilled wp buffer");
        if let Some(wp) = &mut self.threads[tid].wrong_path {
            // Treat junk conditional branches as not-taken.
            wp.cursor = if i.class == InstrClass::BranchUncond {
                i.target
            } else {
                i.fallthrough()
            };
        }
        i
    }

    fn refill_wp(&mut self, tid: usize) {
        let cursor = self.threads[tid]
            .wrong_path
            .as_ref()
            // lint: allow(D3) -- only called while the thread is in wrong-path mode (callers check)
            .expect("wrong-path mode")
            .cursor;
        let dict = Arc::clone(&self.threads[tid].dict);
        dict.synth_wrong_path_into(cursor, 8, &mut self.wp_buffers[tid]);
    }

    // ----------------------------------------------------------------
    // Statistics
    // ----------------------------------------------------------------

    /// Snapshot the core's statistics.
    pub fn stats(&self) -> CoreStats {
        CoreStats {
            threads: self
                .threads
                .iter()
                .map(|t| ThreadStats {
                    committed: t.committed,
                    fetched: t.fetched,
                    branches: t.branches,
                    mispredicts: t.mispredicts,
                    loads_issued: t.loads_issued,
                    flushes: t.flushes,
                    energy: t.energy.clone(),
                })
                .collect(),
            fetch_active_cycles: self.fetch_active_cycles,
            iq_full_stalls: self.iq_full_stalls,
            reg_full_stalls: self.reg_full_stalls,
            rob_full_stalls: self.rob_full_stalls,
            mshr_retries: self.mshr_retries,
            flushes_executed: self.flushes_executed,
            stalls_executed: self.stalls_executed,
            store_forwards: self.store_forwards,
        }
    }

    /// Branch predictor accuracy so far.
    pub fn branch_accuracy(&self) -> f64 {
        self.bpred.accuracy()
    }

    /// One-line diagnostic snapshot of pipeline occupancy (for
    /// debugging and tests).
    pub fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "iq={:?} regs_free={} stores={} ",
            self.iq_used,
            self.regs.free_count(),
            self.store_queue.len()
        );
        for (tid, t) in self.threads.iter().enumerate() {
            let _ = write!(
                s,
                "| t{tid}: fe={} rob={} head={:?} gate={:?} wp={} ic_wait={} ",
                t.frontend.len(),
                t.rob.len(),
                t.rob.head().map(|e| (e.instr.class, e.state)),
                t.gate,
                t.wrong_path.is_some(),
                t.icache_wait.is_some(),
            );
        }
        s
    }

    /// Start recording `(tid, trace_seq)` for every commit.
    pub fn enable_commit_log(&mut self) {
        self.commit_log = Some(Vec::new());
    }

    /// Start recording trace events into a ring keeping the most
    /// recent `capacity` records (DESIGN.md §12). Tracing is off by
    /// default and costs one branch per instrumentation point when
    /// disabled.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventRing::new(capacity));
    }

    /// The core's event ring (`None` unless [`Self::enable_trace`] was
    /// called).
    pub fn trace(&self) -> Option<&EventRing> {
        self.trace.as_ref()
    }

    /// The recorded commit log (empty when not enabled).
    pub fn commit_log(&self) -> &[(usize, u64)] {
        self.commit_log.as_deref().unwrap_or(&[])
    }

    /// Total committed instructions.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Structured per-thread pipeline snapshots (the machine-readable
    /// counterpart of [`Self::debug_state`], consumed by the driver's
    /// forward-progress watchdog diagnostics).
    pub fn thread_snapshots(&self) -> Vec<ThreadProbe> {
        self.threads
            .iter()
            .enumerate()
            .map(|(tid, t)| ThreadProbe {
                tid: tid as u32,
                gate: format!("{:?}", t.gate),
                frontend: t.frontend.len() as u32,
                rob: t.rob.len() as u32,
                icache_wait: t.icache_wait.is_some(),
                committed: t.committed,
            })
            .collect()
    }
}
