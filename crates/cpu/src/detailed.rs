//! The SMT core: fetch → decode/rename → issue → execute → commit, with
//! policy-driven fetch gating and the FLUSH response action.
//!
//! One [`DetailedCore::tick`] advances a cycle in reverse pipeline order
//! (memory returns, execute completions, commit, stores, issue,
//! dispatch, policy, fetch), matching SMTsim's structure. The core talks
//! to the shared [`MemoryModel`] for instruction fetches, loads and
//! stores, and to its [`FetchPolicy`] through snapshots, events and
//! actions.

use crate::config::CoreConfig;
use crate::bpred::PerceptronPredictor;
use crate::btb::Btb;
use crate::regfile::{PhysReg, RegFile};
use crate::rob::{InstrState, QueueKind, RobEntry};
use crate::stats::{CoreStats, ThreadProbe, ThreadStats};
use crate::thread::{FetchGate, FrontendEntry, ThreadCtx, ThreadProgram, WrongPathMode};
use smtsim_energy::{PipelineStage, SquashCause};
use smtsim_mem::addr::{bank_of, line_base};
use smtsim_mem::{AccessKind, AccessResult, MemEvent, MemoryModel, ReqId};

use smtsim_obs::{EventRing, TraceEvent};
use smtsim_policy::{FetchPolicy, PolicyAction, ThreadSnapshot};
use smtsim_trace::{DynInstr, InstrClass, UncondKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// What an in-flight memory request resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemTarget {
    Load { tid: usize, token: u64 },
    IFetch { tid: usize },
    Store,
}

/// Compact record of one issue-queue resident, used by the wakeup
/// scheduler: an entry waiting on operands is *parked* on one of its
/// not-ready source registers (`reg_waiters`), and moves to the
/// per-queue ready list (`iq_ready`) when its last source is marked
/// ready. The issue stage and the skip-ahead horizon therefore scan
/// only *ready* entries — O(issuable) instead of O(queue residents)
/// per cycle.
///
/// Squashes do not edit these lists: a squashed entry goes stale in
/// place and is dropped lazily wherever it next surfaces, validated
/// against the ROB (`token` still resident and `InQueue`). Tokens are
/// never reused, so a stale record can never be mistaken for a live
/// one. For *live* entries the scheme is exact because source
/// readiness is monotone: a source register can be rolled back or
/// released only after every InQueue reader of it has itself been
/// squashed or committed.
#[derive(Debug, Clone, Copy)]
struct IqEntry {
    token: u64,
    tid: u32,
    /// Queue index (`QueueKind::index`), so wakeups route to the right
    /// ready list without a ROB lookup.
    qi: u8,
    srcs: [Option<PhysReg>; 2],
}

/// One SMT core.
pub struct DetailedCore {
    core_id: u32,
    cfg: CoreConfig,
    threads: Vec<ThreadCtx>,
    policy: Box<dyn FetchPolicy>,
    regs: RegFile,
    bpred: PerceptronPredictor,
    btb: Btb,
    /// Issue-queue occupancy [int, fp, ls] (shared).
    iq_used: [u32; 3],
    /// Per-thread issue-queue residency (for ICOUNT snapshots).
    iq_per_thread: Vec<u32>,
    /// Outstanding memory requests → what they complete.
    req_map: Vec<(ReqId, MemTarget)>,
    /// Committed stores awaiting their L1D access.
    store_queue: VecDeque<u64>,
    /// Per-thread in-flight ROB stores as `(token, word)` (word =
    /// address & !7), kept in token order: pushed at dispatch, popped
    /// from the front at commit, truncated from the back on squash.
    /// Store-to-load forwarding scans this instead of the ROB.
    store_fwd: Vec<VecDeque<(u64, u64)>>,
    /// Scheduled execution completions: (done_at, tid, token).
    exec_heap: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Per-thread wrong-path prefetch buffers.
    wp_buffers: Vec<VecDeque<DynInstr>>,
    next_token: u64,
    /// Optional commit log: (tid, trace seq) per committed instruction.
    /// Used by tests to verify the golden property that every thread
    /// commits its trace in order, exactly once, across flushes and
    /// mispredicts.
    commit_log: Option<Vec<(usize, u64)>>,
    /// Optional event trace (None unless enabled: the disabled path is
    /// one branch, zero allocation — see DESIGN.md §12).
    trace: Option<EventRing>,
    /// Per-thread ROB-occupancy high-water marks (tracked only while
    /// tracing, to emit `rob_high_water` events).
    rob_high: Vec<u32>,
    /// Shared-IQ occupancy high-water mark (tracing only).
    iq_high: u32,
    // Reusable scratch.
    snaps: Vec<ThreadSnapshot>,
    /// True when `snaps` still reflects the core state (set by
    /// `run_policy` when the policy executed no actions, so `fetch`
    /// can reuse the snapshots it just built instead of rebuilding).
    snaps_fresh: bool,
    prio: Vec<usize>,
    actions: Vec<PolicyAction>,
    /// Issue-stage candidate lists, one per queue kind (D10: the issue
    /// stage runs every cycle and must not allocate).
    iq_cands: [Vec<(u64, usize)>; 3],
    /// Ready issue-queue residents, one list per queue kind (see
    /// [`IqEntry`]): every live entry whose sources are all ready.
    /// Pre-sized to the queue capacities at construction so the cycle
    /// loop never grows them (D10); may also hold stale (squashed)
    /// records, dropped lazily by the issue stage.
    iq_ready: [Vec<IqEntry>; 3],
    /// Wakeup lists: entries parked on a not-ready source register,
    /// indexed by physical register. Drained by [`Self::wake_reg`]
    /// when the register is marked ready.
    reg_waiters: Vec<Vec<IqEntry>>,
    /// Reusable drain buffer for [`Self::wake_reg`] (D10: capacity
    /// rotates between this and the waiter slots, so steady-state
    /// wakeups never allocate).
    wake_scratch: Vec<IqEntry>,
    /// Squash-path scratch: drained front-end entries, removed ROB
    /// entries, and the two replay lists. Squashes are frequent enough
    /// (every mispredict, every FLUSH) to live inside the D10 contract.
    squash_fes: Vec<FrontendEntry>,
    squash_rob: Vec<RobEntry>,
    replay_buf: Vec<DynInstr>,
    replay_fe: Vec<DynInstr>,
    // Core-level stats.
    fetch_active_cycles: u64,
    iq_full_stalls: u64,
    reg_full_stalls: u64,
    rob_full_stalls: u64,
    mshr_retries: u64,
    flushes_executed: u64,
    stalls_executed: u64,
    store_forwards: u64,
}

impl DetailedCore {
    /// Build a core running `programs` (one per hardware context) under
    /// `policy`.
    pub fn new(
        core_id: u32,
        cfg: CoreConfig,
        policy: Box<dyn FetchPolicy>,
        programs: Vec<ThreadProgram>,
    ) -> Self {
        cfg.validate().expect("invalid CoreConfig");
        assert_eq!(
            programs.len(),
            cfg.contexts as usize,
            "one program per hardware context"
        );
        let threads: Vec<ThreadCtx> = programs
            .into_iter()
            .map(|p| ThreadCtx::new(p, cfg.rob_per_thread as usize, cfg.ras_entries as usize))
            .collect();
        DetailedCore {
            core_id,
            regs: RegFile::new(cfg.phys_regs, cfg.contexts),
            bpred: PerceptronPredictor::new(
                cfg.perceptrons,
                cfg.local_history_entries,
                cfg.contexts,
            ),
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            iq_used: [0; 3],
            iq_per_thread: vec![0; threads.len()],
            req_map: Vec::new(),
            store_queue: VecDeque::new(),
            store_fwd: (0..threads.len()).map(|_| VecDeque::new()).collect(),
            exec_heap: BinaryHeap::new(),
            wp_buffers: (0..threads.len()).map(|_| VecDeque::new()).collect(),
            next_token: 1,
            commit_log: None,
            trace: None,
            rob_high: vec![0; threads.len()],
            iq_high: 0,
            snaps: Vec::new(),
            snaps_fresh: false,
            prio: Vec::new(),
            actions: Vec::new(),
            iq_cands: [Vec::new(), Vec::new(), Vec::new()],
            iq_ready: [
                Vec::with_capacity(cfg.int_queue as usize),
                Vec::with_capacity(cfg.fp_queue as usize),
                Vec::with_capacity(cfg.ls_queue as usize),
            ],
            reg_waiters: (0..cfg.phys_regs).map(|_| Vec::new()).collect(),
            wake_scratch: Vec::new(),
            squash_fes: Vec::new(),
            squash_rob: Vec::new(),
            replay_buf: Vec::new(),
            replay_fe: Vec::new(),
            fetch_active_cycles: 0,
            iq_full_stalls: 0,
            reg_full_stalls: 0,
            rob_full_stalls: 0,
            mshr_retries: 0,
            flushes_executed: 0,
            stalls_executed: 0,
            store_forwards: 0,
            threads,
            policy,
            cfg,
        }
    }

    /// This core's id (its port index on the shared memory system).
    pub fn id(&self) -> u32 {
        self.core_id
    }

    /// Name of the active fetch policy.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Access the policy (e.g. for MFLUSH statistics downcasts).
    pub fn policy(&self) -> &dyn FetchPolicy {
        self.policy.as_ref()
    }

    /// Warm caches and TLBs to the trace-driven starting condition:
    /// each thread's code (L1I + L2 + I-TLB), its L1-resident working
    /// set (L1D + L2 + D-TLB) and its L2-resident working set (L2 +
    /// D-TLB). The main-memory stream stays cold — those accesses are
    /// *supposed* to miss. Call once before the measurement loop.
    pub fn prewarm(&mut self, mem: &mut MemoryModel) {
        const LINE: u64 = 64;
        const PAGE: u64 = 8192;
        for t in &self.threads {
            // Code.
            let base = t.dict.entry_pc();
            let bytes = t.dict.code_bytes();
            let mut a = base;
            while a < base + bytes {
                mem.prewarm_line(self.core_id, AccessKind::IFetch, a);
                a += LINE;
            }
            let mut p = base & !(PAGE - 1);
            while p < base + bytes {
                mem.prewarm_tlb(self.core_id, AccessKind::IFetch, p);
                p += PAGE;
            }
            // Data: L1 region into L1D + L2; L2 region into L2 only.
            let [(l1b, l1s), (l2b, l2s)] = t.warm_regions;
            let mut a = l1b;
            while a < l1b + l1s {
                mem.prewarm_line(self.core_id, AccessKind::Load, a);
                a += LINE;
            }
            let mut a = l2b;
            while a < l2b + l2s {
                mem.prewarm_l2_line(self.core_id, a);
                a += LINE;
            }
            for (rb, rs) in [(l1b, l1s), (l2b, l2s)] {
                let mut p = rb & !(PAGE - 1);
                while p < rb + rs {
                    mem.prewarm_tlb(self.core_id, AccessKind::Load, p);
                    p += PAGE;
                }
            }
        }
    }

    /// Advance one cycle. The caller must have ticked `mem` for `now`
    /// already.
    pub fn tick(&mut self, now: u64, mem: &mut MemoryModel) {
        self.process_mem(now, mem);
        self.exec_complete(now);
        self.commit(now);
        self.drain_stores(now, mem);
        self.issue(now, mem);
        self.dispatch(now);
        self.run_policy(now);
        self.fetch(now, mem);
    }

    /// Earliest cycle ≥ `from` at which a tick could do observable work,
    /// assuming the memory system delivers nothing in between (the
    /// caller intersects this with [`MemoryModel::next_event_cycle`]).
    /// The core half of the stall skip-ahead horizon (DESIGN.md §16).
    ///
    /// The pipeline acts every cycle unless *every* stage is provably
    /// idle:
    ///
    /// * **drain_stores** retries each cycle while the committed-store
    ///   queue is non-empty;
    /// * **commit** acts whenever a ROB head is `Done`;
    /// * **exec_complete** acts when the earliest scheduled completion
    ///   is due;
    /// * **issue** re-arbitrates every cycle a ready-list entry is
    ///   live (including MSHR-full retry loops, which touch the cache
    ///   and count `mshr_retries`); parked entries only wake through
    ///   completions the other horizon terms already cover;
    /// * **dispatch** acts when the *front* front-end entry has cleared
    ///   the front-end pipe and the ROB, its issue queue, and the
    ///   rename free list all have room. A front entry that is blocked
    ///   on a full resource only charges a stall counter — replayed
    ///   exactly by [`Self::notify_skip`] — and wakes via an event the
    ///   other horizon terms already cover (commit frees ROB slots and
    ///   rename registers, issue frees queue slots);
    /// * **fetch** touches the I-cache whenever some thread is un-gated,
    ///   not waiting on an I-fetch miss, past its redirect timer, *and*
    ///   has fetch-queue room (a full fetch queue blocks `fetch_thread`
    ///   before any access).
    ///
    /// What remains are pure waits with known wake-ups: scheduled
    /// completions (`exec_heap`), front-end pipe maturation
    /// (`fetched_at + frontend_latency`), fetch redirect timers, and
    /// the policy's own clock ([`FetchPolicy::next_wake`]).
    pub fn next_event_cycle(&self, from: u64) -> u64 {
        if !self.store_queue.is_empty() {
            return from;
        }
        if let Some(&Reverse((done_at, _, _))) = self.exec_heap.peek() {
            if done_at <= from {
                return from;
            }
        }
        let fetch_cap = self.cfg.fetch_queue as usize;
        for t in &self.threads {
            if let Some(head) = t.rob.head() {
                if head.state == InstrState::Done {
                    return from;
                }
            }
            if t.gate == FetchGate::Open
                && t.icache_wait.is_none()
                && t.frontend.len() < fetch_cap
                && t.redirect_at <= from
            {
                return from;
            }
            if let Some(fe) = t.frontend.front() {
                if fe.fetched_at + self.cfg.frontend_latency <= from
                    && t.rob.has_room()
                    && self.iq_has_room(QueueKind::of(fe.instr.class))
                    && (fe.instr.dst.is_none() || self.regs.free_count() > 0)
                {
                    return from;
                }
            }
        }
        // The wakeup scan last, so busy cores bail out on the cheap
        // checks above. The scheduler keeps the ready lists down to
        // issuable entries, so a stalled core scans almost nothing;
        // stale (squashed) records must be ignored, not trusted.
        for list in &self.iq_ready {
            for e in list {
                let tid = e.tid as usize;
                let live = self.threads[tid]
                    .rob
                    .index_of(e.token)
                    .is_some_and(|idx| {
                        self.threads[tid].rob.entry_at(idx).state == InstrState::InQueue
                    });
                if live {
                    return from;
                }
            }
        }
        // Quiescent at `from`: gather the scheduled wake-ups.
        let mut at = self.policy.next_wake(from);
        if let Some(&Reverse((done_at, _, _))) = self.exec_heap.peek() {
            at = at.min(done_at);
        }
        for t in &self.threads {
            if let Some(fe) = t.frontend.front() {
                let matures = fe.fetched_at + self.cfg.frontend_latency;
                if matures > from {
                    at = at.min(matures);
                }
            }
            if t.gate == FetchGate::Open
                && t.icache_wait.is_none()
                && t.frontend.len() < fetch_cap
            {
                // redirect_at > from here, else the loop above returned.
                at = at.min(t.redirect_at);
            }
        }
        at
    }

    /// Does `queue` have a free slot for one more dispatch?
    fn iq_has_room(&self, queue: QueueKind) -> bool {
        let cap =
            [self.cfg.int_queue, self.cfg.fp_queue, self.cfg.ls_queue][queue.index()];
        self.iq_used[queue.index()] < cap
    }

    /// The simulator skipped `cycles` cycles starting at `from` (no
    /// tick ran for them). Event-driven state needs no repair, but the
    /// cycle-by-cycle loop would have charged two kinds of per-cycle
    /// bookkeeping that must be replayed for byte-identity:
    ///
    /// * dispatch stall counters: a thread whose matured front entry is
    ///   blocked on a full ROB / issue queue / rename file charges one
    ///   stall per cycle, with the *first* full resource (in dispatch's
    ///   check order) taking the blame. The pipeline is frozen for the
    ///   whole window, so the reason — and hence the counter — is
    ///   constant: charge it `cycles` times.
    /// * per-call policy state ([`FetchPolicy::on_cycles_skipped`]).
    pub fn notify_skip(&mut self, from: u64, cycles: u64) {
        let (mut rob_s, mut iq_s, mut reg_s) = (0u64, 0u64, 0u64);
        for t in &self.threads {
            let Some(fe) = t.frontend.front() else { continue };
            if fe.fetched_at + self.cfg.frontend_latency > from {
                continue; // still in the front-end pipe: no stall charged
            }
            if !t.rob.has_room() {
                rob_s += cycles;
            } else if !self.iq_has_room(QueueKind::of(fe.instr.class)) {
                iq_s += cycles;
            } else {
                // A skippable window with a matured, unblocked-by-ROB/IQ
                // front entry can only be pinned by rename exhaustion
                // (next_event_cycle returned > from, so dispatch could
                // not act).
                debug_assert!(fe.instr.dst.is_some() && self.regs.free_count() == 0);
                reg_s += cycles;
            }
        }
        self.rob_full_stalls += rob_s;
        self.iq_full_stalls += iq_s;
        self.reg_full_stalls += reg_s;
        self.policy.on_cycles_skipped(from, cycles);
    }

    // ----------------------------------------------------------------
    // Memory returns
    // ----------------------------------------------------------------

    fn process_mem(&mut self, now: u64, mem: &mut MemoryModel) {
        for ev in mem.drain_events(self.core_id) {
            match ev {
                MemEvent::L2MissDetected { req, at } => {
                    if let Some(&(_, MemTarget::Load { tid, token })) =
                        self.req_map.iter().find(|(r, _)| *r == req)
                    {
                        // Only correct-path tracked loads reach the policy.
                        if self.threads[tid]
                            .rob
                            .find_mut(token)
                            .map(|e| e.load_tracked && !e.wrong_path)
                            .unwrap_or(false)
                        {
                            self.policy.on_l2_miss(tid, token, at);
                        }
                    }
                }
            }
        }
        for c in mem.drain_completions(self.core_id) {
            let Some(pos) = self.req_map.iter().position(|(r, _)| *r == c.req) else {
                continue; // orphaned by a squash
            };
            let (_, target) = self.req_map.swap_remove(pos);
            match target {
                MemTarget::Load { tid, token } => {
                    let mut resume = false;
                    let mut notify = false;
                    let mut ready_reg = None;
                    if let Some(e) = self.threads[tid].rob.find_mut(token) {
                        e.state = InstrState::Done;
                        notify = e.load_tracked && !e.wrong_path;
                        if let Some((newr, _)) = e.dst {
                            self.regs.mark_ready(newr);
                            ready_reg = Some(newr);
                        }
                    }
                    if let Some(newr) = ready_reg {
                        self.wake_reg(newr);
                    }
                    let t = &mut self.threads[tid];
                    t.l1d_misses_in_flight = t.l1d_misses_in_flight.saturating_sub(1);
                    if let FetchGate::Flushed { offender } = t.gate {
                        if offender == token {
                            t.gate = FetchGate::Open;
                            t.redirect_at = now + 1;
                            resume = true;
                        }
                    }
                    if notify {
                        self.policy.on_load_complete(
                            tid,
                            token,
                            c.bank,
                            Some(c.l2_hit),
                            c.latency(),
                            now,
                        );
                    }
                    if resume {
                        self.policy.on_thread_resumed(tid, now);
                    }
                }
                MemTarget::IFetch { tid } => {
                    self.threads[tid].icache_wait = None;
                }
                MemTarget::Store => {}
            }
        }
    }

    // ----------------------------------------------------------------
    // Execute completions (non-memory latencies + L1-hit loads)
    // ----------------------------------------------------------------

    fn exec_complete(&mut self, now: u64) {
        while let Some(&Reverse((done_at, _, _))) = self.exec_heap.peek() {
            if done_at > now {
                break;
            }
            let Some(Reverse((_, tid, token))) = self.exec_heap.pop() else {
                break; // unreachable: peek above returned Some
            };
            let (resolve_mispredict, load_complete, is_cond_branch, dst) =
                match self.threads[tid].rob.find_mut(token) {
                    Some(e) if matches!(e.state, InstrState::Executing { .. }) => {
                        e.state = InstrState::Done;
                        (
                            e.mispredicted && !e.wrong_path,
                            e.instr.class == InstrClass::Load
                                && e.load_tracked
                                && !e.wrong_path,
                            e.instr.class == InstrClass::BranchCond && !e.wrong_path,
                            e.dst,
                        )
                    }
                    _ => continue, // squashed
                };
            if let Some((newr, _)) = dst {
                self.regs.mark_ready(newr);
                self.wake_reg(newr);
            }
            if is_cond_branch {
                let t = &mut self.threads[tid];
                t.branches_in_flight = t.branches_in_flight.saturating_sub(1);
            }
            if load_complete {
                // An L1-hit load: report completion with no L2 verdict.
                self.policy.on_load_complete(tid, token, 0, None, 3, now);
            }
            if resolve_mispredict {
                self.resolve_mispredict(tid, token, now);
            }
        }
    }

    /// A mispredicted branch resolved: squash its wrong-path shadow and
    /// redirect fetch to the correct path.
    fn resolve_mispredict(&mut self, tid: usize, branch_token: u64, now: u64) {
        self.squash_younger(tid, branch_token, SquashCause::BranchMispredict, now);
        let t = &mut self.threads[tid];
        t.wrong_path = None;
        self.wp_buffers[tid].clear();
        t.redirect_at = now + 1;
    }

    // ----------------------------------------------------------------
    // Commit
    // ----------------------------------------------------------------

    fn commit(&mut self, _now: u64) {
        for tid in 0..self.threads.len() {
            let mut budget = self.cfg.commit_width;
            while budget > 0 {
                let Some(head) = self.threads[tid].rob.head() else {
                    break;
                };
                if head.state != InstrState::Done {
                    break;
                }
                debug_assert!(!head.wrong_path, "wrong-path instruction at ROB head");
                let is_store = head.instr.class == InstrClass::Store;
                if is_store && self.store_queue.len() >= self.cfg.store_buffer as usize {
                    break; // store buffer backpressure
                }
                let Some(e) = self.threads[tid].rob.pop_head() else {
                    break; // unreachable: head() above returned Some
                };
                if let Some(log) = &mut self.commit_log {
                    log.push((tid, e.instr.seq));
                }
                if let Some((_, prev)) = e.dst {
                    self.regs.release(prev);
                }
                let t = &mut self.threads[tid];
                t.committed += 1;
                t.energy.commit();
                if e.instr.class == InstrClass::BranchCond {
                    t.branches += 1;
                    if e.mispredicted {
                        t.mispredicts += 1;
                    }
                }
                if is_store {
                    self.store_queue.push_back(e.instr.mem_addr);
                    let fwd = self.store_fwd[tid].pop_front();
                    debug_assert_eq!(fwd, Some((e.token, e.instr.mem_addr & !7)));
                }
                budget -= 1;
            }
        }
    }

    // ----------------------------------------------------------------
    // Store drain (committed stores access the L1D)
    // ----------------------------------------------------------------

    fn drain_stores(&mut self, now: u64, mem: &mut MemoryModel) {
        for _ in 0..2 {
            let Some(&addr) = self.store_queue.front() else {
                break;
            };
            match mem.access(self.core_id, AccessKind::Store, addr, now) {
                AccessResult::L1Hit { .. } => {
                    self.store_queue.pop_front();
                }
                AccessResult::Miss { req, .. } => {
                    self.store_queue.pop_front();
                    debug_assert!(!self.req_map.iter().any(|(r, _)| *r == req), "duplicate req id {req} in req_map (store)");
                    self.req_map.push((req, MemTarget::Store));
                }
                AccessResult::MshrFull => break,
            }
        }
    }

    // ----------------------------------------------------------------
    // Issue
    // ----------------------------------------------------------------

    fn issue(&mut self, now: u64, mem: &mut MemoryModel) {
        // Gather candidates per queue, oldest (smallest token) first
        // across both threads. The wakeup scheduler keeps `iq_ready`
        // down to issuable entries, so this touches O(issuable) state —
        // a stalled thread costs nothing here. Stale (squashed) records
        // are dropped as they surface; live records are ready by
        // construction (readiness is monotone, see [`IqEntry`]).
        let mut cands = std::mem::take(&mut self.iq_cands);
        for (qi, list) in cands.iter_mut().enumerate() {
            list.clear();
            let mut i = 0;
            while i < self.iq_ready[qi].len() {
                let e = self.iq_ready[qi][i];
                let tid = e.tid as usize;
                let live = self.threads[tid]
                    .rob
                    .index_of(e.token)
                    .is_some_and(|idx| {
                        self.threads[tid].rob.entry_at(idx).state == InstrState::InQueue
                    });
                if live {
                    debug_assert!(
                        e.srcs.iter().flatten().all(|&p| self.regs.is_ready(p)),
                        "iq_ready entry with a not-ready source"
                    );
                    list.push((e.token, tid));
                    i += 1;
                } else {
                    self.iq_ready[qi].swap_remove(i);
                }
            }
        }
        let units = [self.cfg.int_units, self.cfg.fp_units, self.cfg.ls_units];
        for (qi, list) in cands.iter_mut().enumerate() {
            list.sort_unstable();
            let mut issued = 0;
            for &(token, tid) in list.iter() {
                if issued == units[qi] {
                    break;
                }
                if self.try_issue_one(tid, token, now, mem) {
                    self.iq_unready(qi, token);
                    issued += 1;
                }
            }
        }
        self.iq_cands = cands;
    }

    /// Remove `token` from ready list `qi` (the entry left `InQueue`
    /// state by issuing). The lists are small, so a linear find +
    /// swap_remove is cheap; order is irrelevant because candidates
    /// are re-sorted every cycle.
    fn iq_unready(&mut self, qi: usize, token: u64) {
        let pos = self.iq_ready[qi]
            .iter()
            .position(|e| e.token == token)
            // lint: allow(D3) -- the issue stage only issues candidates gathered from this very list
            .expect("issued token present in its ready list");
        self.iq_ready[qi].swap_remove(pos);
    }

    /// `p` was just marked ready: re-examine every entry parked on it.
    /// An entry whose other source is still not ready re-parks there;
    /// otherwise it joins its queue's ready list. Stale (squashed)
    /// records move along unvalidated — the issue stage drops them.
    fn wake_reg(&mut self, p: PhysReg) {
        if self.reg_waiters[p as usize].is_empty() {
            return;
        }
        let mut woken = std::mem::replace(
            &mut self.reg_waiters[p as usize],
            std::mem::take(&mut self.wake_scratch),
        );
        for e in woken.drain(..) {
            self.park_or_ready(e);
        }
        self.wake_scratch = woken;
    }

    /// Insert `e` into the wakeup structures: parked on its first
    /// not-ready source, or onto its queue's ready list.
    fn park_or_ready(&mut self, e: IqEntry) {
        for &src in e.srcs.iter().flatten() {
            if !self.regs.is_ready(src) {
                self.reg_waiters[src as usize].push(e);
                return;
            }
        }
        self.iq_ready[e.qi as usize].push(e);
    }

    /// Issue one instruction; returns false when it must stay queued
    /// (MSHR full). The entry is resolved by index exactly once —
    /// issue candidates sit near the tail of a deep ROB, where the
    /// head-first [`Rob::find_mut`] scan is at its worst — and nothing
    /// below moves ROB entries, so the index stays valid throughout.
    fn try_issue_one(&mut self, tid: usize, token: u64, now: u64, mem: &mut MemoryModel) -> bool {
        let idx = self.threads[tid]
            .rob
            .index_of(token)
            // lint: allow(D3) -- issue candidates come from iq_lists, which mirror resident InQueue ROB entries
            .expect("issue candidate resident in ROB");
        let (class, addr, queue, addr_pc, wrong_path) = {
            let e = self.threads[tid].rob.entry_at(idx);
            (e.instr.class, e.instr.mem_addr, e.queue, e.instr.pc, e.wrong_path)
        };

        match class {
            InstrClass::Load => {
                // Wrong-path loads execute without touching the data
                // cache (SMTsim models wrong-path effects on the
                // I-cache and branch predictor only; junk data accesses
                // would fabricate MSHR/bank traffic at made-up
                // addresses).
                if wrong_path {
                    let e = self.threads[tid].rob.entry_at_mut(idx);
                    e.state = InstrState::Executing { done_at: now + 1 };
                    self.exec_heap.push(Reverse((now + 1, tid, token)));
                    self.iq_used[queue.index()] -= 1;
                    self.iq_per_thread[tid] = self.iq_per_thread[tid].saturating_sub(1);
                    return true;
                }
                // Store-to-load forwarding: an older in-flight store of
                // the same thread to the same word supplies the data
                // directly (no cache access).
                if self.store_forward_hit(tid, token, addr) {
                    let e = self.threads[tid].rob.entry_at_mut(idx);
                    e.state = InstrState::Executing { done_at: now + 1 };
                    e.load_tracked = false;
                    self.exec_heap.push(Reverse((now + 1, tid, token)));
                    self.store_forwards += 1;
                    self.iq_used[queue.index()] -= 1;
                    self.iq_per_thread[tid] = self.iq_per_thread[tid].saturating_sub(1);
                    return true;
                }
                match mem.access(self.core_id, AccessKind::Load, addr, now) {
                    AccessResult::L1Hit { ready_at, .. } => {
                        let e = self.threads[tid].rob.entry_at_mut(idx);
                        e.state = InstrState::Executing { done_at: ready_at };
                        e.load_tracked = true;
                        self.exec_heap.push(Reverse((ready_at, tid, token)));
                        self.threads[tid].loads_issued += 1;
                        self.policy.on_load_issue(tid, token, addr_pc, now);
                    }
                    AccessResult::Miss { req, .. } => {
                        let bank = bank_of(addr, mem.config().l2_banks);
                        let e = self.threads[tid].rob.entry_at_mut(idx);
                        e.state = InstrState::WaitingMem { req };
                        e.load_tracked = true;
                        debug_assert!(!self.req_map.iter().any(|(r, _)| *r == req), "duplicate req id {req} in req_map");
                        self.req_map.push((req, MemTarget::Load { tid, token }));
                        self.threads[tid].l1d_misses_in_flight += 1;
                        self.threads[tid].loads_issued += 1;
                        self.policy.on_load_issue(tid, token, addr_pc, now);
                        self.policy.on_l1d_miss(tid, token, bank, now);
                    }
                    AccessResult::MshrFull => {
                        self.mshr_retries += 1;
                        return false;
                    }
                }
            }
            InstrClass::Store => {
                // Address generation only; memory access happens at
                // commit via the store queue.
                let e = self.threads[tid].rob.entry_at_mut(idx);
                e.state = InstrState::Executing { done_at: now + 1 };
                self.exec_heap.push(Reverse((now + 1, tid, token)));
            }
            _ => {
                let done = now + class.exec_latency() as u64;
                let e = self.threads[tid].rob.entry_at_mut(idx);
                e.state = InstrState::Executing { done_at: done };
                self.exec_heap.push(Reverse((done, tid, token)));
            }
        }
        // The instruction left its issue queue.
        self.iq_used[queue.index()] -= 1;
        self.iq_per_thread[tid] = self.iq_per_thread[tid].saturating_sub(1);
        true
    }

    /// True when an older same-thread store to the same 8-byte word is
    /// still in flight (in the ROB or the committed-store queue) — the
    /// load's data can be forwarded. Scans the compact per-thread
    /// [`Self::store_fwd`] list, not the ROB.
    fn store_forward_hit(&self, tid: usize, load_token: u64, addr: u64) -> bool {
        let word = addr & !7;
        let in_rob = self.store_fwd[tid]
            .iter()
            .any(|&(t, w)| t < load_token && w == word);
        in_rob || self.store_queue.iter().any(|&a| (a & !7) == word)
    }

    // ----------------------------------------------------------------
    // Dispatch (rename + ROB/IQ allocation)
    // ----------------------------------------------------------------

    fn dispatch(&mut self, now: u64) {
        let mut budget = self.cfg.dispatch_width;
        let n = self.threads.len();
        // Alternate the scan start for fairness.
        let start = (now as usize) % n;
        for k in 0..n {
            let tid = (start + k) % n;
            while budget > 0 {
                let Some(fe) = self.threads[tid].frontend.front().copied() else {
                    break;
                };
                if fe.fetched_at + self.cfg.frontend_latency > now {
                    break; // still in the front-end pipe
                }
                if !self.threads[tid].rob.has_room() {
                    self.rob_full_stalls += 1;
                    break;
                }
                let queue = QueueKind::of(fe.instr.class);
                let cap = [self.cfg.int_queue, self.cfg.fp_queue, self.cfg.ls_queue]
                    [queue.index()];
                if self.iq_used[queue.index()] >= cap {
                    self.iq_full_stalls += 1;
                    break;
                }
                // Rename: read sources first, then allocate the dest.
                let srcs = {
                    let mut s = [None, None];
                    for (i, lr) in fe.instr.srcs.iter().enumerate() {
                        if let Some(lr) = lr {
                            s[i] = Some(self.regs.lookup(tid, *lr));
                        }
                    }
                    s
                };
                let dst = if let Some(lr) = fe.instr.dst {
                    match self.regs.alloc(tid, lr) {
                        Some(pair) => Some(pair),
                        None => {
                            self.reg_full_stalls += 1;
                            break;
                        }
                    }
                } else {
                    None
                };
                self.threads[tid].frontend.pop_front();
                self.threads[tid].rob.push(RobEntry {
                    token: fe.token,
                    instr: fe.instr,
                    wrong_path: fe.wrong_path,
                    state: InstrState::InQueue,
                    queue,
                    srcs,
                    dst,
                    mispredicted: fe.mispredicted,
                    load_tracked: false,
                });
                self.park_or_ready(IqEntry {
                    token: fe.token,
                    tid: tid as u32,
                    qi: queue.index() as u8,
                    srcs,
                });
                if fe.instr.class == InstrClass::Store {
                    self.store_fwd[tid].push_back((fe.token, fe.instr.mem_addr & !7));
                }
                self.iq_used[queue.index()] += 1;
                self.iq_per_thread[tid] += 1;
                if let Some(ring) = &mut self.trace {
                    let rob_occ = self.threads[tid].rob.len() as u32;
                    if rob_occ > self.rob_high[tid] {
                        self.rob_high[tid] = rob_occ;
                        ring.emit(
                            now,
                            TraceEvent::RobHighWater {
                                core: self.core_id,
                                tid: tid as u32,
                                occupancy: rob_occ,
                            },
                        );
                    }
                    let iq_occ: u32 = self.iq_used.iter().sum();
                    if iq_occ > self.iq_high {
                        self.iq_high = iq_occ;
                        ring.emit(
                            now,
                            TraceEvent::IqHighWater {
                                core: self.core_id,
                                occupancy: iq_occ,
                            },
                        );
                    }
                }
                budget -= 1;
            }
        }
    }

    // ----------------------------------------------------------------
    // Policy
    // ----------------------------------------------------------------

    fn build_snapshots(&mut self) {
        self.snaps.clear();
        for (tid, t) in self.threads.iter().enumerate() {
            self.snaps.push(ThreadSnapshot {
                tid,
                in_frontend: t.in_frontend(),
                in_queues: self.iq_per_thread[tid],
                in_rob: t.rob.len() as u32,
                branches_in_flight: t.branches_in_flight,
                l1d_misses_in_flight: t.l1d_misses_in_flight,
                gated: t.is_gated(),
                committed: t.committed,
            });
        }
    }

    fn run_policy(&mut self, now: u64) {
        self.build_snapshots();
        self.actions.clear();
        let mut actions = std::mem::take(&mut self.actions);
        self.policy.tick(now, &self.snaps, &mut actions);
        // Actions mutate gates / ROBs; the snapshots stay valid only
        // when there are none (the common cycle — fetch reuses them).
        self.snaps_fresh = actions.is_empty();
        for a in actions.drain(..) {
            match a {
                PolicyAction::Flush { tid, token } => self.execute_flush(tid, token, now),
                PolicyAction::Stall { tid } => {
                    if self.threads[tid].gate == FetchGate::Open {
                        self.threads[tid].gate = FetchGate::PolicyStall;
                        self.stalls_executed += 1;
                        if let Some(ring) = &mut self.trace {
                            ring.emit(
                                now,
                                TraceEvent::Stall {
                                    core: self.core_id,
                                    tid: tid as u32,
                                },
                            );
                        }
                    }
                }
                PolicyAction::Resume { tid } => {
                    if self.threads[tid].gate == FetchGate::PolicyStall {
                        self.threads[tid].gate = FetchGate::Open;
                    }
                }
            }
        }
        self.actions = actions;
    }

    /// Execute the FLUSH response action on `tid`, keeping the offending
    /// load `token` and squashing everything younger.
    fn execute_flush(&mut self, tid: usize, token: u64, now: u64) {
        // Validate: the load must still be outstanding.
        let outstanding = self.threads[tid]
            .rob
            .find_mut(token)
            .map(|e| {
                matches!(
                    e.state,
                    InstrState::WaitingMem { .. } | InstrState::Executing { .. }
                )
            })
            .unwrap_or(false);
        if !outstanding {
            // Raced with the completion; tell the policy the thread runs.
            self.policy.on_thread_resumed(tid, now);
            return;
        }
        let squashed = self.squash_younger(tid, token, SquashCause::Flush, now);
        let t = &mut self.threads[tid];
        t.gate = FetchGate::Flushed { offender: token };
        t.flushes += 1;
        self.flushes_executed += 1;
        if let Some(ring) = &mut self.trace {
            ring.emit(
                now,
                TraceEvent::Flush {
                    core: self.core_id,
                    tid: tid as u32,
                    squashed,
                },
            );
        }
    }

    // ----------------------------------------------------------------
    // Squash machinery (branch recovery + FLUSH)
    // ----------------------------------------------------------------

    /// Squash every instruction of `tid` younger than `keep_token`:
    /// restore rename state, free queue slots, replay correct-path
    /// instructions into the stream, account squash energy. Returns the
    /// number of instructions removed (front-end + ROB, wrong-path
    /// included) — the `flush` trace event's cost figure.
    fn squash_younger(&mut self, tid: usize, keep_token: u64, cause: SquashCause, now: u64) -> u32 {
        // Front-end entries are all younger than anything in the ROB.
        let mut squashed: u32 = 0;
        let mut replay_frontend = std::mem::take(&mut self.replay_fe);
        replay_frontend.clear();
        let mut fes = std::mem::take(&mut self.squash_fes);
        fes.clear();
        {
            let t = &mut self.threads[tid];
            fes.extend(t.frontend.drain(..));
            squashed += fes.len() as u32;
            for fe in fes.drain(..) {
                debug_assert!(fe.token > keep_token);
                let stage = if now >= fe.fetched_at + 2 {
                    PipelineStage::Decode
                } else {
                    PipelineStage::Fetch
                };
                t.energy.squash(cause, stage);
                if fe.instr.class == InstrClass::BranchCond && !fe.wrong_path {
                    t.branches_in_flight = t.branches_in_flight.saturating_sub(1);
                }
                if !fe.wrong_path {
                    replay_frontend.push(fe.instr);
                }
            }
        }
        let mut removed = std::mem::take(&mut self.squash_rob);
        removed.clear();
        self.threads[tid].rob.squash_younger_into(keep_token, &mut removed);
        while self.store_fwd[tid]
            .back()
            .is_some_and(|&(t, _)| t > keep_token)
        {
            self.store_fwd[tid].pop_back();
        }
        squashed += removed.len() as u32;
        let mut replay_rob = std::mem::take(&mut self.replay_buf);
        replay_rob.clear();
        for e in &removed {
            // Newest-first: rename rollback order is correct.
            if let (Some(lr), Some((newr, prev))) = (e.instr.dst, e.dst) {
                self.regs.rollback(tid, lr, newr, prev);
            }
            match e.state {
                InstrState::InQueue => {
                    // The wakeup record (parked or ready) goes stale in
                    // place; dropped lazily (see [`IqEntry`]).
                    self.iq_used[e.queue.index()] -= 1;
                    self.iq_per_thread[tid] = self.iq_per_thread[tid].saturating_sub(1);
                }
                InstrState::WaitingMem { req } => {
                    if let Some(pos) = self.req_map.iter().position(|(r, _)| *r == req) {
                        self.req_map.swap_remove(pos);
                    }
                    self.threads[tid].l1d_misses_in_flight = self.threads[tid]
                        .l1d_misses_in_flight
                        .saturating_sub(1);
                }
                _ => {}
            }
            if e.instr.class == InstrClass::BranchCond && !e.wrong_path {
                self.threads[tid].branches_in_flight = self.threads[tid]
                    .branches_in_flight
                    .saturating_sub(1);
            }
            if e.load_tracked && !e.wrong_path {
                self.policy.on_load_squashed(tid, e.token);
            }
            self.threads[tid].energy.squash(cause, e.deepest_stage());
            if !e.wrong_path {
                replay_rob.push(e.instr);
            }
        }
        // Replay in program order: ROB entries (reversed to oldest
        // first) then front-end entries.
        replay_rob.reverse();
        replay_rob.append(&mut replay_frontend);
        self.threads[tid].stream.unfetch(replay_rob.drain(..));
        self.squash_fes = fes;
        self.squash_rob = removed;
        self.replay_buf = replay_rob;
        self.replay_fe = replay_frontend;

        // If the wrong-path resolver died, the thread is back on the
        // correct path.
        let t = &mut self.threads[tid];
        if let Some(wp) = &t.wrong_path {
            if wp.resolver > keep_token {
                t.wrong_path = None;
                self.wp_buffers[tid].clear();
            }
        }
        // If a flush offender died (mispredict squashing past it), the
        // gate must open.
        if let FetchGate::Flushed { offender } = t.gate {
            if offender > keep_token {
                t.gate = FetchGate::Open;
                self.policy.on_thread_resumed(tid, now);
            }
        }
        squashed
    }

    // ----------------------------------------------------------------
    // Fetch
    // ----------------------------------------------------------------

    fn fetch(&mut self, now: u64, mem: &mut MemoryModel) {
        if !self.snaps_fresh {
            self.build_snapshots();
        }
        self.snaps_fresh = false;
        let mut prio = std::mem::take(&mut self.prio);
        self.policy.fetch_priority(now, &self.snaps, &mut prio);
        let mut budget = self.cfg.fetch_width;
        let mut threads_used = 0;
        let mut fetched_any_cycle = false;
        for &tid in prio.iter() {
            if budget == 0 || threads_used == self.cfg.fetch_threads {
                break;
            }
            let t = &self.threads[tid];
            if t.is_gated() || t.icache_wait.is_some() || now < t.redirect_at {
                continue;
            }
            let fetched = self.fetch_thread(tid, now, mem, &mut budget);
            if fetched > 0 {
                fetched_any_cycle = true;
                threads_used += 1;
                if let Some(ring) = &mut self.trace {
                    ring.emit(
                        now,
                        TraceEvent::FetchSlots {
                            core: self.core_id,
                            tid: tid as u32,
                            slots: fetched,
                        },
                    );
                }
            }
        }
        if fetched_any_cycle {
            self.fetch_active_cycles += 1;
        }
        self.prio = prio;
    }

    /// Fetch up to `budget` instructions for one thread. Returns the
    /// number fetched.
    fn fetch_thread(
        &mut self,
        tid: usize,
        now: u64,
        mem: &mut MemoryModel,
        budget: &mut u32,
    ) -> u32 {
        let mut fetched = 0;
        let mut line: Option<u64> = None;
        let mut crossed_lines = 0;
        while *budget > 0 {
            if self.threads[tid].frontend.len() >= self.cfg.fetch_queue as usize {
                break; // fetch queue full: bounded run-ahead
            }
            // Next PC on the active path.
            let wrong_path = self.threads[tid].wrong_path.is_some();
            let pc = if wrong_path {
                self.peek_wrong_path(tid).pc
            } else {
                self.threads[tid].stream.peek().pc
            };
            // I-cache: at most one new line per thread per cycle.
            let l = line_base(pc);
            if line != Some(l) {
                if crossed_lines == 1 {
                    break;
                }
                match mem.access(self.core_id, AccessKind::IFetch, pc, now) {
                    AccessResult::L1Hit { .. } => {
                        line = Some(l);
                        crossed_lines += 1;
                    }
                    AccessResult::Miss { req, .. } => {
                        self.threads[tid].icache_wait = Some(req);
                        debug_assert!(!self.req_map.iter().any(|(r, _)| *r == req), "duplicate req id {req} in req_map (ifetch)");
                        self.req_map.push((req, MemTarget::IFetch { tid }));
                        break;
                    }
                    AccessResult::MshrFull => break,
                }
            }
            // Pull the instruction.
            let (instr, is_wrong_path) = if wrong_path {
                (self.next_wrong_path(tid), true)
            } else {
                (self.threads[tid].stream.fetch(), false)
            };
            let token = self.next_token;
            self.next_token += 1;

            let mut branch_redirects = false;
            let mut mispredicted = false;
            if !is_wrong_path && instr.class.is_branch() {
                let (redirects, mispred) = self.predict_branch(tid, token, &instr);
                branch_redirects = redirects;
                mispredicted = mispred;
            } else if is_wrong_path && instr.class == InstrClass::BranchUncond {
                branch_redirects = true; // junk jump: stop the run
            }

            self.threads[tid].frontend.push_back(FrontendEntry {
                token,
                instr,
                wrong_path: is_wrong_path,
                mispredicted,
                fetched_at: now,
            });
            self.threads[tid].fetched += 1;
            *budget -= 1;
            fetched += 1;
            if branch_redirects {
                break;
            }
        }
        fetched
    }

    /// Predict a correct-path branch at fetch. Returns
    /// `(stop_fetch_run, mispredicted)`.
    fn predict_branch(&mut self, tid: usize, token: u64, instr: &DynInstr) -> (bool, bool) {
        let (predicted_taken, predicted_target) = match instr.class {
            InstrClass::BranchCond => {
                let dir = self.bpred.predict(instr.pc, tid);
                self.bpred.update(instr.pc, tid, instr.taken);
                (dir, self.btb.lookup(instr.pc))
            }
            InstrClass::BranchUncond => match instr.uncond_kind {
                // Calls push their return address; the target comes
                // from the BTB like any direct jump.
                UncondKind::Call => {
                    self.threads[tid].ras.push(instr.fallthrough());
                    (true, self.btb.lookup(instr.pc))
                }
                // Returns predict their (dynamic) target by popping the
                // RAS; an empty stack falls back to the BTB. Squashes
                // do not repair the stack — RAS corruption on the wrong
                // path is a real, modelled effect.
                UncondKind::Ret => {
                    let ras = self.threads[tid].ras.pop();
                    (true, ras.or_else(|| self.btb.lookup(instr.pc)))
                }
                UncondKind::Jump => (true, self.btb.lookup(instr.pc)),
            },
            // lint: allow(D11) -- fetch only calls predict_branch on branch-class instructions
            _ => unreachable!("predict_branch on non-branch"),
        };
        // Train the BTB with the resolved target (returns excluded:
        // their targets vary per dynamic instance and would only
        // pollute the BTB — the RAS is their predictor).
        if instr.taken && instr.uncond_kind != UncondKind::Ret {
            self.btb.update(instr.pc, instr.target);
        }
        if instr.class == InstrClass::BranchCond {
            self.threads[tid].branches_in_flight += 1;
        }

        // Decide misprediction and the wrong path the front-end follows.
        let actual_taken = instr.taken;
        let fallthrough = instr.fallthrough();
        let (mispredicted, wrong_pc) = match (predicted_taken, actual_taken) {
            (false, true) => (true, fallthrough),
            (true, false) => (true, predicted_target.unwrap_or(fallthrough)),
            (true, true) => match predicted_target {
                Some(t) if t == instr.target => (false, 0),
                Some(t) => (true, t),
                // BTB miss on a taken branch: misfetch down the
                // fall-through path.
                None => (true, fallthrough),
            },
            (false, false) => (false, 0),
        };
        if mispredicted {
            self.threads[tid].wrong_path = Some(WrongPathMode {
                resolver: token,
                cursor: wrong_pc,
            });
            self.wp_buffers[tid].clear();
            return (true, true);
        }
        // Correctly-predicted taken branches end the fetch run.
        (actual_taken, false)
    }

    fn peek_wrong_path(&mut self, tid: usize) -> DynInstr {
        if self.wp_buffers[tid].is_empty() {
            self.refill_wp(tid);
        }
        // lint: allow(D3) -- refill_wp synthesises a non-empty run before this read
        *self.wp_buffers[tid].front().expect("refilled wp buffer")
    }

    fn next_wrong_path(&mut self, tid: usize) -> DynInstr {
        if self.wp_buffers[tid].is_empty() {
            self.refill_wp(tid);
        }
        // lint: allow(D3) -- refill_wp synthesises a non-empty run before this pop
        let i = self.wp_buffers[tid].pop_front().expect("refilled wp buffer");
        if let Some(wp) = &mut self.threads[tid].wrong_path {
            // Treat junk conditional branches as not-taken.
            wp.cursor = if i.class == InstrClass::BranchUncond {
                i.target
            } else {
                i.fallthrough()
            };
        }
        i
    }

    fn refill_wp(&mut self, tid: usize) {
        let cursor = self.threads[tid]
            .wrong_path
            .as_ref()
            // lint: allow(D3) -- only called while the thread is in wrong-path mode (callers check)
            .expect("wrong-path mode")
            .cursor;
        let dict = Arc::clone(&self.threads[tid].dict);
        dict.synth_wrong_path_into(cursor, 8, &mut self.wp_buffers[tid]);
    }

    // ----------------------------------------------------------------
    // Statistics
    // ----------------------------------------------------------------

    /// Snapshot the core's statistics.
    pub fn stats(&self) -> CoreStats {
        CoreStats {
            threads: self
                .threads
                .iter()
                .map(|t| ThreadStats {
                    committed: t.committed,
                    fetched: t.fetched,
                    branches: t.branches,
                    mispredicts: t.mispredicts,
                    loads_issued: t.loads_issued,
                    flushes: t.flushes,
                    energy: t.energy.clone(),
                })
                .collect(),
            fetch_active_cycles: self.fetch_active_cycles,
            iq_full_stalls: self.iq_full_stalls,
            reg_full_stalls: self.reg_full_stalls,
            rob_full_stalls: self.rob_full_stalls,
            mshr_retries: self.mshr_retries,
            flushes_executed: self.flushes_executed,
            stalls_executed: self.stalls_executed,
            store_forwards: self.store_forwards,
        }
    }

    /// Branch predictor accuracy so far.
    pub fn branch_accuracy(&self) -> f64 {
        self.bpred.accuracy()
    }

    /// One-line diagnostic snapshot of pipeline occupancy (for
    /// debugging and tests).
    pub fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "iq={:?} regs_free={} stores={} ",
            self.iq_used,
            self.regs.free_count(),
            self.store_queue.len()
        );
        for (tid, t) in self.threads.iter().enumerate() {
            let _ = write!(
                s,
                "| t{tid}: fe={} rob={} head={:?} gate={:?} wp={} ic_wait={} ",
                t.frontend.len(),
                t.rob.len(),
                t.rob.head().map(|e| (e.instr.class, e.state)),
                t.gate,
                t.wrong_path.is_some(),
                t.icache_wait.is_some(),
            );
        }
        s
    }

    /// Start recording `(tid, trace_seq)` for every commit.
    pub fn enable_commit_log(&mut self) {
        self.commit_log = Some(Vec::new());
    }

    /// Start recording trace events into a ring keeping the most
    /// recent `capacity` records (DESIGN.md §12). Tracing is off by
    /// default and costs one branch per instrumentation point when
    /// disabled.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(EventRing::new(capacity));
    }

    /// The core's event ring (`None` unless [`Self::enable_trace`] was
    /// called).
    pub fn trace(&self) -> Option<&EventRing> {
        self.trace.as_ref()
    }

    /// The recorded commit log (empty when not enabled).
    pub fn commit_log(&self) -> &[(usize, u64)] {
        self.commit_log.as_deref().unwrap_or(&[])
    }

    /// Total committed instructions.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Structured per-thread pipeline snapshots (the machine-readable
    /// counterpart of [`Self::debug_state`], consumed by the driver's
    /// forward-progress watchdog diagnostics).
    pub fn thread_snapshots(&self) -> Vec<ThreadProbe> {
        self.threads
            .iter()
            .enumerate()
            .map(|(tid, t)| ThreadProbe {
                tid: tid as u32,
                gate: format!("{:?}", t.gate),
                frontend: t.frontend.len() as u32,
                rob: t.rob.len() as u32,
                icache_wait: t.icache_wait.is_some(),
                committed: t.committed,
            })
            .collect()
    }
}
