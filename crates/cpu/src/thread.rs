//! Per-hardware-context state.

use crate::ras::ReturnAddressStack;
use crate::rob::Rob;
use smtsim_energy::EnergyAccount;
use smtsim_mem::ReqId;
use smtsim_trace::{
    BasicBlockDict, DynInstr, FastTraceGenerator, InstrStream, ReplayableStream, TraceGenerator,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Everything needed to run one thread on a core: its instruction
/// source, its static code (for wrong-path fetch) and the memory
/// regions a driver should warm before measurement (`(base, bytes)`
/// for the L1-resident and L2-resident working sets; the main-memory
/// stream stays cold by design).
pub struct ThreadProgram {
    pub stream: Box<dyn InstrStream + Send>,
    pub dict: Arc<BasicBlockDict>,
    /// `[(l1_base, l1_bytes), (l2_base, l2_bytes)]`.
    pub warm_regions: [(u64, u64); 2],
}

impl ThreadProgram {
    /// Bundle a synthetic-trace generator (the common case).
    // lint: allow(D5) -- construction-time Box of the stream; the crate clippy.toml bans Box::new for the cycle loop
    #[allow(clippy::disallowed_methods)]
    pub fn from_generator(gen: TraceGenerator) -> Self {
        let dict = gen.dict_arc();
        let bases = gen.data_region_bases();
        let mem = gen.profile().mem;
        ThreadProgram {
            dict,
            warm_regions: [
                (bases[0], mem.l1_ws_bytes),
                (bases[1], mem.l2_ws_bytes),
            ],
            stream: Box::new(gen),
        }
    }

    /// Bundle a reduced-fidelity generator (for the IPC-approx
    /// backend, which reads no register operands — see
    /// [`smtsim_trace::fastgen`]).
    // lint: allow(D5) -- construction-time Box of the stream; the crate clippy.toml bans Box::new for the cycle loop
    #[allow(clippy::disallowed_methods)]
    pub fn from_fast_generator(gen: FastTraceGenerator) -> Self {
        let dict = gen.dict_arc();
        let bases = gen.data_region_bases();
        let mem = gen.profile().mem;
        ThreadProgram {
            dict,
            warm_regions: [
                (bases[0], mem.l1_ws_bytes),
                (bases[1], mem.l2_ws_bytes),
            ],
            stream: Box::new(gen),
        }
    }

    /// Bundle an arbitrary stream with no data to warm (unit tests,
    /// recorded traces).
    pub fn from_stream(stream: Box<dyn InstrStream + Send>, dict: Arc<BasicBlockDict>) -> Self {
        ThreadProgram {
            stream,
            dict,
            warm_regions: [(0, 0), (0, 0)],
        }
    }
}

/// An instruction sitting in the front-end (fetched, not yet renamed).
#[derive(Debug, Clone, Copy)]
pub struct FrontendEntry {
    pub token: u64,
    pub instr: DynInstr,
    pub wrong_path: bool,
    /// Correct-path branch detected (at fetch) as mispredicted; it will
    /// squash and redirect when it executes.
    pub mispredicted: bool,
    pub fetched_at: u64,
}

/// Wrong-path fetch mode: active after a detected misprediction until
/// the branch resolves at execute.
#[derive(Debug, Clone)]
pub struct WrongPathMode {
    /// Token of the mispredicted branch that will redirect.
    pub resolver: u64,
    /// Next wrong-path PC to fetch from the basic-block dictionary.
    pub cursor: u64,
}

/// Why a thread's fetch is currently gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchGate {
    /// Fetching normally.
    Open,
    /// Policy stall (STALL response action / MFLUSH preventive state).
    PolicyStall,
    /// Flushed: gated until the offending load (token) completes.
    Flushed { offender: u64 },
}

/// One hardware context.
pub struct ThreadCtx {
    /// Instruction source (rewindable for FLUSH replay).
    pub stream: ReplayableStream<Box<dyn InstrStream + Send>>,
    /// Static code, for wrong-path synthesis.
    pub dict: Arc<BasicBlockDict>,
    /// Data regions to warm before measurement.
    pub warm_regions: [(u64, u64); 2],
    /// Fetched-but-not-renamed instructions.
    pub frontend: VecDeque<FrontendEntry>,
    /// Reorder buffer.
    pub rob: Rob,
    /// Return address stack (structural fidelity to Fig. 1).
    pub ras: ReturnAddressStack,
    /// Wrong-path mode, if active.
    pub wrong_path: Option<WrongPathMode>,
    /// Outstanding I-cache miss blocking fetch.
    pub icache_wait: Option<ReqId>,
    /// Fetch gating state.
    pub gate: FetchGate,
    /// Cycle fetch may resume after a branch redirect.
    pub redirect_at: u64,
    /// Energy ledger.
    pub energy: EnergyAccount,
    /// Committed instructions.
    pub committed: u64,
    /// Fetched instructions (correct + wrong path).
    pub fetched: u64,
    /// Conditional branches committed / mispredicted.
    pub branches: u64,
    pub mispredicts: u64,
    /// Unresolved branches currently in flight (BRCOUNT metric).
    pub branches_in_flight: u32,
    /// Outstanding L1D misses (L1DMISSCOUNT metric).
    pub l1d_misses_in_flight: u32,
    /// Loads issued to memory / L2 misses suffered.
    pub loads_issued: u64,
    /// Flush events affecting this thread.
    pub flushes: u64,
}

impl ThreadCtx {
    /// New context over a thread program.
    pub fn new(program: ThreadProgram, rob_capacity: usize, ras_entries: usize) -> Self {
        ThreadCtx {
            stream: ReplayableStream::new(program.stream),
            dict: program.dict,
            warm_regions: program.warm_regions,
            frontend: VecDeque::new(),
            rob: Rob::new(rob_capacity),
            ras: ReturnAddressStack::new(ras_entries),
            wrong_path: None,
            icache_wait: None,
            gate: FetchGate::Open,
            redirect_at: 0,
            energy: EnergyAccount::new(),
            committed: 0,
            fetched: 0,
            branches: 0,
            mispredicts: 0,
            branches_in_flight: 0,
            l1d_misses_in_flight: 0,
            loads_issued: 0,
            flushes: 0,
        }
    }

    /// True when the policy currently gates fetch.
    pub fn is_gated(&self) -> bool {
        self.gate != FetchGate::Open
    }

    /// Instructions in pre-issue stages (ICOUNT metric): front-end plus
    /// issue-queue residents.
    pub fn in_frontend(&self) -> u32 {
        self.frontend.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_trace::{spec, TraceGenerator};

    fn ctx() -> ThreadCtx {
        let gen = TraceGenerator::new(spec::benchmark_by_name("gzip").unwrap(), 1);
        ThreadCtx::new(ThreadProgram::from_generator(gen), 256, 100)
    }

    #[test]
    fn fresh_context_is_open_and_empty() {
        let t = ctx();
        assert_eq!(t.gate, FetchGate::Open);
        assert!(!t.is_gated());
        assert_eq!(t.in_frontend(), 0);
        assert!(t.rob.is_empty());
    }

    #[test]
    fn gates_report_gated() {
        let mut t = ctx();
        t.gate = FetchGate::PolicyStall;
        assert!(t.is_gated());
        t.gate = FetchGate::Flushed { offender: 7 };
        assert!(t.is_gated());
        t.gate = FetchGate::Open;
        assert!(!t.is_gated());
    }

    #[test]
    fn stream_is_rewindable() {
        let mut t = ctx();
        let a = t.stream.fetch();
        let b = t.stream.fetch();
        t.stream.unfetch(vec![a, b]);
        assert_eq!(t.stream.fetch(), a);
        assert_eq!(t.stream.fetch(), b);
    }
}


