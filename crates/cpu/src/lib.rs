#![forbid(unsafe_code)]
//! # smtsim-cpu — the SMT out-of-order core model
//!
//! A trace-driven reimplementation of SMTsim's back-end with the paper's
//! Fig. 1 core: 11-stage pipeline, 2 hardware contexts, shared 64-entry
//! int/fp/ld-st issue queues, 4/3/2 execution units, 320 shared physical
//! registers, per-thread 256-entry ROB, perceptron branch predictor,
//! 4-way 256-entry BTB and a 100-entry per-thread RAS.
//!
//! The core executes the **mechanisms** the paper studies:
//!
//! * ICOUNT.2.8 fetch (up to 2 threads, 8 instructions per cycle),
//!   steered by a pluggable [`smtsim_policy::FetchPolicy`];
//! * resource sharing: a thread blocked on an L2 miss clogs issue-queue
//!   entries and physical registers that other threads need;
//! * the FLUSH response action: squash everything younger than the
//!   offending load, free its resources, replay from the trace when the
//!   load resolves (with per-stage energy accounting for Fig. 11);
//! * branch misprediction with wrong-path fetch from the basic-block
//!   dictionary (I-cache pollution), resolved at execute;
//! * loads/stores/ifetches travelling through [`smtsim_mem`]'s shared
//!   hierarchy.
//!
//! Since the pluggable-fidelity refactor (DESIGN.md §13) the pipeline
//! above lives in [`DetailedCore`]; [`SmtCore`] is a thin front-end
//! that dispatches to a [`core::CoreBackend`] — either the detailed
//! pipeline or the reduced [`IpcApproxCore`] commit-rate model — and
//! cores talk to the memory hierarchy through
//! [`smtsim_mem::MemoryModel`] rather than a concrete system.
//!
//! ```
//! use smtsim_cpu::thread::ThreadProgram;
//! use smtsim_cpu::{CoreConfig, SmtCore};
//! use smtsim_mem::{MemConfig, MemoryModel};
//! use smtsim_policy::{build_policy, PolicyEnv, PolicyKind};
//! use smtsim_trace::{spec, TraceGenerator};
//!
//! let programs = ["gzip", "eon"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, name)| {
//!         ThreadProgram::from_generator(TraceGenerator::new(
//!             spec::benchmark_by_name(name).unwrap(),
//!             1 + i as u64 * 1000,
//!         ))
//!     })
//!     .collect();
//! let mut core = SmtCore::new(
//!     0,
//!     CoreConfig::paper(),
//!     build_policy(PolicyKind::Mflush, &PolicyEnv::paper(1)),
//!     programs,
//! );
//! let mut mem = MemoryModel::detailed(MemConfig::paper(1));
//! core.prewarm(&mut mem);
//! for now in 0..5_000 {
//!     mem.tick(now);
//!     core.tick(now, &mut mem);
//! }
//! assert!(core.total_committed() > 1_000);
//! ```

pub mod approx;
pub mod bpred;
pub mod btb;
pub mod config;
pub mod core;
pub mod detailed;
pub mod metrics;
pub mod ras;
pub mod regfile;
pub mod rob;
pub mod stats;
pub mod thread;

pub use approx::IpcApproxCore;
pub use bpred::PerceptronPredictor;
pub use btb::Btb;
pub use config::CoreConfig;
pub use core::{CoreBackend, CoreFidelity, SmtCore};
pub use detailed::DetailedCore;
pub use metrics::METRICS;
pub use ras::ReturnAddressStack;
pub use stats::{CoreStats, ThreadProbe, ThreadStats};
