//! End-to-end tests of one SMT core against the shared memory system.
//!
//! The golden correctness property of a trace-driven pipeline with
//! squash/replay is: **every thread commits its trace's sequence
//! numbers in order, exactly once** — regardless of branch
//! mispredictions, FLUSH response actions and wrong-path fetch.

use smtsim_cpu::thread::ThreadProgram;
use smtsim_cpu::{CoreConfig, SmtCore};
use smtsim_mem::{MemConfig, MemoryModel};
use smtsim_policy::{build_policy, PolicyEnv, PolicyKind};
use smtsim_trace::{spec, TraceGenerator};

fn make_core(policy: PolicyKind, benchmarks: &[&str], seed: u64) -> SmtCore {
    let env = PolicyEnv::paper(1);
    let programs = benchmarks
        .iter()
        .enumerate()
        .map(|(i, name)| {
            ThreadProgram::from_generator(TraceGenerator::new(
                spec::benchmark_by_name(name).unwrap(),
                seed + i as u64 * 1000,
            ))
        })
        .collect();
    SmtCore::new(0, CoreConfig::paper(), build_policy(policy, &env), programs)
}

fn run_from(core: &mut SmtCore, mem: &mut MemoryModel, start: u64, cycles: u64) -> u64 {
    if start == 0 {
        core.prewarm(mem);
    }
    for now in start..start + cycles {
        mem.tick(now);
        core.tick(now, mem);
    }
    start + cycles
}

fn run(core: &mut SmtCore, mem: &mut MemoryModel, cycles: u64) {
    run_from(core, mem, 0, cycles);
}

/// Check the golden property on a commit log.
fn assert_in_order_exactly_once(log: &[(usize, u64)], contexts: usize) {
    let mut next = vec![0u64; contexts];
    for &(tid, seq) in log {
        assert_eq!(
            seq, next[tid],
            "thread {tid} committed seq {seq}, expected {}",
            next[tid]
        );
        next[tid] += 1;
    }
}

#[test]
fn single_thread_commits_in_order() {
    let mut core = make_core(PolicyKind::Icount, &["gzip", "eon"], 1);
    core.enable_commit_log();
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 20_000);
    let stats = core.stats();
    assert!(
        stats.total_committed() > 5_000,
        "2 ILP threads on an 8-wide core must commit plenty, got {}",
        stats.total_committed()
    );
    assert_in_order_exactly_once(core.commit_log(), 2);
}

#[test]
fn deterministic_across_runs() {
    let mk = || {
        let mut core = make_core(PolicyKind::Icount, &["vpr", "twolf"], 7);
        let mut mem = MemoryModel::detailed(MemConfig::paper(1));
        run(&mut core, &mut mem, 10_000);
        core.total_committed()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn different_policies_still_commit_correctly() {
    for policy in [
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::FlushNonSpec,
        PolicyKind::StallSpec(30),
        PolicyKind::Mflush,
        PolicyKind::Brcount,
        PolicyKind::L1dMissCount,
        PolicyKind::Adts,
    ] {
        let mut core = make_core(policy, &["mcf", "gzip"], 3);
        core.enable_commit_log();
        let mut mem = MemoryModel::detailed(MemConfig::paper(1));
        run(&mut core, &mut mem, 15_000);
        assert!(
            core.total_committed() > 500,
            "{policy:?} starved: {} commits",
            core.total_committed()
        );
        assert_in_order_exactly_once(core.commit_log(), 2);
    }
}

#[test]
fn flush_policy_actually_flushes_on_memory_bound_threads() {
    let mut core = make_core(PolicyKind::FlushSpec(30), &["mcf", "mcf"], 11);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 20_000);
    let stats = core.stats();
    assert!(
        stats.flushes_executed > 0,
        "mcf must trigger FLUSH-S30 within 20k cycles"
    );
    // Flushed instructions must show up in the energy ledger.
    let energy = stats.energy();
    assert!(energy.flush_squashed_total() > 0);
    assert!(energy.wasted_energy() > 0.0);
}

#[test]
fn icount_never_flushes() {
    let mut core = make_core(PolicyKind::Icount, &["mcf", "mcf"], 11);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 15_000);
    let stats = core.stats();
    assert_eq!(stats.flushes_executed, 0);
    assert_eq!(stats.energy().flush_squashed_total(), 0);
}

#[test]
fn flush_improves_mixed_workload_over_icount() {
    // The paper's core claim at 1 core (Fig. 2): ICOUNT lets an
    // L2-missing thread clog shared resources; FLUSH frees them. The
    // paper's 2W5 workload (lucas + wupwise: a streaming FP code with
    // frequent L2 misses next to a cache-resident FP code) shows the
    // effect strongly.
    let throughput = |policy| {
        let mut core = make_core(policy, &["lucas", "wupwise"], 5);
        let mut mem = MemoryModel::detailed(MemConfig::paper(1));
        run(&mut core, &mut mem, 40_000);
        core.total_committed()
    };
    let icount = throughput(PolicyKind::Icount);
    let flush = throughput(PolicyKind::FlushSpec(30));
    assert!(
        flush as f64 > icount as f64 * 1.10,
        "FLUSH-S30 ({flush}) must beat ICOUNT ({icount}) on lucas+wupwise at 1 core"
    );
}

#[test]
fn branch_predictor_learns_on_real_streams() {
    let mut core = make_core(PolicyKind::Icount, &["swim", "wupwise"], 9);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 20_000);
    let acc = core.branch_accuracy();
    assert!(
        acc > 0.9,
        "fp codes are highly predictable; predictor reached only {acc}"
    );
}

#[test]
fn mispredicts_happen_and_are_recovered() {
    // twolf has weakly-biased branches → real mispredicts.
    let mut core = make_core(PolicyKind::Icount, &["twolf", "vpr"], 13);
    core.enable_commit_log();
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 20_000);
    let stats = core.stats();
    let mispredicts: u64 = stats.threads.iter().map(|t| t.mispredicts).sum();
    assert!(mispredicts > 10, "expected real mispredicts, got {mispredicts}");
    // Wrong-path work shows up as mispredict squash energy…
    assert!(stats.energy().branch_squashed_total() > 0);
    // …but correctness is untouched.
    assert_in_order_exactly_once(core.commit_log(), 2);
}

#[test]
fn stall_policy_gates_without_squashing() {
    let mut core = make_core(PolicyKind::StallSpec(30), &["mcf", "mcf"], 17);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 20_000);
    let stats = core.stats();
    assert!(stats.stalls_executed > 0, "mcf must trigger stalls");
    assert_eq!(
        stats.energy().flush_squashed_total(),
        0,
        "STALL never squashes"
    );
}

#[test]
fn mflush_runs_and_uses_preventive_state() {
    let mut core = make_core(PolicyKind::Mflush, &["mcf", "art"], 19);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 30_000);
    let stats = core.stats();
    assert!(
        stats.stalls_executed > 0,
        "MFLUSH's preventive state must engage on memory-bound threads"
    );
    assert!(
        stats.flushes_executed > 0,
        "MFLUSH must flush past-barrier accesses"
    );
}

#[test]
fn resources_stay_balanced_over_long_runs() {
    // Conservation check: after many flushes/mispredicts, the pipeline
    // still commits and queue accounting never deadlocks.
    let mut core = make_core(PolicyKind::FlushSpec(50), &["mcf", "twolf"], 23);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    let t = run_from(&mut core, &mut mem, 0, 30_000);
    let committed_early = core.total_committed();
    run_from(&mut core, &mut mem, t, 30_000);
    // Progress continues in the second half (no wedge).
    assert!(core.total_committed() > committed_early + 100);
}
