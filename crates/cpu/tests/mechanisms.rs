//! Focused tests of individual core mechanisms: the fetch-queue bound,
//! store-to-load forwarding, RAS-driven return prediction, the flush
//! energy distribution, and wrong-path containment.

use smtsim_cpu::thread::ThreadProgram;
use smtsim_cpu::{CoreConfig, SmtCore};
use smtsim_mem::{MemConfig, MemoryModel};
use smtsim_policy::{build_policy, PolicyEnv, PolicyKind};
use smtsim_trace::{spec, InstrClass, InstrStream, TraceGenerator, UncondKind};

fn make_core(policy: PolicyKind, benchmarks: &[&str], seed: u64) -> SmtCore {
    let env = PolicyEnv::paper(1);
    let programs = benchmarks
        .iter()
        .enumerate()
        .map(|(i, name)| {
            ThreadProgram::from_generator(TraceGenerator::new(
                spec::benchmark_by_name(name).unwrap(),
                seed + i as u64 * 1000,
            ))
        })
        .collect();
    SmtCore::new(0, CoreConfig::paper(), build_policy(policy, &env), programs)
}

fn run(core: &mut SmtCore, mem: &mut MemoryModel, cycles: u64) {
    core.prewarm(mem);
    for now in 0..cycles {
        mem.tick(now);
        core.tick(now, mem);
    }
}

#[test]
fn fetch_queue_bounds_runahead() {
    // The front-end buffer must never exceed its configured size even
    // under long wrong-path episodes (mcf: branch outcomes depend on
    // slow loads).
    let mut cfg = CoreConfig::paper();
    cfg.fetch_queue = 16;
    let env = PolicyEnv::paper(1);
    let programs = ["mcf", "twolf"]
        .iter()
        .map(|n| {
            ThreadProgram::from_generator(TraceGenerator::new(
                spec::benchmark_by_name(n).unwrap(),
                3,
            ))
        })
        .collect();
    let mut core = SmtCore::new(0, cfg, build_policy(PolicyKind::Icount, &env), programs);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    core.prewarm(&mut mem);
    for now in 0..20_000 {
        mem.tick(now);
        core.tick(now, &mut mem);
        let dbg = core.debug_state();
        // debug_state prints "fe=<n>"; parse both threads.
        for part in dbg.split("fe=").skip(1) {
            let n: usize = part
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .expect("fe count");
            assert!(n <= 16, "fetch queue overflow at cycle {now}: {dbg}");
        }
    }
}

#[test]
fn store_forwarding_engages_on_read_after_write_streams() {
    // Build a synthetic stream of alternating store/load to the same
    // address: every load must forward.
    use smtsim_trace::DynInstr;
    struct RawStream {
        seq: u64,
    }
    impl InstrStream for RawStream {
        fn next_instr(&mut self) -> DynInstr {
            let seq = self.seq;
            self.seq += 1;
            let mut i = DynInstr::nop(seq, 0x40_0000 + (seq % 16) * 4);
            // Alternate store/load on the same word, no branches.
            if seq.is_multiple_of(2) {
                i.class = InstrClass::Store;
                i.mem_addr = 0x0200_0000_0000;
            } else {
                i.class = InstrClass::Load;
                i.mem_addr = 0x0200_0000_0000;
                i.dst = Some(1);
            }
            i
        }
    }
    let gen = TraceGenerator::new(spec::benchmark_by_name("gzip").unwrap(), 1);
    let dict = gen.dict_arc();
    let env = PolicyEnv::paper(1);
    // lint: allow(D5) -- test setup boxes its stream once; the crate clippy.toml bans Box::new for the cycle loop
    #[allow(clippy::disallowed_methods)]
    let programs = vec![
        ThreadProgram::from_stream(Box::new(RawStream { seq: 0 }), dict.clone()),
        ThreadProgram::from_stream(Box::new(RawStream { seq: 0 }), dict),
    ];
    let mut core = SmtCore::new(
        0,
        CoreConfig::paper(),
        build_policy(PolicyKind::Icount, &env),
        programs,
    );
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    for now in 0..5_000 {
        mem.tick(now);
        core.tick(now, &mut mem);
    }
    let s = core.stats();
    assert!(
        s.store_forwards > 100,
        "RAW pattern must forward heavily, got {}",
        s.store_forwards
    );
}

#[test]
fn returns_are_predicted_by_the_ras() {
    // A call-heavy benchmark commits correctly and keeps branch
    // accuracy high; with return targets varying per call site, the
    // BTB alone could not do this.
    let mut core = make_core(PolicyKind::Icount, &["gcc", "perlbmk"], 7);
    core.enable_commit_log();
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 30_000);
    let acc = core.branch_accuracy();
    assert!(acc > 0.85, "call-heavy codes reached only {acc:.3}");
    // Correctness untouched.
    let mut next = [0u64; 2];
    for &(tid, seq) in core.commit_log() {
        assert_eq!(seq, next[tid]);
        next[tid] += 1;
    }
}

#[test]
fn trace_streams_contain_calls_and_rets() {
    let mut g = TraceGenerator::new(spec::benchmark_by_name("perlbmk").unwrap(), 5);
    let mut calls = 0;
    let mut rets = 0;
    for _ in 0..100_000 {
        let i = g.next_instr();
        if i.class == InstrClass::BranchUncond {
            match i.uncond_kind {
                UncondKind::Call => calls += 1,
                UncondKind::Ret => rets += 1,
                UncondKind::Jump => {}
            }
        }
    }
    assert!(calls > 50, "calls {calls}");
    assert!(rets > 50, "rets {rets}");
}

#[test]
fn flush_energy_lands_in_multiple_stages() {
    // Flushed instructions should be spread across pipeline stages —
    // the precondition for Fig. 11's stage-weighted accounting to mean
    // anything.
    let mut core = make_core(PolicyKind::FlushSpec(30), &["mcf", "swim"], 9);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 30_000);
    let e = core.stats().energy();
    let by_stage = e.flush_squashed_by_stage();
    let populated = by_stage.iter().filter(|&&n| n > 0).count();
    assert!(
        populated >= 3,
        "flush victims should span several stages, got {by_stage:?}"
    );
    // Accumulated ECF ordering: wasted energy is strictly less than
    // 1 eu per squashed instruction on average (nothing squashed at
    // commit costs more than commit itself).
    assert!(e.wasted_energy() < e.flush_squashed_total() as f64);
    assert!(e.wasted_energy() > 0.13 * e.flush_squashed_total() as f64 - 1e-9);
}

#[test]
fn wrong_path_loads_do_not_touch_the_data_cache() {
    // twolf mispredicts often; wrong-path junk includes loads. The
    // memory system's load count must equal the correct-path loads
    // issued (junk loads execute without cache access).
    let mut core = make_core(PolicyKind::Icount, &["twolf", "twolf"], 13);
    let mut mem = MemoryModel::detailed(MemConfig::paper(1));
    run(&mut core, &mut mem, 20_000);
    let s = core.stats();
    // `loads_issued` counts correct-path loads issued *to memory*
    // (forwarded loads never reach it), so the two sides must agree
    // exactly.
    let correct_path_loads: u64 = s.threads.iter().map(|t| t.loads_issued).sum();
    let mem_loads = mem.stats().total(|c| c.loads);
    assert_eq!(
        mem_loads, correct_path_loads,
        "every memory load must be a correct-path, non-forwarded load"
    );
}
