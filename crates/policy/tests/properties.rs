//! Property-based tests over the policy layer, on the in-repo harness
//! (`smtsim_trace::check`).

use smtsim_policy::mflush::{McRegConfig, McRegFile, McRegReducer, MflushConfig};
use smtsim_policy::{build_policy, PolicyEnv, PolicyKind, ThreadSnapshot};
use smtsim_trace::check::{Cases, Gen};

fn any_policy(g: &mut Gen) -> PolicyKind {
    match g.u32_in(0..13) {
        0 => PolicyKind::Icount,
        1 => PolicyKind::RoundRobin,
        2 => PolicyKind::Brcount,
        3 => PolicyKind::L1dMissCount,
        4 => PolicyKind::Adts,
        5 => PolicyKind::Dcra,
        6 => PolicyKind::FlushSpec(g.u64_in(1..500)),
        7 => PolicyKind::FlushNonSpec,
        8 => PolicyKind::StallSpec(g.u64_in(1..500)),
        9 => PolicyKind::StallNonSpec,
        10 => PolicyKind::Mflush,
        11 => PolicyKind::FlushAdaptive,
        _ => PolicyKind::FlushMissPredict,
    }
}

/// The Barrier always stays inside the operational environment
/// `[MIN+MT, MAX+MT]` for any machine shape and prediction.
#[test]
fn barrier_always_in_operational_environment() {
    Cases::new(64).run("barrier_always_in_operational_environment", |g| {
        let cores = g.u32_in(1..16);
        let banks = g.u32_in(1..16);
        let bus = g.u64_in(1..32);
        let bank_delay = g.u64_in(1..64);
        let min = g.u64_in(4..100);
        let extra = g.u64_in(1..1000);
        let prediction = g.u64_in(0..10_000);
        let cfg = MflushConfig {
            min,
            max: min + extra,
            bus_delay: bus,
            bank_delay,
            num_cores: cores,
            num_banks: banks,
            mcreg: McRegConfig::default(),
            preventive: true,
            mt_enabled: true,
        };
        let b = cfg.barrier(prediction);
        assert!(b >= cfg.min + cfg.mt());
        assert!(b <= cfg.max + cfg.mt());
        // The preventive threshold sits at or below every barrier.
        assert!(cfg.preventive_threshold() <= b);
    });
}

/// MCReg predictions are always within the observed value range (after
/// u8 saturation), for every reducer and history length.
#[test]
fn mcreg_prediction_bounded_by_observations() {
    Cases::new(64).run("mcreg_prediction_bounded_by_observations", |g| {
        let history = g.usize_in(1..8);
        let reducer = *g.choose(&[McRegReducer::Last, McRegReducer::Mean, McRegReducer::Max]);
        let obs = g.vec_of(1..40, |g| g.u64_in(0..2_000));
        let mut f = McRegFile::new(1, 22, McRegConfig { history, reducer });
        for &o in &obs {
            f.update(0, o);
        }
        let window: Vec<u64> = obs.iter().rev().take(history).map(|&o| o.min(255)).collect();
        let p = f.predict(0);
        assert!(p >= *window.iter().min().unwrap());
        assert!(p <= *window.iter().max().unwrap());
    });
}

/// Every policy returns a complete, duplicate-free fetch priority
/// permutation for arbitrary snapshot contents.
#[test]
fn fetch_priority_is_a_permutation() {
    Cases::new(64).run("fetch_priority_is_a_permutation", |g| {
        let kind = any_policy(g);
        let threads = g.usize_in(1..8);
        let frontends: Vec<u32> = (0..8).map(|_| g.u32_in(0..100)).collect();
        let misses: Vec<u32> = (0..8).map(|_| g.u32_in(0..16)).collect();
        let cycle = g.u64_in(0..100_000);
        let env = PolicyEnv::paper(4);
        let mut p = build_policy(kind, &env);
        let snaps: Vec<ThreadSnapshot> = (0..threads)
            .map(|tid| {
                let mut s = ThreadSnapshot::idle(tid);
                s.in_frontend = frontends[tid];
                s.l1d_misses_in_flight = misses[tid];
                s
            })
            .collect();
        let mut out = Vec::new();
        p.fetch_priority(cycle, &snaps, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..threads).collect::<Vec<_>>());
    });
}

/// Policies never emit actions for threads they were never told about,
/// under an arbitrary stream of load events.
#[test]
fn actions_reference_known_threads() {
    Cases::new(64).run("actions_reference_known_threads", |g| {
        let kind = any_policy(g);
        let events = g.vec_of(0..60, |g| {
            (
                g.usize_in(0..2),
                g.u64_in(0..64),
                g.u32_in(0..4),
                g.u64_in(0..500),
            )
        });
        let env = PolicyEnv::paper(4);
        let mut p = build_policy(kind, &env);
        let snaps = [ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)];
        let mut actions = Vec::new();
        let mut cycle = 0u64;
        for (tid, token, bank, dt) in events {
            cycle += dt;
            p.on_load_issue(tid, token, 0x1000 + token * 4, cycle);
            p.on_l1d_miss(tid, token, bank, cycle);
            p.tick(cycle, &snaps, &mut actions);
        }
        p.tick(cycle + 10_000, &snaps, &mut actions);
        for a in &actions {
            let tid = match a {
                smtsim_policy::PolicyAction::Flush { tid, .. } => *tid,
                smtsim_policy::PolicyAction::Stall { tid } => *tid,
                smtsim_policy::PolicyAction::Resume { tid } => *tid,
            };
            assert!(tid < 2, "action for unknown thread {tid}");
        }
    });
}
