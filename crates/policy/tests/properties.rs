//! Property-based tests over the policy layer.

use proptest::prelude::*;
use smtsim_policy::mflush::{McRegConfig, McRegFile, McRegReducer, MflushConfig};
use smtsim_policy::{build_policy, PolicyEnv, PolicyKind, ThreadSnapshot};

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Icount),
        Just(PolicyKind::RoundRobin),
        Just(PolicyKind::Brcount),
        Just(PolicyKind::L1dMissCount),
        Just(PolicyKind::Adts),
        Just(PolicyKind::Dcra),
        (1u64..500).prop_map(PolicyKind::FlushSpec),
        Just(PolicyKind::FlushNonSpec),
        (1u64..500).prop_map(PolicyKind::StallSpec),
        Just(PolicyKind::StallNonSpec),
        Just(PolicyKind::Mflush),
        Just(PolicyKind::FlushAdaptive),
        Just(PolicyKind::FlushMissPredict),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The Barrier always stays inside the operational environment
    /// `[MIN+MT, MAX+MT]` for any machine shape and prediction.
    #[test]
    fn barrier_always_in_operational_environment(
        cores in 1u32..16,
        banks in 1u32..16,
        bus in 1u64..32,
        bank_delay in 1u64..64,
        min in 4u64..100,
        extra in 1u64..1000,
        prediction in 0u64..10_000,
    ) {
        let cfg = MflushConfig {
            min,
            max: min + extra,
            bus_delay: bus,
            bank_delay,
            num_cores: cores,
            num_banks: banks,
            mcreg: McRegConfig::default(),
            preventive: true,
            mt_enabled: true,
        };
        let b = cfg.barrier(prediction);
        prop_assert!(b >= cfg.min + cfg.mt());
        prop_assert!(b <= cfg.max + cfg.mt());
        // The preventive threshold sits at or below every barrier.
        prop_assert!(cfg.preventive_threshold() <= b);
    }

    /// MCReg predictions are always within the observed value range
    /// (after u8 saturation), for every reducer and history length.
    #[test]
    fn mcreg_prediction_bounded_by_observations(
        history in 1usize..8,
        reducer in prop_oneof![
            Just(McRegReducer::Last),
            Just(McRegReducer::Mean),
            Just(McRegReducer::Max)
        ],
        obs in prop::collection::vec(0u64..2_000, 1..40),
    ) {
        let mut f = McRegFile::new(1, 22, McRegConfig { history, reducer });
        for &o in &obs {
            f.update(0, o);
        }
        let window: Vec<u64> = obs
            .iter()
            .rev()
            .take(history)
            .map(|&o| o.min(255))
            .collect();
        let p = f.predict(0);
        prop_assert!(p >= *window.iter().min().unwrap());
        prop_assert!(p <= *window.iter().max().unwrap());
    }

    /// Every policy returns a complete, duplicate-free fetch priority
    /// permutation for arbitrary snapshot contents.
    #[test]
    fn fetch_priority_is_a_permutation(
        kind in any_policy(),
        threads in 1usize..8,
        frontends in prop::collection::vec(0u32..100, 8),
        misses in prop::collection::vec(0u32..16, 8),
        cycle in 0u64..100_000,
    ) {
        let env = PolicyEnv::paper(4);
        let mut p = build_policy(kind, &env);
        let snaps: Vec<ThreadSnapshot> = (0..threads)
            .map(|tid| {
                let mut s = ThreadSnapshot::idle(tid);
                s.in_frontend = frontends[tid];
                s.l1d_misses_in_flight = misses[tid];
                s
            })
            .collect();
        let mut out = Vec::new();
        p.fetch_priority(cycle, &snaps, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..threads).collect::<Vec<_>>());
    }

    /// Policies never emit actions for threads they were never told
    /// about, under an arbitrary stream of load events.
    #[test]
    fn actions_reference_known_threads(
        kind in any_policy(),
        events in prop::collection::vec((0usize..2, 0u64..64, 0u32..4, 0u64..500), 0..60),
    ) {
        let env = PolicyEnv::paper(4);
        let mut p = build_policy(kind, &env);
        let snaps = [ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)];
        let mut actions = Vec::new();
        let mut cycle = 0u64;
        for (tid, token, bank, dt) in events {
            cycle += dt;
            p.on_load_issue(tid, token, 0x1000 + token * 4, cycle);
            p.on_l1d_miss(tid, token, bank, cycle);
            p.tick(cycle, &snaps, &mut actions);
        }
        p.tick(cycle + 10_000, &snaps, &mut actions);
        for a in &actions {
            let tid = match a {
                smtsim_policy::PolicyAction::Flush { tid, .. } => *tid,
                smtsim_policy::PolicyAction::Stall { tid } => *tid,
                smtsim_policy::PolicyAction::Resume { tid } => *tid,
            };
            prop_assert!(tid < 2, "action for unknown thread {tid}");
        }
    }
}
