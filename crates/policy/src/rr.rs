//! Round-robin fetch — the naive baseline ICOUNT was designed to beat
//! (Tullsen et al., ISCA'96 call it RR.2.8). Included so experiments
//! can show how much of the paper's stack (ICOUNT → FLUSH → MFLUSH)
//! each layer contributes.

use crate::types::{FetchPolicy, PolicyAction, ThreadSnapshot};

/// Round-robin thread priority, rotating by one position per cycle.
#[derive(Debug, Default, Clone)]
pub struct RoundRobinPolicy {
    offset: usize,
}

impl RoundRobinPolicy {
    /// Construct the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FetchPolicy for RoundRobinPolicy {
    fn name(&self) -> String {
        "RR".into()
    }

    fn tick(&mut self, _cycle: u64, _snaps: &[ThreadSnapshot], _actions: &mut Vec<PolicyAction>) {
        // Rotation advances in fetch_priority so that priority order
        // changes exactly once per cycle regardless of tick/fetch call
        // interleaving.
    }

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        out.clear();
        let n = snaps.len();
        if n == 0 {
            return;
        }
        let start = self.offset % n;
        out.extend(snaps.iter().cycle().skip(start).take(n).map(|s| s.tid));
        self.offset = (self.offset + 1) % n;
    }

    fn next_wake(&self, _from: u64) -> u64 {
        // The rotation is per-fetch_priority-call state; skipped cycles
        // are repaid in on_cycles_skipped, so no wake-up is needed.
        u64::MAX
    }

    fn on_cycles_skipped(&mut self, _from: u64, cycles: u64) {
        // fetch_priority runs once per simulated cycle in an unskipped
        // run; advance the rotation by the cycles it never saw. The
        // use-site reduces `offset % n`, so wrapping addition matches
        // the per-call `(offset + 1) % n` exactly.
        self.offset = self.offset.wrapping_add(cycles as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_each_call() {
        let mut p = RoundRobinPolicy::new();
        let snaps = [
            ThreadSnapshot::idle(0),
            ThreadSnapshot::idle(1),
            ThreadSnapshot::idle(2),
        ];
        let mut out = Vec::new();
        p.fetch_priority(0, &snaps, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        p.fetch_priority(1, &snaps, &mut out);
        assert_eq!(out, vec![1, 2, 0]);
        p.fetch_priority(2, &snaps, &mut out);
        assert_eq!(out, vec![2, 0, 1]);
        p.fetch_priority(3, &snaps, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn never_gates() {
        let mut p = RoundRobinPolicy::new();
        let mut actions = Vec::new();
        p.tick(0, &[ThreadSnapshot::idle(0)], &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let mut p = RoundRobinPolicy::new();
        let mut out = vec![99];
        p.fetch_priority(0, &[], &mut out);
        assert!(out.is_empty());
    }
}
