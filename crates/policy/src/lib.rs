#![forbid(unsafe_code)]
//! # smtsim-policy — SMT instruction-fetch policies
//!
//! The paper frames every long-latency-aware fetch policy as a
//! *Detection Moment* (when do we decide a load will miss the L2?) plus
//! a *Response Action* (what do we do to the offending thread?):
//!
//! | Policy | Detection moment | Response action |
//! |--------|------------------|-----------------|
//! | [`IcountPolicy`] | — | — (priority only) |
//! | [`FlushPolicy`] FL-SX | delay-after-issue (X cycles) | squash + fetch-gate |
//! | [`FlushPolicy`] FL-NS | actual L2 miss | squash + fetch-gate |
//! | [`StallPolicy`] | either | fetch-gate only |
//! | [`MflushPolicy`] | **dynamic per-bank prediction** (MCReg) with a *Preventive State* | gate early, squash only past the Barrier |
//!
//! Policies are decoupled from the core model: the core feeds them
//! per-cycle [`ThreadSnapshot`]s plus memory events, and executes the
//! [`PolicyAction`]s they emit. This mirrors how a fetch policy is just
//! a small front-end controller in real hardware.
//!
//! Extensions beyond the paper's evaluation: [`RoundRobinPolicy`],
//! [`BrcountPolicy`], [`L1dMissCountPolicy`], the ADTS-style adaptive
//! meta-policy [`AdtsPolicy`], the DCRA-style [`DcraPolicy`] (the
//! paper's reference \[3\]), the hill-climbed [`AdaptiveFlushPolicy`] and
//! the load-miss-predictor [`MissPredictFlushPolicy`].
//!
//! ```
//! use smtsim_policy::{build_policy, PolicyEnv, PolicyKind, ThreadSnapshot};
//!
//! // MFLUSH for the paper's 4-core machine.
//! let mut policy = build_policy(PolicyKind::Mflush, &PolicyEnv::paper(4));
//! assert_eq!(policy.name(), "MFLUSH");
//!
//! // A load issues, misses the L1 towards bank 2, and stays
//! // outstanding: past MIN+MT the thread enters the Preventive State.
//! policy.on_load_issue(0, 1, 0x4000, 0);
//! policy.on_l1d_miss(0, 1, 2, 3);
//! let snaps = [ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)];
//! let mut actions = Vec::new();
//! policy.tick(79, &snaps, &mut actions); // 22 + (4+15)·3 = 79
//! assert_eq!(
//!     actions,
//!     vec![smtsim_policy::PolicyAction::Stall { tid: 0 }]
//! );
//! ```

pub mod adaptive_flush;
pub mod adts;
pub mod builder;
pub mod count_variants;
pub mod dcra;
pub mod flush;
pub mod icount;
pub mod metrics;
pub mod mflush;
pub mod miss_predictor;
pub mod rr;
pub mod stall;
pub mod types;

pub use adaptive_flush::{AdaptiveFlushConfig, AdaptiveFlushPolicy};
pub use adts::AdtsPolicy;
pub use builder::{build_policy, PolicyEnv, PolicyKind};
pub use count_variants::{BrcountPolicy, L1dMissCountPolicy};
pub use dcra::DcraPolicy;
pub use flush::{FlushPolicy, FlushTrigger};
pub use icount::IcountPolicy;
pub use metrics::METRICS;
pub use mflush::{McRegFile, McRegReducer, MflushConfig, MflushPolicy};
pub use miss_predictor::{LoadMissPredictor, MissPredictFlushPolicy};
pub use rr::RoundRobinPolicy;
pub use stall::StallPolicy;
pub use types::{FetchPolicy, LoadToken, PolicyAction, ThreadSnapshot};
