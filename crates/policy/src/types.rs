//! The policy ↔ core interface.


/// Core-assigned identifier of one dynamic load instruction. Unique per
/// (core, in-flight window); the policy treats it as opaque.
pub type LoadToken = u64;

/// Per-thread state the core publishes every cycle.
///
/// `in_frontend` is ICOUNT's metric — instructions in the pre-issue
/// stages (fetched/decoded/renamed but not yet issued). The extra
/// counters serve the BRCOUNT / L1DMISSCOUNT related-work policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSnapshot {
    /// Context index within the core.
    pub tid: usize,
    /// Instructions in pre-issue pipeline stages.
    pub in_frontend: u32,
    /// Instructions waiting in issue queues.
    pub in_queues: u32,
    /// ROB occupancy.
    pub in_rob: u32,
    /// Unresolved branches in flight.
    pub branches_in_flight: u32,
    /// Outstanding L1D misses.
    pub l1d_misses_in_flight: u32,
    /// The thread is currently gated by the policy (stalled or flushed).
    pub gated: bool,
    /// Instructions committed so far (monotonic; lets adaptive policies
    /// measure epoch throughput).
    pub committed: u64,
}

impl ThreadSnapshot {
    /// An idle thread snapshot (useful for tests).
    pub fn idle(tid: usize) -> Self {
        ThreadSnapshot {
            tid,
            in_frontend: 0,
            in_queues: 0,
            in_rob: 0,
            branches_in_flight: 0,
            l1d_misses_in_flight: 0,
            gated: false,
            committed: 0,
        }
    }
}

/// What a policy asks the core to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// FLUSH response action: squash every instruction of `tid` younger
    /// than the load `token`, free its resources, and gate fetch until
    /// that load completes (the core auto-resumes then).
    Flush { tid: usize, token: LoadToken },
    /// Gate fetch for `tid` without squashing (STALL response action /
    /// MFLUSH Preventive State). The thread keeps executing instructions
    /// already in the pipeline.
    Stall { tid: usize },
    /// Release a [`PolicyAction::Stall`] gate.
    Resume { tid: usize },
}

/// An SMT instruction-fetch policy.
///
/// Protocol, per simulated cycle:
/// 1. the core calls [`FetchPolicy::tick`] and executes the returned
///    actions;
/// 2. the core calls [`FetchPolicy::fetch_priority`] and fetches from
///    the first non-gated thread(s) in that order (ICOUNT.2.8);
/// 3. as memory events occur the core invokes the `on_*` hooks.
///
/// Flushed threads are auto-resumed by the core when the offending load
/// completes (the core calls [`FetchPolicy::on_thread_resumed`]);
/// stalled threads stay gated until the policy emits
/// [`PolicyAction::Resume`].
pub trait FetchPolicy: Send {
    /// Human-readable name, e.g. `"FLUSH-S30"`.
    fn name(&self) -> String;

    /// Emit actions for this cycle.
    fn tick(&mut self, cycle: u64, snaps: &[ThreadSnapshot], actions: &mut Vec<PolicyAction>);

    /// Order threads by fetch priority (best first). Gated threads may
    /// be included; the core skips them.
    fn fetch_priority(&mut self, cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>);

    /// A load left the load/store queue and entered the cache
    /// hierarchy. `pc` is the load's program counter (for PC-indexed
    /// predictors such as the load-miss predictor of the paper's §3).
    fn on_load_issue(&mut self, _tid: usize, _token: LoadToken, _pc: u64, _cycle: u64) {}

    /// The load missed in the L1D and is now heading to L2 bank `bank`.
    fn on_l1d_miss(&mut self, _tid: usize, _token: LoadToken, _bank: u32, _cycle: u64) {}

    /// A load issued and hit in the L1D, completing in the same cycle.
    /// Reduced-fidelity cores call this instead of the
    /// [`Self::on_load_issue`] + [`Self::on_load_complete`] pair; the
    /// default forwards to both, so a policy that does not override it
    /// observes the exact sequence the detailed core would deliver.
    /// Policies on the simulator's hot path may override it with a
    /// cheaper equivalent (this fires once per L1-hit load — the vast
    /// majority of memory traffic).
    fn on_load_l1_hit(&mut self, tid: usize, token: LoadToken, pc: u64, cycle: u64) {
        self.on_load_issue(tid, token, pc, cycle);
        self.on_load_complete(tid, token, 0, None, 3, cycle);
    }

    /// The L2 lookup for the load missed (non-speculative detection
    /// moment).
    fn on_l2_miss(&mut self, _tid: usize, _token: LoadToken, _cycle: u64) {}

    /// The load's data arrived. `l2_hit` is `None` for L1 hits,
    /// `Some(true/false)` for accesses that reached the L2. `bank` and
    /// `latency` let MFLUSH train its MCReg.
    fn on_load_complete(
        &mut self,
        _tid: usize,
        _token: LoadToken,
        _bank: u32,
        _l2_hit: Option<bool>,
        _latency: u64,
        _cycle: u64,
    ) {
    }

    /// The core squashed a tracked load (e.g. its thread mispredicted an
    /// older branch, or a flush removed a younger tracked load). The
    /// policy must forget the token.
    fn on_load_squashed(&mut self, _tid: usize, _token: LoadToken) {}

    /// A flushed thread's offending load completed; the core un-gated it.
    fn on_thread_resumed(&mut self, _tid: usize, _cycle: u64) {}

    /// Earliest cycle ≥ `from` at which [`FetchPolicy::tick`] could emit
    /// an action or mutate observable state, given that every cycle
    /// before `from` has been ticked and assuming *no* `on_*` hook fires
    /// first (any hook re-arms the schedule, and the simulator
    /// re-evaluates every cycle it actually ticks). Returning `u64::MAX`
    /// means "pure until the next event". The conservative default
    /// (`from` itself) declares a possible side effect every cycle,
    /// which disables stall skip-ahead for the whole core — correct for
    /// any policy, merely slow (see DESIGN.md §16 for the skip-ahead
    /// invariant this feeds).
    fn next_wake(&self, from: u64) -> u64 {
        from
    }

    /// The simulator skipped `cycles` cycles starting at `from` (no
    /// tick/fetch_priority calls were made for them). Policies whose state
    /// advances once per *call* rather than per *cycle* (e.g. round-robin
    /// rotation) compensate here so skipped runs stay byte-identical to
    /// unskipped ones. Pure-per-cycle policies need nothing.
    fn on_cycles_skipped(&mut self, _from: u64, _cycles: u64) {}
}

/// Sort thread ids by ICOUNT order: fewest pre-issue instructions first
/// (stable tie-break by tid). Shared by every policy built on ICOUNT.
pub fn icount_order(snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
    out.clear();
    out.extend(snaps.iter().map(|s| s.tid));
    out.sort_by_key(|&tid| {
        // lint: allow(D3) -- out was populated from snaps two lines up, every tid resolves
        let s = snaps.iter().find(|s| s.tid == tid).expect("tid in snaps");
        (s.in_frontend + s.in_queues, tid as u32)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icount_order_prefers_emptier_frontends() {
        let mut a = ThreadSnapshot::idle(0);
        let mut b = ThreadSnapshot::idle(1);
        a.in_frontend = 10;
        b.in_frontend = 2;
        let mut out = Vec::new();
        icount_order(&[a, b], &mut out);
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn icount_order_counts_queues_too() {
        let mut a = ThreadSnapshot::idle(0);
        let mut b = ThreadSnapshot::idle(1);
        a.in_frontend = 3;
        a.in_queues = 0;
        b.in_frontend = 1;
        b.in_queues = 10;
        let mut out = Vec::new();
        icount_order(&[a, b], &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn icount_order_tie_breaks_by_tid() {
        let a = ThreadSnapshot::idle(1);
        let b = ThreadSnapshot::idle(0);
        let mut out = Vec::new();
        icount_order(&[a, b], &mut out);
        assert_eq!(out, vec![0, 1]);
    }
}
