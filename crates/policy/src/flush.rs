//! The FLUSH policy (Tullsen & Brown, MICRO'01) in both detection
//! variants used by the paper:
//!
//! * **FL-SX** (*speculative*, delay-after-issue): a load that has been
//!   outstanding more than X cycles after issuing from the load/store
//!   queue is declared an L2 miss. Fast but unreliable — an L2 *hit*
//!   delayed past X by bank/bus contention becomes a "false miss", the
//!   failure mode that grows with core count (paper §3.2).
//! * **FL-NS** (*non-speculative*, trigger-on-miss): wait until the L2
//!   lookup actually misses. Totally reliable but late.
//!
//! Response action: squash everything younger than the offending load,
//! free the thread's resources, gate its fetch until the load resolves.

use crate::types::{icount_order, FetchPolicy, LoadToken, PolicyAction, ThreadSnapshot};

/// Detection moment for FLUSH/STALL-style policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushTrigger {
    /// Speculative: trigger `0.X` cycles after LSQ issue (paper sweeps
    /// 30–150).
    DelayAfterIssue(u64),
    /// Non-speculative: trigger when the L2 lookup misses.
    OnL2Miss,
}

#[derive(Debug, Clone, Copy)]
struct TrackedLoad {
    token: LoadToken,
    tid: usize,
    issued_at: u64,
    triggered: bool,
}

/// Shared bookkeeping for FLUSH and STALL (same detection machinery,
/// different response action).
#[derive(Debug, Clone)]
pub(crate) struct DetectionState {
    trigger: FlushTrigger,
    loads: Vec<TrackedLoad>,
    /// Threads currently gated by our own response action.
    gated: Vec<bool>,
    /// L2-miss events awaiting the next tick (FL-NS).
    pending_miss: Vec<(usize, LoadToken)>,
    /// Trigger count (statistics / tests).
    pub triggers: u64,
    /// Detection scratch, reused every tick (rule D10: detection runs
    /// inside the cycle loop and must not allocate). `out_scratch`
    /// doubles as [`Self::detect`]'s return storage.
    out_scratch: Vec<(usize, LoadToken)>,
    cand_scratch: Vec<(usize, LoadToken, u64)>,
}

impl DetectionState {
    pub(crate) fn new(trigger: FlushTrigger) -> Self {
        DetectionState {
            trigger,
            loads: Vec::new(),
            gated: Vec::new(),
            pending_miss: Vec::new(),
            triggers: 0,
            out_scratch: Vec::new(),
            cand_scratch: Vec::new(),
        }
    }

    /// The configured detection moment.
    pub(crate) fn trigger_kind(&self) -> FlushTrigger {
        self.trigger
    }

    /// Retune a speculative trigger delay (adaptive-trigger extension).
    /// No-op for the non-speculative detection moment.
    pub(crate) fn set_trigger_delay(&mut self, cycles: u64) {
        if matches!(self.trigger, FlushTrigger::DelayAfterIssue(_)) {
            self.trigger = FlushTrigger::DelayAfterIssue(cycles);
        }
    }

    fn gated(&self, tid: usize) -> bool {
        self.gated.get(tid).copied().unwrap_or(false)
    }

    fn set_gated(&mut self, tid: usize, v: bool) {
        if self.gated.len() <= tid {
            self.gated.resize(tid + 1, false);
        }
        self.gated[tid] = v;
    }

    pub(crate) fn on_load_issue(&mut self, tid: usize, token: LoadToken, cycle: u64) {
        self.loads.push(TrackedLoad {
            token,
            tid,
            issued_at: cycle,
            triggered: false,
        });
    }

    pub(crate) fn on_l2_miss(&mut self, tid: usize, token: LoadToken) {
        if self.trigger == FlushTrigger::OnL2Miss {
            self.pending_miss.push((tid, token));
        }
    }

    pub(crate) fn forget(&mut self, token: LoadToken) {
        self.loads.retain(|l| l.token != token);
        self.pending_miss.retain(|&(_, t)| t != token);
    }

    pub(crate) fn on_thread_resumed(&mut self, tid: usize) {
        self.set_gated(tid, false);
    }

    /// Detection: pick at most one victim load per un-gated thread this
    /// cycle. Marks the thread gated (callers emit the response
    /// action). Returns a borrow of the internal scratch buffer — valid
    /// until the next `detect` call.
    pub(crate) fn detect(&mut self, cycle: u64) -> &[(usize, LoadToken)] {
        let mut out = std::mem::take(&mut self.out_scratch);
        out.clear();
        match self.trigger {
            FlushTrigger::DelayAfterIssue(x) => {
                // Oldest over-threshold load per thread.
                let mut candidates = std::mem::take(&mut self.cand_scratch);
                candidates.clear();
                for l in &self.loads {
                    if l.triggered || self.gated(l.tid) {
                        continue;
                    }
                    if cycle.saturating_sub(l.issued_at) >= x {
                        match candidates.iter_mut().find(|c| c.0 == l.tid) {
                            Some(c) if l.issued_at < c.2 => {
                                c.1 = l.token;
                                c.2 = l.issued_at;
                            }
                            Some(_) => {}
                            None => candidates.push((l.tid, l.token, l.issued_at)),
                        }
                    }
                }
                for &(tid, token, _) in &candidates {
                    out.push((tid, token));
                }
                self.cand_scratch = candidates;
            }
            FlushTrigger::OnL2Miss => {
                for i in 0..self.pending_miss.len() {
                    let (tid, token) = self.pending_miss[i];
                    if self.gated(tid) || out.iter().any(|o| o.0 == tid) {
                        continue;
                    }
                    // Only if still tracked (not squashed meanwhile).
                    if self.loads.iter().any(|l| l.token == token && !l.triggered) {
                        out.push((tid, token));
                    }
                }
                self.pending_miss.clear();
            }
        }
        for &(tid, token) in &out {
            self.set_gated(tid, true);
            if let Some(l) = self.loads.iter_mut().find(|l| l.token == token) {
                l.triggered = true;
            }
            self.triggers += 1;
        }
        self.out_scratch = out;
        &self.out_scratch
    }

    /// The most recent [`Self::detect`] result, re-borrowable after the
    /// `&mut self` call ends (for callers that mutate themselves while
    /// walking the victims).
    pub(crate) fn detected(&self) -> &[(usize, LoadToken)] {
        &self.out_scratch
    }

    /// Earliest cycle ≥ `from` at which [`Self::detect`] could fire
    /// given no intervening load events (skip-ahead horizon; DESIGN.md
    /// §16). Delay-after-issue: the earliest `issued_at + x` over
    /// untriggered loads of un-gated threads, clamped forward to `from`
    /// (an already-overdue load fires on the very next tick).
    /// Trigger-on-miss only acts on queued miss events: `from` while
    /// any are pending, never otherwise.
    pub(crate) fn next_wake(&self, from: u64) -> u64 {
        match self.trigger {
            FlushTrigger::DelayAfterIssue(x) => {
                let mut at = u64::MAX;
                for l in &self.loads {
                    if l.triggered || self.gated(l.tid) {
                        continue;
                    }
                    at = at.min(l.issued_at.saturating_add(x));
                }
                at.max(from)
            }
            FlushTrigger::OnL2Miss => {
                if self.pending_miss.is_empty() {
                    u64::MAX
                } else {
                    from
                }
            }
        }
    }
}

/// The FLUSH policy: detection per [`FlushTrigger`], response = squash +
/// gate.
pub struct FlushPolicy {
    state: DetectionState,
}

impl FlushPolicy {
    /// Speculative FLUSH with an X-cycle delay-after-issue trigger
    /// (the paper's FL-SX / FLUSH-SX).
    pub fn speculative(trigger_cycles: u64) -> Self {
        FlushPolicy {
            state: DetectionState::new(FlushTrigger::DelayAfterIssue(trigger_cycles)),
        }
    }

    /// Non-speculative FLUSH (the paper's FL-NS).
    pub fn non_speculative() -> Self {
        FlushPolicy {
            state: DetectionState::new(FlushTrigger::OnL2Miss),
        }
    }

    /// Generic constructor.
    pub fn new(trigger: FlushTrigger) -> Self {
        FlushPolicy {
            state: DetectionState::new(trigger),
        }
    }

    /// Number of FLUSH triggers so far.
    pub fn triggers(&self) -> u64 {
        self.state.triggers
    }
}

impl FetchPolicy for FlushPolicy {
    fn name(&self) -> String {
        match self.state.trigger {
            FlushTrigger::DelayAfterIssue(x) => format!("FLUSH-S{x}"),
            FlushTrigger::OnL2Miss => "FLUSH-NS".into(),
        }
    }

    fn tick(&mut self, cycle: u64, _snaps: &[ThreadSnapshot], actions: &mut Vec<PolicyAction>) {
        for &(tid, token) in self.state.detect(cycle) {
            actions.push(PolicyAction::Flush { tid, token });
        }
    }

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        icount_order(snaps, out);
    }

    fn on_load_issue(&mut self, tid: usize, token: LoadToken, _pc: u64, cycle: u64) {
        self.state.on_load_issue(tid, token, cycle);
    }

    fn on_l2_miss(&mut self, tid: usize, token: LoadToken, _cycle: u64) {
        self.state.on_l2_miss(tid, token);
    }

    fn on_load_complete(
        &mut self,
        _tid: usize,
        token: LoadToken,
        _bank: u32,
        _l2_hit: Option<bool>,
        _latency: u64,
        _cycle: u64,
    ) {
        self.state.forget(token);
    }

    fn on_load_squashed(&mut self, _tid: usize, token: LoadToken) {
        self.state.forget(token);
    }

    fn on_thread_resumed(&mut self, tid: usize, _cycle: u64) {
        self.state.on_thread_resumed(tid);
    }

    fn next_wake(&self, from: u64) -> u64 {
        self.state.next_wake(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snaps2() -> Vec<ThreadSnapshot> {
        vec![ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)]
    }

    #[test]
    fn names() {
        assert_eq!(FlushPolicy::speculative(30).name(), "FLUSH-S30");
        assert_eq!(FlushPolicy::non_speculative().name(), "FLUSH-NS");
    }

    #[test]
    fn speculative_triggers_after_delay() {
        let mut p = FlushPolicy::speculative(30);
        p.on_load_issue(0, 99, 0, 100);
        let mut actions = Vec::new();
        p.tick(129, &snaps2(), &mut actions);
        assert!(actions.is_empty(), "29 cycles: too early");
        p.tick(130, &snaps2(), &mut actions);
        assert_eq!(actions, vec![PolicyAction::Flush { tid: 0, token: 99 }]);
    }

    #[test]
    fn no_double_trigger_while_gated() {
        let mut p = FlushPolicy::speculative(30);
        p.on_load_issue(0, 1, 0, 0);
        p.on_load_issue(0, 2, 0, 5);
        let mut actions = Vec::new();
        p.tick(100, &snaps2(), &mut actions);
        assert_eq!(actions.len(), 1, "one flush per thread");
        actions.clear();
        p.tick(101, &snaps2(), &mut actions);
        assert!(actions.is_empty(), "thread is gated until resume");
    }

    #[test]
    fn oldest_overdue_load_is_the_victim() {
        let mut p = FlushPolicy::speculative(10);
        p.on_load_issue(0, 7, 0, 50); // newer
        p.on_load_issue(0, 3, 0, 20); // older
        let mut actions = Vec::new();
        p.tick(100, &snaps2(), &mut actions);
        assert_eq!(actions, vec![PolicyAction::Flush { tid: 0, token: 3 }]);
    }

    #[test]
    fn resume_reenables_detection() {
        let mut p = FlushPolicy::speculative(30);
        p.on_load_issue(0, 1, 0, 0);
        let mut actions = Vec::new();
        p.tick(30, &snaps2(), &mut actions);
        assert_eq!(actions.len(), 1);
        // Offending load completes; core resumes the thread.
        p.on_load_complete(0, 1, 0, Some(false), 272, 272);
        p.on_thread_resumed(0, 272);
        // A new slow load triggers again.
        p.on_load_issue(0, 2, 0, 280);
        actions.clear();
        p.tick(310, &snaps2(), &mut actions);
        assert_eq!(actions, vec![PolicyAction::Flush { tid: 0, token: 2 }]);
        assert_eq!(p.triggers(), 2);
    }

    #[test]
    fn completed_loads_never_trigger() {
        let mut p = FlushPolicy::speculative(30);
        p.on_load_issue(0, 1, 0, 0);
        p.on_load_complete(0, 1, 2, Some(true), 25, 25);
        let mut actions = Vec::new();
        p.tick(100, &snaps2(), &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn squashed_loads_are_forgotten() {
        let mut p = FlushPolicy::speculative(30);
        p.on_load_issue(0, 1, 0, 0);
        p.on_load_squashed(0, 1);
        let mut actions = Vec::new();
        p.tick(100, &snaps2(), &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn non_speculative_triggers_only_on_l2_miss() {
        let mut p = FlushPolicy::non_speculative();
        p.on_load_issue(0, 1, 0, 0);
        let mut actions = Vec::new();
        p.tick(500, &snaps2(), &mut actions);
        assert!(actions.is_empty(), "no delay trigger in NS mode");
        p.on_l2_miss(0, 1, 22);
        p.tick(501, &snaps2(), &mut actions);
        assert_eq!(actions, vec![PolicyAction::Flush { tid: 0, token: 1 }]);
    }

    #[test]
    fn threads_trigger_independently() {
        let mut p = FlushPolicy::speculative(30);
        p.on_load_issue(0, 1, 0, 0);
        p.on_load_issue(1, 2, 0, 0);
        let mut actions = Vec::new();
        p.tick(30, &snaps2(), &mut actions);
        assert_eq!(actions.len(), 2);
        let tids: Vec<usize> = actions
            .iter()
            .map(|a| match a {
                PolicyAction::Flush { tid, .. } => *tid,
                _ => panic!(),
            })
            .collect();
        assert!(tids.contains(&0) && tids.contains(&1));
    }
}
