//! Adaptive-trigger FLUSH — an extension born directly out of the
//! paper's Fig. 5 finding that "there may be different trigger values
//! which best balance false misses and clogged resources … the choice
//! of the right value depends on each specific workload".
//!
//! Instead of predicting per-access resolution times like MFLUSH, this
//! policy keeps the plain FLUSH machinery but hill-climbs the trigger
//! online: every epoch it compares committed throughput against the
//! previous epoch; if the last trigger move helped, it keeps moving in
//! the same direction, otherwise it reverses. A contrast point for the
//! benches: adaptivity *of the threshold* vs MFLUSH's adaptivity *of
//! the prediction*.

use crate::flush::{DetectionState, FlushTrigger};
use crate::types::{icount_order, FetchPolicy, LoadToken, PolicyAction, ThreadSnapshot};

/// Tuning bounds and cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveFlushConfig {
    /// Initial trigger (cycles after issue).
    pub initial: u64,
    /// Smallest allowed trigger.
    pub min: u64,
    /// Largest allowed trigger.
    pub max: u64,
    /// Trigger adjustment per epoch.
    pub step: u64,
    /// Epoch length in cycles.
    pub epoch: u64,
}

impl Default for AdaptiveFlushConfig {
    fn default() -> Self {
        AdaptiveFlushConfig {
            initial: 60,
            min: 30,
            max: 150,
            step: 10,
            epoch: 8192,
        }
    }
}

/// The adaptive-trigger FLUSH policy.
pub struct AdaptiveFlushPolicy {
    cfg: AdaptiveFlushConfig,
    state: DetectionState,
    trigger: u64,
    /// +1 / −1 hill-climbing direction.
    direction: i64,
    epoch_start: u64,
    last_committed: u64,
    last_epoch_throughput: f64,
    adjustments: u64,
}

impl AdaptiveFlushPolicy {
    /// Policy with default tuning.
    pub fn new() -> Self {
        Self::with_config(AdaptiveFlushConfig::default())
    }

    /// Policy with explicit tuning.
    pub fn with_config(cfg: AdaptiveFlushConfig) -> Self {
        assert!(cfg.min <= cfg.initial && cfg.initial <= cfg.max);
        assert!(cfg.step > 0 && cfg.epoch > 0);
        AdaptiveFlushPolicy {
            state: DetectionState::new(FlushTrigger::DelayAfterIssue(cfg.initial)),
            trigger: cfg.initial,
            direction: 1,
            epoch_start: 0,
            last_committed: 0,
            last_epoch_throughput: -1.0,
            adjustments: 0,
            cfg,
        }
    }

    /// Current trigger value.
    pub fn trigger(&self) -> u64 {
        self.trigger
    }

    /// Trigger adjustments performed.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    fn maybe_adjust(&mut self, cycle: u64, snaps: &[ThreadSnapshot]) {
        if cycle.saturating_sub(self.epoch_start) < self.cfg.epoch {
            return;
        }
        let committed: u64 = snaps.iter().map(|s| s.committed).sum();
        let throughput =
            (committed - self.last_committed) as f64 / (cycle - self.epoch_start) as f64;
        if self.last_epoch_throughput >= 0.0 {
            if throughput < self.last_epoch_throughput {
                self.direction = -self.direction;
            }
            let next = (self.trigger as i64 + self.direction * self.cfg.step as i64)
                .clamp(self.cfg.min as i64, self.cfg.max as i64) as u64;
            if next != self.trigger {
                self.trigger = next;
                self.state.set_trigger_delay(next);
                self.adjustments += 1;
            } else {
                // Pinned at a bound: probe back inwards.
                self.direction = -self.direction;
            }
        }
        self.last_epoch_throughput = throughput;
        self.last_committed = committed;
        self.epoch_start = cycle;
    }
}

impl Default for AdaptiveFlushPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchPolicy for AdaptiveFlushPolicy {
    fn name(&self) -> String {
        "FLUSH-ADAPT".into()
    }

    fn tick(&mut self, cycle: u64, snaps: &[ThreadSnapshot], actions: &mut Vec<PolicyAction>) {
        self.maybe_adjust(cycle, snaps);
        for &(tid, token) in self.state.detect(cycle) {
            actions.push(PolicyAction::Flush { tid, token });
        }
    }

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        icount_order(snaps, out);
    }

    fn on_load_issue(&mut self, tid: usize, token: LoadToken, _pc: u64, cycle: u64) {
        self.state.on_load_issue(tid, token, cycle);
    }

    fn on_load_complete(
        &mut self,
        _tid: usize,
        token: LoadToken,
        _bank: u32,
        _l2_hit: Option<bool>,
        _latency: u64,
        _cycle: u64,
    ) {
        self.state.forget(token);
    }

    fn on_load_squashed(&mut self, _tid: usize, token: LoadToken) {
        self.state.forget(token);
    }

    fn on_thread_resumed(&mut self, tid: usize, _cycle: u64) {
        self.state.on_thread_resumed(tid);
    }

    fn next_wake(&self, from: u64) -> u64 {
        // Two clocks: the epoch boundary (maybe_adjust acts once
        // `cycle - epoch_start >= epoch`) and the detection machinery.
        let epoch_at = self.epoch_start.saturating_add(self.cfg.epoch).max(from);
        epoch_at.min(self.state.next_wake(from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snaps(committed: u64) -> Vec<ThreadSnapshot> {
        let mut a = ThreadSnapshot::idle(0);
        a.committed = committed;
        vec![a, ThreadSnapshot::idle(1)]
    }

    #[test]
    fn starts_at_initial_trigger() {
        let p = AdaptiveFlushPolicy::new();
        assert_eq!(p.trigger(), 60);
        assert_eq!(p.name(), "FLUSH-ADAPT");
    }

    #[test]
    fn climbs_while_throughput_improves() {
        let mut p = AdaptiveFlushPolicy::with_config(AdaptiveFlushConfig {
            initial: 60,
            min: 30,
            max: 150,
            step: 10,
            epoch: 100,
        });
        let mut actions = Vec::new();
        // Epoch 1 establishes the baseline, epoch 2 sees improvement →
        // keep direction (+10), epoch 3 improves again → +10 more.
        p.tick(100, &snaps(100), &mut actions); // baseline (no move yet)
        p.tick(200, &snaps(300), &mut actions); // improved: move +10
        assert_eq!(p.trigger(), 70);
        p.tick(300, &snaps(600), &mut actions); // improved again: +10
        assert_eq!(p.trigger(), 80);
        assert_eq!(p.adjustments(), 2);
    }

    #[test]
    fn reverses_when_throughput_drops() {
        let mut p = AdaptiveFlushPolicy::with_config(AdaptiveFlushConfig {
            initial: 60,
            min: 30,
            max: 150,
            step: 10,
            epoch: 100,
        });
        let mut actions = Vec::new();
        p.tick(100, &snaps(100), &mut actions); // baseline
        p.tick(200, &snaps(300), &mut actions); // up → 70
        p.tick(300, &snaps(350), &mut actions); // worse → reverse → 60
        assert_eq!(p.trigger(), 60);
    }

    #[test]
    fn trigger_stays_within_bounds() {
        let mut p = AdaptiveFlushPolicy::with_config(AdaptiveFlushConfig {
            initial: 140,
            min: 30,
            max: 150,
            step: 20,
            epoch: 100,
        });
        let mut actions = Vec::new();
        let mut committed = 0;
        for e in 1..20u64 {
            committed += 100 * e; // monotonically improving
            p.tick(e * 100, &snaps(committed), &mut actions);
            assert!((30..=150).contains(&p.trigger()), "trigger {}", p.trigger());
        }
    }

    #[test]
    fn flush_machinery_still_fires() {
        let mut p = AdaptiveFlushPolicy::new();
        p.on_load_issue(0, 9, 0, 0);
        let mut actions = Vec::new();
        p.tick(60, &snaps(0), &mut actions);
        assert_eq!(actions, vec![PolicyAction::Flush { tid: 0, token: 9 }]);
    }
}
