//! Policy construction from a serialisable description.
//!
//! Experiments are configured with a [`PolicyKind`] value; the simulator
//! turns it into a live policy with [`build_policy`], feeding in the
//! machine-derived parameters ([`PolicyEnv`]) that MFLUSH's operational
//! environment needs.

use crate::adaptive_flush::AdaptiveFlushPolicy;
use crate::adts::AdtsPolicy;
use crate::count_variants::{BrcountPolicy, L1dMissCountPolicy};
use crate::dcra::DcraPolicy;
use crate::rr::RoundRobinPolicy;
use crate::flush::FlushPolicy;
use crate::icount::IcountPolicy;
use crate::mflush::{McRegConfig, MflushConfig, MflushPolicy};
use crate::miss_predictor::MissPredictFlushPolicy;
use crate::stall::StallPolicy;
use crate::types::FetchPolicy;

/// Which fetch policy to run (one per SMT core).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// ICOUNT baseline.
    Icount,
    /// Speculative FLUSH with the given delay-after-issue trigger
    /// (paper FL-SX / FLUSH-SX).
    FlushSpec(u64),
    /// Non-speculative FLUSH (paper FL-NS).
    FlushNonSpec,
    /// Speculative STALL.
    StallSpec(u64),
    /// Non-speculative STALL.
    StallNonSpec,
    /// MFLUSH with paper defaults derived from the machine.
    Mflush,
    /// MFLUSH with explicit knobs (ablations).
    MflushCustom {
        mcreg_history: usize,
        mcreg_reducer: crate::mflush::McRegReducer,
        preventive: bool,
        mt_enabled: bool,
    },
    /// BRCOUNT (related work; extension).
    Brcount,
    /// L1DMISSCOUNT (related work; extension).
    L1dMissCount,
    /// ADTS adaptive meta-policy (related work; extension).
    Adts,
    /// Round-robin fetch (ISCA'96 baseline; extension).
    RoundRobin,
    /// DCRA-style dynamic resource allocation (MICRO'04, the paper's
    /// reference \[3\]; extension).
    Dcra,
    /// FLUSH with an online hill-climbed trigger (extension motivated by
    /// Fig. 5's workload-dependent best trigger).
    FlushAdaptive,
    /// FLUSH with a front-end load-miss predictor — the fast/unreliable
    /// end of the paper's Detection-Moment spectrum (§3).
    FlushMissPredict,
}

impl PolicyKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Icount => "ICOUNT".into(),
            PolicyKind::FlushSpec(x) => format!("FLUSH-S{x}"),
            PolicyKind::FlushNonSpec => "FLUSH-NS".into(),
            PolicyKind::StallSpec(x) => format!("STALL-S{x}"),
            PolicyKind::StallNonSpec => "STALL-NS".into(),
            PolicyKind::Mflush => "MFLUSH".into(),
            PolicyKind::MflushCustom { .. } => "MFLUSH*".into(),
            PolicyKind::Brcount => "BRCOUNT".into(),
            PolicyKind::L1dMissCount => "L1DMISSCOUNT".into(),
            PolicyKind::Adts => "ADTS".into(),
            PolicyKind::RoundRobin => "RR".into(),
            PolicyKind::Dcra => "DCRA".into(),
            PolicyKind::FlushAdaptive => "FLUSH-ADAPT".into(),
            PolicyKind::FlushMissPredict => "FLUSH-LMP".into(),
        }
    }

    /// Parse a CLI/request policy name (case-insensitive): `icount`,
    /// `rr`/`roundrobin`, `brcount`, `l1dmisscount`/`misscount`,
    /// `adts`, `dcra`, `flush-ns`, `stall-ns`, `mflush`,
    /// `flush-adapt`/`adaptive`, `flush-sNN`, `stall-sNN`. Returns
    /// `None` for anything else (callers render did-you-mean hints).
    /// `MflushCustom` and `FlushMissPredict` are programmatic-only.
    pub fn parse_name(s: &str) -> Option<PolicyKind> {
        let s = s.to_ascii_lowercase();
        Some(match s.as_str() {
            "icount" => PolicyKind::Icount,
            "rr" | "roundrobin" => PolicyKind::RoundRobin,
            "brcount" => PolicyKind::Brcount,
            "l1dmisscount" | "misscount" => PolicyKind::L1dMissCount,
            "adts" => PolicyKind::Adts,
            "dcra" => PolicyKind::Dcra,
            "flush-ns" => PolicyKind::FlushNonSpec,
            "stall-ns" => PolicyKind::StallNonSpec,
            "mflush" => PolicyKind::Mflush,
            "flush-adapt" | "adaptive" => PolicyKind::FlushAdaptive,
            _ => {
                if let Some(x) = s.strip_prefix("flush-s") {
                    PolicyKind::FlushSpec(x.parse().ok()?)
                } else if let Some(x) = s.strip_prefix("stall-s") {
                    PolicyKind::StallSpec(x.parse().ok()?)
                } else {
                    return None;
                }
            }
        })
    }

    /// Spellable policy names for "did you mean" suggestions
    /// (concrete thresholds stand in for the `-sNN` families). Shared
    /// by the CLI and the serve layer's request validation.
    pub const SUGGESTED_NAMES: [&'static str; 16] = [
        "icount",
        "rr",
        "roundrobin",
        "brcount",
        "l1dmisscount",
        "misscount",
        "adts",
        "dcra",
        "stall-s30",
        "stall-ns",
        "flush-s30",
        "flush-s100",
        "flush-ns",
        "flush-adapt",
        "adaptive",
        "mflush",
    ];

    /// The four policies of the paper's Fig. 8 evaluation.
    pub fn fig8_set() -> [PolicyKind; 4] {
        [
            PolicyKind::Icount,
            PolicyKind::FlushSpec(30),
            PolicyKind::FlushSpec(100),
            PolicyKind::Mflush,
        ]
    }
}

/// Machine parameters a policy may need (from the memory configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyEnv {
    /// Nominal L1-miss/L2-hit latency (MIN).
    pub min_latency: u64,
    /// Nominal L2-miss latency (MAX).
    pub max_latency: u64,
    /// L1↔L2 bus transit.
    pub bus_delay: u64,
    /// L2 bank occupancy.
    pub bank_delay: u64,
    /// Cores sharing the L2.
    pub num_cores: u32,
    /// L2 banks.
    pub num_banks: u32,
    /// Entries per shared issue queue (DCRA's entitlement base).
    pub shared_queue_entries: u32,
}

impl PolicyEnv {
    /// The paper's Fig. 1 machine with `num_cores` cores.
    pub fn paper(num_cores: u32) -> Self {
        PolicyEnv {
            min_latency: 22,
            max_latency: 272,
            bus_delay: 4,
            bank_delay: 15,
            num_cores,
            num_banks: 4,
            shared_queue_entries: 64,
        }
    }

    fn mflush_config(&self) -> MflushConfig {
        MflushConfig {
            min: self.min_latency,
            max: self.max_latency,
            bus_delay: self.bus_delay,
            bank_delay: self.bank_delay,
            num_cores: self.num_cores,
            num_banks: self.num_banks,
            mcreg: McRegConfig::default(),
            preventive: true,
            mt_enabled: true,
        }
    }
}

/// Instantiate a policy for one core.
pub fn build_policy(kind: PolicyKind, env: &PolicyEnv) -> Box<dyn FetchPolicy> {
    match kind {
        PolicyKind::Icount => Box::new(IcountPolicy::new()),
        PolicyKind::FlushSpec(x) => Box::new(FlushPolicy::speculative(x)),
        PolicyKind::FlushNonSpec => Box::new(FlushPolicy::non_speculative()),
        PolicyKind::StallSpec(x) => Box::new(StallPolicy::speculative(x)),
        PolicyKind::StallNonSpec => Box::new(StallPolicy::non_speculative()),
        PolicyKind::Mflush => Box::new(MflushPolicy::new(env.mflush_config())),
        PolicyKind::MflushCustom {
            mcreg_history,
            mcreg_reducer,
            preventive,
            mt_enabled,
        } => {
            let mut cfg = env.mflush_config();
            cfg.mcreg = McRegConfig {
                history: mcreg_history,
                reducer: mcreg_reducer,
            };
            cfg.preventive = preventive;
            cfg.mt_enabled = mt_enabled;
            Box::new(MflushPolicy::new(cfg))
        }
        PolicyKind::Brcount => Box::new(BrcountPolicy::new()),
        PolicyKind::L1dMissCount => Box::new(L1dMissCountPolicy::new()),
        PolicyKind::Adts => Box::new(AdtsPolicy::new()),
        PolicyKind::RoundRobin => Box::new(RoundRobinPolicy::new()),
        PolicyKind::Dcra => Box::new(DcraPolicy::new(env.shared_queue_entries)),
        PolicyKind::FlushAdaptive => Box::new(AdaptiveFlushPolicy::new()),
        PolicyKind::FlushMissPredict => Box::new(MissPredictFlushPolicy::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mflush::McRegReducer;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(PolicyKind::Icount.label(), "ICOUNT");
        assert_eq!(PolicyKind::FlushSpec(30).label(), "FLUSH-S30");
        assert_eq!(PolicyKind::FlushSpec(100).label(), "FLUSH-S100");
        assert_eq!(PolicyKind::FlushNonSpec.label(), "FLUSH-NS");
        assert_eq!(PolicyKind::Mflush.label(), "MFLUSH");
    }

    #[test]
    fn built_policies_report_their_names() {
        let env = PolicyEnv::paper(4);
        for kind in [
            PolicyKind::Icount,
            PolicyKind::FlushSpec(50),
            PolicyKind::FlushNonSpec,
            PolicyKind::StallSpec(30),
            PolicyKind::StallNonSpec,
            PolicyKind::Mflush,
            PolicyKind::Brcount,
            PolicyKind::L1dMissCount,
            PolicyKind::Adts,
            PolicyKind::RoundRobin,
            PolicyKind::Dcra,
            PolicyKind::FlushAdaptive,
            PolicyKind::FlushMissPredict,
        ] {
            let p = build_policy(kind, &env);
            assert_eq!(p.name(), kind.label(), "{kind:?}");
        }
    }

    #[test]
    fn custom_mflush_applies_knobs() {
        let env = PolicyEnv::paper(4);
        let p = build_policy(
            PolicyKind::MflushCustom {
                mcreg_history: 4,
                mcreg_reducer: McRegReducer::Max,
                preventive: false,
                mt_enabled: false,
            },
            &env,
        );
        assert_eq!(p.name(), "MFLUSH");
    }

    #[test]
    fn fig8_set_is_the_papers_four() {
        let labels: Vec<String> = PolicyKind::fig8_set().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["ICOUNT", "FLUSH-S30", "FLUSH-S100", "MFLUSH"]);
    }

    #[test]
    fn paper_env_matches_memconfig_identities() {
        let env = PolicyEnv::paper(4);
        assert_eq!(env.min_latency, 22);
        assert_eq!(env.max_latency, 272);
        assert_eq!(env.num_banks, 4);
    }
}
