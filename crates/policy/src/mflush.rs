//! The MFLUSH policy (paper §4) — FLUSH/STALL adapted to CMP+SMT.
//!
//! Static triggers break when several SMT cores share a banked L2: the
//! L2-hit latency becomes workload- and traffic-dependent (Figs. 4, 5).
//! MFLUSH therefore *predicts* each access's resolution time from the
//! last observed L2-hit latency of the target bank (the per-core,
//! per-bank 8-bit **MCReg** registers of Fig. 7) and derives two
//! thresholds inside the `[MIN+MT, MAX+MT]` operational environment of
//! Fig. 6:
//!
//! * **Preventive State** at `MIN + MT`: the thread is fetch-gated (a
//!   STALL) but keeps executing what it already fetched;
//! * **Barrier** at `prediction + MIN/2 + MT`: the access is declared an
//!   L2 miss and the FLUSH response action fires.
//!
//! with `MT = (L1_L2_bus_delay + L2_bank_access_delay) × (num_cores−1)`,
//! `MIN` = nominal L1-miss/L2-hit latency and `MAX` = L2-miss latency.

use crate::types::{icount_order, FetchPolicy, LoadToken, PolicyAction, ThreadSnapshot};
use std::collections::VecDeque;

/// How a multi-entry MCReg history is reduced to one prediction
/// (paper §4.1: "more complex configurations, involving queues … and
/// more complex functions"; the paper itself uses a single register =
/// `history: 1`, `Last`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McRegReducer {
    /// Use the most recent observation (the paper's choice).
    Last,
    /// Mean of the history window.
    Mean,
    /// Maximum of the history window (most conservative).
    Max,
}

/// MCReg configuration (history length ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McRegConfig {
    pub history: usize,
    pub reducer: McRegReducer,
}

impl Default for McRegConfig {
    fn default() -> Self {
        McRegConfig {
            history: 1,
            reducer: McRegReducer::Last,
        }
    }
}

/// The per-core file of 8-bit MCReg registers, one per L2 bank (Fig. 7).
#[derive(Debug, Clone)]
pub struct McRegFile {
    cfg: McRegConfig,
    /// Per-bank history of observed L2-hit latencies (saturated to u8,
    /// as 8-bit registers).
    regs: Vec<VecDeque<u8>>,
    /// Prediction returned before any observation.
    default_prediction: u8,
    reads: u64,
    writes: u64,
}

impl McRegFile {
    /// File for `num_banks` banks; `default_prediction` is returned
    /// until a bank has been observed (we use the nominal MIN latency).
    pub fn new(num_banks: u32, default_prediction: u8, cfg: McRegConfig) -> Self {
        assert!(cfg.history >= 1);
        McRegFile {
            cfg,
            regs: (0..num_banks).map(|_| VecDeque::new()).collect(),
            default_prediction,
            reads: 0,
            writes: 0,
        }
    }

    /// Record an observed L2-hit latency for `bank` (a write access to
    /// the 8-bit register: saturating).
    pub fn update(&mut self, bank: u32, latency: u64) {
        self.writes += 1;
        let v = latency.min(u8::MAX as u64) as u8;
        let q = &mut self.regs[bank as usize];
        if q.len() == self.cfg.history {
            q.pop_front();
        }
        q.push_back(v);
    }

    /// Predict the next L2-hit latency for `bank`.
    pub fn predict(&mut self, bank: u32) -> u64 {
        self.reads += 1;
        let q = &self.regs[bank as usize];
        if q.is_empty() {
            return self.default_prediction as u64;
        }
        // The `unwrap_or` defaults never fire: the empty case returned
        // the default prediction above.
        match self.cfg.reducer {
            McRegReducer::Last => q.back().copied().unwrap_or(self.default_prediction) as u64,
            McRegReducer::Mean => {
                q.iter().map(|&v| v as u64).sum::<u64>() / q.len() as u64
            }
            McRegReducer::Max => q.iter().max().copied().unwrap_or(self.default_prediction) as u64,
        }
    }

    /// (register reads, register writes) — used by the energy argument
    /// in §4.3 (MFLUSH's hardware cost is one 8-bit read per L1 miss,
    /// one write per L2 hit).
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

/// MFLUSH configuration, derived from the machine (see
/// [`crate::builder::PolicyEnv`]) plus ablation switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MflushConfig {
    /// Nominal L1-miss / L2-hit latency (paper MIN; 22 on Fig. 1).
    pub min: u64,
    /// Nominal L2-miss latency (paper MAX; 272 on Fig. 1).
    pub max: u64,
    /// L1↔L2 bus transit delay (4).
    pub bus_delay: u64,
    /// L2 bank access occupancy (15).
    pub bank_delay: u64,
    /// Cores sharing the L2.
    pub num_cores: u32,
    /// L2 banks (number of MCRegs per core).
    pub num_banks: u32,
    /// MCReg shape.
    pub mcreg: McRegConfig,
    /// Enable the Preventive State (ablation switch; the paper has it
    /// always on).
    pub preventive: bool,
    /// Include the MT term (ablation switch; always on in the paper).
    pub mt_enabled: bool,
}

impl MflushConfig {
    /// Paper-default MFLUSH for a machine with the Fig. 1 hierarchy.
    pub fn paper(num_cores: u32, num_banks: u32) -> Self {
        MflushConfig {
            min: 22,
            max: 272,
            bus_delay: 4,
            bank_delay: 15,
            num_cores,
            num_banks,
            mcreg: McRegConfig::default(),
            preventive: true,
            mt_enabled: true,
        }
    }

    /// The Multicore Traffic delay:
    /// `MT = (bus + bank) × (num_cores − 1)` (0 when disabled).
    pub fn mt(&self) -> u64 {
        if self.mt_enabled {
            (self.bus_delay + self.bank_delay) * (self.num_cores.max(1) as u64 - 1)
        } else {
            0
        }
    }

    /// Age past which an in-flight access is *suspicious* and its thread
    /// enters the Preventive State: `MIN + MT`.
    pub fn preventive_threshold(&self) -> u64 {
        self.min + self.mt()
    }

    /// The Barrier for a given prediction:
    /// `BARRIER = L2prediction + MIN/2 + MT`, clamped into the
    /// operational environment `[MIN+MT, MAX+MT]` (Fig. 6).
    pub fn barrier(&self, prediction: u64) -> u64 {
        let raw = prediction + self.min / 2 + self.mt();
        raw.clamp(self.min + self.mt(), self.max + self.mt())
    }
}

#[derive(Debug, Clone, Copy)]
struct MfLoad {
    token: LoadToken,
    tid: usize,
    /// Set once the load misses L1 (enters the L2 path).
    bank: Option<u32>,
    /// Absolute cycle of the Barrier (issued_at + barrier(prediction)).
    barrier_at: Option<u64>,
    /// Absolute cycle the access becomes suspicious.
    preventive_at: Option<u64>,
    flush_fired: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct MfThread {
    stalled: bool,
    flushed: bool,
}

/// Counters exposed for evaluation and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct MflushStats {
    pub preventive_entries: u64,
    pub flushes: u64,
    pub releases: u64,
    /// Flushes whose load turned out to be an L2 hit — MFLUSH's false
    /// misses.
    pub false_flushes: u64,
}

/// Capacity of [`MflushPolicy::recent_issues`] (power of two).
const RECENT_ISSUES: usize = 32;

/// The MFLUSH fetch policy.
pub struct MflushPolicy {
    cfg: MflushConfig,
    mcregs: McRegFile,
    loads: Vec<MfLoad>,
    threads: Vec<MfThread>,
    stats: MflushStats,
    /// Preventive-state releases awaiting the next tick.
    pending_resumes: Vec<usize>,
    /// Earliest cycle at which the per-tick scan could produce an
    /// action, given no intervening events. Ticks before it (with no
    /// pending resumes) are provably no-ops and return immediately;
    /// every event that can create an earlier opportunity lowers it.
    /// Purely an optimisation: decisions are byte-identical.
    next_deadline: u64,
    /// Issue cycles of recent loads, keyed by token low bits. Both
    /// cores notify the L1 miss in the same call sequence as the
    /// issue, so the slot is always still live when `on_l1d_miss`
    /// reads it; deadlines stay *issue*-relative without keeping a
    /// book-keeping entry for every L1-hit load.
    recent_issues: [(LoadToken, u64); RECENT_ISSUES],
    /// Per-tick decision scratch, reused across ticks (rule D10: the
    /// policy tick runs inside the cycle loop and must not allocate).
    stall_scratch: Vec<usize>,
    flush_scratch: Vec<(usize, LoadToken)>,
}

impl MflushPolicy {
    /// Build from a configuration.
    pub fn new(cfg: MflushConfig) -> Self {
        let default_pred = cfg.min.min(u8::MAX as u64) as u8;
        MflushPolicy {
            mcregs: McRegFile::new(cfg.num_banks, default_pred, cfg.mcreg),
            cfg,
            loads: Vec::new(),
            threads: Vec::new(),
            stats: MflushStats::default(),
            pending_resumes: Vec::new(),
            next_deadline: 0,
            recent_issues: [(LoadToken::MAX, 0); RECENT_ISSUES],
            stall_scratch: Vec::new(),
            flush_scratch: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MflushConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> MflushStats {
        self.stats
    }

    /// MCReg access counters (reads, writes).
    pub fn mcreg_accesses(&self) -> (u64, u64) {
        self.mcregs.access_counts()
    }

    fn thread_mut(&mut self, tid: usize) -> &mut MfThread {
        if self.threads.len() <= tid {
            self.threads.resize(tid + 1, MfThread::default());
        }
        &mut self.threads[tid]
    }

    fn thread(&self, tid: usize) -> MfThread {
        self.threads.get(tid).copied().unwrap_or_default()
    }

    /// Earliest deadline of any currently-eligible Barrier or
    /// Preventive-State candidate (`u64::MAX` when none). Candidates
    /// that are blocked on thread state (already flushed/stalled) are
    /// excluded; the callbacks that unblock them reset
    /// [`Self::next_deadline`].
    fn earliest_deadline(&self) -> u64 {
        let mut next = u64::MAX;
        for l in &self.loads {
            if l.bank.is_none() {
                continue;
            }
            let th = self.thread(l.tid);
            if th.flushed {
                continue;
            }
            if !l.flush_fired {
                if let Some(b) = l.barrier_at {
                    next = next.min(b);
                }
            }
            if self.cfg.preventive && !th.stalled {
                if let Some(p) = l.preventive_at {
                    next = next.min(p);
                }
            }
        }
        next
    }

    /// Any in-flight suspicious access for `tid` at `cycle`?
    fn has_suspicious(&self, tid: usize, cycle: u64) -> bool {
        self.loads.iter().any(|l| {
            l.tid == tid
                && l.bank.is_some()
                && l.preventive_at.map(|p| cycle >= p).unwrap_or(false)
        })
    }
}

impl FetchPolicy for MflushPolicy {
    fn name(&self) -> String {
        "MFLUSH".into()
    }

    fn tick(&mut self, cycle: u64, _snaps: &[ThreadSnapshot], actions: &mut Vec<PolicyAction>) {
        if self.pending_resumes.is_empty() && cycle < self.next_deadline {
            return; // no candidate can fire yet: the scan is a no-op
        }
        for tid in self.pending_resumes.drain(..) {
            actions.push(PolicyAction::Resume { tid });
        }
        // Scan loads in the L2 path; collect decisions first (borrow
        // discipline), then mutate.
        let mut to_stall = std::mem::take(&mut self.stall_scratch);
        to_stall.clear();
        let mut to_flush = std::mem::take(&mut self.flush_scratch);
        to_flush.clear();
        for l in &self.loads {
            if l.bank.is_none() {
                continue;
            }
            let th = self.thread(l.tid);
            if let Some(barrier_at) = l.barrier_at {
                if cycle >= barrier_at && !l.flush_fired && !th.flushed {
                    if !to_flush.iter().any(|f| f.0 == l.tid) {
                        to_flush.push((l.tid, l.token));
                    }
                    continue;
                }
            }
            if self.cfg.preventive {
                if let Some(p) = l.preventive_at {
                    if cycle >= p && !th.stalled && !th.flushed
                        && !to_stall.contains(&l.tid) && !to_flush.iter().any(|f| f.0 == l.tid)
                        {
                            to_stall.push(l.tid);
                        }
                }
            }
        }
        for (tid, token) in to_flush.drain(..) {
            self.thread_mut(tid).flushed = true;
            if let Some(l) = self.loads.iter_mut().find(|l| l.token == token) {
                l.flush_fired = true;
            }
            self.stats.flushes += 1;
            actions.push(PolicyAction::Flush { tid, token });
        }
        for tid in to_stall.drain(..) {
            self.thread_mut(tid).stalled = true;
            self.stats.preventive_entries += 1;
            actions.push(PolicyAction::Stall { tid });
        }
        self.stall_scratch = to_stall;
        self.flush_scratch = to_flush;
        self.next_deadline = self.earliest_deadline();
    }

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        icount_order(snaps, out);
    }

    fn on_load_issue(&mut self, _tid: usize, token: LoadToken, _pc: u64, cycle: u64) {
        // Only the issue cycle is remembered here; full tracking
        // starts at `on_l1d_miss`, so L1-hit loads (the vast majority)
        // never touch the load book-keeping.
        self.recent_issues[(token as usize) & (RECENT_ISSUES - 1)] = (token, cycle);
    }

    fn on_load_l1_hit(&mut self, _tid: usize, _token: LoadToken, _pc: u64, _cycle: u64) {
        // Hit loads never enter the tracking vec, the MCReg only trains
        // on L2 hits, and Preventive-State release can only be needed
        // when a *tracked* (miss) load completes — so the default
        // issue+complete round trip would find nothing to do.
    }

    fn on_l1d_miss(&mut self, tid: usize, token: LoadToken, bank: u32, cycle: u64) {
        // Deadlines count from the *issue* cycle (the access's age per
        // the paper), recovered from the issue ring.
        let (t, at) = self.recent_issues[(token as usize) & (RECENT_ISSUES - 1)];
        let issued_at = if t == token { at } else { cycle };
        // Read the MCReg for the target bank and establish the Barrier.
        let prediction = self.mcregs.predict(bank);
        let barrier = self.cfg.barrier(prediction);
        let preventive = self.cfg.preventive_threshold();
        self.loads.push(MfLoad {
            token,
            tid,
            bank: Some(bank),
            barrier_at: Some(issued_at + barrier),
            preventive_at: Some(issued_at + preventive),
            flush_fired: false,
        });
        self.next_deadline = self.next_deadline.min(issued_at + barrier);
        if self.cfg.preventive {
            self.next_deadline = self.next_deadline.min(issued_at + preventive);
        }
    }

    fn on_load_complete(
        &mut self,
        tid: usize,
        token: LoadToken,
        bank: u32,
        l2_hit: Option<bool>,
        latency: u64,
        cycle: u64,
    ) {
        // Train the MCReg on L2 hits only (a write access; §4.1).
        if l2_hit == Some(true) {
            self.mcregs.update(bank, latency);
        }
        // Tokens are unique: one ordered pass finds and removes the load.
        let mut was_flush_cause = false;
        // rposition: completing loads are usually the newest entries
        // (L1 hits complete the cycle they issue).
        if let Some(i) = self.loads.iter().rposition(|l| l.token == token) {
            was_flush_cause = self.loads[i].flush_fired;
            self.loads.remove(i);
        }
        if was_flush_cause && l2_hit == Some(true) {
            self.stats.false_flushes += 1;
        }

        // Leave the Preventive State when nothing suspicious remains.
        let th = self.thread(tid);
        if th.stalled && !th.flushed && !self.has_suspicious(tid, cycle) {
            self.thread_mut(tid).stalled = false;
            self.stats.releases += 1;
            self.pending_resumes.push(tid);
        }
    }

    fn on_load_squashed(&mut self, tid: usize, token: LoadToken) {
        if let Some(i) = self.loads.iter().rposition(|l| l.token == token) {
            self.loads.remove(i);
        }
        let th = self.thread(tid);
        if th.stalled && !th.flushed && !self.has_suspicious(tid, u64::MAX) {
            self.thread_mut(tid).stalled = false;
            self.stats.releases += 1;
            self.pending_resumes.push(tid);
        }
    }

    fn on_thread_resumed(&mut self, tid: usize, _cycle: u64) {
        let t = self.thread_mut(tid);
        t.flushed = false;
        t.stalled = false;
        // Barriers that lapsed while the thread was flushed become
        // eligible again: force the next tick to scan.
        self.next_deadline = 0;
    }

    fn next_wake(&self, from: u64) -> u64 {
        // The tick's own early-return already encodes the schedule:
        // pending resumes fire next cycle, otherwise nothing happens
        // before `next_deadline` (maintained by every event hook).
        if !self.pending_resumes.is_empty() {
            return from;
        }
        self.next_deadline.max(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> MflushConfig {
        MflushConfig::paper(4, 4)
    }

    fn snaps2() -> Vec<ThreadSnapshot> {
        vec![ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)]
    }

    #[test]
    fn mt_equation_matches_paper() {
        // MT = (bus + bank) * (cores - 1)
        assert_eq!(cfg4().mt(), (4 + 15) * 3);
        assert_eq!(MflushConfig::paper(1, 4).mt(), 0);
        assert_eq!(MflushConfig::paper(2, 4).mt(), 19);
        let mut no_mt = cfg4();
        no_mt.mt_enabled = false;
        assert_eq!(no_mt.mt(), 0);
    }

    #[test]
    fn barrier_equation_and_clamping() {
        let c = cfg4(); // min 22, max 272, mt 57
        // BARRIER = pred + MIN/2 + MT
        assert_eq!(c.barrier(55), 55 + 11 + 57);
        // Clamped below to MIN+MT…
        assert_eq!(c.barrier(0), 22 + 57);
        // …and above to MAX+MT.
        assert_eq!(c.barrier(10_000), 272 + 57);
    }

    #[test]
    fn preventive_threshold_is_min_plus_mt() {
        assert_eq!(cfg4().preventive_threshold(), 22 + 57);
    }

    #[test]
    fn mcreg_predicts_last_observation() {
        let mut f = McRegFile::new(4, 22, McRegConfig::default());
        assert_eq!(f.predict(2), 22, "default before any observation");
        f.update(2, 55);
        assert_eq!(f.predict(2), 55, "Fig. 7's bank-2 example");
        f.update(2, 31);
        assert_eq!(f.predict(2), 31, "history of 1 keeps only the last");
        assert_eq!(f.predict(0), 22, "other banks unaffected");
    }

    #[test]
    fn mcreg_saturates_at_8_bits() {
        let mut f = McRegFile::new(1, 22, McRegConfig::default());
        f.update(0, 10_000);
        assert_eq!(f.predict(0), 255);
    }

    #[test]
    fn mcreg_history_reducers() {
        let cfg = McRegConfig {
            history: 4,
            reducer: McRegReducer::Mean,
        };
        let mut f = McRegFile::new(1, 22, cfg);
        for v in [20, 40, 60, 80] {
            f.update(0, v);
        }
        assert_eq!(f.predict(0), 50);
        let mut f = McRegFile::new(
            1,
            22,
            McRegConfig {
                history: 4,
                reducer: McRegReducer::Max,
            },
        );
        for v in [20, 80, 40] {
            f.update(0, v);
        }
        assert_eq!(f.predict(0), 80);
    }

    #[test]
    fn suspicious_access_enters_preventive_state() {
        let mut p = MflushPolicy::new(cfg4());
        p.on_load_issue(0, 1, 0, 0);
        p.on_l1d_miss(0, 1, 2, 3);
        let mut a = Vec::new();
        // preventive at 22+57 = 79 cycles after issue.
        p.tick(78, &snaps2(), &mut a);
        assert!(a.is_empty());
        p.tick(79, &snaps2(), &mut a);
        assert_eq!(a, vec![PolicyAction::Stall { tid: 0 }]);
        assert_eq!(p.stats().preventive_entries, 1);
    }

    #[test]
    fn barrier_crossing_fires_flush() {
        let mut p = MflushPolicy::new(cfg4());
        p.on_load_issue(0, 1, 0, 0);
        p.on_l1d_miss(0, 1, 0, 3); // prediction = default 22 → barrier 22+11+57 = 90
        let mut a = Vec::new();
        p.tick(79, &snaps2(), &mut a); // preventive
        a.clear();
        p.tick(89, &snaps2(), &mut a);
        assert!(a.is_empty(), "before barrier");
        p.tick(90, &snaps2(), &mut a);
        assert_eq!(a, vec![PolicyAction::Flush { tid: 0, token: 1 }]);
        assert_eq!(p.stats().flushes, 1);
    }

    #[test]
    fn resolution_before_barrier_releases_preventive_state() {
        let mut p = MflushPolicy::new(cfg4());
        p.on_load_issue(0, 1, 0, 0);
        p.on_l1d_miss(0, 1, 0, 3);
        let mut a = Vec::new();
        p.tick(79, &snaps2(), &mut a); // stalled
        // L2 hit completes at 85, before the 90-cycle barrier.
        p.on_load_complete(0, 1, 0, Some(true), 85, 85);
        a.clear();
        p.tick(86, &snaps2(), &mut a);
        assert_eq!(a, vec![PolicyAction::Resume { tid: 0 }]);
        assert_eq!(p.stats().releases, 1);
        assert_eq!(p.stats().flushes, 0);
    }

    #[test]
    fn trained_mcreg_raises_barrier_for_slow_banks() {
        let mut p = MflushPolicy::new(cfg4());
        // Train bank 3 with a slow observed hit (120 cycles).
        p.on_load_issue(0, 1, 0, 0);
        p.on_l1d_miss(0, 1, 3, 3);
        p.on_load_complete(0, 1, 3, Some(true), 120, 120);
        // Next load to bank 3 gets barrier 120+11+57 = 188.
        p.on_load_issue(0, 2, 0, 200);
        p.on_l1d_miss(0, 2, 3, 203);
        let mut a = Vec::new();
        p.tick(200 + 187, &snaps2(), &mut a);
        assert!(
            !a.iter()
                .any(|x| matches!(x, PolicyAction::Flush { .. })),
            "no flush before the raised barrier: {a:?}"
        );
        p.tick(200 + 188, &snaps2(), &mut a);
        assert!(a.iter().any(|x| matches!(x, PolicyAction::Flush { .. })));
    }

    #[test]
    fn false_flush_detected_when_late_hit_completes() {
        let mut p = MflushPolicy::new(cfg4());
        p.on_load_issue(0, 1, 0, 0);
        p.on_l1d_miss(0, 1, 0, 3);
        let mut a = Vec::new();
        for c in 0..=90 {
            p.tick(c, &snaps2(), &mut a);
        }
        assert!(a.iter().any(|x| matches!(x, PolicyAction::Flush { .. })));
        // The access finally resolves as a (very late) L2 hit.
        p.on_load_complete(0, 1, 0, Some(true), 140, 140);
        assert_eq!(p.stats().false_flushes, 1);
    }

    #[test]
    fn preventive_can_be_disabled() {
        let mut c = cfg4();
        c.preventive = false;
        let mut p = MflushPolicy::new(c);
        p.on_load_issue(0, 1, 0, 0);
        p.on_l1d_miss(0, 1, 0, 3);
        let mut a = Vec::new();
        p.tick(85, &snaps2(), &mut a);
        assert!(a.is_empty(), "no preventive stall when disabled");
        p.tick(90, &snaps2(), &mut a);
        assert!(a.iter().any(|x| matches!(x, PolicyAction::Flush { .. })));
    }

    #[test]
    fn l1_hits_never_gate_anyone() {
        let mut p = MflushPolicy::new(cfg4());
        p.on_load_issue(0, 1, 0, 0);
        // No l1d_miss: stays out of the L2 path.
        let mut a = Vec::new();
        for c in 0..400 {
            p.tick(c, &snaps2(), &mut a);
        }
        assert!(a.is_empty());
    }

    #[test]
    fn resume_clears_state_for_future_loads() {
        let mut p = MflushPolicy::new(cfg4());
        p.on_load_issue(0, 1, 0, 0);
        p.on_l1d_miss(0, 1, 0, 3);
        let mut a = Vec::new();
        for c in 0..=90 {
            p.tick(c, &snaps2(), &mut a);
        }
        p.on_load_complete(0, 1, 0, Some(false), 272, 272);
        p.on_thread_resumed(0, 272);
        a.clear();
        p.on_load_issue(0, 2, 0, 300);
        p.on_l1d_miss(0, 2, 0, 303);
        p.tick(300 + 90, &snaps2(), &mut a);
        assert!(
            a.iter().any(|x| matches!(x, PolicyAction::Flush { .. })),
            "thread must be flushable again after resume: {a:?}"
        );
    }
}
