//! FLUSH with a load-miss-predictor detection moment (paper §3):
//!
//! > "we can predict (Speculative implementation) which loads are going
//! > to miss by adding a load miss predictor to the front-end. In this
//! > case, the speed is higher, but the reliability is low due to
//! > predictor mispredictions."
//!
//! The paper classifies this as the fastest, least reliable point of
//! the Detection-Moment spectrum and then evaluates only the
//! delay-after-issue variants; we implement it so the spectrum's fast
//! end exists in the benches. The predictor is a per-PC table of 2-bit
//! saturating counters trained on actual L2 outcomes; a load predicted
//! to miss triggers the FLUSH response action as soon as its L1 miss
//! is known — roughly 25 cycles earlier than FL-S30 and without any
//! per-machine trigger constant.

use crate::types::{icount_order, FetchPolicy, LoadToken, PolicyAction, ThreadSnapshot};

/// Two-bit saturating miss predictor, indexed by load PC.
#[derive(Debug, Clone)]
pub struct LoadMissPredictor {
    counters: Vec<u8>,
    lookups: u64,
    predicted_miss: u64,
}

impl LoadMissPredictor {
    /// Table with `entries` counters (power of two recommended).
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        LoadMissPredictor {
            counters: vec![1; entries], // weakly not-miss
            lookups: 0,
            predicted_miss: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.counters.len()
    }

    /// Predict whether the load at `pc` will miss the L2.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.lookups += 1;
        let miss = self.counters[self.index(pc)] >= 2;
        if miss {
            self.predicted_miss += 1;
        }
        miss
    }

    /// Train with the actual outcome (`missed` = the load missed L2).
    pub fn update(&mut self, pc: u64, missed: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if missed {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// (lookups, predicted-miss count).
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.predicted_miss)
    }
}

#[derive(Debug, Clone, Copy)]
struct TrackedLoad {
    token: LoadToken,
    pc: u64,
    flushed: bool,
}

/// FLUSH with miss-predictor detection (label `FLUSH-LMP`).
pub struct MissPredictFlushPolicy {
    predictor: LoadMissPredictor,
    loads: Vec<TrackedLoad>,
    gated: Vec<bool>,
    /// Flush requests produced by `on_load_issue`, drained at tick.
    pending: Vec<(usize, LoadToken)>,
    triggers: u64,
}

impl MissPredictFlushPolicy {
    /// Policy with a 1024-entry predictor.
    pub fn new() -> Self {
        Self::with_entries(1024)
    }

    /// Policy with an explicit predictor size.
    pub fn with_entries(entries: usize) -> Self {
        MissPredictFlushPolicy {
            predictor: LoadMissPredictor::new(entries),
            loads: Vec::new(),
            gated: Vec::new(),
            pending: Vec::new(),
            triggers: 0,
        }
    }

    fn is_gated(&self, tid: usize) -> bool {
        self.gated.get(tid).copied().unwrap_or(false)
    }

    fn set_gated(&mut self, tid: usize, v: bool) {
        if self.gated.len() <= tid {
            self.gated.resize(tid + 1, false);
        }
        self.gated[tid] = v;
    }

    /// FLUSH triggers so far.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Predictor statistics.
    pub fn predictor_stats(&self) -> (u64, u64) {
        self.predictor.stats()
    }
}

impl Default for MissPredictFlushPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchPolicy for MissPredictFlushPolicy {
    fn name(&self) -> String {
        "FLUSH-LMP".into()
    }

    fn tick(&mut self, _cycle: u64, _snaps: &[ThreadSnapshot], actions: &mut Vec<PolicyAction>) {
        let pending = std::mem::take(&mut self.pending);
        for (tid, token) in pending {
            if self.is_gated(tid) {
                continue;
            }
            // Load may have been squashed/completed since prediction.
            if self.loads.iter().any(|l| l.token == token && !l.flushed) {
                self.set_gated(tid, true);
                if let Some(l) = self.loads.iter_mut().find(|l| l.token == token) {
                    l.flushed = true;
                }
                self.triggers += 1;
                actions.push(PolicyAction::Flush { tid, token });
            }
        }
    }

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        icount_order(snaps, out);
    }

    fn on_load_issue(&mut self, _tid: usize, token: LoadToken, pc: u64, _cycle: u64) {
        // Remember the PC; the prediction fires when the load enters
        // the L2 path (L1 hits resolve too fast to be worth flushing).
        self.loads.push(TrackedLoad {
            token,
            pc,
            flushed: false,
        });
    }

    fn on_l1d_miss(&mut self, tid: usize, token: LoadToken, _bank: u32, _cycle: u64) {
        let Some(l) = self.loads.iter().find(|l| l.token == token) else {
            return;
        };
        let pc = l.pc;
        if self.predictor.predict(pc) {
            self.pending.push((tid, token));
        }
    }

    fn on_load_complete(
        &mut self,
        _tid: usize,
        token: LoadToken,
        _bank: u32,
        l2_hit: Option<bool>,
        _latency: u64,
        _cycle: u64,
    ) {
        if let Some(pos) = self.loads.iter().position(|l| l.token == token) {
            let l = self.loads.swap_remove(pos);
            if let Some(hit) = l2_hit {
                self.predictor.update(l.pc, !hit);
            }
        }
        self.pending.retain(|&(_, t)| t != token);
    }

    fn on_load_squashed(&mut self, _tid: usize, token: LoadToken) {
        self.loads.retain(|l| l.token != token);
        self.pending.retain(|&(_, t)| t != token);
    }

    fn on_thread_resumed(&mut self, tid: usize, _cycle: u64) {
        self.set_gated(tid, false);
    }

    fn next_wake(&self, from: u64) -> u64 {
        // tick only drains prediction-queued flushes; with none pending
        // it is a no-op until the next on_l1d_miss.
        if self.pending.is_empty() {
            u64::MAX
        } else {
            from
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_missing_pcs() {
        let mut p = LoadMissPredictor::new(64);
        let pc = 0x1000;
        assert!(!p.predict(pc), "weakly not-miss initially");
        p.update(pc, true);
        p.update(pc, true);
        assert!(p.predict(pc), "two misses saturate towards miss");
        p.update(pc, false);
        p.update(pc, false);
        p.update(pc, false);
        assert!(!p.predict(pc), "hits train it back");
    }

    #[test]
    fn policy_flushes_predicted_misses_immediately() {
        let snaps = [ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)];
        let mut p = MissPredictFlushPolicy::with_entries(16);
        // Train the PC hot: a couple of L2 misses at the same load PC.
        for token in 0..4u64 {
            p.on_load_issue(0, token, 0x1000, 10);
            p.on_l1d_miss(0, token, 2, 10);
            p.on_load_complete(0, token, 2, Some(false), 272, 300);
        }
        // A fresh load at the trained PC triggers as soon as it misses L1.
        let mut actions = Vec::new();
        p.on_load_issue(0, 64, 0x1000, 399);
        p.on_l1d_miss(0, 64, 2, 400);
        p.tick(401, &snaps, &mut actions);
        assert_eq!(actions, vec![PolicyAction::Flush { tid: 0, token: 64 }]);
        assert_eq!(p.triggers(), 1);
    }

    #[test]
    fn completed_loads_never_trigger() {
        let snaps = [ThreadSnapshot::idle(0)];
        let mut p = MissPredictFlushPolicy::with_entries(16);
        for token in 0..4u64 {
            p.on_load_issue(0, token, 0x2000, 10);
            p.on_l1d_miss(0, token, 1, 10);
            p.on_load_complete(0, token, 1, Some(false), 272, 300);
        }
        p.on_load_issue(0, 65, 0x2000, 399);
        p.on_l1d_miss(0, 65, 1, 400);
        p.on_load_complete(0, 65, 1, Some(true), 30, 430); // resolves first
        let mut actions = Vec::new();
        p.tick(431, &snaps, &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn gated_threads_are_not_reflushed() {
        let snaps = [ThreadSnapshot::idle(0)];
        let mut p = MissPredictFlushPolicy::with_entries(16);
        for token in 0..4u64 {
            p.on_load_issue(0, token, 0x3000, 10);
            p.on_l1d_miss(0, token, 0, 10);
            p.on_load_complete(0, token, 0, Some(false), 272, 300);
        }
        let mut actions = Vec::new();
        p.on_load_issue(0, 64, 0x3000, 400);
        p.on_l1d_miss(0, 64, 0, 400);
        p.on_load_issue(0, 128, 0x3000, 401);
        p.on_l1d_miss(0, 128, 0, 401);
        p.tick(402, &snaps, &mut actions);
        assert_eq!(actions.len(), 1, "one flush per gated thread");
        actions.clear();
        p.tick(403, &snaps, &mut actions);
        assert!(actions.is_empty());
        // Resume re-arms.
        p.on_thread_resumed(0, 700);
        p.on_load_issue(0, 192, 0x3000, 700);
        p.on_l1d_miss(0, 192, 0, 700);
        p.tick(701, &snaps, &mut actions);
        assert_eq!(actions.len(), 1);
    }
}
