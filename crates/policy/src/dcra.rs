//! DCRA-style dynamically controlled resource allocation (Cazorla,
//! Fernández, Ramirez & Valero, MICRO'04 — the paper's reference \[3\]).
//!
//! Where FLUSH reacts to long-latency loads by squashing, DCRA prevents
//! monopolisation up front: threads are classified every cycle as
//! *fast* or *slow* (slow = blocked on outstanding D-cache misses), the
//! shared-resource budget is split so that slow threads get a reduced
//! entitlement, and a thread exceeding its entitlement is fetch-gated
//! until it drains back under it. No squashing — so, like STALL, it
//! wastes no refetch energy.
//!
//! This is a faithful *simplification* of DCRA (the original also
//! entitles physical registers and distinguishes integer/fp pressure);
//! it exists as a related-work comparison point for the benches, not as
//! a reproduction target of this paper.

use crate::types::{icount_order, FetchPolicy, PolicyAction, ThreadSnapshot};

/// The DCRA-style policy.
pub struct DcraPolicy {
    /// Shared issue-queue entries per queue (the entitlement base).
    shared_entries: u32,
    /// Threads currently gated by us.
    gated: Vec<bool>,
    /// Gate events (statistics).
    gates: u64,
}

impl DcraPolicy {
    /// Policy for a machine with `shared_entries` entries per shared
    /// issue queue (64 on the paper's core).
    pub fn new(shared_entries: u32) -> Self {
        assert!(shared_entries > 0);
        DcraPolicy {
            shared_entries,
            gated: Vec::new(),
            gates: 0,
        }
    }

    /// Entitlement of one thread, given the fast/slow census.
    ///
    /// Slow threads share a *reduced* pool: each slow thread may hold
    /// `total / (n + fast)` entries (the more fast threads want the
    /// machine, the less a blocked thread may hoard); fast threads
    /// split the remainder evenly.
    fn entitlement(&self, is_slow: bool, fast: u32, slow: u32) -> u32 {
        let n = fast + slow;
        if n == 0 {
            return self.shared_entries;
        }
        let slow_cap = self
            .shared_entries
            .checked_div(n + fast)
            .unwrap_or(self.shared_entries)
            .max(1);
        if is_slow {
            slow_cap
        } else {
            (self.shared_entries - slow * slow_cap)
                .checked_div(fast)
                .unwrap_or(self.shared_entries)
                .max(1)
        }
    }

    fn is_gated(&self, tid: usize) -> bool {
        self.gated.get(tid).copied().unwrap_or(false)
    }

    fn set_gated(&mut self, tid: usize, v: bool) {
        if self.gated.len() <= tid {
            self.gated.resize(tid + 1, false);
        }
        self.gated[tid] = v;
    }

    /// Gate events so far.
    pub fn gates(&self) -> u64 {
        self.gates
    }
}

impl FetchPolicy for DcraPolicy {
    fn name(&self) -> String {
        "DCRA".into()
    }

    fn tick(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], actions: &mut Vec<PolicyAction>) {
        let slow_count = snaps
            .iter()
            .filter(|s| s.l1d_misses_in_flight > 0)
            .count() as u32;
        let fast_count = snaps.len() as u32 - slow_count;
        for s in snaps {
            let is_slow = s.l1d_misses_in_flight > 0;
            let cap = self.entitlement(is_slow, fast_count, slow_count);
            let usage = s.in_frontend + s.in_queues;
            if usage > cap && !self.is_gated(s.tid) {
                self.set_gated(s.tid, true);
                self.gates += 1;
                actions.push(PolicyAction::Stall { tid: s.tid });
            } else if self.is_gated(s.tid) && usage * 4 <= cap * 3 {
                // Hysteresis: release at 75 % of the entitlement.
                self.set_gated(s.tid, false);
                actions.push(PolicyAction::Resume { tid: s.tid });
            }
        }
    }

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        icount_order(snaps, out);
    }

    fn next_wake(&self, _from: u64) -> u64 {
        // tick is a pure function of (snaps, gated) and reaches a fixed
        // point after one application: any Stall/Resume the current
        // snapshots imply fired on the tick that just ran and flipped
        // `gated` so the condition no longer holds. With the snapshots
        // frozen (the core is quiescent during a skipped window) further
        // ticks are no-ops, so no wake-up is needed.
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(tid: usize, frontend: u32, misses: u32) -> ThreadSnapshot {
        let mut s = ThreadSnapshot::idle(tid);
        s.in_frontend = frontend;
        s.l1d_misses_in_flight = misses;
        s
    }

    #[test]
    fn slow_threads_get_smaller_entitlement() {
        let p = DcraPolicy::new(64);
        // 1 fast + 1 slow: slow cap = 64/3 = 21, fast = (64-21)/1 = 43.
        assert_eq!(p.entitlement(true, 1, 1), 21);
        assert_eq!(p.entitlement(false, 1, 1), 43);
    }

    #[test]
    fn all_fast_split_evenly() {
        let p = DcraPolicy::new(64);
        assert_eq!(p.entitlement(false, 2, 0), 32);
    }

    #[test]
    fn over_entitled_slow_thread_is_gated() {
        let mut p = DcraPolicy::new(64);
        let snaps = [snap(0, 40, 3), snap(1, 5, 0)]; // t0 slow, over cap 21
        let mut actions = Vec::new();
        p.tick(0, &snaps, &mut actions);
        assert_eq!(actions, vec![PolicyAction::Stall { tid: 0 }]);
        assert_eq!(p.gates(), 1);
    }

    #[test]
    fn hysteresis_releases_below_three_quarters() {
        let mut p = DcraPolicy::new(64);
        let mut actions = Vec::new();
        p.tick(0, &[snap(0, 40, 3), snap(1, 5, 0)], &mut actions);
        actions.clear();
        // Still above 75 % of 21 (≈ 15.75): stays gated, no new action.
        p.tick(1, &[snap(0, 18, 3), snap(1, 5, 0)], &mut actions);
        assert!(actions.is_empty());
        // Drained to 10 ≤ 15: released.
        p.tick(2, &[snap(0, 10, 3), snap(1, 5, 0)], &mut actions);
        assert_eq!(actions, vec![PolicyAction::Resume { tid: 0 }]);
    }

    #[test]
    fn fast_threads_with_room_are_untouched() {
        let mut p = DcraPolicy::new(64);
        let mut actions = Vec::new();
        p.tick(0, &[snap(0, 30, 0), snap(1, 20, 0)], &mut actions);
        assert!(actions.is_empty(), "32-entry entitlement not exceeded");
    }

    #[test]
    fn no_threads_is_safe() {
        let mut p = DcraPolicy::new(64);
        let mut actions = Vec::new();
        p.tick(0, &[], &mut actions);
        assert!(actions.is_empty());
    }
}
