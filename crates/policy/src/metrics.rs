//! The policy crate's metric registrations (DESIGN.md §12).
//!
//! Lint rule D8 cross-checks every `MetricSpec` here against
//! METRICS.md. The trigger counts themselves live in the core model
//! (it executes the response actions); this crate owns the *rate*
//! metric because the rate is the policy-comparison figure of merit.

use smtsim_obs::{MetricKind, MetricSpec};

/// Policy response actions (flushes + stalls) per kilocycle per core.
pub const METRIC_TRIGGER_RATE: MetricSpec = MetricSpec {
    name: "policy.trigger_rate",
    unit: "events/kilocycle",
    kind: MetricKind::Gauge,
    krate: "policy",
    doc: "Fetch-policy response actions (FLUSH + STALL) executed per kilocycle per core over the last sampling interval.",
    figure: "Fig. 5",
};

/// All policy-crate metrics, in registration order.
pub const METRICS: &[MetricSpec] = &[METRIC_TRIGGER_RATE];
