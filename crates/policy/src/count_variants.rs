//! BRCOUNT and L1DMISSCOUNT (Tullsen et al., ISCA'96) — the alternative
//! counting heuristics the related-work section's ADTS scheduler
//! switches between. Neither takes any response action; like ICOUNT they
//! only reorder fetch priority.

use crate::types::{FetchPolicy, LoadToken, PolicyAction, ThreadSnapshot};

/// BRCOUNT: prioritise threads with the fewest unresolved branches in
/// flight — fewer wrong-path instructions fetched.
#[derive(Debug, Default, Clone)]
pub struct BrcountPolicy;

impl BrcountPolicy {
    /// Construct the policy.
    pub fn new() -> Self {
        BrcountPolicy
    }
}

impl FetchPolicy for BrcountPolicy {
    fn name(&self) -> String {
        "BRCOUNT".into()
    }

    fn tick(&mut self, _cycle: u64, _snaps: &[ThreadSnapshot], _actions: &mut Vec<PolicyAction>) {}

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        out.clear();
        out.extend(snaps.iter().map(|s| s.tid));
        out.sort_by_key(|&tid| {
            // lint: allow(D3) -- out was populated from snaps two lines up, every tid resolves
            let s = snaps.iter().find(|s| s.tid == tid).expect("tid in snaps");
            (s.branches_in_flight, tid as u32)
        });
    }

    fn next_wake(&self, _from: u64) -> u64 {
        // Stateless: priority is a pure function of the snapshots.
        u64::MAX
    }
}

/// L1DMISSCOUNT (the ISCA'96 "MISSCOUNT"): prioritise threads with the
/// fewest outstanding D-cache misses.
#[derive(Debug, Default, Clone)]
pub struct L1dMissCountPolicy {
    /// Outstanding L1D misses per thread, maintained from load events
    /// (more precise than the snapshot, and keeps this policy usable
    /// standalone in tests).
    outstanding: Vec<u32>,
    /// Tokens currently counted, so completions decrement exactly once.
    tracked: Vec<(usize, LoadToken)>,
}

impl L1dMissCountPolicy {
    /// Construct the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(&mut self, tid: usize, delta: i32) {
        if self.outstanding.len() <= tid {
            self.outstanding.resize(tid + 1, 0);
        }
        let v = &mut self.outstanding[tid];
        *v = v.saturating_add_signed(delta);
    }
}

impl FetchPolicy for L1dMissCountPolicy {
    fn name(&self) -> String {
        "L1DMISSCOUNT".into()
    }

    fn tick(&mut self, _cycle: u64, _snaps: &[ThreadSnapshot], _actions: &mut Vec<PolicyAction>) {}

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        out.clear();
        out.extend(snaps.iter().map(|s| s.tid));
        let outstanding = &self.outstanding;
        out.sort_by_key(|&tid| {
            (
                outstanding.get(tid).copied().unwrap_or(0),
                tid as u32,
            )
        });
    }

    fn on_l1d_miss(&mut self, tid: usize, token: LoadToken, _bank: u32, _cycle: u64) {
        self.tracked.push((tid, token));
        self.bump(tid, 1);
    }

    fn on_load_complete(
        &mut self,
        tid: usize,
        token: LoadToken,
        _bank: u32,
        _l2_hit: Option<bool>,
        _latency: u64,
        _cycle: u64,
    ) {
        if let Some(i) = self.tracked.iter().position(|&(_, t)| t == token) {
            self.tracked.swap_remove(i);
            self.bump(tid, -1);
        }
    }

    fn on_load_squashed(&mut self, tid: usize, token: LoadToken) {
        if let Some(i) = self.tracked.iter().position(|&(_, t)| t == token) {
            self.tracked.swap_remove(i);
            self.bump(tid, -1);
        }
    }

    fn next_wake(&self, _from: u64) -> u64 {
        // Purely event-driven: counters change only in the on_* hooks.
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brcount_prefers_fewer_branches() {
        let mut p = BrcountPolicy::new();
        let mut a = ThreadSnapshot::idle(0);
        let mut b = ThreadSnapshot::idle(1);
        a.branches_in_flight = 4;
        b.branches_in_flight = 1;
        let mut out = Vec::new();
        p.fetch_priority(0, &[a, b], &mut out);
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn l1dmisscount_tracks_misses() {
        let mut p = L1dMissCountPolicy::new();
        let snaps = [ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)];
        let mut out = Vec::new();
        p.on_l1d_miss(0, 1, 0, 10);
        p.on_l1d_miss(0, 2, 1, 11);
        p.fetch_priority(12, &snaps, &mut out);
        assert_eq!(out, vec![1, 0], "thread 0 has outstanding misses");
        p.on_load_complete(0, 1, 0, Some(true), 30, 40);
        p.on_load_complete(0, 2, 1, Some(true), 30, 41);
        p.fetch_priority(42, &snaps, &mut out);
        assert_eq!(out, vec![0, 1], "tie-break by tid once drained");
    }

    #[test]
    fn l1dmisscount_handles_squashes() {
        let mut p = L1dMissCountPolicy::new();
        p.on_l1d_miss(1, 7, 0, 0);
        p.on_load_squashed(1, 7);
        let snaps = [ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)];
        let mut out = Vec::new();
        p.fetch_priority(1, &snaps, &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn duplicate_completion_does_not_underflow() {
        let mut p = L1dMissCountPolicy::new();
        p.on_l1d_miss(0, 1, 0, 0);
        p.on_load_complete(0, 1, 0, Some(true), 25, 25);
        p.on_load_complete(0, 1, 0, Some(true), 25, 26); // spurious
        let snaps = [ThreadSnapshot::idle(0)];
        let mut out = Vec::new();
        p.fetch_priority(27, &snaps, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn no_actions_ever() {
        let mut p = L1dMissCountPolicy::new();
        let mut actions = Vec::new();
        p.tick(0, &[ThreadSnapshot::idle(0)], &mut actions);
        assert!(actions.is_empty());
    }
}
