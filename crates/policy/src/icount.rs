//! ICOUNT (Tullsen et al., ISCA'96): prioritise the threads with the
//! fewest instructions in the pre-issue stages. No long-latency
//! awareness — the baseline every other policy improves on (and the
//! baseline MFLUSH is "built on top of", paper §4).

use crate::types::{icount_order, FetchPolicy, PolicyAction, ThreadSnapshot};

/// The ICOUNT fetch policy.
#[derive(Debug, Default, Clone)]
pub struct IcountPolicy;

impl IcountPolicy {
    /// Construct the policy.
    pub fn new() -> Self {
        IcountPolicy
    }
}

impl FetchPolicy for IcountPolicy {
    fn name(&self) -> String {
        "ICOUNT".into()
    }

    fn tick(&mut self, _cycle: u64, _snaps: &[ThreadSnapshot], _actions: &mut Vec<PolicyAction>) {
        // ICOUNT never gates or flushes anyone.
    }

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        icount_order(snaps, out);
    }

    fn next_wake(&self, _from: u64) -> u64 {
        // Stateless and event-free: priority is a pure function of the
        // snapshots, so skipped cycles are unobservable.
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_emits_actions() {
        let mut p = IcountPolicy::new();
        let snaps = [ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)];
        let mut actions = Vec::new();
        for cycle in 0..100 {
            p.tick(cycle, &snaps, &mut actions);
        }
        assert!(actions.is_empty());
    }

    #[test]
    fn priority_is_icount_order() {
        let mut p = IcountPolicy::new();
        let mut a = ThreadSnapshot::idle(0);
        let b = ThreadSnapshot::idle(1);
        a.in_frontend = 5;
        let mut out = Vec::new();
        p.fetch_priority(0, &[a, b], &mut out);
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn name_matches() {
        assert_eq!(IcountPolicy::new().name(), "ICOUNT");
    }
}
