//! ADTS-style adaptive scheduling (Shin, Lee & Gaudiot; paper §5).
//!
//! The related-work Adaptive Dynamic Thread Scheduling improves SMT
//! throughput by switching the fetch heuristic — among ICOUNT, BRCOUNT
//! and L1DMISSCOUNT — according to the workload's current behaviour.
//! This is an *extension* beyond the paper's evaluated policies,
//! implemented so the bench suite can compare adaptivity-in-priority
//! (ADTS) against adaptivity-in-detection (MFLUSH).
//!
//! Heuristic: over fixed epochs, measure branch pressure (unresolved
//! branches per thread-cycle) and memory pressure (outstanding L1D
//! misses per thread-cycle); at each epoch boundary pick the heuristic
//! targeting the dominant pressure.

use crate::count_variants::{BrcountPolicy, L1dMissCountPolicy};
use crate::icount::IcountPolicy;
use crate::types::{FetchPolicy, LoadToken, PolicyAction, ThreadSnapshot};

/// Which heuristic is currently active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveHeuristic {
    Icount,
    Brcount,
    L1dMissCount,
}

/// The adaptive meta-policy.
pub struct AdtsPolicy {
    epoch_cycles: u64,
    /// Pressure thresholds (per thread, time-averaged) that switch away
    /// from ICOUNT.
    branch_threshold: f64,
    miss_threshold: f64,
    active: ActiveHeuristic,
    icount: IcountPolicy,
    brcount: BrcountPolicy,
    misscount: L1dMissCountPolicy,
    // Epoch accumulators.
    epoch_start: u64,
    samples: u64,
    branch_sum: u64,
    miss_sum: u64,
    switches: u64,
}

impl AdtsPolicy {
    /// ADTS with the default 4096-cycle epoch.
    pub fn new() -> Self {
        Self::with_epoch(4096)
    }

    /// ADTS with a custom epoch length.
    pub fn with_epoch(epoch_cycles: u64) -> Self {
        assert!(epoch_cycles > 0);
        AdtsPolicy {
            epoch_cycles,
            branch_threshold: 3.0,
            miss_threshold: 1.5,
            active: ActiveHeuristic::Icount,
            icount: IcountPolicy::new(),
            brcount: BrcountPolicy::new(),
            misscount: L1dMissCountPolicy::new(),
            epoch_start: 0,
            samples: 0,
            branch_sum: 0,
            miss_sum: 0,
            switches: 0,
        }
    }

    /// Currently active heuristic.
    pub fn active(&self) -> ActiveHeuristic {
        self.active
    }

    /// Number of heuristic switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    fn maybe_switch(&mut self, cycle: u64) {
        if cycle.saturating_sub(self.epoch_start) < self.epoch_cycles || self.samples == 0 {
            return;
        }
        let per = self.samples as f64;
        let branch_pressure = self.branch_sum as f64 / per;
        let miss_pressure = self.miss_sum as f64 / per;
        let next = if miss_pressure >= self.miss_threshold
            && miss_pressure >= branch_pressure / 2.0
        {
            ActiveHeuristic::L1dMissCount
        } else if branch_pressure >= self.branch_threshold {
            ActiveHeuristic::Brcount
        } else {
            ActiveHeuristic::Icount
        };
        if next != self.active {
            self.active = next;
            self.switches += 1;
        }
        self.epoch_start = cycle;
        self.samples = 0;
        self.branch_sum = 0;
        self.miss_sum = 0;
    }
}

impl Default for AdtsPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchPolicy for AdtsPolicy {
    // next_wake deliberately stays at the conservative default (`from`):
    // tick accumulates epoch samples every cycle, so skipping cycles
    // would change the averages the switch decision is based on. ADTS
    // runs therefore never engage stall skip-ahead (DESIGN.md §16).

    fn name(&self) -> String {
        "ADTS".into()
    }

    fn tick(&mut self, cycle: u64, snaps: &[ThreadSnapshot], _actions: &mut Vec<PolicyAction>) {
        self.samples += 1;
        self.branch_sum += snaps
            .iter()
            .map(|s| s.branches_in_flight as u64)
            .sum::<u64>();
        self.miss_sum += snaps
            .iter()
            .map(|s| s.l1d_misses_in_flight as u64)
            .sum::<u64>();
        self.maybe_switch(cycle);
    }

    fn fetch_priority(&mut self, cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        match self.active {
            ActiveHeuristic::Icount => self.icount.fetch_priority(cycle, snaps, out),
            ActiveHeuristic::Brcount => self.brcount.fetch_priority(cycle, snaps, out),
            ActiveHeuristic::L1dMissCount => self.misscount.fetch_priority(cycle, snaps, out),
        }
    }

    fn on_l1d_miss(&mut self, tid: usize, token: LoadToken, bank: u32, cycle: u64) {
        self.misscount.on_l1d_miss(tid, token, bank, cycle);
    }

    fn on_load_complete(
        &mut self,
        tid: usize,
        token: LoadToken,
        bank: u32,
        l2_hit: Option<bool>,
        latency: u64,
        cycle: u64,
    ) {
        self.misscount
            .on_load_complete(tid, token, bank, l2_hit, latency, cycle);
    }

    fn on_load_squashed(&mut self, tid: usize, token: LoadToken) {
        self.misscount.on_load_squashed(tid, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snaps(branches: u32, misses: u32) -> Vec<ThreadSnapshot> {
        let mut a = ThreadSnapshot::idle(0);
        a.branches_in_flight = branches;
        a.l1d_misses_in_flight = misses;
        vec![a, ThreadSnapshot::idle(1)]
    }

    #[test]
    fn starts_with_icount() {
        assert_eq!(AdtsPolicy::new().active(), ActiveHeuristic::Icount);
    }

    #[test]
    fn switches_to_misscount_under_memory_pressure() {
        let mut p = AdtsPolicy::with_epoch(100);
        let mut actions = Vec::new();
        for c in 0..=100 {
            p.tick(c, &snaps(0, 8), &mut actions);
        }
        assert_eq!(p.active(), ActiveHeuristic::L1dMissCount);
        assert_eq!(p.switches(), 1);
    }

    #[test]
    fn switches_to_brcount_under_branch_pressure() {
        let mut p = AdtsPolicy::with_epoch(100);
        let mut actions = Vec::new();
        for c in 0..=100 {
            p.tick(c, &snaps(10, 0), &mut actions);
        }
        assert_eq!(p.active(), ActiveHeuristic::Brcount);
    }

    #[test]
    fn returns_to_icount_when_calm() {
        let mut p = AdtsPolicy::with_epoch(100);
        let mut actions = Vec::new();
        for c in 0..=100 {
            p.tick(c, &snaps(10, 0), &mut actions);
        }
        assert_eq!(p.active(), ActiveHeuristic::Brcount);
        for c in 101..=201 {
            p.tick(c, &snaps(0, 0), &mut actions);
        }
        assert_eq!(p.active(), ActiveHeuristic::Icount);
        assert_eq!(p.switches(), 2);
    }

    #[test]
    fn no_switch_mid_epoch() {
        let mut p = AdtsPolicy::with_epoch(1_000);
        let mut actions = Vec::new();
        for c in 0..500 {
            p.tick(c, &snaps(10, 10), &mut actions);
        }
        assert_eq!(p.active(), ActiveHeuristic::Icount);
    }

    #[test]
    fn emits_no_gating_actions() {
        let mut p = AdtsPolicy::with_epoch(10);
        let mut actions = Vec::new();
        for c in 0..100 {
            p.tick(c, &snaps(10, 10), &mut actions);
        }
        assert!(actions.is_empty());
    }
}
