//! The STALL response action (Tullsen & Brown, MICRO'01): same detection
//! moments as FLUSH, but the offending thread is only fetch-gated — its
//! in-flight instructions stay in the pipeline holding their resources.
//! Cheaper in energy (nothing is refetched), weaker in throughput
//! (resources stay clogged). MFLUSH's Preventive State borrows exactly
//! this behaviour (paper §4: "adapts the FLUSH and STALL philosophy").

use crate::flush::{DetectionState, FlushTrigger};
use crate::types::{icount_order, FetchPolicy, LoadToken, PolicyAction, ThreadSnapshot};

/// The STALL fetch policy.
pub struct StallPolicy {
    state: DetectionState,
    /// Stall cause per thread: the load whose completion un-gates it.
    cause: Vec<Option<LoadToken>>,
    /// Resumes to emit at the next tick.
    pending_resume: Vec<usize>,
}

impl StallPolicy {
    /// Speculative STALL with an X-cycle delay-after-issue trigger.
    pub fn speculative(trigger_cycles: u64) -> Self {
        Self::new(FlushTrigger::DelayAfterIssue(trigger_cycles))
    }

    /// Non-speculative STALL.
    pub fn non_speculative() -> Self {
        Self::new(FlushTrigger::OnL2Miss)
    }

    /// Generic constructor.
    pub fn new(trigger: FlushTrigger) -> Self {
        StallPolicy {
            state: DetectionState::new(trigger),
            cause: Vec::new(),
            pending_resume: Vec::new(),
        }
    }

    fn set_cause(&mut self, tid: usize, token: Option<LoadToken>) {
        if self.cause.len() <= tid {
            self.cause.resize(tid + 1, None);
        }
        self.cause[tid] = token;
    }

    /// Number of stall triggers so far.
    pub fn triggers(&self) -> u64 {
        self.state.triggers
    }
}

impl FetchPolicy for StallPolicy {
    fn name(&self) -> String {
        match_trigger_name(&self.state)
    }

    fn tick(&mut self, cycle: u64, _snaps: &[ThreadSnapshot], actions: &mut Vec<PolicyAction>) {
        for tid in self.pending_resume.drain(..) {
            actions.push(PolicyAction::Resume { tid });
        }
        // Re-borrow `detected()` per iteration: `set_cause` needs
        // `&mut self` while the detect slice lives in `self.state`.
        self.state.detect(cycle);
        for i in 0..self.state.detected().len() {
            let (tid, token) = self.state.detected()[i];
            self.set_cause(tid, Some(token));
            actions.push(PolicyAction::Stall { tid });
        }
    }

    fn fetch_priority(&mut self, _cycle: u64, snaps: &[ThreadSnapshot], out: &mut Vec<usize>) {
        icount_order(snaps, out);
    }

    fn on_load_issue(&mut self, tid: usize, token: LoadToken, _pc: u64, cycle: u64) {
        self.state.on_load_issue(tid, token, cycle);
    }

    fn on_l2_miss(&mut self, tid: usize, token: LoadToken, _cycle: u64) {
        self.state.on_l2_miss(tid, token);
    }

    fn on_load_complete(
        &mut self,
        tid: usize,
        token: LoadToken,
        _bank: u32,
        _l2_hit: Option<bool>,
        _latency: u64,
        _cycle: u64,
    ) {
        self.state.forget(token);
        if self.cause.get(tid).copied().flatten() == Some(token) {
            self.set_cause(tid, None);
            self.state.on_thread_resumed(tid);
            self.pending_resume.push(tid);
        }
    }

    fn on_load_squashed(&mut self, tid: usize, token: LoadToken) {
        self.state.forget(token);
        if self.cause.get(tid).copied().flatten() == Some(token) {
            self.set_cause(tid, None);
            self.state.on_thread_resumed(tid);
            self.pending_resume.push(tid);
        }
    }

    fn on_thread_resumed(&mut self, tid: usize, _cycle: u64) {
        self.state.on_thread_resumed(tid);
    }

    fn next_wake(&self, from: u64) -> u64 {
        if !self.pending_resume.is_empty() {
            return from;
        }
        self.state.next_wake(from)
    }
}

fn match_trigger_name(state: &DetectionState) -> String {
    match state.trigger_kind() {
        FlushTrigger::DelayAfterIssue(x) => format!("STALL-S{x}"),
        FlushTrigger::OnL2Miss => "STALL-NS".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snaps2() -> Vec<ThreadSnapshot> {
        vec![ThreadSnapshot::idle(0), ThreadSnapshot::idle(1)]
    }

    #[test]
    fn names() {
        assert_eq!(StallPolicy::speculative(50).name(), "STALL-S50");
        assert_eq!(StallPolicy::non_speculative().name(), "STALL-NS");
    }

    #[test]
    fn stall_then_resume_on_completion() {
        let mut p = StallPolicy::speculative(30);
        p.on_load_issue(0, 9, 0, 0);
        let mut actions = Vec::new();
        p.tick(30, &snaps2(), &mut actions);
        assert_eq!(actions, vec![PolicyAction::Stall { tid: 0 }]);
        // Load completes: resume at next tick.
        p.on_load_complete(0, 9, 0, Some(false), 272, 272);
        actions.clear();
        p.tick(273, &snaps2(), &mut actions);
        assert_eq!(actions, vec![PolicyAction::Resume { tid: 0 }]);
    }

    #[test]
    fn unrelated_load_completion_does_not_resume() {
        let mut p = StallPolicy::speculative(30);
        p.on_load_issue(0, 1, 0, 0);
        p.on_load_issue(0, 2, 0, 5);
        let mut actions = Vec::new();
        p.tick(30, &snaps2(), &mut actions); // stalls on token 1
        actions.clear();
        p.on_load_complete(0, 2, 0, Some(true), 40, 45);
        p.tick(46, &snaps2(), &mut actions);
        assert!(
            !actions.contains(&PolicyAction::Resume { tid: 0 }),
            "must wait for the causing load"
        );
    }

    #[test]
    fn squash_of_cause_resumes() {
        let mut p = StallPolicy::speculative(30);
        p.on_load_issue(0, 1, 0, 0);
        let mut actions = Vec::new();
        p.tick(30, &snaps2(), &mut actions);
        p.on_load_squashed(0, 1); // e.g. older branch mispredicted
        actions.clear();
        p.tick(31, &snaps2(), &mut actions);
        assert_eq!(actions, vec![PolicyAction::Resume { tid: 0 }]);
    }

    #[test]
    fn can_stall_again_after_resume() {
        let mut p = StallPolicy::speculative(10);
        p.on_load_issue(0, 1, 0, 0);
        let mut a = Vec::new();
        p.tick(10, &snaps2(), &mut a);
        p.on_load_complete(0, 1, 0, Some(false), 272, 272);
        p.on_load_issue(0, 2, 0, 300);
        a.clear();
        p.tick(310, &snaps2(), &mut a);
        assert!(a.contains(&PolicyAction::Resume { tid: 0 }));
        assert!(a.contains(&PolicyAction::Stall { tid: 0 }));
        assert_eq!(p.triggers(), 2);
    }
}
