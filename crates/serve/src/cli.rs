//! Entry points for the `smtsim serve` and `smtsim request`
//! subcommands, kept here so the CLI binary stays a thin dispatcher.

use std::path::PathBuf;

use crate::client::http_post;
use crate::server::{Server, ServerConfig};

/// Run a server until it is asked to drain (`POST /shutdown`), then
/// exit cleanly. `cache_dir` is created if missing; the journal lives
/// at `DIR/results.jsonl` so repeated launches replay their cache.
pub fn serve_main(
    addr: &str,
    cache_dir: Option<&str>,
    max_queue: usize,
    workers: usize,
) -> Result<(), String> {
    let cache_path = match cache_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("create cache dir {dir}: {e}"))?;
            Some(PathBuf::from(dir).join("results.jsonl"))
        }
        None => None,
    };
    let cfg = ServerConfig {
        addr: addr.to_string(),
        cache_path,
        max_queue,
        workers,
        ..ServerConfig::default()
    };
    let handle = Server::launch(cfg)?;
    // The smoke script greps this line for the bound port, so it must
    // flush before the server blocks (println's LineWriter does).
    println!("smtsim-serve listening on {}", handle.bound_addr());
    handle.wait_for_drain();
    println!("smtsim-serve drained cleanly");
    Ok(())
}

/// `POST /run` a request body and print the response body verbatim —
/// the client half of the smoke gate's byte-comparison.
pub fn request_main(addr: &str, body: &str, timeout_ms: u64) -> Result<(), String> {
    let resp = http_post(addr, "/run", body, timeout_ms)?;
    print!("{}", resp.body);
    if resp.status == 200 {
        Ok(())
    } else {
        Err(format!("server answered {}", resp.status))
    }
}
