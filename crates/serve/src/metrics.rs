//! Service counters behind `/healthz`, registered as `MetricSpec`s in
//! `smtsim-obs` (`SERVE_METRICS`) so METRICS.md documents them (D8).
//! Plain relaxed atomics: these are operator-facing tallies, not part
//! of any deterministic result, and never feed back into simulation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one server instance.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// `serve.queue_depth` — connections accepted but not yet picked
    /// up by a worker.
    pub queue_depth: AtomicU64,
    /// `serve.cache_hits` — answers served from the result cache.
    pub cache_hits: AtomicU64,
    /// `serve.cache_misses` — requests that had to simulate (a
    /// coalesced follower counts under the leader's miss).
    pub cache_misses: AtomicU64,
    /// `serve.shed_total` — requests refused 429/503 under load or
    /// drain.
    pub shed_total: AtomicU64,
    /// `serve.retries_total` — job re-executions after a retryable
    /// failure.
    pub retries_total: AtomicU64,
    /// Jobs actually simulated (not a registered metric; the dedup
    /// test pins it to prove coalescing never re-simulates).
    pub jobs_simulated: AtomicU64,
}

impl ServeCounters {
    /// Render the `/healthz` body. Key order is fixed so the body is
    /// byte-stable for a given counter state.
    pub fn healthz_json(&self, draining: bool) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "{{\"status\":\"{}\",\"serve.queue_depth\":{},\"serve.cache_hits\":{},\"serve.cache_misses\":{},\"serve.shed_total\":{},\"serve.retries_total\":{},\"jobs_simulated\":{}}}\n",
            if draining { "draining" } else { "ok" },
            g(&self.queue_depth),
            g(&self.cache_hits),
            g(&self.cache_misses),
            g(&self.shed_total),
            g(&self.retries_total),
            g(&self.jobs_simulated),
        )
    }

    /// Bump a counter by one.
    pub fn bump_tally(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthz_lists_every_registered_serve_metric() {
        let c = ServeCounters::default();
        ServeCounters::bump_tally(&c.cache_hits);
        let body = c.healthz_json(false);
        for spec in smtsim_obs::SERVE_METRICS {
            assert!(
                body.contains(&format!("\"{}\":", spec.name)),
                "healthz body missing {}: {body}",
                spec.name
            );
        }
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"serve.cache_hits\":1"));
        assert!(c.healthz_json(true).contains("\"status\":\"draining\""));
    }
}
