//! Request-body parsing: config JSON → validated [`SimConfig`].
//!
//! The accepted shape mirrors the `smtsim run` flags, so a served
//! answer is byte-comparable with `smtsim run … --json` for the same
//! parameters (the smoke gate does exactly that comparison):
//!
//! ```json
//! {"workload":"2W2","policy":"mflush","cycles":150000,"seed":24237}
//! {"benchmarks":["mcf","gzip"],"policy":"flush-s30"}
//! ```
//!
//! Every rejection is an exit-2-style message with a did-you-mean
//! hint where one applies — unknown keys, workloads, benchmarks and
//! policies all suggest their nearest valid spelling.

use smtsim_core::config::{DEFAULT_CYCLES, DEFAULT_WATCHDOG};
use smtsim_core::json::parse_json;
use smtsim_core::suggest::did_you_mean;
use smtsim_core::topology::Fidelity;
use smtsim_core::workloads::{ALL_WORKLOADS, FIG5B_WORKLOAD};
use smtsim_core::{SimConfig, Workload};
use smtsim_policy::PolicyKind;

/// Top-level keys a request may carry.
const KNOWN_KEYS: [&str; 7] = [
    "workload",
    "benchmarks",
    "policy",
    "cycles",
    "seed",
    "watchdog_cycles",
    "fidelity",
];

/// The CLI's default seed (`smtsim run --seed` default), kept equal so
/// served answers byte-match `smtsim run --json`.
pub const DEFAULT_SEED: u64 = 0x5eed;

fn workload_names() -> Vec<&'static str> {
    ALL_WORKLOADS
        .iter()
        .chain([&FIG5B_WORKLOAD])
        .map(|w| w.name)
        .collect()
}

fn benchmark_names() -> Vec<&'static str> {
    smtsim_trace::spec::ALL_BENCHMARKS
        .iter()
        .map(|b| b.name)
        .collect()
}

/// Render an unknown-name message with a typo suggestion when one is
/// close enough.
fn unknown_with_hint(kind: &str, input: &str, candidates: &[&str], fallback: &str) -> String {
    match did_you_mean(input, candidates) {
        Some(s) => format!("unknown {kind} '{input}' (did you mean '{s}'?)"),
        None => format!("unknown {kind} '{input}' ({fallback})"),
    }
}

/// Parse and validate one `POST /run` body. `Ok` carries the config
/// plus a human-readable label for the cache/journal line; `Err` is
/// the complete 400 message.
pub fn parse_sim_request(body: &str) -> Result<(SimConfig, String), String> {
    let v = parse_json(body).map_err(|e| format!("request body is not JSON: {e}"))?;
    let fields = match &v {
        smtsim_core::json::JsonValue::Obj(fields) => fields,
        _ => return Err(String::from("request body must be a JSON object")),
    };
    for (key, _) in fields {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(unknown_with_hint(
                "request field",
                key,
                &KNOWN_KEYS,
                "see README \"Serving\"",
            ));
        }
    }

    let policy = match v.get("policy") {
        None => PolicyKind::Mflush,
        Some(p) => {
            let name = p
                .as_str()
                .ok_or_else(|| String::from("field \"policy\" must be a string"))?;
            PolicyKind::parse_name(name).ok_or_else(|| {
                unknown_with_hint("policy", name, &PolicyKind::SUGGESTED_NAMES, "try `smtsim policies`")
            })?
        }
    };

    let fidelity = match v.get("fidelity") {
        None => Fidelity::detailed(),
        Some(f) => {
            let spec = f
                .as_str()
                .ok_or_else(|| String::from("field \"fidelity\" must be a string"))?;
            Fidelity::parse(spec).map_err(|e| format!("bad fidelity: {e}"))?
        }
    };

    let (base, what) = match (v.get("workload"), v.get("benchmarks")) {
        (Some(_), Some(_)) => {
            return Err(String::from(
                "give either \"workload\" or \"benchmarks\", not both",
            ))
        }
        (Some(w), None) => {
            let name = w
                .as_str()
                .ok_or_else(|| String::from("field \"workload\" must be a string"))?;
            let workload = Workload::by_name(name).ok_or_else(|| {
                unknown_with_hint("workload", name, &workload_names(), "try `smtsim workloads`")
            })?;
            (
                SimConfig::for_workload(workload, policy),
                name.to_string(),
            )
        }
        (None, Some(list)) => {
            let items = list
                .as_arr()
                .ok_or_else(|| String::from("field \"benchmarks\" must be an array of strings"))?;
            let mut names: Vec<&str> = Vec::new();
            for item in items {
                names.push(item.as_str().ok_or_else(|| {
                    String::from("field \"benchmarks\" must be an array of strings")
                })?);
            }
            if names.is_empty() || !names.len().is_multiple_of(2) {
                return Err(String::from(
                    "need an even, non-zero number of benchmarks (2 per core)",
                ));
            }
            for n in &names {
                if smtsim_trace::spec::benchmark_by_name(n).is_none() {
                    return Err(unknown_with_hint(
                        "benchmark",
                        n,
                        &benchmark_names(),
                        "see the SPEC2000 names in DESIGN.md §4",
                    ));
                }
            }
            (SimConfig::for_benchmarks(&names, policy), names.join(","))
        }
        (None, None) => return Err(String::from("need \"workload\" or \"benchmarks\"")),
    };

    let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            None => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
        }
    };
    let cfg = base
        .with_fidelity(fidelity)
        .with_cycles(opt_u64("cycles")?.unwrap_or(DEFAULT_CYCLES))
        .with_seed(opt_u64("seed")?.unwrap_or(DEFAULT_SEED))
        .with_watchdog(opt_u64("watchdog_cycles")?.unwrap_or(DEFAULT_WATCHDOG));
    cfg.validate()?;
    let label = format!("{what}/{}", policy.label());
    Ok((cfg, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_core::ToJson;

    #[test]
    fn request_matches_cli_defaults() {
        let (cfg, label) = parse_sim_request("{\"workload\":\"2W2\"}").expect("parses");
        let w = Workload::by_name("2W2").unwrap();
        let cli = SimConfig::for_workload(w, PolicyKind::Mflush)
            .with_cycles(DEFAULT_CYCLES)
            .with_seed(DEFAULT_SEED)
            .with_watchdog(DEFAULT_WATCHDOG);
        assert_eq!(cfg.to_json(), cli.to_json(), "defaults must mirror `smtsim run`");
        assert_eq!(label, "2W2/MFLUSH");
    }

    #[test]
    fn unknown_names_get_suggestions() {
        let e = parse_sim_request("{\"workload\":\"2W2\",\"policy\":\"mflsh\"}").unwrap_err();
        assert!(e.contains("did you mean 'mflush'"), "{e}");
        let e = parse_sim_request("{\"workload\":\"2w9\"}").unwrap_err();
        assert!(e.contains("did you mean"), "{e}");
        let e = parse_sim_request("{\"workload\":\"2W2\",\"cycels\":5}").unwrap_err();
        assert!(e.contains("did you mean 'cycles'"), "{e}");
        let e = parse_sim_request("{\"benchmarks\":[\"mfc\",\"gzip\"]}").unwrap_err();
        assert!(e.contains("did you mean 'mcf'"), "{e}");
    }

    #[test]
    fn malformed_bodies_are_rejected_not_panicked() {
        for bad in [
            "",
            "not json",
            "[]",
            "{\"benchmarks\":\"mcf\"}",
            "{\"benchmarks\":[\"mcf\"]}",
            "{\"workload\":\"2W2\",\"benchmarks\":[\"mcf\",\"gzip\"]}",
            "{\"workload\":\"2W2\",\"cycles\":\"many\"}",
            "{\"workload\":\"2W2\",\"fidelity\":\"mem=warp\"}",
            "{\"workload\":2}",
        ] {
            assert!(parse_sim_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
