//! Std-only blocking HTTP client, so the smoke gate and the tests
//! need no curl. One request per connection, mirroring the server's
//! `Connection: close` framing.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code (`200`, `429`, …).
    pub status: u16,
    /// Headers, lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl ClientResponse {
    /// A header value, by lowercased name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// `POST` a body to `addr` (e.g. `"127.0.0.1:8080"`) at `path`.
/// `timeout_ms` bounds each socket read/write (0 = no timeout). A
/// response shorter than its declared `Content-Length` is an error —
/// a mid-response server crash must never look like a short answer.
pub fn http_post(
    addr: &str,
    path: &str,
    body: &str,
    timeout_ms: u64,
) -> Result<ClientResponse, String> {
    round_trip(addr, "POST", path, body, timeout_ms)
}

/// `GET` from `addr` at `path`.
pub fn http_get(addr: &str, path: &str, timeout_ms: u64) -> Result<ClientResponse, String> {
    round_trip(addr, "GET", path, "", timeout_ms)
}

fn round_trip(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout_ms: u64,
) -> Result<ClientResponse, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let timeout = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
    stream
        .set_read_timeout(timeout)
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(timeout)
        .map_err(|e| format!("set_write_timeout: {e}"))?;

    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send request: {e}"))?;

    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(format!("request to {addr}{path} timed out"))
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("read response: {e}")),
        }
    }

    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| String::from("truncated response: no header terminator"))?;
    let head = String::from_utf8_lossy(&raw[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let body_bytes = &raw[header_end + 4..];
    if let Some((_, v)) = headers.iter().find(|(n, _)| n == "content-length") {
        let want: usize = v
            .parse()
            .map_err(|_| format!("bad Content-Length {v:?}"))?;
        if body_bytes.len() < want {
            return Err(format!(
                "truncated response body: got {} of {want} bytes",
                body_bytes.len()
            ));
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body: String::from_utf8_lossy(body_bytes).into_owned(),
    })
}
