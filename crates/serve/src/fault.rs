//! Tests-only fault injection for the serving layer, mirroring the
//! memory-system `FaultPlan` idiom: the plan is plain data, `Default`
//! injects nothing, and production code paths consult it at a handful
//! of well-named seams. Requests are identified by their **ordinal**
//! (1-based accept order), so a test can aim a fault at exactly one
//! request in a scripted sequence.

/// What to break, and for which request. `Default` breaks nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeFaultPlan {
    /// Truncate the response to this request ordinal halfway through
    /// the write, then drop the connection (mid-response crash).
    pub drop_response_for: Option<u64>,
    /// After simulating this ordinal, append only the first half of
    /// its cache line to the cache file and skip the in-memory insert
    /// — the classic torn write a kill -9 leaves behind.
    pub torn_cache_write_for: Option<u64>,
    /// Synthesize `SimError::JobPanicked` for this ordinal's job
    /// instead of simulating, for its first `poison_attempts` tries.
    pub poison_job_for: Option<u64>,
    /// How many attempts of the poisoned job fail before it heals.
    pub poison_attempts: u32,
    /// Sleep `stall_ms` before responding to this ordinal (drives the
    /// client-timeout and queue-overflow tests).
    pub stall_response_for: Option<u64>,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
}

impl ServeFaultPlan {
    /// True when `ordinal`'s response should be cut mid-write.
    pub fn wants_response_drop(&self, ordinal: u64) -> bool {
        self.drop_response_for == Some(ordinal)
    }

    /// True when `ordinal`'s cache line should be torn.
    pub fn wants_torn_cache_write(&self, ordinal: u64) -> bool {
        self.torn_cache_write_for == Some(ordinal)
    }

    /// True when `ordinal`'s job attempt `attempt` (0-based) should
    /// fail as a synthetic panic.
    pub fn wants_poisoned_job(&self, ordinal: u64, attempt: u32) -> bool {
        self.poison_job_for == Some(ordinal) && attempt < self.poison_attempts
    }

    /// Stall duration for `ordinal`, if any.
    pub fn wants_response_stall(&self, ordinal: u64) -> Option<u64> {
        (self.stall_response_for == Some(ordinal)).then_some(self.stall_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let p = ServeFaultPlan::default();
        for ordinal in 0..8 {
            assert!(!p.wants_response_drop(ordinal));
            assert!(!p.wants_torn_cache_write(ordinal));
            assert!(!p.wants_poisoned_job(ordinal, 0));
            assert_eq!(p.wants_response_stall(ordinal), None);
        }
    }

    #[test]
    fn poison_heals_after_configured_attempts() {
        let p = ServeFaultPlan {
            poison_job_for: Some(3),
            poison_attempts: 2,
            ..ServeFaultPlan::default()
        };
        assert!(p.wants_poisoned_job(3, 0));
        assert!(p.wants_poisoned_job(3, 1));
        assert!(!p.wants_poisoned_job(3, 2), "third attempt succeeds");
        assert!(!p.wants_poisoned_job(4, 0), "only the targeted ordinal");
    }
}
