//! `smtsim-serve` — the fault-tolerant sweep service (DESIGN.md §15).
//!
//! A std-only HTTP/1.1 server (`std::net::TcpListener` + a
//! `std::thread` worker pool) that accepts simulation config JSON on
//! `POST /run`, validates it through the existing
//! [`SimConfig::validate`](smtsim_core::SimConfig::validate) path
//! (400s with did-you-mean hints), and answers repeat queries
//! **byte-identically** from a persistent fingerprint-keyed result
//! cache ([`smtsim_core::cache::ResultCache`]). Identical in-flight
//! configs are deduplicated: the second requester blocks on the
//! first's result and never re-simulates.
//!
//! Robustness model (proven in `tests/robustness.rs`):
//!
//! * per-request deadline via socket read/write timeouts (slow-loris
//!   clients get 408 and the worker moves on), plus the simulator's
//!   own forward-progress watchdog per job;
//! * deterministic capped-exponential retry/backoff for jobs that die
//!   by `JobPanicked` or the watchdog — seeded from the config
//!   fingerprint via splitmix64, so there is no wall-clock jitter
//!   anywhere (the whole crate is D2-clean: it never reads a clock);
//! * bounded accept queue with load shedding (429 + `Retry-After`)
//!   and 503 while draining, instead of unbounded memory growth;
//! * graceful drain on `POST /shutdown`: in-flight jobs finish, the
//!   cache is fsynced, new work is refused;
//! * a tests-only [`fault::ServeFaultPlan`] (mirroring
//!   `smtsim-mem::FaultPlan`) injects mid-response drops, torn cache
//!   writes, poisoned jobs and stalled responses.
//!
//! Lint rule D13 holds the layering: `std::net` lives only in this
//! crate, and no function here is reachable from a simulator root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod cli;
pub mod client;
pub mod fault;
pub mod http;
pub mod metrics;
pub mod request;
pub mod server;

pub use backoff::Backoff;
pub use client::{http_get, http_post, ClientResponse};
pub use fault::ServeFaultPlan;
pub use metrics::ServeCounters;
pub use server::{Server, ServerConfig, ServerHandle};
