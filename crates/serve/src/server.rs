//! The server: bounded accept queue, worker pool, fingerprint cache,
//! in-flight dedup, deterministic retry, graceful drain.
//!
//! Threading model: one accept thread pushes connections into a
//! bounded queue (shedding 429 when full, 503 while draining); N
//! worker threads pop connections and run the whole request lifecycle
//! inline. No async, no clocks — all waits are `Condvar` timeouts or
//! socket timeouts, so the crate stays D2-clean.
//!
//! Panic-freedom is a design rule here, not an aspiration: every
//! mutex lock recovers from poisoning, every socket error maps to a
//! response or a dropped connection, and simulation panics are
//! already absorbed by `run_sweep`'s supervisor into
//! `SimError::JobPanicked`.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use smtsim_core::cache::{config_fingerprint, format_cache_line, ResultCache};
use smtsim_core::json::write_escaped;
use smtsim_core::sweep::JobOutcome;
use smtsim_core::{run_sweep, SimConfig, SimError, SweepJob, ToJson};

use crate::backoff::Backoff;
use crate::fault::ServeFaultPlan;
use crate::http::{read_http_request, respond_http, respond_http_truncated, HttpError};
use crate::metrics::ServeCounters;

/// Everything a server instance needs to know at launch.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Cache journal path; `None` serves from memory only.
    pub cache_path: Option<PathBuf>,
    /// Accepted-but-unclaimed connection bound; beyond it, shed 429.
    pub max_queue: usize,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Socket read/write timeout per request, ms (0 = unbounded).
    pub request_timeout_ms: u64,
    /// Total tries per job, counting the first (clamped to at least 1).
    pub max_attempts: u32,
    /// Ceiling for the per-fingerprint exponential backoff, ms.
    pub backoff_cap_ms: u64,
    /// Tests-only fault injection; `Default` injects nothing.
    pub fault: ServeFaultPlan,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: String::from("127.0.0.1:0"),
            cache_path: None,
            max_queue: 16,
            workers: 2,
            request_timeout_ms: 2_000,
            max_attempts: 3,
            backoff_cap_ms: 50,
            fault: ServeFaultPlan::default(),
        }
    }
}

/// One in-flight simulation that followers with the same fingerprint
/// block on instead of re-simulating.
#[derive(Default)]
struct Inflight {
    done: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

/// State shared by the accept thread and every worker.
struct Shared {
    cfg: ServerConfig,
    counters: ServeCounters,
    cache: Mutex<ResultCache>,
    inflight: Mutex<BTreeMap<String, Arc<Inflight>>>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    accept_stop: AtomicBool,
    served: std::sync::atomic::AtomicU64,
}

/// Lock a mutex, recovering the data if a holder panicked. The server
/// must keep answering even if some thread died mid-update.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Namespace for [`Server::launch`].
pub struct Server;

impl Server {
    /// Bind, spawn the worker pool and the accept thread, and return
    /// a handle. Fails only if the bind itself fails.
    pub fn launch(cfg: ServerConfig) -> Result<ServerHandle, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let cache = match &cfg.cache_path {
            Some(p) => ResultCache::load_from(p),
            None => ResultCache::in_memory(),
        };
        let worker_count = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            counters: ServeCounters::default(),
            cache: Mutex::new(cache),
            inflight: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            accept_stop: AtomicBool::new(false),
            served: std::sync::atomic::AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let s = Arc::clone(&shared);
            let spawned = thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&s))
                .map_err(|e| format!("spawn worker: {e}"))?;
            workers.push(spawned);
        }
        let s = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name(String::from("serve-accept"))
            .spawn(move || accept_loop(&s, &listener))
            .map_err(|e| format!("spawn accept thread: {e}"))?;
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// Owner of a running server's threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves a `:0` bind).
    pub fn bound_addr(&self) -> String {
        self.addr.to_string()
    }

    /// Live service counters (the same ones `/healthz` reports).
    pub fn service_counters(&self) -> &ServeCounters {
        &self.shared.counters
    }

    /// Start draining without an HTTP round-trip (tests and signal
    /// handlers; clients use `POST /shutdown`).
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Block until a drain was requested and completed: workers
    /// finish the queued work and exit, the accept thread is woken
    /// and joined, and the cache journal is fsynced.
    pub fn wait_for_drain(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.accept_stop.store(true, Ordering::SeqCst);
        // The accept thread is parked in accept(); a throwaway
        // connection to ourselves unblocks it so it can observe the
        // stop flag.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        lock_clean(&self.shared.cache).sync_to_disk();
    }
}

/// Accept loop: shed while draining, shed when the queue is full,
/// otherwise enqueue for the workers.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.accept_stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_write_timeout(Some(Duration::from_millis(1_000)));
        if shared.draining.load(Ordering::SeqCst) {
            ServeCounters::bump_tally(&shared.counters.shed_total);
            respond_http(
                &mut stream,
                503,
                "Service Unavailable",
                &[("Retry-After", "1")],
                "{\"error\":\"server is draining; no new work accepted\"}\n",
            );
            continue;
        }
        let mut q = lock_clean(&shared.queue);
        if q.len() >= shared.cfg.max_queue {
            drop(q);
            ServeCounters::bump_tally(&shared.counters.shed_total);
            respond_http(
                &mut stream,
                429,
                "Too Many Requests",
                &[("Retry-After", "1")],
                "{\"error\":\"request queue is full; retry shortly\"}\n",
            );
            continue;
        }
        q.push_back(stream);
        shared
            .counters
            .queue_depth
            .store(q.len() as u64, Ordering::Relaxed);
        drop(q);
        shared.queue_cv.notify_one();
    }
}

/// Worker loop: pop a connection, serve it, repeat; exit once the
/// server is draining and the queue is empty (queued-before-drain
/// requests still get answers).
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let popped = {
            let mut q = lock_clean(&shared.queue);
            loop {
                if let Some(s) = q.pop_front() {
                    shared
                        .counters
                        .queue_depth
                        .store(q.len() as u64, Ordering::Relaxed);
                    break Some(s);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
        };
        match popped {
            Some(mut stream) => handle_conn(shared, &mut stream),
            None => return,
        }
    }
}

/// Serve one connection end to end.
fn handle_conn(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let ordinal = shared.served.fetch_add(1, Ordering::SeqCst) + 1;
    let timeout =
        (shared.cfg.request_timeout_ms > 0).then(|| Duration::from_millis(shared.cfg.request_timeout_ms));
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);

    let req = match read_http_request(stream) {
        Ok(r) => r,
        Err(HttpError::TimedOut) => {
            respond_http(
                stream,
                408,
                "Request Timeout",
                &[],
                "{\"error\":\"request read timed out\"}\n",
            );
            return;
        }
        Err(HttpError::TooLarge) => {
            respond_http(
                stream,
                413,
                "Payload Too Large",
                &[],
                "{\"error\":\"request exceeds size limits\"}\n",
            );
            return;
        }
        Err(HttpError::Malformed(m)) => {
            respond_http(stream, 400, "Bad Request", &[], &error_body(&m));
            return;
        }
        // The peer hung up; there is nobody to answer.
        Err(HttpError::Closed) => return,
    };

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let draining = shared.draining.load(Ordering::SeqCst);
            respond_http(
                stream,
                200,
                "OK",
                &[],
                &shared.counters.healthz_json(draining),
            );
        }
        ("POST", "/shutdown") => {
            respond_http(stream, 200, "OK", &[], "{\"status\":\"draining\"}\n");
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
        }
        ("POST", "/run") => {
            let body = String::from_utf8_lossy(&req.body).into_owned();
            handle_run(shared, stream, ordinal, &body);
        }
        (_, path) => {
            let mut msg = String::from("no such endpoint ");
            msg.push_str(path);
            msg.push_str("; try POST /run, GET /healthz, POST /shutdown");
            respond_http(stream, 404, "Not Found", &[], &error_body(&msg));
        }
    }
}

/// `{"error":"…"}` body with proper escaping, newline-terminated like
/// every other body the server writes.
fn error_body(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    write_escaped(&mut out, message);
    out.push_str("}\n");
    out
}

/// The `POST /run` lifecycle: validate, fingerprint, consult cache,
/// dedup in-flight, simulate with retry, persist, answer.
fn handle_run(shared: &Arc<Shared>, stream: &mut TcpStream, ordinal: u64, body: &str) {
    if let Some(ms) = shared.cfg.fault.wants_response_stall(ordinal) {
        thread::sleep(Duration::from_millis(ms));
    }
    let (cfg, label) = match crate::request::parse_sim_request(body) {
        Ok(parsed) => parsed,
        Err(msg) => {
            respond_http(stream, 400, "Bad Request", &[], &error_body(&msg));
            return;
        }
    };
    let fingerprint = config_fingerprint(&cfg);

    if let Some(entry) = lock_clean(&shared.cache).cached(&fingerprint) {
        let outcome = entry.outcome.clone();
        ServeCounters::bump_tally(&shared.counters.cache_hits);
        respond_outcome(shared, stream, ordinal, &outcome, "hit");
        return;
    }

    // Leader simulates; followers with the same fingerprint wait on
    // the leader's slot and never re-simulate.
    let (slot, leader) = {
        let mut inflight = lock_clean(&shared.inflight);
        match inflight.get(&fingerprint) {
            Some(existing) => (Arc::clone(existing), false),
            None => {
                let fresh = Arc::new(Inflight::default());
                inflight.insert(fingerprint.clone(), Arc::clone(&fresh));
                (fresh, true)
            }
        }
    };
    ServeCounters::bump_tally(&shared.counters.cache_misses);

    if !leader {
        let outcome = {
            let mut done = lock_clean(&slot.done);
            loop {
                if let Some(outcome) = done.as_ref() {
                    break outcome.clone();
                }
                done = slot
                    .cv
                    .wait_timeout(done, Duration::from_millis(50))
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
        };
        respond_outcome(shared, stream, ordinal, &outcome, "coalesced");
        return;
    }

    let outcome = execute_with_retry(shared, &cfg, &label, &fingerprint, ordinal);
    persist_outcome(shared, ordinal, &label, &fingerprint, &outcome);
    {
        let mut done = lock_clean(&slot.done);
        *done = Some(outcome.clone());
        slot.cv.notify_all();
    }
    lock_clean(&shared.inflight).remove(&fingerprint);
    respond_outcome(shared, stream, ordinal, &outcome, "miss");
}

/// Run the job up to `max_attempts` times, sleeping the deterministic
/// per-fingerprint backoff between retryable failures (`JobPanicked`
/// from the sweep supervisor, or the forward-progress watchdog).
fn execute_with_retry(
    shared: &Arc<Shared>,
    cfg: &SimConfig,
    label: &str,
    fingerprint: &str,
    ordinal: u64,
) -> JobOutcome {
    let schedule = Backoff::for_fingerprint(fingerprint, shared.cfg.backoff_cap_ms);
    let attempts = shared.cfg.max_attempts.max(1);
    let mut last: JobOutcome = Err(SimError::InvalidConfig(String::from("no attempt ran")));
    for attempt in 0..attempts {
        last = if shared.cfg.fault.wants_poisoned_job(ordinal, attempt) {
            Err(SimError::JobPanicked {
                label: label.to_string(),
                payload: String::from("injected poison (ServeFaultPlan)"),
            })
        } else {
            ServeCounters::bump_tally(&shared.counters.jobs_simulated);
            let job = SweepJob::new(label, cfg.clone());
            match run_sweep(std::slice::from_ref(&job), 1).pop() {
                Some((_, outcome)) => outcome,
                None => Err(SimError::InvalidConfig(String::from(
                    "sweep returned no outcome",
                ))),
            }
        };
        let retryable = matches!(
            &last,
            Err(SimError::JobPanicked { .. }) | Err(SimError::NoForwardProgress { .. })
        );
        if !retryable || attempt + 1 == attempts {
            break;
        }
        ServeCounters::bump_tally(&shared.counters.retries_total);
        thread::sleep(Duration::from_millis(schedule.delay_ms(attempt)));
    }
    last
}

/// Record the outcome in the cache — except transient `JobPanicked`
/// failures (a later request should retry, not replay the failure).
/// The torn-write fault swaps the append for half a line and skips
/// the in-memory insert, leaving exactly what a kill -9 mid-append
/// leaves.
fn persist_outcome(
    shared: &Arc<Shared>,
    ordinal: u64,
    label: &str,
    fingerprint: &str,
    outcome: &JobOutcome,
) {
    if matches!(outcome, Err(SimError::JobPanicked { .. })) {
        return;
    }
    let mut cache = lock_clean(&shared.cache);
    if shared.cfg.fault.wants_torn_cache_write(ordinal) {
        if let Some(path) = cache.backing_path() {
            let line = format_cache_line(cache.next_seq(), label, fingerprint, outcome);
            let torn = &line.as_bytes()[..line.len() / 2];
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(torn));
            if let Err(e) = appended {
                eprintln!("warning: torn-write injection failed: {e}");
            }
        }
        return;
    }
    cache.store_outcome(fingerprint, label, outcome);
}

/// Answer with the outcome: 200 + `SimResult` JSON (byte-identical to
/// `smtsim run --json`) or 500 + `SimError` JSON. `X-Cache` says how
/// the answer was produced (`hit`/`miss`/`coalesced`).
fn respond_outcome(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    ordinal: u64,
    outcome: &JobOutcome,
    cache_state: &str,
) {
    let (status, reason, body) = match outcome {
        Ok(result) => (200, "OK", format!("{}\n", result.to_json())),
        Err(err) => (500, "Internal Server Error", format!("{}\n", err.to_json())),
    };
    let headers = [("X-Cache", cache_state)];
    if shared.cfg.fault.wants_response_drop(ordinal) {
        respond_http_truncated(stream, status, reason, &headers, &body);
    } else {
        respond_http(stream, status, reason, &headers, &body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_escape_quotes() {
        let b = error_body("unknown workload '2\"W'");
        assert_eq!(b, "{\"error\":\"unknown workload '2\\\"W'\"}\n");
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert!(cfg.max_queue > 0);
        assert!(cfg.workers > 0);
        assert!(cfg.max_attempts > 0);
    }
}
