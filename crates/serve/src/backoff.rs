//! Deterministic capped-exponential retry backoff.
//!
//! The delay sequence is a pure function of the config fingerprint:
//! the base step comes from one splitmix64 draw seeded by the
//! fingerprint's FNV-1a hash, then doubles per attempt up to the cap.
//! No wall-clock jitter anywhere — two servers replaying the same
//! request stream sleep the same milliseconds (D2-clean: this crate
//! never reads a clock), while different configs still decorrelate
//! their retry storms via the seeded base.

use smtsim_core::cache::fnv64;
use smtsim_trace::rng::SplitMix64;

/// Smallest possible base step (ms).
const BASE_MIN_MS: u64 = 4;
/// The seeded base is drawn from `[BASE_MIN_MS, BASE_MIN_MS + BASE_SPREAD_MS)`.
const BASE_SPREAD_MS: u64 = 12;

/// A capped-exponential delay schedule, fixed at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
}

impl Backoff {
    /// Derive the schedule for one config fingerprint. Identical
    /// fingerprints always get identical schedules.
    pub fn for_fingerprint(fingerprint: &str, cap_ms: u64) -> Backoff {
        let mut rng = SplitMix64::new(fnv64(fingerprint.as_bytes()));
        let base_ms = BASE_MIN_MS + rng.next_u64() % BASE_SPREAD_MS;
        Backoff { base_ms, cap_ms }
    }

    /// Delay before re-running attempt `attempt + 1` (so `attempt` is
    /// 0 after the first failure): `min(cap, base << attempt)`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_ms
            .checked_shl(attempt.min(63))
            .unwrap_or(u64::MAX);
        shifted.min(self.cap_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_fingerprint_same_schedule() {
        let a = Backoff::for_fingerprint("00aa00aa00aa00aa", 500);
        let b = Backoff::for_fingerprint("00aa00aa00aa00aa", 500);
        assert_eq!(a, b);
        for attempt in 0..10 {
            assert_eq!(a.delay_ms(attempt), b.delay_ms(attempt));
        }
    }

    #[test]
    fn schedule_doubles_and_caps() {
        let b = Backoff::for_fingerprint("f", 100);
        let d0 = b.delay_ms(0);
        assert!((BASE_MIN_MS..BASE_MIN_MS + BASE_SPREAD_MS).contains(&d0));
        assert_eq!(b.delay_ms(1), (d0 * 2).min(100));
        assert_eq!(b.delay_ms(2), (d0 * 4).min(100));
        assert_eq!(b.delay_ms(30), 100, "deep attempts hit the cap");
        assert_eq!(b.delay_ms(63), 100, "shift overflow saturates at the cap");
    }

    #[test]
    fn different_fingerprints_decorrelate() {
        // Not guaranteed for any single pair, but across a handful of
        // fingerprints at least two distinct bases must appear.
        let bases: Vec<u64> = ["a", "b", "c", "d", "e", "f", "g", "h"]
            .iter()
            .map(|fp| Backoff::for_fingerprint(fp, 1_000).delay_ms(0))
            .collect();
        let mut uniq = bases.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 1, "all bases identical: {bases:?}");
    }
}
