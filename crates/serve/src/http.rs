//! Minimal HTTP/1.1 framing shared by the server and the client.
//!
//! Deliberately tiny: request line + headers + `Content-Length` body,
//! `Connection: close` on every response. No chunked encoding, no
//! keep-alive — one request per connection keeps the worker-pool
//! accounting and the fault-injection story simple.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Upper bound on the header block (request line + headers).
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Uppercase method (`GET`, `POST`).
    pub method: String,
    /// Request path (`/run`).
    pub path: String,
    /// Headers, lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket read timed out (slow-loris or stalled client).
    TimedOut,
    /// The peer closed before a full request arrived.
    Closed,
    /// Syntactically not HTTP, or an unparseable length.
    Malformed(String),
    /// Header block or body over the fixed limits.
    TooLarge,
}

/// Read one full request from the stream, honouring whatever read
/// timeout the caller set on the socket. Never panics: every
/// malformed, oversized, interrupted or timed-out read maps to an
/// [`HttpError`].
pub fn read_http_request(stream: &mut TcpStream) -> Result<HttpRequest, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(HttpError::TimedOut)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Closed),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()))
            }
            None => return Err(HttpError::Malformed(format!("bad header line {line:?}"))),
        }
    }
    let content_length: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }

    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(HttpError::TimedOut)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Closed),
        }
    }
    body.truncate(content_length);
    Ok(HttpRequest {
        method,
        path,
        headers,
        body,
    })
}

/// Byte offset of the `\r\n\r\n` header terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Render a full response into one byte buffer (so fault injection
/// can truncate it at a known point).
pub fn render_http_response(
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> Vec<u8> {
    let mut out = format!("HTTP/1.1 {status} {reason}\r\n");
    out.push_str("Content-Type: application/json\r\n");
    out.push_str("Connection: close\r\n");
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Write a complete response. A write failure is the client's problem
/// (it hung up); the server must not care, so errors are swallowed.
pub fn respond_http(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    let bytes = render_http_response(status, reason, extra_headers, body);
    let _ = stream.write_all(&bytes).and_then(|()| stream.flush());
}

/// Fault injection: write only the first half of the response, then
/// drop the connection (a mid-response crash as the client sees it).
pub fn respond_http_truncated(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    let bytes = render_http_response(status, reason, extra_headers, body);
    let cut = bytes.len() / 2;
    let _ = stream.write_all(&bytes[..cut]).and_then(|()| stream.flush());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_is_found_only_when_complete() {
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
    }

    #[test]
    fn response_rendering_is_framed() {
        let b = render_http_response(200, "OK", &[("X-Cache", "hit")], "{}\n");
        let text = String::from_utf8(b).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.contains("Content-Length: 3\r\n\r\n{}\n"));
    }
}
