//! End-to-end robustness proof for `smtsim-serve`: every injected
//! fault (slow-loris reads, mid-response drops, torn cache writes,
//! poisoned jobs, queue overload) resolves to its designed degraded
//! behaviour — no panic, no wrong answer, no cross-request
//! corruption. Cached and coalesced answers are asserted
//! **byte-identical** to a fresh in-process run of the same config.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

use smtsim_core::{Simulator, ToJson};
use smtsim_serve::request::parse_sim_request;
use smtsim_serve::server::{Server, ServerConfig, ServerHandle};
use smtsim_serve::{http_get, http_post, ServeFaultPlan};

/// A small, fast request body. Distinct seeds give distinct
/// fingerprints, so tests never share cache state by accident.
fn tiny_body(seed: u64) -> String {
    format!("{{\"workload\":\"2W1\",\"policy\":\"icount\",\"cycles\":2000,\"seed\":{seed}}}")
}

/// What `smtsim run … --json` (and therefore the server) must answer
/// for `body`: the result JSON plus the trailing newline.
fn fresh_answer(body: &str) -> String {
    let (cfg, _label) = parse_sim_request(body).expect("test body is valid");
    let result = Simulator::build(&cfg)
        .expect("builds")
        .run()
        .expect("tiny run succeeds");
    format!("{}\n", result.to_json())
}

fn launch(cfg: ServerConfig) -> ServerHandle {
    Server::launch(cfg).expect("bind 127.0.0.1:0")
}

fn temp_cache(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "smtsim-serve-robust-{}-{tag}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Ask the server to drain via HTTP, then join it.
fn shutdown_and_join(handle: ServerHandle) {
    let addr = handle.bound_addr();
    let r = http_post(&addr, "/shutdown", "", 2_000).expect("shutdown responds");
    assert_eq!(r.status, 200);
    assert_eq!(r.body, "{\"status\":\"draining\"}\n");
    handle.wait_for_drain();
}

#[test]
fn cached_answers_are_byte_identical_to_fresh_runs() {
    let handle = launch(ServerConfig::default());
    let addr = handle.bound_addr();
    let body = tiny_body(101);
    let want = fresh_answer(&body);

    let first = http_post(&addr, "/run", &body, 10_000).expect("first run");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert_eq!(first.body, want, "served answer must match `smtsim run --json`");

    let second = http_post(&addr, "/run", &body, 10_000).expect("cached run");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(second.body, want, "cache replay must be byte-identical");

    let health = http_get(&addr, "/healthz", 2_000).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"serve.cache_hits\":1"), "{}", health.body);
    assert!(health.body.contains("\"status\":\"ok\""));

    shutdown_and_join(handle);
}

#[test]
fn bad_requests_get_400_with_hints_and_unknown_paths_404() {
    let handle = launch(ServerConfig::default());
    let addr = handle.bound_addr();

    let typo = http_post(
        &addr,
        "/run",
        "{\"workload\":\"2W1\",\"policy\":\"mflsh\"}",
        5_000,
    )
    .expect("responds");
    assert_eq!(typo.status, 400);
    assert!(typo.body.contains("did you mean 'mflush'"), "{}", typo.body);

    let garbage = http_post(&addr, "/run", "][ not json", 5_000).expect("responds");
    assert_eq!(garbage.status, 400);
    assert!(garbage.body.contains("not JSON"), "{}", garbage.body);

    let lost = http_get(&addr, "/nope", 5_000).expect("responds");
    assert_eq!(lost.status, 404);
    assert!(lost.body.contains("POST /run"), "{}", lost.body);

    shutdown_and_join(handle);
}

#[test]
fn slow_loris_gets_408_and_the_worker_moves_on() {
    let handle = launch(ServerConfig {
        request_timeout_ms: 150,
        ..ServerConfig::default()
    });
    let addr = handle.bound_addr();

    // Half a request line, then silence: the read deadline must fire.
    let mut loris = TcpStream::connect(&addr).expect("connect");
    loris.write_all(b"POST /ru").expect("partial write");
    let mut answer = String::new();
    loris
        .read_to_string(&mut answer)
        .expect("server answers then closes");
    assert!(answer.starts_with("HTTP/1.1 408 "), "{answer}");

    // The worker is free again: a healthy request still succeeds.
    let body = tiny_body(102);
    let ok = http_post(&addr, "/run", &body, 10_000).expect("healthy after loris");
    assert_eq!(ok.status, 200);
    assert_eq!(ok.body, fresh_answer(&body));

    shutdown_and_join(handle);
}

#[test]
fn overload_sheds_429_with_retry_after() {
    // One worker, stalled on request #1; queue holds exactly one more.
    let handle = launch(ServerConfig {
        workers: 1,
        max_queue: 1,
        request_timeout_ms: 10_000,
        fault: ServeFaultPlan {
            stall_response_for: Some(1),
            stall_ms: 900,
            ..ServeFaultPlan::default()
        },
        ..ServerConfig::default()
    });
    let addr = handle.bound_addr();

    let a_addr = addr.clone();
    let a_body = tiny_body(103);
    let a_want = fresh_answer(&a_body);
    let stalled = std::thread::spawn(move || http_post(&a_addr, "/run", &a_body, 20_000));
    std::thread::sleep(Duration::from_millis(200)); // worker is now stalled

    let b_addr = addr.clone();
    let b_body = tiny_body(104);
    let queued = std::thread::spawn(move || http_post(&b_addr, "/run", &b_body, 20_000));
    std::thread::sleep(Duration::from_millis(200)); // B sits in the queue

    // Queue is full: the accept thread must shed, fast.
    let shed = http_post(&addr, "/run", &tiny_body(105), 5_000).expect("shed response");
    assert_eq!(shed.status, 429);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body.contains("queue is full"), "{}", shed.body);
    assert!(
        handle.service_counters().shed_total.load(Ordering::Relaxed) >= 1,
        "shed must be counted"
    );

    // Degradation is graceful: the stalled and queued requests still
    // finish with correct answers.
    let a = stalled.join().expect("no panic").expect("A succeeds");
    assert_eq!(a.status, 200);
    assert_eq!(a.body, a_want);
    let b = queued.join().expect("no panic").expect("B succeeds");
    assert_eq!(b.status, 200);

    shutdown_and_join(handle);
}

#[test]
fn mid_response_drop_is_a_client_error_not_corruption() {
    let handle = launch(ServerConfig {
        fault: ServeFaultPlan {
            drop_response_for: Some(1),
            ..ServeFaultPlan::default()
        },
        ..ServerConfig::default()
    });
    let addr = handle.bound_addr();
    let body = tiny_body(106);
    let want = fresh_answer(&body);

    let torn = http_post(&addr, "/run", &body, 10_000);
    let err = torn.expect_err("a half-written response must not parse as success");
    assert!(err.contains("truncated"), "{err}");

    // No cross-request corruption: the next request gets the full,
    // byte-identical answer (served from cache — the drop happened
    // after the result was computed and stored).
    let retry = http_post(&addr, "/run", &body, 10_000).expect("retry");
    assert_eq!(retry.status, 200);
    assert_eq!(retry.body, want);
    assert_eq!(retry.header("x-cache"), Some("hit"));

    shutdown_and_join(handle);
}

#[test]
fn poisoned_jobs_retry_deterministically_and_heal() {
    let handle = launch(ServerConfig {
        max_attempts: 3,
        backoff_cap_ms: 20,
        fault: ServeFaultPlan {
            poison_job_for: Some(1),
            poison_attempts: 2,
            ..ServeFaultPlan::default()
        },
        ..ServerConfig::default()
    });
    let addr = handle.bound_addr();
    let body = tiny_body(107);
    let want = fresh_answer(&body);

    let healed = http_post(&addr, "/run", &body, 30_000).expect("heals on attempt 3");
    assert_eq!(healed.status, 200);
    assert_eq!(healed.body, want, "post-retry answer must be byte-identical");
    let c = handle.service_counters();
    assert_eq!(c.retries_total.load(Ordering::Relaxed), 2);
    assert_eq!(c.jobs_simulated.load(Ordering::Relaxed), 1);

    shutdown_and_join(handle);
}

#[test]
fn exhausted_retries_answer_500_and_are_not_cached() {
    let handle = launch(ServerConfig {
        max_attempts: 2,
        backoff_cap_ms: 10,
        fault: ServeFaultPlan {
            poison_job_for: Some(1),
            poison_attempts: 10, // never heals within the budget
            ..ServeFaultPlan::default()
        },
        ..ServerConfig::default()
    });
    let addr = handle.bound_addr();
    let body = tiny_body(108);

    let failed = http_post(&addr, "/run", &body, 30_000).expect("responds");
    assert_eq!(failed.status, 500);
    assert!(failed.body.contains("job_panicked"), "{}", failed.body);
    assert_eq!(
        handle
            .service_counters()
            .retries_total
            .load(Ordering::Relaxed),
        1
    );

    // Transient failures are not cached: the same config (ordinal 2,
    // no longer poisoned) now simulates and succeeds.
    let recovered = http_post(&addr, "/run", &body, 30_000).expect("responds");
    assert_eq!(recovered.status, 200);
    assert_eq!(recovered.header("x-cache"), Some("miss"));
    assert_eq!(recovered.body, fresh_answer(&body));

    shutdown_and_join(handle);
}

#[test]
fn identical_inflight_requests_coalesce_to_one_simulation() {
    // Stall request #1 before it checks the cache, so #2 (same
    // config, other worker) leads and #1 follows — either way, the
    // pair must cost exactly one simulation.
    let handle = launch(ServerConfig {
        workers: 2,
        fault: ServeFaultPlan {
            stall_response_for: Some(1),
            stall_ms: 250,
            ..ServeFaultPlan::default()
        },
        ..ServerConfig::default()
    });
    let addr = handle.bound_addr();
    let body = tiny_body(109);
    let want = fresh_answer(&body);

    let (a1, b1) = (addr.clone(), body.clone());
    let t1 = std::thread::spawn(move || http_post(&a1, "/run", &b1, 30_000));
    let (a2, b2) = (addr.clone(), body.clone());
    let t2 = std::thread::spawn(move || http_post(&a2, "/run", &b2, 30_000));

    let r1 = t1.join().expect("no panic").expect("responds");
    let r2 = t2.join().expect("no panic").expect("responds");
    assert_eq!((r1.status, r2.status), (200, 200));
    assert_eq!(r1.body, want);
    assert_eq!(r2.body, want, "coalesced answer must be byte-identical");
    assert_eq!(
        handle
            .service_counters()
            .jobs_simulated
            .load(Ordering::Relaxed),
        1,
        "identical in-flight configs must never re-simulate"
    );

    shutdown_and_join(handle);
}

#[test]
fn drain_refuses_new_work_finishes_old_and_persists_the_cache() {
    let cache = temp_cache("drain");
    let handle = launch(ServerConfig {
        cache_path: Some(cache.clone()),
        ..ServerConfig::default()
    });
    let addr = handle.bound_addr();
    let body = tiny_body(110);
    let want = fresh_answer(&body);

    let first = http_post(&addr, "/run", &body, 10_000).expect("first run");
    assert_eq!(first.status, 200);

    let bye = http_post(&addr, "/shutdown", "", 5_000).expect("shutdown");
    assert_eq!(bye.status, 200);

    // New work is refused once the drain is observed (the very first
    // post-shutdown accept can race the flag; retry a few times).
    let mut refused = None;
    for _ in 0..50 {
        match http_post(&addr, "/run", &tiny_body(111), 5_000) {
            Ok(r) if r.status == 503 => {
                refused = Some(r);
                break;
            }
            Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let refused = refused.expect("draining server must eventually shed 503");
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert!(refused.body.contains("draining"), "{}", refused.body);

    handle.wait_for_drain();

    // The journal survived the drain and replays byte-identically.
    let reloaded = smtsim_core::ResultCache::load_from(&cache);
    assert!(reloaded.entry_count() >= 1);
    assert_eq!(reloaded.skipped_lines(), 0);
    let (cfg, _) = parse_sim_request(&body).expect("valid");
    let fp = smtsim_core::config_fingerprint(&cfg);
    let entry = reloaded.cached(&fp).expect("served result was persisted");
    let replay = entry.outcome.as_ref().expect("it was a success");
    assert_eq!(format!("{}\n", replay.to_json()), want);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn torn_cache_write_recovers_on_restart_byte_identically() {
    let cache = temp_cache("torn");
    let body = tiny_body(112);

    // First server: the cache append for request #1 is torn in half
    // (as a kill -9 mid-append would leave it). The response itself
    // is unaffected.
    let first_answer = {
        let handle = launch(ServerConfig {
            cache_path: Some(cache.clone()),
            fault: ServeFaultPlan {
                torn_cache_write_for: Some(1),
                ..ServeFaultPlan::default()
            },
            ..ServerConfig::default()
        });
        let addr = handle.bound_addr();
        let r = http_post(&addr, "/run", &body, 10_000).expect("first server run");
        assert_eq!(r.status, 200);
        shutdown_and_join(handle);
        r.body
    };
    assert_eq!(first_answer, fresh_answer(&body));

    // Second server, same journal: the torn line is skipped (and
    // logged), the config re-simulates, and the answer is
    // byte-identical to the first server's.
    let handle = launch(ServerConfig {
        cache_path: Some(cache.clone()),
        ..ServerConfig::default()
    });
    let addr = handle.bound_addr();
    let r = http_post(&addr, "/run", &body, 10_000).expect("second server run");
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-cache"), Some("miss"), "torn line must not serve");
    assert_eq!(r.body, first_answer, "recovery must be byte-identical");

    // And now it IS persisted: a third query hits the cache.
    let again = http_post(&addr, "/run", &body, 10_000).expect("third query");
    assert_eq!(again.header("x-cache"), Some("hit"));
    assert_eq!(again.body, first_answer);
    shutdown_and_join(handle);

    let reloaded = smtsim_core::ResultCache::load_from(&cache);
    assert_eq!(reloaded.skipped_lines(), 1, "the torn line is logged");
    let _ = std::fs::remove_file(&cache);
}
