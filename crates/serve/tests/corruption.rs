//! Corruption-robustness properties of the result-cache file format,
//! on the same in-repo harness (`smtsim_trace::check`) the trace
//! format uses.
//!
//! Invariant: loading a *damaged* cache file — truncated anywhere, or
//! with any single bit flipped — never panics and never yields a
//! wrong cached answer. Damaged lines are skipped (and counted, so
//! the operator can see them); every entry that survives serialises
//! **byte-identically** to the outcome originally stored.

use std::path::PathBuf;
use std::sync::OnceLock;

use smtsim_core::cache::{format_cache_line, ResultCache};
use smtsim_core::sweep::JobOutcome;
use smtsim_core::{SimConfig, SimError, Simulator, ToJson, Workload};
use smtsim_policy::PolicyKind;
use smtsim_trace::check::{Cases, Gen};

/// One real simulation result, computed once (the Ok path must be
/// fuzzed with genuine `SimResult` JSON, not a toy stand-in).
fn real_outcome() -> &'static JobOutcome {
    static CELL: OnceLock<JobOutcome> = OnceLock::new();
    CELL.get_or_init(|| {
        let w = Workload::by_name("2W1").expect("seed workload");
        let cfg = SimConfig::for_workload(w, PolicyKind::Icount).with_cycles(2_000);
        Simulator::build(&cfg).expect("builds").run()
    })
}

fn outcome_json(outcome: &JobOutcome) -> String {
    match outcome {
        Ok(r) => r.to_json(),
        Err(e) => e.to_json(),
    }
}

/// Pick an outcome: the real result, or a deterministic error.
fn pick_outcome(g: &mut Gen) -> JobOutcome {
    match g.u64_in(0..4) {
        0 | 1 => real_outcome().clone(),
        2 => Err(SimError::InvalidConfig(String::from(
            "synthetic: bad topology",
        ))),
        _ => Err(SimError::TraceCorrupt(String::from(
            "synthetic: torn trace record",
        ))),
    }
}

/// Write a fresh cache file of 2..6 entries; return (fingerprint,
/// canonical outcome JSON) pairs and the file's bytes.
fn build_cache_file(g: &mut Gen, path: &PathBuf) -> (Vec<(String, String)>, Vec<u8>) {
    let n = g.usize_in(2..6);
    let mut originals = Vec::new();
    let mut text = String::new();
    for i in 0..n {
        // Index-prefixed so fingerprints never collide within a file.
        let fp = format!("{i:02x}{:014x}", g.any_u64() >> 8);
        let outcome = pick_outcome(g);
        text.push_str(&format_cache_line(i as u64, &format!("job{i}"), &fp, &outcome));
        originals.push((fp, outcome_json(&outcome)));
    }
    std::fs::write(path, &text).expect("write cache file");
    (originals, text.into_bytes())
}

fn temp_path(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smtsim-serve-corrupt-{}-{tag}-{seed:x}.jsonl",
        std::process::id()
    ))
}

/// Every survivor of a damaged load must byte-match its original.
fn assert_survivors_exact(cache: &ResultCache, originals: &[(String, String)]) {
    for (fp, json) in originals {
        if let Some(entry) = cache.cached(fp) {
            assert_eq!(
                outcome_json(&entry.outcome),
                *json,
                "cached entry {fp} must replay byte-identically or not at all"
            );
        }
    }
}

/// Truncating the file anywhere loses at most the torn tail: every
/// line fully inside the prefix still loads, the torn line is counted
/// as skipped, and nothing panics.
#[test]
fn truncation_loses_only_the_torn_tail() {
    Cases::new(30).run("cache_truncation_loses_only_the_torn_tail", |g| {
        let path = temp_path("trunc", g.seed());
        let (originals, bytes) = build_cache_file(g, &path);
        let cut = g.usize_in(0..bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let cache = ResultCache::load_from(&path);
        assert_survivors_exact(&cache, &originals);
        let complete = bytes[..cut].iter().filter(|&&b| b == b'\n').count() as u64;
        // A tail with no terminator is still one line to the reader;
        // it parses only when the cut removed *just* the newline.
        let torn_tail = u64::from(cut > 0 && bytes[cut - 1] != b'\n');
        assert!(
            cache.entry_count() >= complete,
            "every line fully before the cut must survive: {} < {complete}",
            cache.entry_count()
        );
        assert_eq!(
            cache.entry_count() + cache.skipped_lines(),
            complete + torn_tail,
            "each damaged line is either replayed or logged as skipped"
        );
        let _ = std::fs::remove_file(&path);
    });
}

/// Any single-bit flip damages at most the line(s) it touches: no
/// panic, no wrong answer, at most two entries lost (a flipped
/// newline welds two lines into one corrupt line).
#[test]
fn single_bit_flips_never_yield_wrong_answers() {
    Cases::new(30).run("cache_bit_flips_never_yield_wrong_answers", |g| {
        let path = temp_path("flip", g.seed());
        let (originals, mut bytes) = build_cache_file(g, &path);
        let bit = g.usize_in(0..bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).expect("flip");

        let cache = ResultCache::load_from(&path);
        assert_survivors_exact(&cache, &originals);
        assert!(
            cache.entry_count() + 2 >= originals.len() as u64,
            "one flip may cost at most two entries (welded neighbours): \
             {} of {} survived",
            cache.entry_count(),
            originals.len()
        );
        assert!(
            cache.entry_count() == originals.len() as u64 || cache.skipped_lines() > 0,
            "a lost entry must show up in the skip counter"
        );
        let _ = std::fs::remove_file(&path);
    });
}

/// The torn-tail repair: after loading a file whose last line is torn,
/// a fresh append must start on its own line and survive reload.
#[test]
fn append_after_torn_tail_is_not_welded() {
    Cases::new(20).run("cache_append_after_torn_tail", |g| {
        let path = temp_path("weld", g.seed());
        let (originals, bytes) = build_cache_file(g, &path);
        // Cut strictly inside the last line's content (keep at least
        // one byte, lose at least one), so the tail cannot parse.
        let body_end = bytes.len() - 1; // final byte is '\n'
        let line_start = bytes[..body_end]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let cut = g.usize_in(line_start + 1..body_end);
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let mut cache = ResultCache::load_from(&path);
        let fresh = pick_outcome(g);
        cache.store_outcome("ffffffffffffffff", "replacement", &fresh);
        drop(cache);

        let reloaded = ResultCache::load_from(&path);
        assert_survivors_exact(&reloaded, &originals);
        let replay = reloaded
            .cached("ffffffffffffffff")
            .expect("appended-after-tear entry must survive reload");
        assert_eq!(outcome_json(&replay.outcome), outcome_json(&fresh));
        assert_eq!(
            reloaded.entry_count(),
            originals.len() as u64, // n-1 survivors + the fresh entry
            "torn line skipped, everything else intact"
        );
        let _ = std::fs::remove_file(&path);
    });
}
