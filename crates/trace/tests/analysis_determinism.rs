//! Cross-process determinism of the trace analysis.
//!
//! `analyze` counts distinct lines/pages with set collections; with a
//! `HashSet` those sets would still *count* correctly, but any future
//! code that iterates them (or any switch to capacity-dependent
//! behaviour) would inherit the per-process `RandomState` hasher seed.
//! Rule D1 bans hash collections statically; this test pins the
//! behaviour dynamically: the same analysis, run in **two separate
//! child processes** (hence two different hasher seeds, ASLR layouts,
//! allocation orders), must print byte-identical reports.

use smtsim_trace::analysis::{analyze, report};
use smtsim_trace::gen::TraceGenerator;
use smtsim_trace::spec;
use std::process::Command;

const CHILD_ENV: &str = "SMTSIM_ANALYSIS_DETERMINISM_CHILD";
const MARK: &str = "ANALYSIS|";

#[test]
fn analysis_report_is_identical_across_processes() {
    if std::env::var_os(CHILD_ENV).is_some() {
        // Child mode: run the analysis and print it between markers.
        for (bench, seed, n) in [("mcf", 4242u64, 30_000u64), ("swim", 7, 20_000)] {
            let profile = spec::benchmark_by_name(bench).expect("known benchmark");
            let mut g = TraceGenerator::new(profile, seed);
            let stats = analyze(&mut g, n);
            for line in report(&stats).lines() {
                println!("{MARK}{bench}/{seed}: {line}");
            }
            println!(
                "{MARK}{bench}/{seed}: footprint_raw lines={} pages={} code={}",
                stats.data_lines, stats.data_pages, stats.code_lines
            );
        }
        return;
    }

    let exe = std::env::current_exe().expect("test binary path");
    let run = || {
        let out = Command::new(&exe)
            .args([
                "analysis_report_is_identical_across_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .output()
            .expect("spawn child test process");
        assert!(out.status.success(), "child failed: {out:?}");
        let stdout = String::from_utf8(out.stdout).expect("utf8 child output");
        stdout
            .lines()
            .filter(|l| l.starts_with(MARK))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let a = run();
    let b = run();
    assert!(
        a.contains("instructions"),
        "child produced no analysis report:\n{a}"
    );
    assert_eq!(a, b, "trace-analysis output differs across processes");
}
