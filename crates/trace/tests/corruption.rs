//! Corruption-robustness properties of the trace serialisation format,
//! on the in-repo harness (`smtsim_trace::check`).
//!
//! Invariant under test: feeding the reader a *damaged* byte stream —
//! truncated anywhere, or with any single bit flipped — returns
//! `Err(TraceError::Corrupt)` or a clean short read; it never panics
//! and never silently yields an instruction the writer didn't encode.

use smtsim_trace::check::{Cases, Gen};
use smtsim_trace::{spec, DynInstr, TraceGenerator, TraceReader, TraceWriter};

const HEADER_BYTES: usize = 16;
const RECORD_BYTES: usize = 40;

/// Capture a small random trace to an in-memory buffer.
fn capture(g: &mut Gen) -> (Vec<u8>, Vec<DynInstr>) {
    let profile = g.choose(&spec::ALL_BENCHMARKS);
    let seed = g.u64_in(0..1_000_000);
    let n = g.u64_in(1..30);
    let mut gen = TraceGenerator::new(profile, seed);
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    w.capture(&mut gen, n).unwrap();
    let bytes = w.finish().unwrap();
    let instrs = TraceReader::new(&bytes[..]).unwrap().read_all().unwrap();
    assert_eq!(instrs.len() as u64, n);
    (bytes, instrs)
}

/// Decode as far as the stream allows; `Ok` carries the prefix read.
fn read_back(bytes: &[u8]) -> Result<Vec<DynInstr>, smtsim_trace::TraceError> {
    TraceReader::new(bytes)?.read_all()
}

/// Truncating a capture anywhere is either detected (`Err`) or a clean
/// prefix read (only possible at exact record boundaries) — never a
/// panic, never an invented instruction.
#[test]
fn truncation_never_panics_or_invents_records() {
    Cases::new(40).run("truncation_never_panics_or_invents_records", |g| {
        let (bytes, instrs) = capture(g);
        let cut = g.usize_in(0..bytes.len());
        match read_back(&bytes[..cut]) {
            Err(_) => {} // detected: truncated header or torn record
            Ok(prefix) => {
                // Only an exact record boundary may read "cleanly".
                assert!(
                    cut >= HEADER_BYTES && (cut - HEADER_BYTES).is_multiple_of(RECORD_BYTES),
                    "clean read from a mid-record cut at byte {cut}"
                );
                let n = (cut - HEADER_BYTES) / RECORD_BYTES;
                assert_eq!(prefix, instrs[..n], "prefix must match the original");
            }
        }
    });
}

/// Any single-bit flip in the header or a record body is rejected; a
/// flip confined to a record's checksum bytes is equally rejected. The
/// reader must stop with `Corrupt` at or before the damaged record —
/// every record it *does* return must match the original capture.
#[test]
fn single_bit_flips_are_detected() {
    Cases::new(60).run("single_bit_flips_are_detected", |g| {
        let (mut bytes, instrs) = capture(g);
        let byte = g.usize_in(0..bytes.len());
        let bit = g.usize_in(0..8);
        bytes[byte] ^= 1 << bit;
        match read_back(&bytes) {
            Err(_) => {}
            Ok(decoded) => {
                // The reserved header bytes are the only cover a flip
                // cannot hide under; everything else is checksummed.
                panic!(
                    "flip of bit {bit} at byte {byte} went undetected \
                     ({} records decoded, {} written)",
                    decoded.len(),
                    instrs.len()
                );
            }
        }
    });
}

/// The reader never yields damaged data even when it fails late: all
/// records returned before the error must be byte-identical to the
/// writer's input.
#[test]
fn prefix_before_detected_corruption_is_exact() {
    Cases::new(40).run("prefix_before_detected_corruption_is_exact", |g| {
        let (mut bytes, instrs) = capture(g);
        // Flip one bit inside some record body (never the header), then
        // stream instruction-by-instruction until the reader objects.
        let rec = g.usize_in(0..instrs.len());
        let byte = HEADER_BYTES + rec * RECORD_BYTES + g.usize_in(0..RECORD_BYTES);
        let bit = g.usize_in(0..8);
        bytes[byte] ^= 1 << bit;
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let mut read = Vec::new();
        let err = loop {
            match r.read_instr() {
                Ok(Some(i)) => read.push(i),
                Ok(None) => panic!("a flipped record body must not decode cleanly"),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, smtsim_trace::TraceError::Corrupt { .. }),
            "expected Corrupt, got {err}"
        );
        assert_eq!(read.len(), rec, "reader must stop at the damaged record");
        assert_eq!(read, instrs[..rec]);
    });
}
