//! Property-based tests of the trace layer, on the in-repo harness
//! (`smtsim_trace::check`).

use smtsim_trace::check::{Cases, Gen};
use smtsim_trace::profile::BenchProfile;
use smtsim_trace::{spec, DynInstr, InstrClass, InstrStream, ReplayableStream, TraceGenerator};

fn any_benchmark(g: &mut Gen) -> &'static BenchProfile {
    g.choose(&spec::ALL_BENCHMARKS)
}

/// Control flow is continuous for every benchmark and seed: each
/// instruction's PC equals the previous instruction's next_pc.
#[test]
fn control_flow_continuity() {
    Cases::new(24).run("control_flow_continuity", |g| {
        let p = any_benchmark(g);
        let seed = g.u64_in(0..1_000_000);
        let mut gen = TraceGenerator::new(p, seed);
        let mut prev = gen.next_instr();
        for _ in 0..2_000 {
            let cur = gen.next_instr();
            assert_eq!(cur.pc, prev.next_pc());
            prev = cur;
        }
    });
}

/// Sequence numbers are dense and monotonic for any seed.
#[test]
fn dense_sequence_numbers() {
    Cases::new(24).run("dense_sequence_numbers", |g| {
        let p = any_benchmark(g);
        let seed = g.u64_in(0..1_000_000);
        let mut gen = TraceGenerator::new(p, seed);
        for want in 0..1_000u64 {
            assert_eq!(gen.next_instr().seq, want);
        }
    });
}

/// Memory instructions always carry an address; destinations follow
/// class rules.
#[test]
fn class_field_invariants() {
    Cases::new(24).run("class_field_invariants", |g| {
        let p = any_benchmark(g);
        let seed = g.u64_in(0..1_000_000);
        let mut gen = TraceGenerator::new(p, seed);
        for _ in 0..2_000 {
            let i = gen.next_instr();
            match i.class {
                InstrClass::Load => {
                    assert!(i.mem_addr != 0);
                    assert!(i.dst.is_some());
                }
                InstrClass::Store => {
                    assert!(i.mem_addr != 0);
                    assert!(i.dst.is_none());
                }
                InstrClass::BranchCond | InstrClass::BranchUncond => {
                    assert!(i.dst.is_none());
                    assert!(i.target.is_multiple_of(4));
                }
                _ => assert_eq!(i.mem_addr, 0),
            }
            assert!(i.pc.is_multiple_of(4));
        }
    });
}

/// Unfetching any suffix of fetched instructions replays them
/// byte-identically and in order.
#[test]
fn replay_suffix_roundtrip() {
    Cases::new(24).run("replay_suffix_roundtrip", |g| {
        let p = any_benchmark(g);
        let seed = g.u64_in(0..1_000_000);
        let fetch = g.usize_in(2..200);
        let keep = g.usize_in(0..100);
        let mut s = ReplayableStream::new(TraceGenerator::new(p, seed));
        let fetched: Vec<DynInstr> = (0..fetch).map(|_| s.fetch()).collect();
        let keep = keep.min(fetch - 1);
        let squashed = fetched[keep..].to_vec();
        s.unfetch(squashed.clone());
        for want in &squashed {
            assert_eq!(&s.fetch(), want);
        }
        // And the stream continues where it would have.
        assert_eq!(s.fetch().seq, fetch as u64);
    });
}

/// Wrong-path synthesis never leaves the code segment, for arbitrary
/// (even wild) PCs.
#[test]
fn wrong_path_stays_in_code() {
    Cases::new(24).run("wrong_path_stays_in_code", |g| {
        let p = any_benchmark(g);
        let pc = g.any_u64();
        let n = g.usize_in(1..64);
        let gen = TraceGenerator::new(p, 0);
        let dict = gen.dict_arc();
        let wp = dict.synth_wrong_path(pc, n);
        assert_eq!(wp.len(), n);
        let lo = dict.entry_pc();
        let hi = lo + dict.code_bytes();
        for i in &wp {
            assert!(
                i.pc >= lo && i.pc < hi,
                "pc {:#x} outside [{:#x},{:#x})",
                i.pc,
                lo,
                hi
            );
        }
    });
}
