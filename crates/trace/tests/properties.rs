//! Property-based tests of the trace layer.

use proptest::prelude::*;
use smtsim_trace::{
    spec, DynInstr, InstrClass, InstrStream, ReplayableStream, TraceGenerator,
};

fn any_benchmark() -> impl Strategy<Value = &'static str> {
    prop::sample::select(
        spec::ALL_BENCHMARKS
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Control flow is continuous for every benchmark and seed: each
    /// instruction's PC equals the previous instruction's next_pc.
    #[test]
    fn control_flow_continuity(name in any_benchmark(), seed in 0u64..1_000_000) {
        let p = spec::benchmark_by_name(name).unwrap();
        let mut g = TraceGenerator::new(p, seed);
        let mut prev = g.next_instr();
        for _ in 0..2_000 {
            let cur = g.next_instr();
            prop_assert_eq!(cur.pc, prev.next_pc());
            prev = cur;
        }
    }

    /// Sequence numbers are dense and monotonic for any seed.
    #[test]
    fn dense_sequence_numbers(name in any_benchmark(), seed in 0u64..1_000_000) {
        let p = spec::benchmark_by_name(name).unwrap();
        let mut g = TraceGenerator::new(p, seed);
        for want in 0..1_000u64 {
            prop_assert_eq!(g.next_instr().seq, want);
        }
    }

    /// Memory instructions always carry an address; destinations follow
    /// class rules.
    #[test]
    fn class_field_invariants(name in any_benchmark(), seed in 0u64..1_000_000) {
        let p = spec::benchmark_by_name(name).unwrap();
        let mut g = TraceGenerator::new(p, seed);
        for _ in 0..2_000 {
            let i = g.next_instr();
            match i.class {
                InstrClass::Load => {
                    prop_assert!(i.mem_addr != 0);
                    prop_assert!(i.dst.is_some());
                }
                InstrClass::Store => {
                    prop_assert!(i.mem_addr != 0);
                    prop_assert!(i.dst.is_none());
                }
                InstrClass::BranchCond | InstrClass::BranchUncond => {
                    prop_assert!(i.dst.is_none());
                    prop_assert!(i.target.is_multiple_of(4));
                }
                _ => prop_assert_eq!(i.mem_addr, 0),
            }
            prop_assert!(i.pc.is_multiple_of(4));
        }
    }

    /// Unfetching any suffix of fetched instructions replays them
    /// byte-identically and in order.
    #[test]
    fn replay_suffix_roundtrip(
        name in any_benchmark(),
        seed in 0u64..1_000_000,
        fetch in 2usize..200,
        keep in 0usize..100,
    ) {
        let p = spec::benchmark_by_name(name).unwrap();
        let mut s = ReplayableStream::new(TraceGenerator::new(p, seed));
        let fetched: Vec<DynInstr> = (0..fetch).map(|_| s.fetch()).collect();
        let keep = keep.min(fetch - 1);
        let squashed = fetched[keep..].to_vec();
        s.unfetch(squashed.clone());
        for want in &squashed {
            prop_assert_eq!(&s.fetch(), want);
        }
        // And the stream continues where it would have.
        prop_assert_eq!(s.fetch().seq, fetch as u64);
    }

    /// Wrong-path synthesis never leaves the code segment, for
    /// arbitrary (even wild) PCs.
    #[test]
    fn wrong_path_stays_in_code(
        name in any_benchmark(),
        pc in any::<u64>(),
        n in 1usize..64,
    ) {
        let p = spec::benchmark_by_name(name).unwrap();
        let g = TraceGenerator::new(p, 0);
        let dict = g.dict_arc();
        let wp = dict.synth_wrong_path(pc, n);
        prop_assert_eq!(wp.len(), n);
        let lo = dict.entry_pc();
        let hi = lo + dict.code_bytes();
        for i in &wp {
            prop_assert!(i.pc >= lo && i.pc < hi, "pc {:#x} outside [{:#x},{:#x})", i.pc, lo, hi);
        }
    }
}
