//! Vendored deterministic PRNG: SplitMix64 seeding xoshiro256++.
//!
//! The workspace builds with `std` only, so instead of the `rand` crate
//! every random draw in the simulator comes from this module. Two
//! requirements drove the choice of algorithm:
//!
//! * **Bit-reproducibility.** Simulation results are only trustworthy if
//!   a `(config, seed)` pair replays identically forever, on every
//!   platform. Both generators below are defined purely in terms of
//!   64-bit wrapping integer arithmetic — no platform-dependent state,
//!   no floating point in the core loop.
//! * **Statistical quality at simulator cost.** xoshiro256++ passes
//!   BigCrush and runs in a handful of ALU ops; SplitMix64 turns one
//!   user seed into well-distributed state words even for adjacent
//!   seeds (thread `i` seeds with `base + i * 7919`, so seed-streams
//!   must decorrelate from the first draw).
//!
//! Reference: Blackman & Vigna, "Scrambled Linear Pseudorandom Number
//! Generators" (the public-domain `xoshiro256plusplus.c` / `splitmix64.c`
//! reference implementations).

/// SplitMix64: a tiny 64-bit generator used to expand one seed word into
/// the xoshiro state. Also usable on its own for one-shot hashing-style
/// draws.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start the sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's general-purpose generator.
///
/// The API mirrors the subset of `rand` the simulator used
/// (`seed_from_u64`, `gen::<T>()`, `gen_range(..)`), so call sites read
/// the same as before the vendoring.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the full 256-bit state from one `u64` via SplitMix64, as the
    /// xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256pp { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Draw a value of type `T` (uniform over `T`'s natural domain:
    /// full integer range, `[0, 1)` for `f64`, fair coin for `bool`).
    #[inline]
    pub fn gen<T: SampleValue>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range. Panics on an empty range, like `rand` did.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Unbiased integer in `[0, bound)` (Lemire's multiply-with-rejection
    /// method); `bound` 0 means the full 64-bit range.
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        // Rejection threshold for exact uniformity.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types [`Xoshiro256pp::gen`] can produce.
pub trait SampleValue {
    fn sample(rng: &mut Xoshiro256pp) -> Self;
}

impl SampleValue for u64 {
    #[inline]
    fn sample(rng: &mut Xoshiro256pp) -> u64 {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    #[inline]
    fn sample(rng: &mut Xoshiro256pp) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample(rng: &mut Xoshiro256pp) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for bool {
    #[inline]
    fn sample(rng: &mut Xoshiro256pp) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Xoshiro256pp::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut Xoshiro256pp) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.bounded_u64(span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Xoshiro256pp) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                // span = hi - lo + 1; 0 encodes the full 2^64 range.
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = rng.bounded_u64(span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut Xoshiro256pp) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference splitmix64.c outputs for seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn adjacent_seeds_decorrelate() {
        // The thread-seeding scheme uses nearby seeds; first draws must
        // already differ in many bits.
        let mut ones = 0u32;
        for seed in 0..64u64 {
            let x = Xoshiro256pp::seed_from_u64(seed).next_u64();
            let y = Xoshiro256pp::seed_from_u64(seed + 1).next_u64();
            ones += (x ^ y).count_ones();
        }
        let mean_flips = ones as f64 / 64.0;
        assert!(
            (24.0..40.0).contains(&mean_flips),
            "adjacent-seed first draws flip {mean_flips} bits on average"
        );
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(10u64..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
            let d = rng.gen_range(0u32..=2);
            assert!(d <= 2);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let _ = rng.gen_range(5u64..5);
    }
}
