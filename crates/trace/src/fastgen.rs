//! Reduced-fidelity trace generator for the IPC-approx core backend.
//!
//! [`FastTraceGenerator`] walks the same basic-block dictionary and
//! draws memory addresses from the same [`MemStream`] as the detailed
//! [`crate::TraceGenerator`], but skips everything the commit-rate core
//! model never reads:
//!
//! * **register dependencies** — no geometric-distance sampling, no
//!   writer window; `srcs`/`dst` stay `None`. This is the detailed
//!   generator's dominant cost (one RNG draw *per unit of dependency
//!   distance*, twice per compute instruction), so eliding it is what
//!   makes reduced-fidelity runs clear the 5x speedup floor;
//! * **pointer-chase chain tracking** — the chase *rate* is preserved
//!   (one draw against the profile's effective chase fraction) but the
//!   chain identity is not, since there is no load destination register
//!   to chain through.
//!
//! Everything observable by the approx backend — instruction class mix,
//! PCs, control flow, memory address stream shape, sequence numbers —
//! is drawn from the same profile with the same determinism guarantee:
//! one `(profile, seed)` pair produces one stream, byte for byte.
//! The stream *differs* from the detailed generator's (the RNG is
//! consumed at different rates), which is exactly the fidelity contract:
//! reduced-fidelity runs are statistically comparable, not cycle-exact.

use crate::bbdict::{BasicBlockDict, TermKind};
use crate::gen::CHASE_CHAIN_BREAK;
use crate::instr::{DynInstr, InstrClass, UncondKind};
use crate::memstream::MemStream;
use crate::profile::BenchProfile;
use crate::rng::Xoshiro256pp;
use crate::stream::InstrStream;
use std::sync::Arc;

/// Maximum modelled call depth (same bound as the detailed generator).
const CALL_STACK_MAX: usize = 64;

/// Deterministic, dependency-free instruction stream for one thread.
///
/// See the module docs for what is (and is not) modelled relative to
/// [`crate::TraceGenerator`].
pub struct FastTraceGenerator {
    profile: &'static BenchProfile,
    dict: Arc<BasicBlockDict>,
    mem: MemStream,
    rng: Xoshiro256pp,
    /// Current block / slot cursor.
    block: u32,
    slot: usize,
    /// Next dynamic sequence number.
    seq: u64,
    /// Call stack of return-site block indices (bounded).
    call_stack: Vec<u32>,
    /// Pending dynamic return target (set while emitting a `Ret`).
    ret_target: Option<u32>,
    /// Effective pointer-chase probability (base fraction times the
    /// chain-continue probability, folded into a single draw) as a
    /// fixed-point `u64` threshold: `draw < chase_t` hits with the
    /// same probability as an `f64` compare, one conversion cheaper.
    chase_t: u64,
}

impl FastTraceGenerator {
    /// Build a generator for `profile` with behavioural seed `seed`.
    /// The code layout (and therefore every PC) is identical to the
    /// detailed generator's for the same benchmark.
    pub fn new(profile: &'static BenchProfile, seed: u64) -> Self {
        let dict = crate::gen::shared_dict(profile);
        Self::with_dict(profile, dict, seed)
    }

    /// Build a generator reusing an existing dictionary.
    pub fn with_dict(
        profile: &'static BenchProfile,
        dict: Arc<BasicBlockDict>,
        seed: u64,
    ) -> Self {
        FastTraceGenerator {
            profile,
            dict,
            mem: MemStream::new(&profile.mem, seed, seed & 0xffff),
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0x7ace_9e4e_0000_0001),
            block: 0,
            slot: 0,
            seq: 0,
            call_stack: Vec::with_capacity(CALL_STACK_MAX),
            ret_target: None,
            chase_t: ((profile.mem.pointer_chase_frac * (1.0 - CHASE_CHAIN_BREAK))
                * (u64::MAX as f64)) as u64,
        }
    }

    /// The benchmark profile this generator follows.
    pub fn profile(&self) -> &'static BenchProfile {
        self.profile
    }

    /// Shared handle to the static code dictionary.
    pub fn dict_arc(&self) -> Arc<BasicBlockDict> {
        Arc::clone(&self.dict)
    }

    /// Base addresses of this thread's [L1, L2, Mem] data regions (for
    /// cache warm-up by simulation drivers).
    pub fn data_region_bases(&self) -> [u64; 3] {
        self.mem.region_bases()
    }
}

impl InstrStream for FastTraceGenerator {
    fn next_instr(&mut self) -> DynInstr {
        // Field-disjoint borrows: `dict` is only read, the RNG and
        // memory stream are only written, so no per-instruction
        // `Arc::clone` is needed (the detailed generator pays one).
        let dict = &self.dict;
        let block = dict.block(self.block);
        let cls = block.classes[self.slot];
        let pc = block.base_pc + 4 * self.slot as u64;
        let seq = self.seq;
        self.seq += 1;

        let mut instr = DynInstr {
            seq,
            pc,
            class: cls,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: false,
            target: pc + 4,
            uncond_kind: UncondKind::Jump,
        };

        match cls {
            InstrClass::Load => {
                let chase = self.rng.next_u64() < self.chase_t;
                let (addr, _region) = self.mem.next_addr_lite(chase);
                instr.mem_addr = addr;
            }
            InstrClass::Store => {
                let (addr, _region) = self.mem.next_addr_lite(false);
                instr.mem_addr = addr;
            }
            InstrClass::BranchCond => {
                instr.taken = self.rng.gen::<f64>() < block.bias;
                instr.target = dict.block(block.taken_succ).base_pc;
            }
            InstrClass::BranchUncond => {
                instr.taken = true;
                match block.term {
                    TermKind::Call => {
                        instr.uncond_kind = UncondKind::Call;
                        instr.target = dict.block(block.taken_succ).base_pc;
                        if self.call_stack.len() == CALL_STACK_MAX {
                            self.call_stack.remove(0);
                        }
                        self.call_stack.push(block.fallthrough_succ);
                    }
                    TermKind::Ret => {
                        instr.uncond_kind = UncondKind::Ret;
                        let target_block = self.call_stack.pop().unwrap_or(block.taken_succ);
                        instr.target = dict.block(target_block).base_pc;
                        self.ret_target = Some(target_block);
                    }
                    _ => {
                        instr.uncond_kind = UncondKind::Jump;
                        instr.target = dict.block(block.taken_succ).base_pc;
                    }
                }
            }
            // Nop and compute instructions carry no operands here: the
            // approx backend models neither dependencies nor latency.
            _ => {}
        }

        // Advance the cursor (identical walk to the detailed generator).
        if self.slot + 1 < block.classes.len() {
            self.slot += 1;
        } else {
            self.block = if let Some(rt) = self.ret_target.take() {
                rt
            } else if instr.class.is_branch() && instr.taken {
                block.taken_succ
            } else {
                block.fallthrough_succ
            };
            self.slot = 0;
        }

        instr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::spec;

    fn fast(name: &str, seed: u64) -> FastTraceGenerator {
        FastTraceGenerator::new(spec::benchmark_by_name(name).unwrap(), seed)
    }

    #[test]
    fn deterministic_streams() {
        let mut a = fast("mcf", 9);
        let mut b = fast("mcf", 9);
        for _ in 0..5_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn shares_code_layout_with_detailed_generator() {
        let mut f = fast("gcc", 4);
        let detailed = TraceGenerator::new(spec::benchmark_by_name("gcc").unwrap(), 4);
        let dict = detailed.dict_arc();
        for _ in 0..2_000 {
            let i = f.next_instr();
            let blk = dict.block(dict.block_index_at(i.pc));
            assert!(i.pc >= blk.base_pc && i.pc < blk.end_pc());
        }
    }

    #[test]
    fn never_emits_register_operands() {
        let mut g = fast("twolf", 11);
        for _ in 0..3_000 {
            let i = g.next_instr();
            assert_eq!(i.srcs, [None, None]);
            assert_eq!(i.dst, None);
        }
    }

    #[test]
    fn class_mix_tracks_profile() {
        let prof = spec::benchmark_by_name("mcf").unwrap();
        let mut g = FastTraceGenerator::new(prof, 2);
        let n = 50_000;
        let loads = (0..n)
            .filter(|_| g.next_instr().class == InstrClass::Load)
            .count();
        let got = loads as f64 / n as f64;
        assert!(
            (got - prof.mix.load).abs() < 0.05,
            "load fraction {got} vs profile {}",
            prof.mix.load
        );
    }
}
