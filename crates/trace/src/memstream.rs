//! Per-thread data address stream.
//!
//! Addresses are drawn from three nested working sets (see
//! [`crate::profile::MemProfile`]). Each thread owns a private data
//! segment — SPEC2000 workloads are multiprogrammed, so co-scheduled
//! threads never share data, but they *do* compete for shared L2
//! capacity, bus slots and L2 bank ports, which is precisely the
//! contention the paper analyses.

use crate::profile::MemProfile;
use crate::rng::Xoshiro256pp;
use std::collections::VecDeque;

/// Which working set an access was drawn from.
///
/// This is the *intent* of the generator (a steering label), not a
/// promise about where the access hits: a cold cache or heavy sharing can
/// turn an `L1`-labelled access into a miss, and that is fine — the
/// memory model decides actual hits and misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRegion {
    /// Small hot set, expected to hit in the private L1D.
    L1,
    /// Medium set, expected to miss L1 and hit the shared L2.
    L2,
    /// Large set, expected to miss the L2 (main-memory stream).
    Mem,
}

/// Size of one synthetic data segment slot per region (the region base
/// addresses are spaced this far apart).
const REGION_SPACING: u64 = 1 << 36;

/// Base of the data address space; thread segments are placed above it.
const DATA_BASE: u64 = 0x0100_0000_0000;

/// Deterministic address stream for one thread.
#[derive(Debug, Clone)]
pub struct MemStream {
    mem: MemProfile,
    rng: Xoshiro256pp,
    /// Base address of each region for this thread.
    bases: [u64; 3],
    /// Stride cursors per region (bytes from region base).
    cursors: [u64; 3],
    /// Stride step in bytes per region.
    strides: [u64; 3],
    /// Current burstiness phase.
    bursty: bool,
    /// Recently-touched pages of the memory-resident region (LRU,
    /// newest at the back). Random draws reuse a hot page with
    /// probability [`HOT_PAGE_REUSE`]: real pointer-chasing code
    /// revisits pages often enough that the 512-entry TLB keeps most
    /// translations even though the *lines* it touches keep missing
    /// the L2.
    hot_pages: VecDeque<u64>,
    /// Number of addresses generated (for stats / tests).
    generated: u64,
}

/// Probability a random memory-region access lands on a recently used
/// page.
const HOT_PAGE_REUSE: f64 = 0.85;

/// Hot-page window size (× 8 KB pages = 512 KB of hot pages — far
/// beyond any L1, small enough that cache *lines* inside keep cycling).
const HOT_PAGES: usize = 64;

impl MemStream {
    /// Create the stream for `(seed, thread_unique)`; `thread_unique`
    /// must differ between contexts so that their data segments are
    /// disjoint.
    pub fn new(mem: &MemProfile, seed: u64, thread_unique: u64) -> Self {
        let segment = DATA_BASE + thread_unique * 4 * REGION_SPACING;
        MemStream {
            mem: *mem,
            rng: Xoshiro256pp::seed_from_u64(seed ^ (thread_unique.rotate_left(17)) ^ 0xadd7_e550),
            bases: [
                segment,
                segment + REGION_SPACING,
                segment + 2 * REGION_SPACING,
            ],
            cursors: [0; 3],
            // The L1 region strides densely (many accesses per line);
            // the larger regions use the benchmark's stride width — 64
            // walks consecutive lines across all L2 banks, larger
            // power-of-two strides revisit a single bank (Fig. 7's
            // hotspot behaviour).
            strides: [8, mem.stride_bytes, mem.stride_bytes],
            bursty: false,
            hot_pages: VecDeque::with_capacity(HOT_PAGES),
            generated: 0,
        }
    }

    /// Effective memory-resident fraction for the current phase.
    fn mem_frac_now(&self) -> f64 {
        if self.bursty {
            (self.mem.mem_frac * self.mem.burst_boost).min(0.9)
        } else {
            self.mem.mem_frac
        }
    }

    /// Draw the region for the next access.
    fn pick_region(&mut self) -> MemRegion {
        // Phase toggling first.
        if self.rng.gen::<f64>() < self.mem.phase_toggle_prob {
            self.bursty = !self.bursty;
        }
        let memf = self.mem_frac_now();
        // Renormalise: the burst boost eats into the L1 fraction.
        let l2f = self.mem.l2_frac;
        let r = self.rng.gen::<f64>();
        if r < memf {
            MemRegion::Mem
        } else if r < memf + l2f {
            MemRegion::L2
        } else {
            MemRegion::L1
        }
    }

    /// Generate the next data address.
    ///
    /// `pointer_chase` forces the access into the memory-resident region
    /// with a random (non-strided) offset — the address pattern of a
    /// linked-structure traversal.
    pub fn next_addr(&mut self, pointer_chase: bool) -> (u64, MemRegion) {
        self.generated += 1;
        let region = if pointer_chase {
            MemRegion::Mem
        } else {
            self.pick_region()
        };
        let (idx, size) = match region {
            MemRegion::L1 => (0usize, self.mem.l1_ws_bytes),
            MemRegion::L2 => (1, self.mem.l2_ws_bytes),
            MemRegion::Mem => (2, self.mem.mem_ws_bytes),
        };
        let strided = !pointer_chase && self.rng.gen::<f64>() < self.mem.stride_frac;
        let off = if strided {
            let c = self.cursors[idx];
            self.cursors[idx] = (c + self.strides[idx]) % size;
            c
        } else if region == MemRegion::Mem {
            self.random_mem_offset(size)
        } else {
            (self.rng.gen::<u64>() % size) & !7
        };
        (self.bases[idx] + (off & !7), region)
    }

    /// Single-draw variant of [`MemStream::next_addr`] for the
    /// reduced-fidelity generator ([`crate::fastgen`]).
    ///
    /// Models the same structure — three nested regions, stride
    /// cursors, bursty phases, hot-page locality — but carves every
    /// probabilistic decision out of the bit-fields of one RNG draw
    /// (two for non-strided offsets) instead of spending one `f64`
    /// draw per decision. The stream it produces is deterministic but
    /// *different* from [`MemStream::next_addr`]'s; a detailed and a
    /// reduced-fidelity run are statistically comparable, never
    /// cycle-exact. The detailed path is untouched and streams never
    /// mix the two methods.
    pub fn next_addr_lite(&mut self, pointer_chase: bool) -> (u64, MemRegion) {
        self.generated += 1;
        const FP20: u64 = 1 << 20;
        const FP10: u64 = 1 << 10;
        const PAGE: u64 = 8192;
        // Uniform [0, n) via multiply-shift (no integer division).
        #[inline]
        fn bounded(r: u64, n: u64) -> u64 {
            ((r as u128 * n as u128) >> 64) as u64
        }
        let r = self.rng.next_u64();
        // Bits 0..20: phase toggle.
        if (r & (FP20 - 1)) < (self.mem.phase_toggle_prob * FP20 as f64) as u64 {
            self.bursty = !self.bursty;
        }
        let region = if pointer_chase {
            MemRegion::Mem
        } else {
            // Bits 20..40: region select.
            let sel = (r >> 20) & (FP20 - 1);
            let memf = (self.mem_frac_now() * FP20 as f64) as u64;
            let l2f = (self.mem.l2_frac * FP20 as f64) as u64;
            if sel < memf {
                MemRegion::Mem
            } else if sel < memf + l2f {
                MemRegion::L2
            } else {
                MemRegion::L1
            }
        };
        let (idx, size) = match region {
            MemRegion::L1 => (0usize, self.mem.l1_ws_bytes),
            MemRegion::L2 => (1, self.mem.l2_ws_bytes),
            MemRegion::Mem => (2, self.mem.mem_ws_bytes),
        };
        // Bits 40..50: strided?
        let strided =
            !pointer_chase && ((r >> 40) & (FP10 - 1)) < (self.mem.stride_frac * FP10 as f64) as u64;
        let off = if strided {
            let c = self.cursors[idx];
            let mut next = c + self.strides[idx];
            if next >= size {
                next -= size;
            }
            self.cursors[idx] = next;
            c
        } else if region == MemRegion::Mem {
            // Bits 50..60: hot-page reuse; fresh draw for the offset.
            let r2 = self.rng.next_u64();
            if !self.hot_pages.is_empty()
                && ((r >> 50) & (FP10 - 1)) < (HOT_PAGE_REUSE * FP10 as f64) as u64
            {
                let i = bounded(r2, self.hot_pages.len() as u64) as usize;
                self.hot_pages[i] + (bounded(r2.rotate_left(32), PAGE) & !7)
            } else {
                let page = bounded(r2, size) & !(PAGE - 1);
                if self.hot_pages.len() == HOT_PAGES {
                    self.hot_pages.pop_front();
                }
                self.hot_pages.push_back(page);
                page + (bounded(r2.rotate_left(32), PAGE) & !7)
            }
        } else {
            bounded(self.rng.next_u64(), size) & !7
        };
        (self.bases[idx] + (off & !7), region)
    }

    /// Random offset in the memory-resident region with page-level
    /// locality (see [`HOT_PAGE_REUSE`]).
    fn random_mem_offset(&mut self, size: u64) -> u64 {
        const PAGE: u64 = 8192;
        if !self.hot_pages.is_empty() && self.rng.gen::<f64>() < HOT_PAGE_REUSE {
            let i = (self.rng.gen::<u64>() as usize) % self.hot_pages.len();
            let page = self.hot_pages[i];
            return (page + (self.rng.gen::<u64>() % PAGE)) & !7;
        }
        let page = (self.rng.gen::<u64>() % size) & !(PAGE - 1);
        if self.hot_pages.len() == HOT_PAGES {
            self.hot_pages.pop_front();
        }
        self.hot_pages.push_back(page);
        page + ((self.rng.gen::<u64>() % PAGE) & !7)
    }

    /// Number of addresses generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Base addresses of the thread's [L1, L2, Mem] working-set regions
    /// (for cache warm-up by simulation drivers).
    pub fn region_bases(&self) -> [u64; 3] {
        self.bases
    }

    /// True while in a bursty phase (exposed for tests).
    pub fn is_bursty(&self) -> bool {
        self.bursty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn stream_for(name: &str, tid: u64) -> MemStream {
        MemStream::new(&spec::benchmark_by_name(name).unwrap().mem, 11, tid)
    }

    #[test]
    fn deterministic() {
        let mut a = stream_for("mcf", 0);
        let mut b = stream_for("mcf", 0);
        for _ in 0..1000 {
            assert_eq!(a.next_addr(false), b.next_addr(false));
        }
    }

    #[test]
    fn threads_have_disjoint_segments() {
        let mut a = stream_for("mcf", 0);
        let mut b = stream_for("mcf", 1);
        for _ in 0..200 {
            let (x, _) = a.next_addr(false);
            let (y, _) = b.next_addr(false);
            // Segments are 4*REGION_SPACING apart; addresses can never
            // collide across threads.
            assert_ne!(x & !(4 * REGION_SPACING - 1), y & !(4 * REGION_SPACING - 1));
        }
    }

    #[test]
    fn addresses_are_8_byte_aligned() {
        let mut s = stream_for("swim", 2);
        for _ in 0..2000 {
            let (a, _) = s.next_addr(false);
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn region_mix_tracks_profile() {
        let p = spec::benchmark_by_name("eon").unwrap();
        let mut s = MemStream::new(&p.mem, 3, 0);
        let n = 50_000;
        let mut memc = 0;
        let mut l1c = 0;
        for _ in 0..n {
            match s.next_addr(false).1 {
                MemRegion::Mem => memc += 1,
                MemRegion::L1 => l1c += 1,
                MemRegion::L2 => {}
            }
        }
        let mem_rate = memc as f64 / n as f64;
        let l1_rate = l1c as f64 / n as f64;
        // eon: mem_frac 0.002 — bursts can raise it a little.
        assert!(mem_rate < 0.02, "eon mem rate {mem_rate}");
        assert!(l1_rate > 0.9, "eon l1 rate {l1_rate}");
    }

    #[test]
    fn mcf_misses_much_more_than_eon() {
        let rate = |name: &str| {
            let mut s = stream_for(name, 0);
            let n = 50_000;
            (0..n)
                .filter(|_| matches!(s.next_addr(false).1, MemRegion::Mem))
                .count() as f64
                / n as f64
        };
        assert!(rate("mcf") > 10.0 * rate("eon"));
    }

    #[test]
    fn pointer_chase_targets_mem_region() {
        let mut s = stream_for("mcf", 0);
        for _ in 0..100 {
            let (_, r) = s.next_addr(true);
            assert_eq!(r, MemRegion::Mem);
        }
    }

    #[test]
    fn bursty_phase_toggles_eventually() {
        let mut s = stream_for("mcf", 0); // toggle prob 0.002
        let mut saw_burst = false;
        for _ in 0..20_000 {
            s.next_addr(false);
            saw_burst |= s.is_bursty();
        }
        assert!(saw_burst, "never entered a bursty phase");
    }

    #[test]
    fn strided_phases_produce_sequential_lines() {
        let p = spec::benchmark_by_name("swim").unwrap(); // stride 0.85
        let mut s = MemStream::new(&p.mem, 9, 0);
        // Collect L2-region addresses; most consecutive pairs should be
        // one stride apart thanks to the stride cursor.
        let stride = p.mem.stride_bytes;
        let mut prev: Option<u64> = None;
        let mut seq = 0;
        let mut tot = 0;
        for _ in 0..20_000 {
            let (a, r) = s.next_addr(false);
            if r == MemRegion::L2 {
                if let Some(p) = prev {
                    tot += 1;
                    if a.wrapping_sub(p) == stride {
                        seq += 1;
                    }
                }
                prev = Some(a);
            }
        }
        assert!(tot > 100);
        assert!(
            seq as f64 / tot as f64 > 0.4,
            "sequential fraction {} too low",
            seq as f64 / tot as f64
        );
    }
}
