//! Calibrated profiles for the 26 SPEC2000 benchmarks of Fig. 1.
//!
//! The letter keys follow the paper's legend exactly:
//!
//! ```text
//! gzip a   eon h     apsi o     facerec v
//! vpr b    gap i     wupwise p  applu w
//! gcc c    vortex j  equake q   galgel x
//! mcf d    bzip2 k   lucas r    ammp y
//! crafty e twolf l   mesa s     mgrid z
//! perlbmk f art m    fma3d t
//! parser g swim n    sixtrack u
//! ```
//!
//! Profile values are calibrated against published SPEC2000
//! characterisations (instruction mixes, branch misprediction rates,
//! L1/L2 miss behaviour on Alpha-like machines). Absolute fidelity is
//! not the goal — the MFLUSH mechanisms only see aggregate rates — but
//! the *relative ordering* matters: `mcf`, `art`, `swim`, `lucas`,
//! `ammp`, `equake` must behave as memory-bound threads that monopolise
//! an SMT core on L2 misses, while `gzip`, `eon`, `crafty`, `mesa`,
//! `sixtrack` must behave as high-ILP, cache-resident threads.

use crate::profile::{BenchProfile, InstrMix, MemProfile, Suite};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// Helper to keep the table readable.
// lint: allow(D5) -- one positional argument per column of the paper's profile table
#[allow(clippy::too_many_arguments)]
const fn prof(
    name: &'static str,
    key: char,
    suite: Suite,
    mix: InstrMix,
    dep_mean_dist: f64,
    branch_predictability: f64,
    code_blocks: u32,
    block_len_mean: f64,
    mem: MemProfile,
) -> BenchProfile {
    BenchProfile {
        name,
        key,
        suite,
        mix,
        dep_mean_dist,
        branch_predictability,
        code_blocks,
        block_len_mean,
        mem,
    }
}

const fn int_mix(load: f64, store: f64, bc: f64, bu: f64) -> InstrMix {
    InstrMix {
        load,
        store,
        branch_cond: bc,
        branch_uncond: bu,
        int_mul: 0.005,
        fp_alu: 0.0,
        fp_mul: 0.0,
        fp_div: 0.0,
    }
}

const fn fp_mix(load: f64, store: f64, bc: f64, fa: f64, fm: f64, fd: f64) -> InstrMix {
    InstrMix {
        load,
        store,
        branch_cond: bc,
        branch_uncond: 0.01,
        int_mul: 0.0,
        fp_alu: fa,
        fp_mul: fm,
        fp_div: fd,
    }
}

// lint: allow(D5) -- one positional argument per column of the paper's profile table
#[allow(clippy::too_many_arguments)]
const fn mem(
    l1: f64,
    l2: f64,
    memf: f64,
    l1_ws: u64,
    l2_ws: u64,
    mem_ws: u64,
    stride: f64,
    chase: f64,
    toggle: f64,
    boost: f64,
) -> MemProfile {
    mem_strided(l1, l2, memf, l1_ws, l2_ws, mem_ws, stride, chase, toggle, boost, 64)
}

/// Like [`mem`] but with an explicit stride width: FP array codes with
/// large leading dimensions stride by multiple cache lines, pinning
/// their L2 traffic onto a single bank (the paper's Fig. 7 hotspot).
// lint: allow(D5) -- one positional argument per column of the paper's profile table
#[allow(clippy::too_many_arguments)]
const fn mem_strided(
    l1: f64,
    l2: f64,
    memf: f64,
    l1_ws: u64,
    l2_ws: u64,
    mem_ws: u64,
    stride: f64,
    chase: f64,
    toggle: f64,
    boost: f64,
    stride_bytes: u64,
) -> MemProfile {
    MemProfile {
        l1_frac: l1,
        l2_frac: l2,
        mem_frac: memf,
        l1_ws_bytes: l1_ws,
        l2_ws_bytes: l2_ws,
        mem_ws_bytes: mem_ws,
        stride_frac: stride,
        stride_bytes,
        pointer_chase_frac: chase,
        phase_toggle_prob: toggle,
        burst_boost: boost,
    }
}

/// All 26 benchmark profiles, in the paper's legend order.
pub static ALL_BENCHMARKS: [BenchProfile; 26] = [
    // -------- SPECint2000 --------
    prof(
        "gzip", 'a', Suite::Int,
        int_mix(0.21, 0.08, 0.13, 0.03),
        5.5, 0.91, 300, 7.0,
        mem(0.9830, 0.0135, 0.0035, 12 * KB, 192 * KB, 32 * MB, 0.70, 0.00, 0.0005, 1.5),
    ),
    prof(
        "vpr", 'b', Suite::Int,
        int_mix(0.27, 0.10, 0.12, 0.03),
        3.8, 0.89, 900, 5.5,
        mem(0.9635, 0.0225, 0.0140, 14 * KB, 384 * KB, 48 * MB, 0.35, 0.06, 0.0010, 2.0),
    ),
    prof(
        "gcc", 'c', Suite::Int,
        int_mix(0.25, 0.13, 0.15, 0.05),
        4.2, 0.90, 4000, 5.0,
        mem(0.9728, 0.0203, 0.0070, 16 * KB, 512 * KB, 48 * MB, 0.40, 0.02, 0.0010, 1.8),
    ),
    prof(
        // mcf: the canonical SMT-killer — pointer chasing over a huge
        // working set, low ILP, frequent clustered L2 misses.
        "mcf", 'd', Suite::Int,
        int_mix(0.31, 0.09, 0.19, 0.02),
        3.0, 0.88, 400, 4.5,
        mem(0.8575, 0.0585, 0.0840, 12 * KB, 768 * KB, 192 * MB, 0.10, 0.30, 0.0020, 2.5),
    ),
    prof(
        "crafty", 'e', Suite::Int,
        int_mix(0.28, 0.08, 0.11, 0.04),
        5.0, 0.92, 1200, 6.5,
        mem(0.9880, 0.0099, 0.0021, 14 * KB, 256 * KB, 24 * MB, 0.45, 0.00, 0.0005, 1.5),
    ),
    prof(
        "perlbmk", 'f', Suite::Int,
        int_mix(0.26, 0.12, 0.13, 0.06),
        4.5, 0.93, 2500, 5.5,
        mem(0.9800, 0.0144, 0.0056, 14 * KB, 384 * KB, 32 * MB, 0.40, 0.02, 0.0008, 1.6),
    ),
    prof(
        "parser", 'g', Suite::Int,
        int_mix(0.24, 0.09, 0.14, 0.04),
        3.5, 0.90, 1500, 5.0,
        mem(0.9585, 0.0261, 0.0154, 14 * KB, 448 * KB, 64 * MB, 0.25, 0.10, 0.0012, 2.0),
    ),
    prof(
        "eon", 'h', Suite::Int,
        int_mix(0.26, 0.14, 0.09, 0.04),
        6.0, 0.96, 1000, 8.0,
        mem(0.9928, 0.0059, 0.0014, 12 * KB, 192 * KB, 16 * MB, 0.55, 0.00, 0.0004, 1.4),
    ),
    prof(
        "gap", 'i', Suite::Int,
        int_mix(0.23, 0.11, 0.12, 0.04),
        4.8, 0.94, 1800, 6.0,
        mem(0.9693, 0.0203, 0.0105, 14 * KB, 512 * KB, 48 * MB, 0.50, 0.04, 0.0010, 1.8),
    ),
    prof(
        "vortex", 'j', Suite::Int,
        int_mix(0.27, 0.15, 0.11, 0.06),
        4.6, 0.95, 5000, 5.5,
        mem(0.9764, 0.0180, 0.0056, 16 * KB, 640 * KB, 40 * MB, 0.45, 0.02, 0.0008, 1.6),
    ),
    prof(
        "bzip2", 'k', Suite::Int,
        int_mix(0.24, 0.09, 0.12, 0.02),
        5.2, 0.91, 350, 7.0,
        mem(0.9750, 0.0180, 0.0070, 14 * KB, 512 * KB, 64 * MB, 0.65, 0.00, 0.0008, 1.8),
    ),
    prof(
        "twolf", 'l', Suite::Int,
        int_mix(0.26, 0.08, 0.13, 0.03),
        3.6, 0.87, 1100, 5.0,
        mem(0.9505, 0.0369, 0.0126, 16 * KB, 640 * KB, 48 * MB, 0.20, 0.08, 0.0012, 2.0),
    ),
    // -------- SPECfp2000 --------
    prof(
        // art: streaming neural-net simulation, terrible L2 behaviour.
        "art", 'm', Suite::Fp,
        fp_mix(0.29, 0.07, 0.09, 0.22, 0.14, 0.00),
        3.0, 0.95, 250, 8.0,
        mem_strided(0.8595, 0.0495, 0.0910, 12 * KB, 768 * KB, 128 * MB, 0.55, 0.10, 0.0015, 2.2, 128),
    ),
    prof(
        "swim", 'n', Suite::Fp,
        fp_mix(0.27, 0.09, 0.04, 0.24, 0.16, 0.01),
        6.5, 0.985, 150, 14.0,
        mem_strided(0.8838, 0.0428, 0.0735, 14 * KB, 896 * KB, 160 * MB, 0.85, 0.00, 0.0010, 2.0, 256),
    ),
    prof(
        "apsi", 'o', Suite::Fp,
        fp_mix(0.25, 0.10, 0.06, 0.22, 0.15, 0.01),
        5.5, 0.97, 600, 10.0,
        mem(0.9525, 0.0279, 0.0196, 14 * KB, 640 * KB, 96 * MB, 0.70, 0.00, 0.0010, 1.8),
    ),
    prof(
        "wupwise", 'p', Suite::Fp,
        fp_mix(0.23, 0.09, 0.05, 0.23, 0.18, 0.01),
        7.0, 0.98, 300, 12.0,
        mem_strided(0.9772, 0.0158, 0.0070, 12 * KB, 512 * KB, 64 * MB, 0.75, 0.00, 0.0006, 1.6, 256),
    ),
    prof(
        "equake", 'q', Suite::Fp,
        fp_mix(0.30, 0.08, 0.07, 0.23, 0.13, 0.01),
        4.0, 0.96, 400, 9.0,
        mem_strided(0.9163, 0.0383, 0.0455, 14 * KB, 768 * KB, 96 * MB, 0.45, 0.12, 0.0015, 2.2, 128),
    ),
    prof(
        "galgel", 'x', Suite::Fp,
        fp_mix(0.26, 0.08, 0.06, 0.26, 0.17, 0.01),
        5.8, 0.975, 450, 11.0,
        mem_strided(0.9497, 0.0293, 0.0210, 14 * KB, 640 * KB, 80 * MB, 0.70, 0.00, 0.0010, 1.8, 256),
    ),
    prof(
        "lucas", 'r', Suite::Fp,
        fp_mix(0.24, 0.10, 0.03, 0.26, 0.19, 0.01),
        6.0, 0.985, 200, 15.0,
        mem_strided(0.8895, 0.0405, 0.0700, 14 * KB, 896 * KB, 144 * MB, 0.80, 0.00, 0.0010, 2.0, 512),
    ),
    prof(
        "mesa", 's', Suite::Fp,
        fp_mix(0.25, 0.11, 0.08, 0.20, 0.13, 0.01),
        5.5, 0.97, 900, 8.0,
        mem(0.9878, 0.0095, 0.0028, 12 * KB, 256 * KB, 32 * MB, 0.60, 0.00, 0.0005, 1.5),
    ),
    prof(
        "fma3d", 't', Suite::Fp,
        fp_mix(0.26, 0.12, 0.07, 0.22, 0.14, 0.01),
        5.0, 0.965, 1500, 9.0,
        mem(0.9693, 0.0203, 0.0105, 14 * KB, 640 * KB, 96 * MB, 0.55, 0.02, 0.0010, 1.8),
    ),
    prof(
        "sixtrack", 'u', Suite::Fp,
        fp_mix(0.22, 0.09, 0.06, 0.25, 0.18, 0.02),
        6.5, 0.975, 800, 10.0,
        mem(0.9902, 0.0077, 0.0021, 12 * KB, 256 * KB, 24 * MB, 0.65, 0.00, 0.0004, 1.4),
    ),
    prof(
        "facerec", 'v', Suite::Fp,
        fp_mix(0.25, 0.08, 0.06, 0.24, 0.16, 0.01),
        5.5, 0.97, 500, 10.0,
        mem_strided(0.9470, 0.0306, 0.0224, 14 * KB, 704 * KB, 96 * MB, 0.65, 0.00, 0.0010, 1.8, 512),
    ),
    prof(
        "applu", 'w', Suite::Fp,
        fp_mix(0.26, 0.10, 0.04, 0.25, 0.17, 0.01),
        6.0, 0.98, 350, 13.0,
        mem_strided(0.9285, 0.0351, 0.0364, 14 * KB, 832 * KB, 128 * MB, 0.80, 0.00, 0.0010, 1.9, 256),
    ),
    prof(
        "ammp", 'y', Suite::Fp,
        fp_mix(0.28, 0.09, 0.07, 0.22, 0.14, 0.01),
        3.8, 0.96, 600, 8.0,
        mem(0.9048, 0.0428, 0.0525, 14 * KB, 832 * KB, 112 * MB, 0.30, 0.15, 0.0015, 2.2),
    ),
    prof(
        "mgrid", 'z', Suite::Fp,
        fp_mix(0.29, 0.07, 0.03, 0.26, 0.17, 0.01),
        6.5, 0.985, 250, 14.0,
        mem_strided(0.9440, 0.0315, 0.0245, 14 * KB, 768 * KB, 112 * MB, 0.85, 0.00, 0.0008, 1.8, 256),
    ),
];

/// Look up a benchmark by its Fig. 1 single-letter key.
pub fn benchmark_by_key(key: char) -> Option<&'static BenchProfile> {
    ALL_BENCHMARKS.iter().find(|b| b.key == key)
}

/// Look up a benchmark by name (e.g. `"mcf"`).
pub fn benchmark_by_name(name: &str) -> Option<&'static BenchProfile> {
    ALL_BENCHMARKS.iter().find(|b| b.name == name)
}

/// The benchmarks the paper classifies (implicitly, via behaviour) as
/// memory-bound: useful for tests and workload synthesis.
pub fn memory_bound() -> impl Iterator<Item = &'static BenchProfile> {
    ALL_BENCHMARKS
        .iter()
        .filter(|b| b.mem.mem_frac + 0.3 * b.mem.pointer_chase_frac >= 0.034)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_profiles_validate() {
        for b in &ALL_BENCHMARKS {
            b.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn keys_are_unique_and_cover_a_to_z() {
        let keys: BTreeSet<char> = ALL_BENCHMARKS.iter().map(|b| b.key).collect();
        assert_eq!(keys.len(), 26);
        for c in 'a'..='z' {
            assert!(keys.contains(&c), "missing key {c}");
        }
    }

    #[test]
    fn names_are_unique() {
        let names: BTreeSet<&str> = ALL_BENCHMARKS.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn legend_matches_paper() {
        // Spot-check the paper's Fig. 1 legend mapping.
        for (name, key) in [
            ("gzip", 'a'),
            ("vpr", 'b'),
            ("gcc", 'c'),
            ("mcf", 'd'),
            ("crafty", 'e'),
            ("perlbmk", 'f'),
            ("parser", 'g'),
            ("eon", 'h'),
            ("gap", 'i'),
            ("vortex", 'j'),
            ("bzip2", 'k'),
            ("twolf", 'l'),
            ("art", 'm'),
            ("swim", 'n'),
            ("apsi", 'o'),
            ("wupwise", 'p'),
            ("equake", 'q'),
            ("lucas", 'r'),
            ("mesa", 's'),
            ("fma3d", 't'),
            ("sixtrack", 'u'),
            ("facerec", 'v'),
            ("applu", 'w'),
            ("galgel", 'x'),
            ("ammp", 'y'),
            ("mgrid", 'z'),
        ] {
            assert_eq!(benchmark_by_name(name).unwrap().key, key, "{name}");
            assert_eq!(benchmark_by_key(key).unwrap().name, name, "{key}");
        }
    }

    #[test]
    fn mcf_is_the_most_memory_bound_int_benchmark() {
        let mcf = benchmark_by_name("mcf").unwrap();
        for b in ALL_BENCHMARKS.iter().filter(|b| b.suite == Suite::Int) {
            assert!(
                mcf.memory_boundedness() >= b.memory_boundedness(),
                "{} beats mcf",
                b.name
            );
        }
    }

    #[test]
    fn eon_and_sixtrack_are_cache_resident() {
        for name in ["eon", "sixtrack", "crafty", "mesa"] {
            let b = benchmark_by_name(name).unwrap();
            assert!(b.mem.mem_frac <= 0.005, "{name} should rarely miss L2");
        }
    }

    #[test]
    fn memory_bound_set_contains_the_usual_suspects() {
        let names: BTreeSet<&str> = memory_bound().map(|b| b.name).collect();
        for n in ["mcf", "art", "swim", "lucas", "ammp", "equake", "applu"] {
            assert!(names.contains(n), "{n} should be memory-bound");
        }
        assert!(!names.contains("eon"));
        assert!(!names.contains("gzip"));
    }

    #[test]
    fn fp_benchmarks_have_fp_work_and_int_benchmarks_do_not() {
        for b in &ALL_BENCHMARKS {
            match b.suite {
                Suite::Fp => assert!(b.mix.fp_alu > 0.1, "{} lacks fp work", b.name),
                Suite::Int => assert_eq!(b.mix.fp_alu, 0.0, "{} has fp work", b.name),
            }
        }
    }
}
