//! Benchmark behaviour profiles.
//!
//! A [`BenchProfile`] captures the aggregate trace properties of one
//! SPEC2000 benchmark — the knobs that determine how a thread interacts
//! with the fetch policy and the shared memory hierarchy. The concrete
//! per-benchmark values live in [`crate::spec`].


/// Integer vs floating-point suite (SPECint2000 vs SPECfp2000).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    Int,
    Fp,
}

/// Fractions of each instruction class in the dynamic stream.
///
/// The non-branch, non-memory remainder is split between the compute
/// classes according to the suite-specific weights below. All fields are
/// fractions of the *total* dynamic instruction count and must sum to at
/// most 1; the remainder becomes `IntAlu`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of conditional branches.
    pub branch_cond: f64,
    /// Fraction of unconditional branches/jumps/calls.
    pub branch_uncond: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of FP adds.
    pub fp_alu: f64,
    /// Fraction of FP multiplies.
    pub fp_mul: f64,
    /// Fraction of FP divides.
    pub fp_div: f64,
}

impl InstrMix {
    /// Sum of all explicit class fractions (must be ≤ 1).
    pub fn total(&self) -> f64 {
        self.load
            + self.store
            + self.branch_cond
            + self.branch_uncond
            + self.int_mul
            + self.fp_alu
            + self.fp_mul
            + self.fp_div
    }

    /// Validate invariants; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("load", self.load),
            ("store", self.store),
            ("branch_cond", self.branch_cond),
            ("branch_uncond", self.branch_uncond),
            ("int_mul", self.int_mul),
            ("fp_alu", self.fp_alu),
            ("fp_mul", self.fp_mul),
            ("fp_div", self.fp_div),
        ];
        for (name, v) in fields {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("mix field {name} = {v} out of [0,1]"));
            }
        }
        let t = self.total();
        if t > 1.0 + 1e-9 {
            return Err(format!("mix fractions sum to {t} > 1"));
        }
        Ok(())
    }
}

/// Memory access behaviour of a benchmark.
///
/// Addresses are drawn from a mixture of three private working sets sized
/// so that, on the Fig. 1 hierarchy, accesses to the first hit in L1, the
/// second miss L1 but (when uncontended) hit the shared L2, and the third
/// miss all the way to memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemProfile {
    /// Probability an access targets the L1-resident working set.
    pub l1_frac: f64,
    /// Probability an access targets the L2-resident working set.
    pub l2_frac: f64,
    /// Probability an access targets the memory-resident working set
    /// (i.e. its steady-state L2 miss stream). `l1+l2+mem` must be 1.
    pub mem_frac: f64,
    /// Size in bytes of the L1-resident region (≤ L1D capacity).
    pub l1_ws_bytes: u64,
    /// Size in bytes of the L2-resident region.
    pub l2_ws_bytes: u64,
    /// Size in bytes of the memory-resident region (≫ L2 capacity).
    pub mem_ws_bytes: u64,
    /// Fraction of accesses that follow a sequential stride pattern
    /// rather than a random draw (spatial locality / prefetch-friendly).
    pub stride_frac: f64,
    /// Stride step in bytes for the L2- and memory-resident regions.
    /// 64 walks consecutive lines (spreads over all L2 banks); larger
    /// powers of two model array codes with big leading dimensions —
    /// a 256-byte stride on a 4-bank line-interleaved L2 hits the *same
    /// bank* every time, producing the per-bank hotspots of the paper's
    /// Fig. 7 and the hit-time tails of Fig. 4.
    pub stride_bytes: u64,
    /// Fraction of *loads* that form pointer-chasing chains: each such
    /// load depends on the previous load's result and targets the
    /// memory-resident region. This is what makes `mcf`-like threads
    /// stall the whole SMT core (Tullsen & Brown's motivating case).
    pub pointer_chase_frac: f64,
    /// Probability per instruction of toggling between the *calm* and
    /// *bursty* phase. In the bursty phase the memory-resident fraction
    /// is boosted, clustering L2 misses as real applications do.
    pub phase_toggle_prob: f64,
    /// Multiplier applied to `mem_frac` during bursty phases (≥ 1).
    pub burst_boost: f64,
}

impl MemProfile {
    /// Validate invariants; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        let s = self.l1_frac + self.l2_frac + self.mem_frac;
        if (s - 1.0).abs() > 1e-3 {
            return Err(format!("l1+l2+mem fractions sum to {s}, expected 1"));
        }
        for (name, v) in [
            ("l1_frac", self.l1_frac),
            ("l2_frac", self.l2_frac),
            ("mem_frac", self.mem_frac),
            ("stride_frac", self.stride_frac),
            ("pointer_chase_frac", self.pointer_chase_frac),
            ("phase_toggle_prob", self.phase_toggle_prob),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("mem field {name} = {v} out of [0,1]"));
            }
        }
        if self.burst_boost < 1.0 {
            return Err(format!("burst_boost {} < 1", self.burst_boost));
        }
        if self.stride_bytes == 0 || !self.stride_bytes.is_multiple_of(8) {
            return Err(format!("stride_bytes {} must be a multiple of 8", self.stride_bytes));
        }
        if self.l1_ws_bytes == 0 || self.l2_ws_bytes == 0 || self.mem_ws_bytes == 0 {
            return Err("working sets must be non-empty".into());
        }
        if self.l1_ws_bytes > self.l2_ws_bytes || self.l2_ws_bytes > self.mem_ws_bytes {
            return Err("working sets must be nested: l1 ≤ l2 ≤ mem".into());
        }
        Ok(())
    }
}

/// Full behaviour profile of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    /// SPEC2000 benchmark name (e.g. `"mcf"`).
    pub name: &'static str,
    /// Single-letter key used by the paper's workload table (Fig. 1).
    pub key: char,
    /// Which SPEC suite it belongs to.
    pub suite: Suite,
    /// Dynamic instruction mix.
    pub mix: InstrMix,
    /// Mean register dependency distance (geometric distribution).
    /// Larger = more ILP = less sensitivity to any single stalled
    /// instruction.
    pub dep_mean_dist: f64,
    /// Target conditional-branch predictability in `[0.5, 1.0)`; the
    /// generator biases each static branch so that a learning predictor
    /// converges to roughly this accuracy.
    pub branch_predictability: f64,
    /// Static code footprint: number of basic blocks in the dictionary.
    /// Large footprints pressure the 64 KB L1 I-cache.
    pub code_blocks: u32,
    /// Mean basic block length in instructions.
    pub block_len_mean: f64,
    /// Memory behaviour.
    pub mem: MemProfile,
}

impl BenchProfile {
    /// Validate all invariants of the profile.
    pub fn validate(&self) -> Result<(), String> {
        self.mix
            .validate()
            .map_err(|e| format!("{}: {e}", self.name))?;
        self.mem
            .validate()
            .map_err(|e| format!("{}: {e}", self.name))?;
        if self.dep_mean_dist < 1.0 {
            return Err(format!("{}: dep_mean_dist < 1", self.name));
        }
        if !(0.5..1.0).contains(&self.branch_predictability) {
            return Err(format!(
                "{}: branch_predictability {} out of [0.5,1.0)",
                self.name, self.branch_predictability
            ));
        }
        if self.code_blocks == 0 {
            return Err(format!("{}: code_blocks == 0", self.name));
        }
        if self.block_len_mean < 2.0 {
            return Err(format!("{}: block_len_mean < 2", self.name));
        }
        if !self.key.is_ascii_lowercase() {
            return Err(format!("{}: key {:?} not a-z", self.name, self.key));
        }
        Ok(())
    }

    /// A rough scalar "memory-boundedness" score in `[0,1]` used for
    /// reporting and sanity tests: the steady-state fraction of accesses
    /// that leave the L1, weighted by pointer chasing.
    pub fn memory_boundedness(&self) -> f64 {
        let beyond_l1 = self.mem.l2_frac + self.mem.mem_frac;
        (beyond_l1 + self.mem.mem_frac + 0.5 * self.mem.pointer_chase_frac).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane_mem() -> MemProfile {
        MemProfile {
            l1_frac: 0.9,
            l2_frac: 0.08,
            mem_frac: 0.02,
            l1_ws_bytes: 8 << 10,
            l2_ws_bytes: 256 << 10,
            mem_ws_bytes: 64 << 20,
            stride_frac: 0.5,
            stride_bytes: 64,
            pointer_chase_frac: 0.0,
            phase_toggle_prob: 0.001,
            burst_boost: 2.0,
        }
    }

    fn sane_mix() -> InstrMix {
        InstrMix {
            load: 0.25,
            store: 0.1,
            branch_cond: 0.12,
            branch_uncond: 0.03,
            int_mul: 0.01,
            fp_alu: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    fn sane_profile() -> BenchProfile {
        BenchProfile {
            name: "test",
            key: 't',
            suite: Suite::Int,
            mix: sane_mix(),
            dep_mean_dist: 4.0,
            branch_predictability: 0.92,
            code_blocks: 512,
            block_len_mean: 6.0,
            mem: sane_mem(),
        }
    }

    #[test]
    fn valid_profile_passes() {
        sane_profile().validate().unwrap();
    }

    #[test]
    fn mix_over_one_rejected() {
        let mut p = sane_profile();
        p.mix.load = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn mem_fracs_must_sum_to_one() {
        let mut p = sane_profile();
        p.mem.l1_frac = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn nested_working_sets_enforced() {
        let mut p = sane_profile();
        p.mem.l1_ws_bytes = 1 << 30;
        assert!(p.validate().is_err());
    }

    #[test]
    fn predictability_range_enforced() {
        let mut p = sane_profile();
        p.branch_predictability = 1.0;
        assert!(p.validate().is_err());
        p.branch_predictability = 0.3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn memory_boundedness_monotone_in_mem_frac() {
        let mut lo = sane_profile();
        let mut hi = sane_profile();
        lo.mem.mem_frac = 0.01;
        lo.mem.l1_frac = 0.91;
        hi.mem.mem_frac = 0.2;
        hi.mem.l1_frac = 0.72;
        assert!(hi.memory_boundedness() > lo.memory_boundedness());
    }
}
