//! Static basic-block dictionary.
//!
//! SMTsim keeps a separate dictionary of all static instructions so that
//! the simulator can fetch *wrong-path* instructions after a branch
//! misprediction and model their effect on the I-cache and branch
//! predictor (paper §2). We reproduce that: the synthetic program is a
//! set of basic blocks laid out contiguously in a code segment; the
//! generator walks the control-flow graph on the correct path, and the
//! pipeline can ask the dictionary for instructions at *any* PC to fill
//! the wrong path.

use crate::instr::{DynInstr, InstrClass, UncondKind};
use crate::profile::BenchProfile;
use crate::rng::Xoshiro256pp;
use std::collections::VecDeque;

/// Base address of the synthetic code segments. Each benchmark's code
/// lives at `CODE_BASE + hash(name) · CODE_SPACING`, so instances of the
/// same binary share code lines (as real co-scheduled copies would)
/// while different binaries never alias.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Spacing between per-benchmark code segments (32 MB ≫ any dictionary).
pub const CODE_SPACING: u64 = 32 << 20;

/// Deterministic code-segment base for a benchmark name.
pub fn code_segment_base(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    CODE_BASE + (h % 1024) * CODE_SPACING
}

/// Kind of a block's terminating branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermKind {
    /// Conditional branch with a taken-bias.
    Cond,
    /// Unconditional direct jump.
    Jump,
    /// Call: control continues at `taken_succ` (the function entry)
    /// and the fall-through is pushed as the return site.
    Call,
    /// Return: control continues at the caller's fall-through
    /// (dynamic); `taken_succ` is only the fallback for an empty call
    /// stack.
    Ret,
}

/// One static basic block: a run of non-branch instructions terminated by
/// a branch.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub base_pc: u64,
    /// Per-slot instruction classes; the last slot is always a branch.
    pub classes: Vec<InstrClass>,
    /// Taken-probability of the terminating branch (1.0 for unconditional).
    pub bias: f64,
    /// Index of the successor block when the branch is taken.
    pub taken_succ: u32,
    /// Index of the successor block on fall-through.
    pub fallthrough_succ: u32,
    /// Terminator kind.
    pub term: TermKind,
}

impl BasicBlock {
    /// Number of instructions in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the block holds no instructions (never happens for
    /// generated dictionaries; kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// PC of the terminating branch.
    #[inline]
    pub fn branch_pc(&self) -> u64 {
        self.base_pc + 4 * (self.classes.len() as u64 - 1)
    }

    /// PC one past the end of the block (the fall-through target).
    #[inline]
    pub fn end_pc(&self) -> u64 {
        self.base_pc + 4 * self.classes.len() as u64
    }
}

/// The whole static program of one benchmark.
#[derive(Debug, Clone)]
pub struct BasicBlockDict {
    blocks: Vec<BasicBlock>,
    /// First instruction address (benchmark-specific segment).
    base: u64,
    /// Total code bytes (blocks are contiguous from `base`).
    code_bytes: u64,
}

impl BasicBlockDict {
    /// Deterministically build the dictionary for a benchmark profile.
    ///
    /// Layout: `profile.code_blocks` blocks, geometric lengths with mean
    /// `profile.block_len_mean`, placed back to back from [`CODE_BASE`].
    /// Every block ends in a branch; a fraction of terminators
    /// (`branch_uncond / (branch_cond + branch_uncond)`) are
    /// unconditional. Conditional branches get a per-block taken bias
    /// drawn so that a learning direction predictor converges to roughly
    /// `profile.branch_predictability` accuracy (see `choose_bias`).
    /// Taken targets prefer nearby blocks — backward with high bias
    /// (loops), forward otherwise — giving realistic I-cache and BTB
    /// locality.
    pub fn generate(profile: &BenchProfile, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5eed_b10c_d1c7_0000);
        let n = profile.code_blocks.max(2) as usize;
        let uncond_frac = {
            let b = profile.mix.branch_cond + profile.mix.branch_uncond;
            if b > 0.0 {
                profile.mix.branch_uncond / b
            } else {
                0.1
            }
        };

        // First pass: lengths and layout.
        let mut lengths = Vec::with_capacity(n);
        let mean = profile.block_len_mean.max(2.0);
        for _ in 0..n {
            // Geometric length ≥ 2 (at least one body instr + branch).
            let p = 1.0 / (mean - 1.0);
            let mut len = 2usize;
            while len < 64 && rng.gen::<f64>() > p {
                len += 1;
            }
            lengths.push(len);
        }

        let base = code_segment_base(profile.name);
        let mut blocks = Vec::with_capacity(n);
        let mut pc = base;
        for (idx, &len) in lengths.iter().enumerate() {
            // The final block has no physically contiguous successor —
            // its fall-through wraps to the segment base — so it must
            // end in an unconditional branch or a not-taken conditional
            // would break PC continuity.
            let uncond = idx == n - 1 || rng.gen::<f64>() < uncond_frac;
            let (term, bias, taken_succ) = if uncond {
                // Split unconditional terminators into jumps, calls and
                // returns (returns slightly rarer; an unmatched return
                // falls back to its static target).
                let r = rng.gen::<f64>();
                let term = if r < 0.45 {
                    TermKind::Jump
                } else if r < 0.75 {
                    TermKind::Call
                } else {
                    TermKind::Ret
                };
                (term, 1.0, Self::pick_target(&mut rng, idx, n, false))
            } else {
                let backward = rng.gen::<f64>() < 0.45;
                let bias = Self::choose_bias(&mut rng, profile.branch_predictability, backward);
                (
                    TermKind::Cond,
                    bias,
                    Self::pick_target(&mut rng, idx, n, backward),
                )
            };
            let mut classes = Self::body_classes(&mut rng, profile, len - 1);
            classes.push(if uncond {
                InstrClass::BranchUncond
            } else {
                InstrClass::BranchCond
            });
            let fallthrough_succ = ((idx + 1) % n) as u32;
            blocks.push(BasicBlock {
                base_pc: pc,
                classes,
                bias,
                taken_succ,
                fallthrough_succ,
                term,
            });
            pc += 4 * len as u64;
        }

        BasicBlockDict {
            blocks,
            base,
            code_bytes: pc - base,
        }
    }

    /// Fill `n` body slots with non-branch classes matching the profile
    /// mix *within the block* (largest-remainder quotas, then a shuffle
    /// for intra-block ordering).
    ///
    /// Stratifying per block instead of drawing each slot independently
    /// keeps the *executed* stream on the profile targets no matter how
    /// unevenly the control flow weights blocks: loops replay the same
    /// few hot blocks thousands of times, so with independent draws the
    /// stream mix is whatever those particular blocks happened to get.
    fn body_classes(rng: &mut Xoshiro256pp, profile: &BenchProfile, n: usize) -> Vec<InstrClass> {
        let m = &profile.mix;
        // Weights normalised over the non-branch classes; IntAlu takes
        // whatever the profile leaves unassigned.
        let named = [
            (InstrClass::Load, m.load),
            (InstrClass::Store, m.store),
            (InstrClass::IntMul, m.int_mul),
            (InstrClass::FpAlu, m.fp_alu),
            (InstrClass::FpMul, m.fp_mul),
            (InstrClass::FpDiv, m.fp_div),
        ];
        let non_branch = (1.0 - m.branch_cond - m.branch_uncond).max(1e-9);
        let int_alu = (non_branch - named.iter().map(|(_, w)| w).sum::<f64>()).max(0.0);
        let weights = [
            named[0], named[1], named[2], named[3], named[4], named[5],
            (InstrClass::IntAlu, int_alu),
        ];

        // Largest-remainder apportionment of the n slots. The extra
        // slots are drawn proportionally to the remainders rather than
        // by a fixed tie-break: remainders depend only on (len, mix),
        // so a deterministic rule would starve the same classes in
        // every block of a given length and the rounding error would
        // never average out across the dictionary.
        let mut quotas = [0usize; 7];
        let mut rem = [0.0f64; 7];
        let mut assigned = 0usize;
        for (i, &(_, w)) in weights.iter().enumerate() {
            let exact = n as f64 * w / non_branch;
            quotas[i] = exact.floor() as usize;
            assigned += quotas[i];
            rem[i] = exact - exact.floor();
        }
        for _ in assigned..n {
            let total: f64 = rem.iter().sum();
            let mut r = rng.gen::<f64>() * total;
            let mut pick = rem.len() - 1;
            for (i, &w) in rem.iter().enumerate() {
                if r < w {
                    pick = i;
                    break;
                }
                r -= w;
            }
            quotas[pick] += 1;
            rem[pick] = 0.0;
        }

        let mut classes = Vec::with_capacity(n + 1);
        for (i, &(class, _)) in weights.iter().enumerate() {
            classes.extend(std::iter::repeat_n(class, quotas[i]));
        }
        debug_assert_eq!(classes.len(), n);
        // Fisher–Yates for the intra-block ordering.
        for i in (1..classes.len()).rev() {
            let j = rng.gen_range(0..=i);
            classes.swap(i, j);
        }
        classes
    }

    /// Choose a taken-bias such that a learning predictor's expected
    /// accuracy over all conditional branches approaches the profile
    /// target. A fraction `q` of branches are strongly biased (accuracy
    /// ≈ 0.995 once learned); the rest are weakly biased (expected
    /// accuracy ≈ 0.57 for a bias uniform in [0.2, 0.8], measured
    /// against this crate's perceptron with its 256-entry aliasing).
    fn choose_bias(rng: &mut Xoshiro256pp, target: f64, backward: bool) -> f64 {
        const STRONG: f64 = 0.995;
        const WEAK_EXP: f64 = 0.57;
        let q = ((target - WEAK_EXP) / (STRONG - WEAK_EXP)).clamp(0.0, 1.0);
        if rng.gen::<f64>() < q {
            // Strongly biased. Backward branches are loops: biased taken.
            if backward || rng.gen::<f64>() < 0.6 {
                STRONG
            } else {
                1.0 - STRONG
            }
        } else if backward {
            // Weak backward branches are still loops — keep them biased
            // taken so loop-heavy streams never degenerate to a fair
            // coin on aggregate.
            rng.gen_range(0.55..0.9)
        } else {
            rng.gen_range(0.2..0.8)
        }
    }

    /// Pick a taken-target block index near `idx`.
    fn pick_target(rng: &mut Xoshiro256pp, idx: usize, n: usize, backward: bool) -> u32 {
        let span = (n / 8).clamp(1, 64) as i64;
        let dist = rng.gen_range(1..=span);
        let t = if backward {
            (idx as i64 - dist).rem_euclid(n as i64)
        } else if rng.gen::<f64>() < 0.9 {
            (idx as i64 + dist).rem_euclid(n as i64)
        } else {
            rng.gen_range(0..n as i64)
        };
        t as u32
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total code footprint in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.code_bytes
    }

    /// Access a block by index.
    #[inline]
    pub fn block(&self, idx: u32) -> &BasicBlock {
        &self.blocks[idx as usize]
    }

    /// Entry point of the program.
    pub fn entry_pc(&self) -> u64 {
        self.base
    }

    /// Find the block containing `pc`, clamping any out-of-segment PC
    /// back into the code segment (wrong-path targets can be arbitrary).
    pub fn block_index_at(&self, pc: u64) -> u32 {
        let off = pc.saturating_sub(self.base) % self.code_bytes.max(4);
        // Binary search over base offsets.
        let target = self.base + (off & !3);
        match self
            .blocks
            .binary_search_by(|b| b.base_pc.cmp(&target))
        {
            Ok(i) => i as u32,
            Err(0) => 0,
            Err(i) => {
                let cand = i - 1;
                if target < self.blocks[cand].end_pc() {
                    cand as u32
                } else {
                    (i % self.blocks.len()) as u32
                }
            }
        }
    }

    /// Synthesise `n` wrong-path instructions starting at `pc`,
    /// appending them to `out` (into-style so the core's per-thread
    /// wrong-path buffer is reused — rule D10: the fetch path must not
    /// allocate).
    ///
    /// Wrong-path instructions never commit; they exist to occupy fetch
    /// bandwidth and pollute the I-cache exactly as SMTsim models. The
    /// stream follows fall-through / always-taken unconditional control
    /// flow through the dictionary (the machine has no outcomes for the
    /// wrong path, so conditional branches are treated as not-taken).
    pub fn synth_wrong_path_into(&self, pc: u64, n: usize, out: &mut VecDeque<DynInstr>) {
        let mut pushed = 0usize;
        let mut bi = self.block_index_at(pc);
        let mut block = self.block(bi);
        // Offset within the block.
        let mut slot =
            (((pc.saturating_sub(block.base_pc)) / 4) as usize).min(block.len() - 1);
        while pushed < n {
            let cls = block.classes[slot];
            let ipc = block.base_pc + 4 * slot as u64;
            let mut instr = DynInstr::nop(0, ipc);
            instr.class = cls;
            if cls == InstrClass::BranchUncond {
                let t = self.block(block.taken_succ).base_pc;
                instr.taken = true;
                instr.target = t;
                instr.uncond_kind = UncondKind::Jump;
            }
            out.push_back(instr);
            pushed += 1;
            if slot + 1 < block.len() && cls != InstrClass::BranchUncond {
                slot += 1;
            } else {
                bi = if cls == InstrClass::BranchUncond {
                    block.taken_succ
                } else {
                    block.fallthrough_succ
                };
                block = self.block(bi);
                slot = 0;
            }
        }
    }

    /// Allocating convenience wrapper over
    /// [`Self::synth_wrong_path_into`] (tests and tools; the cores use
    /// the into-variant with a reusable buffer).
    pub fn synth_wrong_path(&self, pc: u64, n: usize) -> Vec<DynInstr> {
        let mut out = VecDeque::with_capacity(n);
        self.synth_wrong_path_into(pc, n, &mut out);
        out.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn dict_for(name: &str) -> BasicBlockDict {
        BasicBlockDict::generate(spec::benchmark_by_name(name).unwrap(), 7)
    }

    #[test]
    fn deterministic_generation() {
        let p = spec::benchmark_by_name("gzip").unwrap();
        let a = BasicBlockDict::generate(p, 1);
        let b = BasicBlockDict::generate(p, 1);
        assert_eq!(a.num_blocks(), b.num_blocks());
        for i in 0..a.num_blocks() as u32 {
            assert_eq!(a.block(i).base_pc, b.block(i).base_pc);
            assert_eq!(a.block(i).classes, b.block(i).classes);
            assert_eq!(a.block(i).taken_succ, b.block(i).taken_succ);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = spec::benchmark_by_name("gzip").unwrap();
        let a = BasicBlockDict::generate(p, 1);
        let b = BasicBlockDict::generate(p, 2);
        let differs = (0..a.num_blocks().min(b.num_blocks()) as u32)
            .any(|i| a.block(i).classes != b.block(i).classes);
        assert!(differs);
    }

    #[test]
    fn blocks_are_contiguous_and_terminated_by_branches() {
        let d = dict_for("gcc");
        let mut pc = d.entry_pc();
        for i in 0..d.num_blocks() as u32 {
            let b = d.block(i);
            assert_eq!(b.base_pc, pc, "block {i} not contiguous");
            assert!(b.len() >= 2);
            assert!(b.classes.last().unwrap().is_branch());
            for c in &b.classes[..b.len() - 1] {
                assert!(!c.is_branch(), "body instruction is a branch");
            }
            pc = b.end_pc();
        }
        assert_eq!(pc - d.entry_pc(), d.code_bytes());
    }

    #[test]
    fn block_lookup_finds_containing_block() {
        let d = dict_for("vpr");
        for i in (0..d.num_blocks() as u32).step_by(17) {
            let b = d.block(i);
            for slot in 0..b.len() {
                let pc = b.base_pc + 4 * slot as u64;
                assert_eq!(d.block_index_at(pc), i, "pc {pc:#x}");
            }
        }
    }

    #[test]
    fn block_lookup_clamps_wild_pcs() {
        let d = dict_for("vpr");
        for pc in [0u64, 0xdead_beef_0000, u64::MAX - 7] {
            let bi = d.block_index_at(pc);
            assert!((bi as usize) < d.num_blocks());
        }
    }

    #[test]
    fn wrong_path_stream_has_requested_length_and_valid_pcs() {
        let d = dict_for("mcf");
        let wp = d.synth_wrong_path(d.entry_pc() + 8, 50);
        assert_eq!(wp.len(), 50);
        for i in &wp {
            let bi = d.block_index_at(i.pc);
            let b = d.block(bi);
            assert!(i.pc >= b.base_pc && i.pc < b.end_pc());
        }
    }

    #[test]
    fn code_footprint_tracks_profile() {
        let small = dict_for("swim"); // 150 blocks
        let big = dict_for("vortex"); // 5000 blocks
        assert!(big.code_bytes() > 4 * small.code_bytes());
    }

    #[test]
    fn mean_block_length_is_near_profile() {
        let p = spec::benchmark_by_name("lucas").unwrap(); // mean 15
        let d = BasicBlockDict::generate(p, 3);
        let total: usize = (0..d.num_blocks() as u32).map(|i| d.block(i).len()).sum();
        let mean = total as f64 / d.num_blocks() as f64;
        assert!(
            (mean - p.block_len_mean).abs() < p.block_len_mean * 0.35,
            "mean {mean} vs target {}",
            p.block_len_mean
        );
    }

    #[test]
    fn conditional_biases_within_range() {
        let d = dict_for("twolf");
        for i in 0..d.num_blocks() as u32 {
            let b = d.block(i);
            assert!((0.0..=1.0).contains(&b.bias));
            if *b.classes.last().unwrap() == InstrClass::BranchUncond {
                assert_eq!(b.bias, 1.0);
            }
        }
    }
}
