//! The correct-path trace generator.
//!
//! Walks the basic-block dictionary's control-flow graph, drawing branch
//! outcomes from per-block biases, memory addresses from the thread's
//! [`MemStream`], and register dependencies from a geometric distance
//! distribution. The resulting infinite instruction stream is fully
//! deterministic for a given `(profile, seed, thread_unique)` triple.

use crate::bbdict::{BasicBlockDict, TermKind};
use crate::instr::{DynInstr, InstrClass, LogReg, UncondKind, NUM_LOG_REGS};
use crate::memstream::MemStream;
use crate::profile::BenchProfile;
use crate::rng::Xoshiro256pp;
use crate::stream::InstrStream;
use std::collections::VecDeque;
use std::sync::Arc;

/// How many recent destination registers are remembered for dependency
/// selection.
const WRITER_WINDOW: usize = 48;

/// Probability that a pointer-chase load starts a *new* chain instead of
/// extending the current one. Real linked-structure traversals are
/// finite (mcf's arc lists average a handful of links) and interleave
/// several independent chains, which is what gives even mcf a little
/// memory-level parallelism.
pub(crate) const CHASE_CHAIN_BREAK: f64 = 0.25;

/// Stable hash of the benchmark name, used to seed code generation so
/// that all instances of a benchmark share identical code (they would in
/// reality: same binary).
fn code_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Build the static code dictionary for `profile` (shared helper for
/// the detailed and reduced-fidelity generators, so both see the same
/// code layout).
pub(crate) fn shared_dict(profile: &'static BenchProfile) -> Arc<BasicBlockDict> {
    Arc::new(BasicBlockDict::generate(profile, code_seed(profile.name)))
}

/// Deterministic generator of one thread's dynamic instruction stream.
pub struct TraceGenerator {
    profile: &'static BenchProfile,
    dict: Arc<BasicBlockDict>,
    mem: MemStream,
    rng: Xoshiro256pp,
    /// Current block / slot cursor.
    block: u32,
    slot: usize,
    /// Next dynamic sequence number.
    seq: u64,
    /// Recently written logical registers, newest at the back.
    recent_writers: VecDeque<LogReg>,
    /// Round-robin destination allocator.
    next_dst: LogReg,
    /// Destination register of the most recent load (for pointer chasing).
    last_load_dst: Option<LogReg>,
    /// Call stack of return-site block indices (bounded; see
    /// [`CALL_STACK_MAX`]).
    call_stack: Vec<u32>,
    /// Pending dynamic return target (set while emitting a `Ret`).
    ret_target: Option<u32>,
}

/// Maximum modelled call depth; deeper calls simply drop the oldest
/// frame (the RAS being 100-entry makes deeper nesting unobservable).
const CALL_STACK_MAX: usize = 64;

impl TraceGenerator {
    /// Build a generator for `profile` with behavioural seed `seed`.
    /// Code layout depends only on the benchmark, so multiple instances
    /// share I-cache footprints; behaviour (outcomes, addresses,
    /// dependencies) is seeded by `seed`.
    pub fn new(profile: &'static BenchProfile, seed: u64) -> Self {
        Self::with_dict(profile, shared_dict(profile), seed)
    }

    /// Build a generator reusing an existing dictionary (cheap way to
    /// spawn several instances of the same benchmark).
    pub fn with_dict(
        profile: &'static BenchProfile,
        dict: Arc<BasicBlockDict>,
        seed: u64,
    ) -> Self {
        TraceGenerator {
            profile,
            dict,
            mem: MemStream::new(&profile.mem, seed, seed & 0xffff),
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0x7ace_9e4e_0000_0001),
            block: 0,
            slot: 0,
            seq: 0,
            recent_writers: VecDeque::with_capacity(WRITER_WINDOW),
            next_dst: 1,
            last_load_dst: None,
            call_stack: Vec::with_capacity(CALL_STACK_MAX),
            ret_target: None,
        }
    }

    /// The benchmark profile this generator follows.
    pub fn profile(&self) -> &'static BenchProfile {
        self.profile
    }

    /// Shared handle to the static code dictionary (for wrong-path
    /// synthesis by the pipeline front-end).
    pub fn dict_arc(&self) -> Arc<BasicBlockDict> {
        Arc::clone(&self.dict)
    }

    /// Base addresses of this thread's [L1, L2, Mem] data regions (for
    /// cache warm-up by simulation drivers).
    pub fn data_region_bases(&self) -> [u64; 3] {
        self.mem.region_bases()
    }

    /// Draw a geometric dependency distance with the profile's mean.
    fn dep_distance(&mut self) -> usize {
        let mean = self.profile.dep_mean_dist.max(1.0);
        let p = 1.0 / mean;
        let mut d = 1usize;
        while d < WRITER_WINDOW && self.rng.gen::<f64>() > p {
            d += 1;
        }
        d
    }

    /// Pick a source register `distance` writes back, if the window has
    /// that much history.
    fn pick_src(&mut self) -> Option<LogReg> {
        if self.recent_writers.is_empty() {
            return None;
        }
        let d = self.dep_distance().min(self.recent_writers.len());
        let idx = self.recent_writers.len() - d;
        Some(self.recent_writers[idx])
    }

    /// Allocate the next destination register (round-robin over the
    /// logical file, skipping r0 which is the Alpha hard-wired zero).
    fn alloc_dst(&mut self) -> LogReg {
        let r = self.next_dst;
        self.next_dst = if self.next_dst + 1 >= NUM_LOG_REGS {
            1
        } else {
            self.next_dst + 1
        };
        r
    }

    fn record_writer(&mut self, r: LogReg) {
        if self.recent_writers.len() == WRITER_WINDOW {
            self.recent_writers.pop_front();
        }
        self.recent_writers.push_back(r);
    }
}

impl InstrStream for TraceGenerator {
    fn next_instr(&mut self) -> DynInstr {
        let dict = Arc::clone(&self.dict);
        let block = dict.block(self.block);
        let cls = block.classes[self.slot];
        let pc = block.base_pc + 4 * self.slot as u64;
        let seq = self.seq;
        self.seq += 1;

        let mut instr = DynInstr {
            seq,
            pc,
            class: cls,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: false,
            target: pc + 4,
            uncond_kind: UncondKind::Jump,
        };

        match cls {
            InstrClass::Load => {
                let chase = self.last_load_dst.is_some()
                    && self.rng.gen::<f64>() < self.profile.mem.pointer_chase_frac;
                if chase && self.rng.gen::<f64>() >= CHASE_CHAIN_BREAK {
                    // Address depends on the previous load's result.
                    instr.srcs[0] = self.last_load_dst;
                } else {
                    instr.srcs[0] = self.pick_src();
                }
                let (addr, _region) = self.mem.next_addr(chase);
                instr.mem_addr = addr;
                let d = self.alloc_dst();
                instr.dst = Some(d);
                self.record_writer(d);
                self.last_load_dst = Some(d);
            }
            InstrClass::Store => {
                // Stores read an address register and a data register.
                instr.srcs[0] = self.pick_src();
                instr.srcs[1] = self.pick_src();
                let (addr, _region) = self.mem.next_addr(false);
                instr.mem_addr = addr;
            }
            InstrClass::BranchCond => {
                instr.srcs[0] = self.pick_src();
                let taken = self.rng.gen::<f64>() < block.bias;
                instr.taken = taken;
                instr.target = dict.block(block.taken_succ).base_pc;
                // Advance control flow below.
            }
            InstrClass::BranchUncond => {
                instr.taken = true;
                match block.term {
                    TermKind::Call => {
                        instr.uncond_kind = UncondKind::Call;
                        instr.target = dict.block(block.taken_succ).base_pc;
                        if self.call_stack.len() == CALL_STACK_MAX {
                            self.call_stack.remove(0);
                        }
                        self.call_stack.push(block.fallthrough_succ);
                    }
                    TermKind::Ret => {
                        instr.uncond_kind = UncondKind::Ret;
                        let target_block = self
                            .call_stack
                            .pop()
                            .unwrap_or(block.taken_succ);
                        instr.target = dict.block(target_block).base_pc;
                        // Stash the dynamic successor for the cursor
                        // advance below via the target match.
                        self.ret_target = Some(target_block);
                    }
                    _ => {
                        instr.uncond_kind = UncondKind::Jump;
                        instr.target = dict.block(block.taken_succ).base_pc;
                    }
                }
            }
            InstrClass::Nop => {}
            _ => {
                // Compute instruction: up to two sources, one destination.
                instr.srcs[0] = self.pick_src();
                if self.rng.gen::<f64>() < 0.6 {
                    instr.srcs[1] = self.pick_src();
                }
                let d = self.alloc_dst();
                instr.dst = Some(d);
                self.record_writer(d);
            }
        }

        // Advance the cursor.
        if self.slot + 1 < block.classes.len() {
            self.slot += 1;
        } else {
            // Block terminator: follow the outcome (returns follow the
            // dynamic call stack).
            self.block = if let Some(rt) = self.ret_target.take() {
                rt
            } else if instr.class.is_branch() && instr.taken {
                block.taken_succ
            } else {
                block.fallthrough_succ
            };
            self.slot = 0;
        }

        instr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn generator(name: &str, seed: u64) -> TraceGenerator {
        TraceGenerator::new(spec::benchmark_by_name(name).unwrap(), seed)
    }

    #[test]
    fn deterministic_streams() {
        let mut a = generator("gcc", 5);
        let mut b = generator("gcc", 5);
        for _ in 0..5_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn seeds_change_behaviour_not_code() {
        let mut a = generator("gcc", 1);
        let mut b = generator("gcc", 2);
        let ia: Vec<_> = (0..2_000).map(|_| a.next_instr()).collect();
        let ib: Vec<_> = (0..2_000).map(|_| b.next_instr()).collect();
        assert_ne!(ia, ib);
        // Code is shared: every PC of stream b appears in stream a's dict.
        let dict = a.dict_arc();
        for i in &ib {
            let bi = dict.block_index_at(i.pc);
            let blk = dict.block(bi);
            assert!(i.pc >= blk.base_pc && i.pc < blk.end_pc());
        }
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut g = generator("swim", 3);
        let mut prev = g.next_instr().seq;
        for _ in 0..1_000 {
            let s = g.next_instr().seq;
            assert_eq!(s, prev + 1);
            prev = s;
        }
    }

    #[test]
    fn control_flow_is_consistent() {
        // next instruction's PC must equal previous instruction's next_pc.
        let mut g = generator("twolf", 9);
        let mut prev = g.next_instr();
        for _ in 0..10_000 {
            let cur = g.next_instr();
            assert_eq!(
                cur.pc,
                prev.next_pc(),
                "discontinuity after {:?}",
                prev
            );
            prev = cur;
        }
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let p = spec::benchmark_by_name("gzip").unwrap();
        let mut g = TraceGenerator::new(p, 17);
        let n = 40_000;
        let mut loads = 0;
        let mut branches = 0;
        for _ in 0..n {
            let i = g.next_instr();
            if i.class == InstrClass::Load {
                loads += 1;
            }
            if i.class.is_branch() {
                branches += 1;
            }
        }
        let load_frac = loads as f64 / n as f64;
        let br_frac = branches as f64 / n as f64;
        assert!(
            (load_frac - p.mix.load).abs() < 0.06,
            "load fraction {load_frac} vs {}",
            p.mix.load
        );
        // Branch fraction is 1/mean-block-length by construction.
        let expect = 1.0 / p.block_len_mean;
        assert!(
            (br_frac - expect).abs() < 0.08,
            "branch fraction {br_frac} vs {expect}"
        );
    }

    #[test]
    fn loads_have_destinations_and_stores_do_not() {
        let mut g = generator("mcf", 4);
        for _ in 0..5_000 {
            let i = g.next_instr();
            match i.class {
                InstrClass::Load => {
                    assert!(i.dst.is_some());
                    assert!(i.mem_addr != 0);
                }
                InstrClass::Store => {
                    assert!(i.dst.is_none());
                    assert!(i.mem_addr != 0);
                }
                InstrClass::BranchCond | InstrClass::BranchUncond => {
                    assert!(i.dst.is_none())
                }
                _ => {}
            }
        }
    }

    #[test]
    fn mcf_chases_pointers() {
        // A noticeable fraction of mcf loads must depend on the previous
        // load's destination register.
        let mut g = generator("mcf", 6);
        let mut chained = 0;
        let mut loads = 0;
        let mut last_dst: Option<LogReg> = None;
        for _ in 0..20_000 {
            let i = g.next_instr();
            if i.class == InstrClass::Load {
                loads += 1;
                if last_dst.is_some() && i.srcs[0] == last_dst {
                    chained += 1;
                }
                last_dst = i.dst;
            }
        }
        let frac = chained as f64 / loads as f64;
        assert!(frac > 0.2, "mcf chase fraction {frac}");
    }

    #[test]
    fn eon_has_longer_dependency_distances_than_mcf() {
        // Measure the mean distance (in dynamic instructions) between an
        // instruction and its first source's producer.
        let mean_dist = |name: &str| {
            let mut g = generator(name, 8);
            let mut writers: Vec<(LogReg, u64)> = Vec::new(); // (reg, seq)
            let mut total = 0u64;
            let mut count = 0u64;
            for _ in 0..30_000 {
                let i = g.next_instr();
                if let Some(s) = i.srcs[0] {
                    if let Some(&(_, wseq)) =
                        writers.iter().rev().find(|&&(r, _)| r == s)
                    {
                        total += i.seq - wseq;
                        count += 1;
                    }
                }
                if let Some(d) = i.dst {
                    writers.push((d, i.seq));
                    if writers.len() > 256 {
                        writers.drain(..128);
                    }
                }
            }
            total as f64 / count.max(1) as f64
        };
        assert!(
            mean_dist("eon") > mean_dist("mcf"),
            "eon should have more ILP than mcf"
        );
    }

    #[test]
    fn calls_and_returns_balance_through_the_stack() {
        // Model the call stack alongside the generator: whenever a Ret
        // is emitted while the model stack is non-empty, its target
        // must be the most recent call's fall-through block.
        let mut g = generator("gcc", 15);
        let dict = g.dict_arc();
        let mut model: Vec<u64> = Vec::new(); // expected return PCs
        let mut calls = 0;
        let mut rets = 0;
        let mut matched = 0;
        for _ in 0..200_000 {
            let i = g.next_instr();
            if i.class != InstrClass::BranchUncond {
                continue;
            }
            match i.uncond_kind {
                UncondKind::Call => {
                    calls += 1;
                    let bi = dict.block_index_at(i.pc);
                    let ft = dict.block(dict.block(bi).fallthrough_succ).base_pc;
                    if model.len() == 64 {
                        model.remove(0);
                    }
                    model.push(ft);
                }
                UncondKind::Ret => {
                    rets += 1;
                    if let Some(expect) = model.pop() {
                        assert_eq!(i.target, expect, "return to wrong site");
                        matched += 1;
                    }
                }
                UncondKind::Jump => {}
            }
        }
        assert!(calls > 100, "gcc should call often, got {calls}");
        assert!(rets > 100, "gcc should return often, got {rets}");
        assert!(matched > 80, "matched returns {matched}");
    }

    #[test]
    fn non_branches_carry_jump_kind() {
        let mut g = generator("swim", 2);
        for _ in 0..2_000 {
            let i = g.next_instr();
            if i.class != InstrClass::BranchUncond {
                assert_eq!(i.uncond_kind, UncondKind::Jump);
            }
        }
    }

    #[test]
    fn branch_outcomes_respect_bias_on_average() {
        let mut g = generator("swim", 10); // fp: highly predictable
        let mut taken = 0;
        let mut cond = 0;
        for _ in 0..30_000 {
            let i = g.next_instr();
            if i.class == InstrClass::BranchCond {
                cond += 1;
                if i.taken {
                    taken += 1;
                }
            }
        }
        assert!(cond > 300);
        // With mostly strongly biased branches, outcomes should be far
        // from a fair coin on aggregate.
        let rate = taken as f64 / cond as f64;
        assert!(
            !(0.45..=0.55).contains(&rate),
            "swim branch taken-rate {rate} looks like noise"
        );
    }
}
