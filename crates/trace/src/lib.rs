#![forbid(unsafe_code)]
//! # smtsim-trace — synthetic instruction traces for the MFLUSH reproduction
//!
//! The original paper drives an SMTsim-derived simulator with traces of the
//! most representative 300M-instruction segments of SPEC2000 binaries
//! compiled for the DEC Alpha AXP-21264. Those traces (and the binaries)
//! are not available, so this crate provides the substitution documented in
//! `DESIGN.md` §4: a **deterministic synthetic trace generator** with one
//! calibrated profile per SPEC2000 benchmark.
//!
//! The generator models exactly the trace properties the paper's mechanisms
//! depend on:
//!
//! * **instruction mix** (loads / stores / branches / int / fp),
//! * **instruction-level parallelism**, via a geometric dependency-distance
//!   distribution and explicit pointer-chasing load chains,
//! * **branch predictability**, via per-static-branch biases and pattern
//!   behaviour that a real predictor can learn,
//! * **memory behaviour**, via a mixture of working sets sized to hit in
//!   L1, hit in L2, or miss to memory, with bursty phases,
//! * **code footprint**, via a basic-block dictionary that also serves
//!   wrong-path fetch (as SMTsim's separate basic-block dictionary does).
//!
//! Streams are infinite, deterministic for a given `(benchmark, seed)`
//! pair, and cheap to fork — which is what a trace-driven SMT pipeline
//! needs to replay instructions after a flush.
//!
//! ```
//! use smtsim_trace::{spec, InstrClass, InstrStream, TraceGenerator};
//!
//! let profile = spec::benchmark_by_key('d').unwrap(); // mcf
//! let mut gen = TraceGenerator::new(profile, 42);
//! let instr = gen.next_instr();
//! assert!(instr.pc % 4 == 0);
//! let frac_loads = (0..10_000)
//!     .filter(|_| gen.next_instr().class == InstrClass::Load)
//!     .count() as f64 / 10_000.0;
//! assert!(frac_loads > 0.15, "mcf is load heavy");
//! ```

pub mod analysis;
pub mod bbdict;
pub mod check;
pub mod fastgen;
pub mod gen;
pub mod instr;
pub mod memstream;
pub mod profile;
pub mod rng;
pub mod serialize;
pub mod spec;
pub mod stream;

pub use analysis::{analyze, TraceStats};
pub use bbdict::{BasicBlock, BasicBlockDict};
pub use fastgen::FastTraceGenerator;
pub use gen::TraceGenerator;
pub use instr::{DynInstr, InstrClass, LogReg, UncondKind, NUM_LOG_REGS};
pub use memstream::{MemRegion, MemStream};
pub use profile::{BenchProfile, InstrMix, MemProfile, Suite};
pub use rng::{SplitMix64, Xoshiro256pp};
pub use serialize::{TraceError, TraceReader, TraceWriter};
pub use stream::{InstrStream, ReplayableStream};
