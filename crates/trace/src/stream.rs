//! Stream abstraction plus flush/replay support.
//!
//! The FLUSH response action squashes already-fetched instructions and
//! later *refetches* them (paper §4: "By the time the offending memory
//! access is resolved, the thread resumes its execution, fetching again
//! in the execution pipeline all flushed instructions"). In a
//! trace-driven simulator refetching means rewinding the trace. The
//! [`ReplayableStream`] wrapper makes any [`InstrStream`] rewindable: the
//! pipeline returns squashed instructions with [`ReplayableStream::unfetch`]
//! and they are handed out again, byte-identical, on subsequent fetches.

use crate::instr::DynInstr;
use std::collections::VecDeque;

/// An infinite source of dynamic instructions for one thread.
pub trait InstrStream {
    /// Produce the next correct-path instruction.
    fn next_instr(&mut self) -> DynInstr;
}

/// Blanket impl so boxed streams are streams too.
impl<S: InstrStream + ?Sized> InstrStream for Box<S> {
    fn next_instr(&mut self) -> DynInstr {
        (**self).next_instr()
    }
}

/// A rewindable wrapper over any instruction stream.
pub struct ReplayableStream<S> {
    inner: S,
    /// Squashed instructions awaiting refetch, in program order
    /// (front = oldest = next to fetch).
    replay: VecDeque<DynInstr>,
    /// Total instructions handed out (including replays).
    fetched: u64,
    /// Total instructions replayed after a squash.
    replayed: u64,
}

impl<S: InstrStream> ReplayableStream<S> {
    /// Wrap a stream.
    pub fn new(inner: S) -> Self {
        ReplayableStream {
            inner,
            replay: VecDeque::new(),
            fetched: 0,
            replayed: 0,
        }
    }

    /// Fetch the next instruction: a pending replay if any, otherwise a
    /// fresh instruction from the underlying stream.
    pub fn fetch(&mut self) -> DynInstr {
        self.fetched += 1;
        if let Some(i) = self.replay.pop_front() {
            self.replayed += 1;
            i
        } else {
            self.inner.next_instr()
        }
    }

    /// Peek at the next instruction without consuming it.
    pub fn peek(&mut self) -> DynInstr {
        if let Some(&i) = self.replay.front() {
            i
        } else {
            let i = self.inner.next_instr();
            self.replay.push_front(i);
            i
        }
    }

    /// Return squashed instructions to the stream. `instrs` must be in
    /// **program order** (oldest first) and must all be older than
    /// anything currently pending; they will be fetched again before any
    /// new instruction.
    pub fn unfetch<I>(&mut self, instrs: I)
    where
        I: IntoIterator<Item = DynInstr>,
        I::IntoIter: DoubleEndedIterator,
    {
        for i in instrs.into_iter().rev() {
            if let Some(front) = self.replay.front() {
                debug_assert!(
                    i.seq < front.seq,
                    "unfetch must prepend older instructions ({} >= {})",
                    i.seq,
                    front.seq
                );
            }
            self.replay.push_front(i);
        }
    }

    /// Number of instructions currently awaiting replay.
    pub fn pending_replay(&self) -> usize {
        self.replay.len()
    }

    /// Total instructions fetched (including replays).
    pub fn total_fetched(&self) -> u64 {
        self.fetched
    }

    /// Total instructions that were fetched more than once.
    pub fn total_replayed(&self) -> u64 {
        self.replayed
    }

    /// Access the wrapped stream.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped stream.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::DynInstr;

    /// Simple counting stream for tests.
    struct Counter(u64);
    impl InstrStream for Counter {
        fn next_instr(&mut self) -> DynInstr {
            let i = DynInstr::nop(self.0, 0x1000 + 4 * self.0);
            self.0 += 1;
            i
        }
    }

    #[test]
    fn passthrough_without_replay() {
        let mut s = ReplayableStream::new(Counter(0));
        for want in 0..100 {
            assert_eq!(s.fetch().seq, want);
        }
        assert_eq!(s.total_replayed(), 0);
        assert_eq!(s.total_fetched(), 100);
    }

    #[test]
    fn unfetch_replays_in_program_order() {
        let mut s = ReplayableStream::new(Counter(0));
        let fetched: Vec<_> = (0..10).map(|_| s.fetch()).collect();
        // Squash instructions 4..10 (program order).
        s.unfetch(fetched[4..].to_vec());
        assert_eq!(s.pending_replay(), 6);
        for want in 4..10 {
            assert_eq!(s.fetch().seq, want);
        }
        // After draining replays, we continue with fresh instructions.
        assert_eq!(s.fetch().seq, 10);
        assert_eq!(s.total_replayed(), 6);
    }

    #[test]
    fn nested_unfetch_keeps_order() {
        let mut s = ReplayableStream::new(Counter(0));
        let a: Vec<_> = (0..8).map(|_| s.fetch()).collect();
        s.unfetch(a[6..].to_vec()); // replay 6,7
        let b = s.fetch(); // 6
        assert_eq!(b.seq, 6);
        // Squash again, deeper: 3..=7 (3,4,5 newer than current replay 7!)
        // Legal usage: squashed set must be older than pending, so
        // prepend 3..6 only after draining — here we emulate a deeper
        // squash by returning 6 and then 3..6.
        s.unfetch([b]); // put 6 back
        s.unfetch(a[3..6].to_vec());
        for want in 3..8 {
            assert_eq!(s.fetch().seq, want);
        }
        assert_eq!(s.fetch().seq, 8);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut s = ReplayableStream::new(Counter(0));
        let p = s.peek();
        assert_eq!(p.seq, 0);
        assert_eq!(s.fetch().seq, 0);
        assert_eq!(s.fetch().seq, 1);
    }

    #[test]
    fn replayed_instructions_are_identical() {
        let mut s = ReplayableStream::new(Counter(0));
        let orig: Vec<_> = (0..5).map(|_| s.fetch()).collect();
        s.unfetch(orig.clone());
        let again: Vec<_> = (0..5).map(|_| s.fetch()).collect();
        assert_eq!(orig, again);
    }
}
