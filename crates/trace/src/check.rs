//! Minimal in-repo property-testing harness.
//!
//! Replaces `proptest` for the workspace's four property suites without
//! leaving `std`. The model is deliberately small: a property is a
//! closure over a [`Gen`] (a seeded source of random test data); the
//! harness runs it for a fixed number of cases, each derived
//! deterministically from a base seed, and on failure reports the exact
//! per-case seed so the case replays in isolation. There is no
//! shrinking — the reproducing seed plus deterministic generation is
//! the debugging handle.
//!
//! ```
//! use smtsim_trace::check::Cases;
//!
//! Cases::new(32).run("addition_commutes", |g| {
//!     let a = g.u64_in(0..1_000);
//!     let b = g.u64_in(0..1_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Set `SMTSIM_PROP_SEED` to change the base seed (e.g. to widen CI
//! coverage over time), or `SMTSIM_PROP_REPLAY` to the seed printed by
//! a failure to re-run just that case.

use crate::rng::Xoshiro256pp;
// lint: allow(D7) -- the property harness re-panics with the reproducing seed attached; nothing is swallowed
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Base seed used when `SMTSIM_PROP_SEED` is not set. Fixed so that
/// plain `cargo test` is reproducible run-to-run.
pub const DEFAULT_BASE_SEED: u64 = 0x5eed_c45e_5eed_c45e;

/// Source of random test data for one property case.
pub struct Gen {
    rng: Xoshiro256pp,
    /// The seed this case was built from (echoed in failure reports).
    seed: u64,
}

impl Gen {
    /// Generator for an explicit case seed.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: Xoshiro256pp::seed_from_u64(seed),
            seed,
        }
    }

    /// The case seed (for embedding in assertion messages).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `u64` in a half-open range.
    pub fn u64_in(&mut self, r: std::ops::Range<u64>) -> u64 {
        self.rng.gen_range(r)
    }

    /// Uniform `usize` in a half-open range.
    pub fn usize_in(&mut self, r: std::ops::Range<usize>) -> usize {
        self.rng.gen_range(r)
    }

    /// Uniform `u32` in a half-open range.
    pub fn u32_in(&mut self, r: std::ops::Range<u32>) -> u32 {
        self.rng.gen_range(r)
    }

    /// Full-range `u64`.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.gen()
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.rng.gen_range(0..items.len())]
    }

    /// Vector with a uniformly drawn length in `len`, elements produced
    /// by `f`.
    pub fn vec_of<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// A configured property run: how many cases, from which base seed.
pub struct Cases {
    cases: u32,
    base_seed: u64,
}

impl Cases {
    /// Run `cases` cases from the default (or env-overridden) base seed.
    pub fn new(cases: u32) -> Self {
        let base_seed = std::env::var("SMTSIM_PROP_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(DEFAULT_BASE_SEED);
        Cases { cases, base_seed }
    }

    /// Override the base seed (mostly for the harness's own tests).
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Run the property. Each case gets a [`Gen`] seeded with
    /// `splitmix(base_seed + case_index)`; a panicking case aborts the
    /// run with a report naming the property, the case number and the
    /// reproducing seed.
    // lint: allow(D11) -- the property harness's job is to panic with a reproducing seed; tests only, never in a sweep
    pub fn run(self, name: &str, prop: impl Fn(&mut Gen)) {
        if let Some(seed) = std::env::var("SMTSIM_PROP_REPLAY")
            .ok()
            .and_then(|v| parse_seed(&v))
        {
            // Replay mode: run exactly one case, without catching the
            // panic, so backtraces point at the property itself.
            let mut g = Gen::from_seed(seed);
            prop(&mut g);
            return;
        }
        for case in 0..self.cases {
            // Mix the case index through SplitMix64 so case seeds are
            // decorrelated even though indices are sequential.
            let seed = crate::rng::SplitMix64::new(self.base_seed.wrapping_add(case as u64))
                .next_u64();
            let mut g = Gen::from_seed(seed);
            // lint: allow(D7) -- failure is re-raised below with the case seed; the panic is annotated, not swallowed
            let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut g)));
            if let Err(payload) = outcome {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                panic!(
                    "property '{name}' failed at case {case}/{total}\n  \
                     reproducing seed: {seed:#018x}\n  \
                     (re-run with SMTSIM_PROP_REPLAY={seed:#x})\n  \
                     cause: {msg}",
                    total = self.cases,
                );
            }
        }
    }
}

/// Accept decimal or `0x`-prefixed hex seeds from the environment.
fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        Cases::new(17).with_base_seed(1).run("counts", |g| {
            let _ = g.any_u64();
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn failing_property_reports_seed() {
        // lint: allow(D7) -- this test asserts the harness's failure report, so it must intercept the panic
        let result = catch_unwind(|| {
            Cases::new(50).with_base_seed(2).run("always_fails", |g| {
                let x = g.u64_in(0..100);
                assert!(x > 1_000, "x was {x}");
            });
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("reproducing seed"), "{msg}");
        assert!(msg.contains("SMTSIM_PROP_REPLAY"), "{msg}");
        assert!(msg.contains("x was"), "{msg}");
    }

    #[test]
    fn same_base_seed_replays_identical_data() {
        let collect = |base: u64| {
            let data = std::cell::RefCell::new(Vec::new());
            Cases::new(8).with_base_seed(base).run("collect", |g| {
                data.borrow_mut().push((g.any_u64(), g.f64_unit()));
            });
            data.into_inner()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn gen_helpers_respect_ranges() {
        Cases::new(64).with_base_seed(3).run("helpers", |g| {
            assert!(g.u64_in(5..10) < 10);
            assert!(g.usize_in(0..3) < 3);
            assert!(g.f64_unit() < 1.0);
            let v = g.vec_of(1..9, |g| g.u32_in(0..4));
            assert!(!v.is_empty() && v.len() < 9);
            let items = [10, 20, 30];
            assert!(items.contains(g.choose(&items)));
        });
    }
}
