//! Trace analysis: measure the aggregate properties of an instruction
//! stream — the same quantities the benchmark profiles promise.
//!
//! Used to validate that generated streams deliver their calibration
//! targets (the profile-fidelity tests) and by the `trace_tools`
//! example to summarise captured traces.

use crate::instr::{DynInstr, InstrClass, UncondKind};
use crate::stream::InstrStream;
// BTreeSet, not HashSet: footprint counting must not depend on the
// per-process hasher seed (determinism lint rule D1).
use std::collections::BTreeSet;

/// Aggregate statistics of an instruction stream.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    pub instructions: u64,
    pub loads: u64,
    pub stores: u64,
    pub branches_cond: u64,
    pub branches_uncond: u64,
    pub calls: u64,
    pub rets: u64,
    pub fp_ops: u64,
    pub taken_cond: u64,
    /// Distinct 64-byte data lines touched.
    pub data_lines: u64,
    /// Distinct 64-byte code lines touched.
    pub code_lines: u64,
    /// Distinct 8 KB data pages touched.
    pub data_pages: u64,
    /// Histogram of dependency distances (in dynamic instructions) from
    /// each instruction to its first source's most recent producer;
    /// index = distance − 1, saturating at the last bucket.
    pub dep_distance: [u64; 32],
}

impl TraceStats {
    /// Fraction helper.
    fn frac(&self, n: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            n as f64 / self.instructions as f64
        }
    }

    /// Fraction of loads.
    pub fn load_frac(&self) -> f64 {
        self.frac(self.loads)
    }

    /// Fraction of stores.
    pub fn store_frac(&self) -> f64 {
        self.frac(self.stores)
    }

    /// Fraction of branches (conditional + unconditional).
    pub fn branch_frac(&self) -> f64 {
        self.frac(self.branches_cond + self.branches_uncond)
    }

    /// Fraction of floating-point compute.
    pub fn fp_frac(&self) -> f64 {
        self.frac(self.fp_ops)
    }

    /// Taken rate of conditional branches.
    pub fn taken_rate(&self) -> f64 {
        if self.branches_cond == 0 {
            0.0
        } else {
            self.taken_cond as f64 / self.branches_cond as f64
        }
    }

    /// Mean dependency distance (dynamic instructions to the producer).
    pub fn mean_dep_distance(&self) -> f64 {
        let total: u64 = self.dep_distance.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .dep_distance
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Touched data footprint in bytes (line granularity).
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_lines * 64
    }
}

/// Analyse `n` instructions from a stream.
pub fn analyze<S: InstrStream>(stream: &mut S, n: u64) -> TraceStats {
    let mut s = TraceStats::default();
    let mut data_lines = BTreeSet::new();
    let mut code_lines = BTreeSet::new();
    let mut data_pages = BTreeSet::new();
    // (logical reg, seq) of most recent writers.
    let mut writers: Vec<(u8, u64)> = Vec::new();
    for _ in 0..n {
        let i = stream.next_instr();
        s.instructions += 1;
        code_lines.insert(i.pc / 64);
        match i.class {
            InstrClass::Load => s.loads += 1,
            InstrClass::Store => s.stores += 1,
            InstrClass::BranchCond => {
                s.branches_cond += 1;
                if i.taken {
                    s.taken_cond += 1;
                }
            }
            InstrClass::BranchUncond => {
                s.branches_uncond += 1;
                match i.uncond_kind {
                    UncondKind::Call => s.calls += 1,
                    UncondKind::Ret => s.rets += 1,
                    UncondKind::Jump => {}
                }
            }
            InstrClass::FpAlu | InstrClass::FpMul | InstrClass::FpDiv => s.fp_ops += 1,
            _ => {}
        }
        if i.class.is_mem() {
            data_lines.insert(i.mem_addr / 64);
            data_pages.insert(i.mem_addr / 8192);
        }
        record_dep(&mut s, &writers, &i);
        if let Some(d) = i.dst {
            writers.push((d, i.seq));
            if writers.len() > 512 {
                writers.drain(..256);
            }
        }
    }
    s.data_lines = data_lines.len() as u64;
    s.code_lines = code_lines.len() as u64;
    s.data_pages = data_pages.len() as u64;
    s
}

fn record_dep(s: &mut TraceStats, writers: &[(u8, u64)], i: &DynInstr) {
    let Some(src) = i.srcs[0] else { return };
    if let Some(&(_, wseq)) = writers.iter().rev().find(|&&(r, _)| r == src) {
        let d = (i.seq - wseq) as usize;
        let idx = d.saturating_sub(1).min(s.dep_distance.len() - 1);
        s.dep_distance[idx] += 1;
    }
}

/// Render the statistics as a small text report.
pub fn report(s: &TraceStats) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "instructions      {}", s.instructions);
    let _ = writeln!(out, "loads             {:.2}%", 100.0 * s.load_frac());
    let _ = writeln!(out, "stores            {:.2}%", 100.0 * s.store_frac());
    let _ = writeln!(out, "branches          {:.2}%", 100.0 * s.branch_frac());
    let _ = writeln!(out, "fp compute        {:.2}%", 100.0 * s.fp_frac());
    let _ = writeln!(out, "calls / rets      {} / {}", s.calls, s.rets);
    let _ = writeln!(out, "cond taken rate   {:.3}", s.taken_rate());
    let _ = writeln!(out, "mean dep distance {:.2}", s.mean_dep_distance());
    let _ = writeln!(
        out,
        "footprint         {} KB data ({} pages), {} KB code",
        s.data_footprint_bytes() >> 10,
        s.data_pages,
        (s.code_lines * 64) >> 10
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::spec;

    fn stats_for(name: &str, n: u64) -> TraceStats {
        let mut g = TraceGenerator::new(spec::benchmark_by_name(name).unwrap(), 77);
        analyze(&mut g, n)
    }

    #[test]
    fn mix_matches_profile_targets() {
        for name in ["gzip", "mcf", "swim", "vortex"] {
            let p = spec::benchmark_by_name(name).unwrap();
            let s = stats_for(name, 40_000);
            assert!(
                (s.load_frac() - p.mix.load).abs() < 0.06,
                "{name}: load {:.3} vs target {:.3}",
                s.load_frac(),
                p.mix.load
            );
            assert!(
                (s.store_frac() - p.mix.store).abs() < 0.05,
                "{name}: store {:.3} vs target {:.3}",
                s.store_frac(),
                p.mix.store
            );
        }
    }

    #[test]
    fn fp_benchmarks_have_fp_work() {
        assert!(stats_for("swim", 20_000).fp_frac() > 0.25);
        assert_eq!(stats_for("gzip", 20_000).fp_frac(), 0.0);
    }

    #[test]
    fn dependency_distance_ordering() {
        // eon is declared higher-ILP than mcf.
        let eon = stats_for("eon", 30_000).mean_dep_distance();
        let mcf = stats_for("mcf", 30_000).mean_dep_distance();
        assert!(eon > mcf, "eon {eon:.2} vs mcf {mcf:.2}");
    }

    #[test]
    fn footprint_ordering() {
        // mcf touches far more data than eon in the same window.
        let mcf = stats_for("mcf", 30_000).data_footprint_bytes();
        let eon = stats_for("eon", 30_000).data_footprint_bytes();
        assert!(mcf > 2 * eon, "mcf {mcf} vs eon {eon}");
    }

    #[test]
    fn code_footprint_tracks_block_count() {
        let vortex = stats_for("vortex", 60_000).code_lines; // 5000 blocks
        let swim = stats_for("swim", 60_000).code_lines; // 150 blocks
        assert!(vortex > swim);
    }

    #[test]
    fn report_renders() {
        let s = stats_for("gcc", 5_000);
        let r = report(&s);
        assert!(r.contains("instructions      5000"));
        assert!(r.contains("mean dep distance"));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = TraceStats::default();
        assert_eq!(s.load_frac(), 0.0);
        assert_eq!(s.taken_rate(), 0.0);
        assert_eq!(s.mean_dep_distance(), 0.0);
    }
}

