//! Dynamic instruction representation shared by the whole simulator.
//!
//! A trace-driven simulator carries no data values: an instruction is its
//! *class* (which decides functional unit and latency), its register
//! dependencies, and — for memory and control instructions — an effective
//! address or branch outcome. This mirrors what SMTsim extracts from Alpha
//! traces.


/// Number of architectural (logical) registers the synthetic ISA exposes.
///
/// The Alpha has 32 integer + 32 floating-point registers; we model a flat
/// file of 64 logical registers, which is what matters for renaming
/// pressure against the shared pool of 320 physical registers (Fig. 1).
pub const NUM_LOG_REGS: u8 = 64;

/// A logical (architectural) register identifier, `0..NUM_LOG_REGS`.
pub type LogReg = u8;

/// Functional class of an instruction.
///
/// The class determines which issue queue the instruction occupies
/// (int / fp / load-store, 64 entries each per Fig. 1), which execution
/// unit it needs (4 int, 3 fp, 2 ld/st) and its execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply.
    IntMul,
    /// Floating-point add/sub/compare.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Long-latency floating-point divide / sqrt.
    FpDiv,
    /// Memory load — the protagonist of this paper.
    Load,
    /// Memory store (retires from the store queue at commit).
    Store,
    /// Conditional branch.
    BranchCond,
    /// Unconditional branch / jump / call / return.
    BranchUncond,
    /// No-op (pipeline filler, also used for wrong-path junk).
    Nop,
}

impl InstrClass {
    /// Execution latency in cycles once issued to a functional unit.
    ///
    /// Loads report their *cache-hit pipeline* latency here; the memory
    /// hierarchy adds the real access time.
    #[inline]
    pub fn exec_latency(self) -> u32 {
        match self {
            InstrClass::IntAlu | InstrClass::Nop => 1,
            InstrClass::IntMul => 3,
            InstrClass::FpAlu => 2,
            InstrClass::FpMul => 4,
            InstrClass::FpDiv => 12,
            InstrClass::Load | InstrClass::Store => 1,
            InstrClass::BranchCond | InstrClass::BranchUncond => 1,
        }
    }

    /// True for instructions dispatched to the integer queue.
    #[inline]
    pub fn is_int(self) -> bool {
        matches!(
            self,
            InstrClass::IntAlu
                | InstrClass::IntMul
                | InstrClass::BranchCond
                | InstrClass::BranchUncond
                | InstrClass::Nop
        )
    }

    /// True for instructions dispatched to the floating-point queue.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, InstrClass::FpAlu | InstrClass::FpMul | InstrClass::FpDiv)
    }

    /// True for instructions dispatched to the load/store queue.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }

    /// True for control-flow instructions.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, InstrClass::BranchCond | InstrClass::BranchUncond)
    }
}

/// Sub-kind of an unconditional branch. Calls and returns drive the
/// per-thread Return Address Stack (Fig. 1: 100 entries, replicated);
/// plain jumps rely on the BTB alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UncondKind {
    /// Direct jump (also the value carried by non-branch instructions).
    #[default]
    Jump,
    /// Call: pushes the return address onto the RAS.
    Call,
    /// Return: target predicted by popping the RAS.
    Ret,
}

/// One dynamic instruction as produced by the trace front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInstr {
    /// Per-thread dynamic sequence number (0, 1, 2, …). Monotonic along
    /// the *correct* path; wrong-path instructions are tagged separately
    /// by the pipeline and never commit.
    pub seq: u64,
    /// Program counter (byte address, 4-byte aligned).
    pub pc: u64,
    /// Functional class.
    pub class: InstrClass,
    /// Source logical registers (`None` = unused slot).
    pub srcs: [Option<LogReg>; 2],
    /// Destination logical register, if any.
    pub dst: Option<LogReg>,
    /// Effective address for loads/stores (8-byte aligned), else 0.
    pub mem_addr: u64,
    /// Branch outcome for `BranchCond` / always true for `BranchUncond`.
    pub taken: bool,
    /// Branch target (valid when `class.is_branch()`), else `pc + 4`.
    pub target: u64,
    /// Call/return flavour of a `BranchUncond` (`Jump` otherwise).
    pub uncond_kind: UncondKind,
}

impl DynInstr {
    /// A canonical no-op, used for wrong-path filler and tests.
    pub fn nop(seq: u64, pc: u64) -> Self {
        DynInstr {
            seq,
            pc,
            class: InstrClass::Nop,
            srcs: [None, None],
            dst: None,
            mem_addr: 0,
            taken: false,
            target: pc.wrapping_add(4),
            uncond_kind: UncondKind::Jump,
        }
    }

    /// Address of the next sequential instruction.
    #[inline]
    pub fn fallthrough(&self) -> u64 {
        self.pc.wrapping_add(4)
    }

    /// Address the front-end should fetch after this instruction on the
    /// correct path.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        if self.class.is_branch() && self.taken {
            self.target
        } else {
            self.fallthrough()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_queues_are_disjoint_and_total() {
        let all = [
            InstrClass::IntAlu,
            InstrClass::IntMul,
            InstrClass::FpAlu,
            InstrClass::FpMul,
            InstrClass::FpDiv,
            InstrClass::Load,
            InstrClass::Store,
            InstrClass::BranchCond,
            InstrClass::BranchUncond,
            InstrClass::Nop,
        ];
        for c in all {
            let count = [c.is_int(), c.is_fp(), c.is_mem()]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(count, 1, "{c:?} must map to exactly one issue queue");
        }
    }

    #[test]
    fn latencies_are_positive_and_fpdiv_is_longest() {
        let all = [
            InstrClass::IntAlu,
            InstrClass::IntMul,
            InstrClass::FpAlu,
            InstrClass::FpMul,
            InstrClass::FpDiv,
            InstrClass::Load,
            InstrClass::Store,
            InstrClass::BranchCond,
            InstrClass::BranchUncond,
            InstrClass::Nop,
        ];
        for c in all {
            assert!(c.exec_latency() >= 1);
            assert!(c.exec_latency() <= InstrClass::FpDiv.exec_latency());
        }
    }

    #[test]
    fn next_pc_follows_taken_branches() {
        let mut i = DynInstr::nop(0, 0x1000);
        assert_eq!(i.next_pc(), 0x1004);
        i.class = InstrClass::BranchCond;
        i.taken = false;
        i.target = 0x2000;
        assert_eq!(i.next_pc(), 0x1004);
        i.taken = true;
        assert_eq!(i.next_pc(), 0x2000);
    }

    #[test]
    fn branch_classes_flagged() {
        assert!(InstrClass::BranchCond.is_branch());
        assert!(InstrClass::BranchUncond.is_branch());
        assert!(!InstrClass::Load.is_branch());
    }
}
