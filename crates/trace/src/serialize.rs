//! Trace capture and replay.
//!
//! The paper's methodology collects traces once and replays them under
//! every fetch policy so that results are comparable. Our generator is
//! deterministic, which gives the same property for free, but capturing
//! a trace to disk is still useful for debugging, for sharing repro
//! cases, and for replaying a stream without paying generation cost.
//!
//! Format (version 2): a 16-byte header (`magic`, `version`, 8 reserved
//! zero bytes) followed by fixed-size 40-byte little-endian records.
//! The last two bytes of each record hold an additive-mod-2^16 checksum
//! of the preceding 38 bytes, which provably detects every single-bit
//! flip in a record (flipping bit `b` of any payload byte changes the
//! sum by ±2^b ≠ 0 mod 2^16, and a flip in the checksum bytes leaves
//! the recomputed sum unchanged). Corruption — a failed checksum, an
//! out-of-range field, a damaged header, or a mid-record truncation —
//! surfaces as [`TraceError::Corrupt`] with the byte offset; it never
//! panics. A truncation at an exact record boundary is indistinguishable
//! from a shorter capture by design: this is a streaming format and the
//! header carries no trusted length.

use crate::instr::{DynInstr, InstrClass, UncondKind};
use crate::stream::InstrStream;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: u32 = 0x4d46_5452; // "MFTR"
const VERSION: u32 = 2;
const HEADER_BYTES: usize = 16;
const RECORD_BYTES: usize = 40;
/// Bytes covered by the per-record checksum (everything before it).
const CHECKED_BYTES: usize = 38;

/// Why a trace could not be read.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The byte stream is not a valid trace: bad header, failed record
    /// checksum, out-of-range field, or mid-record truncation.
    Corrupt {
        /// Byte offset of the damaged header field or record start.
        offset: u64,
        /// Human-readable description of the damage.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Corrupt { offset, detail } => {
                write!(f, "corrupt trace at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn corrupt(offset: u64, detail: impl Into<String>) -> TraceError {
    TraceError::Corrupt {
        offset,
        detail: detail.into(),
    }
}

fn class_to_u8(c: InstrClass) -> u8 {
    match c {
        InstrClass::IntAlu => 0,
        InstrClass::IntMul => 1,
        InstrClass::FpAlu => 2,
        InstrClass::FpMul => 3,
        InstrClass::FpDiv => 4,
        InstrClass::Load => 5,
        InstrClass::Store => 6,
        InstrClass::BranchCond => 7,
        InstrClass::BranchUncond => 8,
        InstrClass::Nop => 9,
    }
}

fn class_from_u8(b: u8, offset: u64) -> Result<InstrClass, TraceError> {
    Ok(match b {
        0 => InstrClass::IntAlu,
        1 => InstrClass::IntMul,
        2 => InstrClass::FpAlu,
        3 => InstrClass::FpMul,
        4 => InstrClass::FpDiv,
        5 => InstrClass::Load,
        6 => InstrClass::Store,
        7 => InstrClass::BranchCond,
        8 => InstrClass::BranchUncond,
        9 => InstrClass::Nop,
        _ => return Err(corrupt(offset, format!("bad instruction class byte {b}"))),
    })
}

/// Additive checksum of a record's payload bytes.
fn record_checksum(buf: &[u8; RECORD_BYTES]) -> u16 {
    buf[..CHECKED_BYTES]
        .iter()
        .fold(0u16, |acc, &b| acc.wrapping_add(b as u16))
}

/// Encode one instruction into a fixed-size record.
fn encode(i: &DynInstr, buf: &mut [u8; RECORD_BYTES]) {
    buf[..8].copy_from_slice(&i.seq.to_le_bytes());
    buf[8..16].copy_from_slice(&i.pc.to_le_bytes());
    buf[16..24].copy_from_slice(&i.mem_addr.to_le_bytes());
    buf[24..32].copy_from_slice(&i.target.to_le_bytes());
    buf[32] = class_to_u8(i.class);
    buf[33] = i.srcs[0].map(|r| r + 1).unwrap_or(0);
    buf[34] = i.srcs[1].map(|r| r + 1).unwrap_or(0);
    buf[35] = i.dst.map(|r| r + 1).unwrap_or(0);
    buf[36] = i.taken as u8;
    buf[37] = match i.uncond_kind {
        UncondKind::Jump => 0,
        UncondKind::Call => 1,
        UncondKind::Ret => 2,
    };
    let sum = record_checksum(buf);
    buf[38..40].copy_from_slice(&sum.to_le_bytes());
}

/// Decode one fixed-size record starting at byte `offset` of the
/// stream. Checks the checksum first so that field validation only ever
/// sees bytes the writer produced.
fn decode(buf: &[u8; RECORD_BYTES], offset: u64) -> Result<DynInstr, TraceError> {
    let stored = u16::from_le_bytes([buf[38], buf[39]]);
    let computed = record_checksum(buf);
    if stored != computed {
        return Err(corrupt(
            offset,
            format!("record checksum mismatch (stored {stored:#06x}, computed {computed:#06x})"),
        ));
    }
    let reg = |b: u8| if b == 0 { None } else { Some(b - 1) };
    Ok(DynInstr {
        seq: u64::from_le_bytes(buf[..8].try_into().expect("8-byte slice")),
        pc: u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice")),
        mem_addr: u64::from_le_bytes(buf[16..24].try_into().expect("8-byte slice")),
        target: u64::from_le_bytes(buf[24..32].try_into().expect("8-byte slice")),
        class: class_from_u8(buf[32], offset)?,
        srcs: [reg(buf[33]), reg(buf[34])],
        dst: reg(buf[35]),
        taken: match buf[36] {
            0 => false,
            1 => true,
            b => return Err(corrupt(offset, format!("bad taken byte {b}"))),
        },
        uncond_kind: match buf[37] {
            0 => UncondKind::Jump,
            1 => UncondKind::Call,
            2 => UncondKind::Ret,
            b => return Err(corrupt(offset, format!("bad uncond-kind byte {b}"))),
        },
    })
}

/// Streaming trace writer.
pub struct TraceWriter<W: Write> {
    out: W,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Create a writer and emit the header. The 8 bytes after the
    /// version are reserved and written as zero (readers reject
    /// anything else, which catches bit flips in the header tail).
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?;
        Ok(TraceWriter { out, count: 0 })
    }

    /// Append one instruction.
    pub fn write_instr(&mut self, i: &DynInstr) -> io::Result<()> {
        let mut buf = [0u8; RECORD_BYTES];
        encode(i, &mut buf);
        self.out.write_all(&buf)?;
        self.count += 1;
        Ok(())
    }

    /// Capture `n` instructions from a stream.
    pub fn capture<S: InstrStream>(&mut self, stream: &mut S, n: u64) -> io::Result<()> {
        for _ in 0..n {
            let i = stream.next_instr();
            self.write_instr(&i)?;
        }
        Ok(())
    }

    /// Number of instructions written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming trace reader.
pub struct TraceReader<R: Read> {
    input: R,
    read: u64,
}

impl<R: Read> TraceReader<R> {
    /// Open a trace, validating the header.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut hdr = [0u8; HEADER_BYTES];
        match input.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(corrupt(0, "truncated header"));
            }
            Err(e) => return Err(e.into()),
        }
        let magic = u32::from_le_bytes(hdr[..4].try_into().expect("4-byte slice"));
        let version = u32::from_le_bytes(hdr[4..8].try_into().expect("4-byte slice"));
        if magic != MAGIC {
            return Err(corrupt(0, format!("bad magic {magic:#010x}")));
        }
        if version != VERSION {
            return Err(corrupt(4, format!("unsupported trace version {version}")));
        }
        if hdr[8..16] != [0u8; 8] {
            return Err(corrupt(8, "reserved header bytes are not zero"));
        }
        Ok(TraceReader { input, read: 0 })
    }

    /// Byte offset where the next record starts.
    fn offset(&self) -> u64 {
        HEADER_BYTES as u64 + self.read * RECORD_BYTES as u64
    }

    /// Read the next instruction; `None` at end of trace. A stream that
    /// ends *inside* a record is corrupt, not merely finished.
    pub fn read_instr(&mut self) -> Result<Option<DynInstr>, TraceError> {
        let offset = self.offset();
        let mut buf = [0u8; RECORD_BYTES];
        // Probe one byte first: EOF exactly at a record boundary is the
        // normal end of the trace, EOF anywhere later is a truncation.
        match self.input.read(&mut buf[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                return self.read_instr();
            }
            Err(e) => return Err(e.into()),
        }
        match self.input.read_exact(&mut buf[1..]) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(corrupt(offset, "truncated record"));
            }
            Err(e) => return Err(e.into()),
        }
        self.read += 1;
        decode(&buf, offset).map(Some)
    }

    /// Read the whole trace into memory.
    pub fn read_all(mut self) -> Result<Vec<DynInstr>, TraceError> {
        let mut v = Vec::new();
        while let Some(i) = self.read_instr()? {
            v.push(i);
        }
        Ok(v)
    }

    /// Number of instructions read so far.
    pub fn count(&self) -> u64 {
        self.read
    }
}

/// An in-memory trace that loops forever — handy as a deterministic
/// [`InstrStream`] for tests and micro-experiments. Sequence numbers are
/// rewritten to stay monotonic across loop iterations.
pub struct RecordedTrace {
    instrs: Vec<DynInstr>,
    cursor: usize,
    seq: u64,
}

impl RecordedTrace {
    /// Wrap a recorded instruction vector (must be non-empty).
    pub fn new(instrs: Vec<DynInstr>) -> Self {
        assert!(!instrs.is_empty(), "empty trace");
        RecordedTrace {
            instrs,
            cursor: 0,
            seq: 0,
        }
    }

    /// Length of one loop iteration.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Always false (constructor rejects empty traces).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl InstrStream for RecordedTrace {
    fn next_instr(&mut self) -> DynInstr {
        let mut i = self.instrs[self.cursor];
        self.cursor = (self.cursor + 1) % self.instrs.len();
        i.seq = self.seq;
        self.seq += 1;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::spec;

    #[test]
    fn roundtrip_preserves_instructions() {
        let mut g = TraceGenerator::new(spec::benchmark_by_name("gap").unwrap(), 21);
        let orig: Vec<_> = (0..500).map(|_| g.next_instr()).collect();

        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for i in &orig {
            w.write_instr(i).unwrap();
        }
        let bytes = w.finish().unwrap();

        let r = TraceReader::new(&bytes[..]).unwrap();
        let back = r.read_all().unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn capture_writes_n_records() {
        let mut g = TraceGenerator::new(spec::benchmark_by_name("art").unwrap(), 2);
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.capture(&mut g, 123).unwrap();
        assert_eq!(w.count(), 123);
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 16 + 123 * RECORD_BYTES);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0u8; 64];
        assert!(matches!(
            TraceReader::new(&bytes[..]),
            Err(TraceError::Corrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn old_version_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            TraceReader::new(&bytes[..]),
            Err(TraceError::Corrupt { offset: 4, .. })
        ));
    }

    #[test]
    fn nonzero_reserved_header_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            TraceReader::new(&bytes[..]),
            Err(TraceError::Corrupt { offset: 8, .. })
        ));
    }

    #[test]
    fn bad_class_byte_rejected_via_checksum() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write_instr(&DynInstr::nop(0, 0x1000)).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[16 + 32] = 200; // corrupt the class byte
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        // The checksum catches the damage before field validation runs.
        assert!(matches!(
            r.read_instr(),
            Err(TraceError::Corrupt { offset: 16, .. })
        ));
    }

    #[test]
    fn mid_record_truncation_rejected() {
        let mut g = TraceGenerator::new(spec::benchmark_by_name("gzip").unwrap(), 9);
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.capture(&mut g, 3).unwrap();
        let bytes = w.finish().unwrap();
        let cut = &bytes[..bytes.len() - 17]; // inside the 3rd record
        let mut r = TraceReader::new(cut).unwrap();
        assert!(r.read_instr().unwrap().is_some());
        assert!(r.read_instr().unwrap().is_some());
        assert!(matches!(
            r.read_instr(),
            Err(TraceError::Corrupt { offset, .. }) if offset == 16 + 2 * 40
        ));
    }

    #[test]
    fn record_boundary_truncation_reads_short() {
        // Documented leniency: a cut at an exact record boundary looks
        // like a shorter capture (streaming format, no trusted length).
        let mut g = TraceGenerator::new(spec::benchmark_by_name("gzip").unwrap(), 9);
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.capture(&mut g, 3).unwrap();
        let bytes = w.finish().unwrap();
        let cut = &bytes[..16 + 2 * RECORD_BYTES];
        let r = TraceReader::new(cut).unwrap();
        assert_eq!(r.read_all().unwrap().len(), 2);
    }

    #[test]
    fn recorded_trace_loops_with_monotonic_seq() {
        let mut g = TraceGenerator::new(spec::benchmark_by_name("mesa").unwrap(), 4);
        let instrs: Vec<_> = (0..10).map(|_| g.next_instr()).collect();
        let mut t = RecordedTrace::new(instrs.clone());
        let mut prev_seq = None;
        for k in 0..35 {
            let i = t.next_instr();
            assert_eq!(i.pc, instrs[k % 10].pc);
            if let Some(p) = prev_seq {
                assert_eq!(i.seq, p + 1);
            }
            prev_seq = Some(i.seq);
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn recorded_trace_rejects_empty() {
        let _ = RecordedTrace::new(Vec::new());
    }
}
