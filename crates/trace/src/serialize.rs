//! Trace capture and replay.
//!
//! The paper's methodology collects traces once and replays them under
//! every fetch policy so that results are comparable. Our generator is
//! deterministic, which gives the same property for free, but capturing
//! a trace to disk is still useful for debugging, for sharing repro
//! cases, and for replaying a stream without paying generation cost.
//!
//! Format: a 16-byte header (`magic`, `version`, instruction count)
//! followed by fixed-size 40-byte little-endian records.

use crate::instr::{DynInstr, InstrClass, UncondKind};
use crate::stream::InstrStream;
use std::io::{self, Read, Write};

const MAGIC: u32 = 0x4d46_5452; // "MFTR"
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 40;

fn class_to_u8(c: InstrClass) -> u8 {
    match c {
        InstrClass::IntAlu => 0,
        InstrClass::IntMul => 1,
        InstrClass::FpAlu => 2,
        InstrClass::FpMul => 3,
        InstrClass::FpDiv => 4,
        InstrClass::Load => 5,
        InstrClass::Store => 6,
        InstrClass::BranchCond => 7,
        InstrClass::BranchUncond => 8,
        InstrClass::Nop => 9,
    }
}

fn class_from_u8(b: u8) -> io::Result<InstrClass> {
    Ok(match b {
        0 => InstrClass::IntAlu,
        1 => InstrClass::IntMul,
        2 => InstrClass::FpAlu,
        3 => InstrClass::FpMul,
        4 => InstrClass::FpDiv,
        5 => InstrClass::Load,
        6 => InstrClass::Store,
        7 => InstrClass::BranchCond,
        8 => InstrClass::BranchUncond,
        9 => InstrClass::Nop,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad instruction class byte {b}"),
            ))
        }
    })
}

/// Encode one instruction into a fixed-size record.
fn encode(i: &DynInstr, buf: &mut [u8; RECORD_BYTES]) {
    buf[..8].copy_from_slice(&i.seq.to_le_bytes());
    buf[8..16].copy_from_slice(&i.pc.to_le_bytes());
    buf[16..24].copy_from_slice(&i.mem_addr.to_le_bytes());
    buf[24..32].copy_from_slice(&i.target.to_le_bytes());
    buf[32] = class_to_u8(i.class);
    buf[33] = i.srcs[0].map(|r| r + 1).unwrap_or(0);
    buf[34] = i.srcs[1].map(|r| r + 1).unwrap_or(0);
    buf[35] = i.dst.map(|r| r + 1).unwrap_or(0);
    buf[36] = i.taken as u8;
    buf[37] = match i.uncond_kind {
        UncondKind::Jump => 0,
        UncondKind::Call => 1,
        UncondKind::Ret => 2,
    };
    buf[38..40].copy_from_slice(&[0, 0]);
}

/// Decode one fixed-size record.
fn decode(buf: &[u8; RECORD_BYTES]) -> io::Result<DynInstr> {
    let reg = |b: u8| if b == 0 { None } else { Some(b - 1) };
    Ok(DynInstr {
        seq: u64::from_le_bytes(buf[..8].try_into().unwrap()),
        pc: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        mem_addr: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
        target: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        class: class_from_u8(buf[32])?,
        srcs: [reg(buf[33]), reg(buf[34])],
        dst: reg(buf[35]),
        taken: buf[36] != 0,
        uncond_kind: match buf[37] {
            1 => UncondKind::Call,
            2 => UncondKind::Ret,
            _ => UncondKind::Jump,
        },
    })
}

/// Streaming trace writer.
pub struct TraceWriter<W: Write> {
    out: W,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Create a writer and emit the header (count patched by
    /// [`TraceWriter::finish`] is not supported on plain streams, so the
    /// header stores 0 and readers simply read to EOF; the count field
    /// is advisory).
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?;
        Ok(TraceWriter { out, count: 0 })
    }

    /// Append one instruction.
    pub fn write_instr(&mut self, i: &DynInstr) -> io::Result<()> {
        let mut buf = [0u8; RECORD_BYTES];
        encode(i, &mut buf);
        self.out.write_all(&buf)?;
        self.count += 1;
        Ok(())
    }

    /// Capture `n` instructions from a stream.
    pub fn capture<S: InstrStream>(&mut self, stream: &mut S, n: u64) -> io::Result<()> {
        for _ in 0..n {
            let i = stream.next_instr();
            self.write_instr(&i)?;
        }
        Ok(())
    }

    /// Number of instructions written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming trace reader.
pub struct TraceReader<R: Read> {
    input: R,
    read: u64,
}

impl<R: Read> TraceReader<R> {
    /// Open a trace, validating the header.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut hdr = [0u8; 16];
        input.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes(hdr[..4].try_into().unwrap());
        let version = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        Ok(TraceReader { input, read: 0 })
    }

    /// Read the next instruction; `None` at end of trace.
    pub fn read_instr(&mut self) -> io::Result<Option<DynInstr>> {
        let mut buf = [0u8; RECORD_BYTES];
        match self.input.read_exact(&mut buf) {
            Ok(()) => {
                self.read += 1;
                decode(&buf).map(Some)
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Read the whole trace into memory.
    pub fn read_all(mut self) -> io::Result<Vec<DynInstr>> {
        let mut v = Vec::new();
        while let Some(i) = self.read_instr()? {
            v.push(i);
        }
        Ok(v)
    }

    /// Number of instructions read so far.
    pub fn count(&self) -> u64 {
        self.read
    }
}

/// An in-memory trace that loops forever — handy as a deterministic
/// [`InstrStream`] for tests and micro-experiments. Sequence numbers are
/// rewritten to stay monotonic across loop iterations.
pub struct RecordedTrace {
    instrs: Vec<DynInstr>,
    cursor: usize,
    seq: u64,
}

impl RecordedTrace {
    /// Wrap a recorded instruction vector (must be non-empty).
    pub fn new(instrs: Vec<DynInstr>) -> Self {
        assert!(!instrs.is_empty(), "empty trace");
        RecordedTrace {
            instrs,
            cursor: 0,
            seq: 0,
        }
    }

    /// Length of one loop iteration.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Always false (constructor rejects empty traces).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl InstrStream for RecordedTrace {
    fn next_instr(&mut self) -> DynInstr {
        let mut i = self.instrs[self.cursor];
        self.cursor = (self.cursor + 1) % self.instrs.len();
        i.seq = self.seq;
        self.seq += 1;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::spec;

    #[test]
    fn roundtrip_preserves_instructions() {
        let mut g = TraceGenerator::new(spec::benchmark_by_name("gap").unwrap(), 21);
        let orig: Vec<_> = (0..500).map(|_| g.next_instr()).collect();

        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for i in &orig {
            w.write_instr(i).unwrap();
        }
        let bytes = w.finish().unwrap();

        let r = TraceReader::new(&bytes[..]).unwrap();
        let back = r.read_all().unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn capture_writes_n_records() {
        let mut g = TraceGenerator::new(spec::benchmark_by_name("art").unwrap(), 2);
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.capture(&mut g, 123).unwrap();
        assert_eq!(w.count(), 123);
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 16 + 123 * RECORD_BYTES);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0u8; 64];
        assert!(TraceReader::new(&bytes[..]).is_err());
    }

    #[test]
    fn bad_class_byte_rejected() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write_instr(&DynInstr::nop(0, 0x1000)).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[16 + 32] = 200; // corrupt the class byte
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        assert!(r.read_instr().is_err());
    }

    #[test]
    fn recorded_trace_loops_with_monotonic_seq() {
        let mut g = TraceGenerator::new(spec::benchmark_by_name("mesa").unwrap(), 4);
        let instrs: Vec<_> = (0..10).map(|_| g.next_instr()).collect();
        let mut t = RecordedTrace::new(instrs.clone());
        let mut prev_seq = None;
        for k in 0..35 {
            let i = t.next_instr();
            assert_eq!(i.pc, instrs[k % 10].pc);
            if let Some(p) = prev_seq {
                assert_eq!(i.seq, p + 1);
            }
            prev_seq = Some(i.seq);
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn recorded_trace_rejects_empty() {
        let _ = RecordedTrace::new(Vec::new());
    }
}
