#![forbid(unsafe_code)]
//! # smtsim-bench — figure and table regeneration for the MFLUSH paper
//!
//! One function per table/figure of the paper's evaluation. Each
//! returns structured data *and* renders the same rows/series the paper
//! reports, so the `figures` binary, the timing binaries
//! (`bench_figures`, `bench_ablations`) and the integration tests all
//! share a single implementation.
//!
//! | Paper artefact | Function |
//! |----------------|----------|
//! | Fig. 1 (parameters + workloads) | [`figures::fig1`] |
//! | Fig. 2 (single-core ICOUNT vs FLUSH) | [`figures::fig2`] |
//! | Fig. 3 (multicore average throughput) | [`figures::fig3`] |
//! | Fig. 4 (L2 hit time distribution) | [`figures::fig4`] |
//! | Fig. 5 (detection-moment sweep) | [`figures::fig5`] |
//! | Fig. 6 (MFLUSH operational environment) | [`figures::fig6`] |
//! | Fig. 7 (MCReg hardware example) | [`figures::fig7`] |
//! | Fig. 8 (throughput, 4 policies) | [`figures::fig8`] |
//! | Fig. 9 (energy distribution) | [`figures::fig9`] |
//! | Fig. 10 (energy consumption factor) | [`figures::fig10`] |
//! | Fig. 11 (FLUSH wasted energy) | [`figures::fig11`] |
//!
//! The defaults use a scaled-down fixed interval (see
//! `smtsim_core::config::DEFAULT_CYCLES`); pass larger budgets for
//! tighter numbers.
//!
//! Beyond the paper artefacts, the crate ships the host-performance
//! tooling documented in PERFORMANCE.md: `bench_profile` (the
//! [`profile::PhaseProfile`] host-time phase profiler with
//! `--baseline` drift reporting against `BENCH_baseline.json`),
//! `bench_serve` (cold vs cache-hit latency of the serving layer,
//! recorded in `BENCH_serve.json`), and `bench_cycleloop` (the stall
//! skip-ahead throughput and byte-identity record behind
//! `BENCH_cycleloop.json`, deterministically gated by
//! `bench_cycleloop --check` in CI).

pub mod figures;
pub mod profile;
pub mod timing;

pub use figures::*;
