//! Host-time profiling of the driver's pipeline phases.
//!
//! The simulator itself never reads a host clock (lint rule D2 keeps
//! wall-clock out of the sim crates so same-seed runs stay
//! byte-identical); this module is the sanctioned place to ask "where
//! does the *host* time go?". It times the phases the driver exposes —
//! build, simulate, snapshot, trace collection, trace export — and
//! reports each as a share of the whole.
//!
//! ```text
//! bench_profile [--workload 4W3] [--policy mflush] [--cycles N]
//! ```

use crate::timing::format_duration;
use smtsim_core::config::{DEFAULT_METRICS_INTERVAL, DEFAULT_TRACE_CAPACITY};
use smtsim_core::{obs, SimConfig, SimError, SimResult, Simulator};
use std::time::{Duration, Instant};

/// Accumulated host time per named pipeline phase, in first-recorded
/// order.
pub struct PhaseProfile {
    phases: Vec<(String, Duration, u32)>,
}

impl Default for PhaseProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> PhaseProfile {
        PhaseProfile { phases: Vec::new() }
    }

    /// Run `f`, attributing its host time to `phase` (accumulating
    /// across repeated calls with the same name).
    // lint: allow(D5) -- crates/bench is the one sanctioned wall-clock user; clippy.toml bans Instant::now everywhere else
    #[allow(clippy::disallowed_methods)]
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        match self.phases.iter_mut().find(|(n, _, _)| n == phase) {
            Some((_, total, calls)) => {
                *total += elapsed;
                *calls += 1;
            }
            None => self.phases.push((phase.to_string(), elapsed, 1)),
        }
        out
    }

    /// `(phase, accumulated time, calls)` rows in first-recorded order.
    pub fn phases(&self) -> &[(String, Duration, u32)] {
        &self.phases
    }

    /// Host time across all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d, _)| *d).sum()
    }

    /// Render the per-phase breakdown with percentages.
    pub fn report(&self, title: &str) -> String {
        let total = self.total().as_secs_f64().max(f64::MIN_POSITIVE);
        let mut s = format!("== {title} ==\n");
        for (name, d, calls) in &self.phases {
            s.push_str(&format!(
                "{name:<16} {:>10} {:>5.1}% ({calls} call{})\n",
                format_duration(*d),
                100.0 * d.as_secs_f64() / total,
                if *calls == 1 { "" } else { "s" },
            ));
        }
        s.push_str(&format!("{:<16} {:>10}\n", "total", format_duration(self.total())));
        s
    }
}

/// Run one experiment with tracing and metrics on, timing each driver
/// phase. Returns the profile together with the measurement so callers
/// can sanity-check the run they just profiled.
pub fn profile_run(cfg: &SimConfig) -> Result<(PhaseProfile, SimResult), SimError> {
    let mut prof = PhaseProfile::new();
    let mut sim = prof.time("build", || Simulator::build(cfg))?;
    sim.enable_tracing(DEFAULT_TRACE_CAPACITY);
    sim.enable_metrics(DEFAULT_METRICS_INTERVAL.min(cfg.cycles.max(1)));
    prof.time("simulate", || sim.step(cfg.cycles))?;
    let result = prof.time("snapshot", || sim.snapshot());
    let rows = prof.time("trace_collect", || sim.trace_rows());
    prof.time("trace_export", || {
        std::hint::black_box(obs::observability_jsonl(&rows, sim.metrics_samples()))
    });
    Ok((prof, result))
}

/// Like [`profile_run`] but with the observability layer off (no event
/// tracing, no interval metrics): build / simulate / snapshot only.
/// This is the mode for comparing *model* cost across fidelities — the
/// per-event tracing overhead scales with committed instructions, so
/// it taxes a high-IPC reduced-fidelity run disproportionately and
/// would understate the model speedup it exists to measure.
pub fn profile_run_plain(cfg: &SimConfig) -> Result<(PhaseProfile, SimResult), SimError> {
    let mut prof = PhaseProfile::new();
    let mut sim = prof.time("build", || Simulator::build(cfg))?;
    prof.time("simulate", || sim.step(cfg.cycles))?;
    let result = prof.time("snapshot", || sim.snapshot());
    Ok((prof, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_core::Workload;
    use smtsim_policy::PolicyKind;

    #[test]
    fn time_accumulates_per_phase() {
        let mut p = PhaseProfile::new();
        assert_eq!(p.time("a", || 1 + 1), 2);
        p.time("b", || ());
        p.time("a", || ());
        assert_eq!(p.phases().len(), 2);
        let (name, _, calls) = &p.phases()[0];
        assert_eq!((name.as_str(), *calls), ("a", 2));
        assert!(p.report("t").contains("a "));
        assert!(p.report("t").lines().count() >= 4);
    }

    #[test]
    fn profile_run_covers_every_phase() {
        let cfg = SimConfig::for_workload(
            Workload::by_name("4W3").unwrap(),
            PolicyKind::FlushSpec(30),
        )
        .with_cycles(2_000);
        let (prof, result) = profile_run(&cfg).unwrap();
        let names: Vec<&str> = prof.phases().iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["build", "simulate", "snapshot", "trace_collect", "trace_export"]
        );
        assert_eq!(result.cycles, 2_000);
    }
}
