//! Plain wall-clock timing for the benchmark binaries.
//!
//! The criterion benches were replaced by `bench_figures` /
//! `bench_ablations` binaries built on this module: each scenario is a
//! closure, timed over a fixed number of iterations after one warm-up
//! run, reported as total / per-iteration wall-clock plus simulated
//! cycles per second where the scenario has a known cycle budget.

use std::time::{Duration, Instant};

/// One timed scenario.
pub struct Measurement {
    /// Scenario label (e.g. `"simulator/mflush/4core"`).
    pub name: String,
    /// Timed iterations (excluding the warm-up run).
    pub iters: u32,
    /// Total wall-clock over all timed iterations.
    pub elapsed: Duration,
    /// Total *simulated* cycles across all timed iterations (0 when the
    /// scenario has no meaningful cycle budget, e.g. static renders).
    pub sim_cycles: u64,
}

impl Measurement {
    /// Mean wall-clock per iteration.
    pub fn per_iter(&self) -> Duration {
        self.elapsed / self.iters.max(1)
    }

    /// Simulated cycles per second of wall-clock, when applicable.
    pub fn cycles_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        (self.sim_cycles > 0 && secs > 0.0).then(|| self.sim_cycles as f64 / secs)
    }

    /// One aligned report row.
    pub fn report_line(&self) -> String {
        let cps = match self.cycles_per_sec() {
            Some(c) => format!("{c:>12.0}"),
            None => format!("{:>12}", "-"),
        };
        format!(
            "{:<36} {:>6} it {:>12} total {:>12}/it {cps} sim-cyc/s",
            self.name,
            self.iters,
            format_duration(self.elapsed),
            format_duration(self.per_iter()),
        )
    }
}

/// Time `f` for `iters` iterations (after one untimed warm-up call).
/// `sim_cycles_per_iter` is the scenario's simulated-cycle budget per
/// iteration, or 0 when not applicable.
// lint: allow(D5) -- crates/bench is the one sanctioned wall-clock user; clippy.toml bans Instant::now everywhere else
#[allow(clippy::disallowed_methods)]
pub fn measure(
    name: &str,
    iters: u32,
    sim_cycles_per_iter: u64,
    mut f: impl FnMut(),
) -> Measurement {
    f(); // warm-up: first-touch allocations, lazy statics, icache
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    Measurement {
        name: name.to_string(),
        iters,
        elapsed,
        sim_cycles: sim_cycles_per_iter * iters as u64,
    }
}

/// Human-readable duration with a stable width-friendly unit choice.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Print the standard report for a list of measurements.
pub fn print_report(title: &str, rows: &[Measurement]) {
    println!("== {title} ==");
    for r in rows {
        println!("{}", r.report_line());
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let count = std::cell::Cell::new(0u32);
        let m = measure("x", 7, 100, || count.set(count.get() + 1));
        assert_eq!(count.get(), 8, "7 timed + 1 warm-up");
        assert_eq!(m.iters, 7);
        assert_eq!(m.sim_cycles, 700);
    }

    #[test]
    fn cycles_per_sec_only_with_budget() {
        let with = Measurement {
            name: "a".into(),
            iters: 1,
            elapsed: Duration::from_millis(10),
            sim_cycles: 1_000,
        };
        assert!(with.cycles_per_sec().unwrap() > 0.0);
        let without = Measurement {
            name: "b".into(),
            iters: 1,
            elapsed: Duration::from_millis(10),
            sim_cycles: 0,
        };
        assert!(without.cycles_per_sec().is_none());
        assert!(without.report_line().contains('-'));
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }
}
