//! One regeneration function per paper table/figure.

use smtsim_core::config::DEFAULT_CYCLES;
use smtsim_core::{report, run_sweep_journaled, SimConfig, SimResult, SweepJob, Workload};
use smtsim_core::workloads::{ALL_WORKLOADS, FIG5B_WORKLOAD};
use smtsim_energy::report as energy_report;
use smtsim_mem::{LatencyHistogram, MemConfig};
use smtsim_policy::mflush::{McRegConfig, McRegFile, MflushConfig};
use smtsim_policy::PolicyKind;
use std::fmt::Write;
use std::path::{Path, PathBuf};

/// Resolve a cycle budget (0 → default).
fn budget(cycles: u64) -> u64 {
    if cycles == 0 {
        DEFAULT_CYCLES
    } else {
        cycles
    }
}

/// Per-sweep journal file inside the optional `--journal` directory.
/// Each figure (and each machine size within a figure) gets its own
/// file so interrupted regenerations resume at sweep granularity.
fn journal_file(dir: Option<&Path>, tag: &str) -> Option<PathBuf> {
    dir.map(|d| d.join(format!("{tag}.jsonl")))
}

fn sweep_workloads(
    workloads: &[&Workload],
    policies: &[PolicyKind],
    cycles: u64,
    workers: usize,
    journal: Option<PathBuf>,
) -> Vec<(String, Vec<SimResult>)> {
    let mut jobs = Vec::new();
    for w in workloads {
        for p in policies {
            jobs.push(SweepJob::new(
                format!("{}/{}", w.name, p.label()),
                SimConfig::for_workload(w, *p).with_cycles(budget(cycles)),
            ));
        }
    }
    let flat = run_sweep_journaled(&jobs, workers, journal.as_deref());
    let per = policies.len();
    workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let results = flat[i * per..(i + 1) * per]
                .iter()
                .map(|(label, r)| match r {
                    Ok(r) => r.clone(),
                    Err(e) => panic!("figure sweep job '{label}' failed: {e}"),
                })
                .collect();
            (w.name.to_string(), results)
        })
        .collect()
}

// ----------------------------------------------------------------
// Fig. 1 — simulation parameters and workloads
// ----------------------------------------------------------------

/// Render the paper's Fig. 1: core parameters, cache hierarchy and the
/// workload table.
pub fn fig1() -> String {
    let core = smtsim_cpu::CoreConfig::paper();
    let mem = MemConfig::paper(4);
    let mut s = String::new();
    let _ = writeln!(s, "== Fig. 1: Simulation parameters ==");
    let _ = writeln!(s, "Pipeline depth        11 stages (front-end {} + back-end)", core.frontend_latency);
    let _ = writeln!(s, "Queue entries         {} int, {} fp, {} ld/st", core.int_queue, core.fp_queue, core.ls_queue);
    let _ = writeln!(s, "Execution units       {} int, {} fp, {} ld/st", core.int_units, core.fp_units, core.ls_units);
    let _ = writeln!(s, "Physical registers    {}", core.phys_regs);
    let _ = writeln!(s, "ROB size*             {} entries", core.rob_per_thread);
    let _ = writeln!(s, "Branch predictor      perceptron ({} local, {} perceps.)", core.local_history_entries, core.perceptrons);
    let _ = writeln!(s, "BTB                   {} entries, {}-way", core.btb_entries, core.btb_ways);
    let _ = writeln!(s, "RAS*                  {} entries", core.ras_entries);
    let _ = writeln!(s, "L1 icache             {} KB, {}-way, {} banks", mem.l1i.bytes >> 10, mem.l1i.ways, mem.l1_banks);
    let _ = writeln!(s, "L1 dcache             {} KB, {}-way, {} banks", mem.l1d.bytes >> 10, mem.l1d.ways, mem.l1_banks);
    let _ = writeln!(s, "L1 lat./miss          {}/{} cycles", mem.l1_hit_cycles, mem.l1_miss_nominal());
    let _ = writeln!(s, "I-TLB, D-TLB          {} entries, fully associative", mem.tlb_entries);
    let _ = writeln!(s, "TLB miss              {} cycles", mem.tlb_miss_cycles);
    let _ = writeln!(s, "L2 cache              {} MB, {}-way, {} banks", mem.l2_bytes >> 20, mem.l2_ways, mem.l2_banks);
    let _ = writeln!(s, "L2 latency            {} cycles", mem.l2_bank_cycles);
    let _ = writeln!(s, "Main memory latency   {} cycles", mem.dram_cycles);
    let _ = writeln!(s, "(* replicated per thread)");
    let _ = writeln!(s);
    let _ = writeln!(s, "Workloads (xWy → benchmark letters):");
    for w in &ALL_WORKLOADS {
        let _ = writeln!(s, "  {:<4} {}", w.name, w.benchmark_names().join(", "));
    }
    s
}

// ----------------------------------------------------------------
// Fig. 2 — single-core SMT: ICOUNT vs speculative FLUSH (FL-S30)
// ----------------------------------------------------------------

/// Fig. 2 data: per 2-thread workload, (ICOUNT IPC, FLUSH-S30 IPC).
pub struct Fig2 {
    pub rows: Vec<(String, f64, f64)>,
    pub text: String,
}

impl Fig2 {
    /// Speedups of FLUSH-S30 over ICOUNT per workload.
    pub fn speedups(&self) -> Vec<f64> {
        self.rows.iter().map(|(_, i, f)| f / i).collect()
    }

    /// Average speedup (paper: ≈ 1.22, max ≈ 1.93).
    pub fn avg_speedup(&self) -> f64 {
        let s = self.speedups();
        s.iter().sum::<f64>() / s.len() as f64
    }
}

/// Reproduce Fig. 2: all 2Wy workloads on a single-core SMT under
/// ICOUNT and FLUSH-S30.
pub fn fig2(cycles: u64, workers: usize, journal: Option<&Path>) -> Fig2 {
    let workloads = Workload::of_size(2);
    let policies = [PolicyKind::Icount, PolicyKind::FlushSpec(30)];
    let data = sweep_workloads(
        &workloads,
        &policies,
        cycles,
        workers,
        journal_file(journal, "fig2"),
    );
    let mut rows = Vec::new();
    let mut text = String::new();
    let _ = writeln!(text, "== Fig. 2: Throughput in single-core SMT ==");
    let _ = writeln!(text, "{:<8}{:>12}{:>12}{:>10}", "wl", "ICOUNT", "FLUSH-S30", "speedup");
    for (name, results) in &data {
        let ic = results[0].throughput();
        let fl = results[1].throughput();
        let _ = writeln!(text, "{name:<8}{ic:>12.4}{fl:>12.4}{:>10.3}", fl / ic);
        rows.push((name.clone(), ic, fl));
    }
    let fig = Fig2 { rows, text };
    fig_with_avg(fig)
}

fn fig_with_avg(mut fig: Fig2) -> Fig2 {
    let avg = fig.avg_speedup();
    let max = fig
        .speedups()
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(fig.text, "average speedup {avg:.3}   max speedup {max:.3}");
    fig
}

// ----------------------------------------------------------------
// Fig. 3 — multicore CMP+SMT average throughput
// ----------------------------------------------------------------

/// Fig. 3 data: per workload size, average ICOUNT and FLUSH-S30 IPC.
pub struct Fig3 {
    /// (threads, avg ICOUNT IPC, avg FLUSH-S30 IPC).
    pub rows: Vec<(usize, f64, f64)>,
    pub text: String,
}

impl Fig3 {
    /// FLUSH-S30 / ICOUNT ratio per workload size.
    pub fn ratios(&self) -> Vec<(usize, f64)> {
        self.rows.iter().map(|&(n, i, f)| (n, f / i)).collect()
    }
}

/// Reproduce Fig. 3: average throughput per workload size (2, 4, 6, 8
/// threads → 1–4 cores) under ICOUNT and FLUSH-S30. The paper's
/// finding: the single-core FLUSH advantage shrinks with core count and
/// inverts at 4 cores.
pub fn fig3(cycles: u64, workers: usize, journal: Option<&Path>) -> Fig3 {
    let policies = [PolicyKind::Icount, PolicyKind::FlushSpec(30)];
    let mut rows = Vec::new();
    let mut text = String::new();
    let _ = writeln!(text, "== Fig. 3: Average throughput, multicore CMP+SMT ==");
    let _ = writeln!(text, "{:<9}{:>12}{:>12}{:>10}", "threads", "ICOUNT", "FLUSH-S30", "ratio");
    for size in [2usize, 4, 6, 8] {
        let data = sweep_workloads(
            &Workload::of_size(size),
            &policies,
            cycles,
            workers,
            journal_file(journal, &format!("fig3-{size}t")),
        );
        let avg = |k: usize| {
            data.iter().map(|(_, r)| r[k].throughput()).sum::<f64>() / data.len() as f64
        };
        let (ic, fl) = (avg(0), avg(1));
        let _ = writeln!(text, "{size:<9}{ic:>12.4}{fl:>12.4}{:>10.3}", fl / ic);
        rows.push((size, ic, fl));
    }
    Fig3 { rows, text }
}

// ----------------------------------------------------------------
// Fig. 4 — average L2 cache hit time vs number of cores
// ----------------------------------------------------------------

/// Fig. 4 data: merged L2-hit-time histogram per workload size (under
/// ICOUNT, which "does not alter the L2 cache access pattern").
pub struct Fig4 {
    pub rows: Vec<(usize, LatencyHistogram)>,
    pub text: String,
}

impl Fig4 {
    /// (threads, mean, std-dev) series.
    pub fn summary(&self) -> Vec<(usize, f64, f64)> {
        self.rows
            .iter()
            .map(|(n, h)| (*n, h.mean(), h.std_dev()))
            .collect()
    }
}

/// Reproduce Fig. 4: distribution of cycles from LSQ issue to service
/// for loads that hit the shared L2, per machine size.
pub fn fig4(cycles: u64, workers: usize, journal: Option<&Path>) -> Fig4 {
    let mut rows = Vec::new();
    let mut text = String::new();
    let _ = writeln!(text, "== Fig. 4: Average L2 cache hit time ==");
    for size in [2usize, 4, 6, 8] {
        let data = sweep_workloads(
            &Workload::of_size(size),
            &[PolicyKind::Icount],
            cycles,
            workers,
            journal_file(journal, &format!("fig4-{size}t")),
        );
        let mut merged = LatencyHistogram::for_l2_hit_time();
        for (_, rs) in &data {
            merged.merge(&rs[0].l2_hit_hist);
        }
        let _ = writeln!(
            text,
            "-- {size} threads ({} cores) --\n{}",
            size / 2,
            report::histogram_table(&merged)
        );
        rows.push((size, merged));
    }
    Fig4 { rows, text }
}

// ----------------------------------------------------------------
// Fig. 5 — detection-moment analysis (trigger sweep)
// ----------------------------------------------------------------

/// Fig. 5 data: throughput per FLUSH trigger on the two study
/// workloads.
pub struct Fig5 {
    /// (trigger label, 8W3 IPC, bzip2x4+twolfx4 IPC).
    pub rows: Vec<(String, f64, f64)>,
    pub text: String,
}

impl Fig5 {
    /// Best trigger label per workload `(8W3, fig5b)`.
    pub fn best(&self) -> (String, String) {
        let best = |idx: usize| {
            self.rows
                .iter()
                .max_by(|a, b| {
                    let va = if idx == 0 { a.1 } else { a.2 };
                    let vb = if idx == 0 { b.1 } else { b.2 };
                    va.total_cmp(&vb)
                })
                .map(|r| r.0.clone())
                .unwrap()
        };
        (best(0), best(1))
    }
}

/// Reproduce Fig. 5: sweep the speculative trigger from 30 to 150
/// cycles (plus FL-NS) on (a) 8W3 and (b) the bzip2/twolf workload.
pub fn fig5(cycles: u64, workers: usize, journal: Option<&Path>) -> Fig5 {
    let triggers: Vec<PolicyKind> = (30..=150)
        .step_by(20)
        .map(PolicyKind::FlushSpec)
        .chain([PolicyKind::FlushNonSpec])
        .collect();
    let w_a = Workload::by_name("8W3").unwrap();
    let w_b = &FIG5B_WORKLOAD;
    let data = sweep_workloads(
        &[w_a, w_b],
        &triggers,
        cycles,
        workers,
        journal_file(journal, "fig5"),
    );
    let mut rows = Vec::new();
    let mut text = String::new();
    let _ = writeln!(text, "== Fig. 5: Detection Moment analysis ==");
    let _ = writeln!(text, "{:<12}{:>12}{:>20}", "trigger", "8W3", "bzip2x4+twolfx4");
    for (i, p) in triggers.iter().enumerate() {
        let a = data[0].1[i].throughput();
        let b = data[1].1[i].throughput();
        let _ = writeln!(text, "{:<12}{a:>12.4}{b:>20.4}", p.label());
        rows.push((p.label(), a, b));
    }
    let fig = Fig5 { rows, text };
    let (ba, bb) = fig.best();
    let mut fig = fig;
    let _ = writeln!(fig.text, "best trigger: 8W3 → {ba}, bzip2/twolf → {bb}");
    fig
}

// ----------------------------------------------------------------
// Fig. 6 — the MFLUSH operational environment
// ----------------------------------------------------------------

/// Render Fig. 6: MIN/MAX/MT/preventive/barrier per machine size.
pub fn fig6() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Fig. 6: MFLUSH operational environment ==");
    let _ = writeln!(
        s,
        "{:<7}{:>6}{:>6}{:>6}{:>12}{:>22}",
        "cores", "MIN", "MAX", "MT", "preventive", "barrier(pred=MIN)"
    );
    for cores in 1..=4u32 {
        let c = MflushConfig::paper(cores, 4);
        let _ = writeln!(
            s,
            "{cores:<7}{:>6}{:>6}{:>6}{:>12}{:>22}",
            c.min,
            c.max,
            c.mt(),
            c.preventive_threshold(),
            c.barrier(c.min)
        );
    }
    s
}

// ----------------------------------------------------------------
// Fig. 7 — MCReg hardware example
// ----------------------------------------------------------------

/// Render Fig. 7's example: a 4-core CMP with a 4-banked L2; core 0
/// misses L1, bank 2's MCReg predicts 55 cycles.
pub fn fig7() -> String {
    let mut file = McRegFile::new(4, 22, McRegConfig::default());
    // Observed last-hit latencies per bank, as drawn in the figure.
    for (bank, lat) in [(0u32, 31u64), (1, 24), (2, 55), (3, 40)] {
        file.update(bank, lat);
    }
    let mut s = String::new();
    let _ = writeln!(s, "== Fig. 7: MCReg support (4 cores, 4 L2 banks) ==");
    for bank in 0..4 {
        let _ = writeln!(s, "MCReg[bank {bank}] = {} cycles", file.predict(bank));
    }
    let _ = writeln!(
        s,
        "L1 miss in core 0 to bank 2 → predicted L2 hit latency {} cycles",
        file.predict(2)
    );
    s
}

// ----------------------------------------------------------------
// Fig. 8 — throughput of ICOUNT / FLUSH-S30 / FLUSH-S100 / MFLUSH
// ----------------------------------------------------------------

/// Fig. 8 data.
pub struct Fig8 {
    /// (workload, [ICOUNT, FLUSH-S30, FLUSH-S100, MFLUSH] IPC).
    pub rows: Vec<(String, [f64; 4])>,
    /// The same runs, full results (for Fig. 11 reuse).
    pub results: Vec<(String, Vec<SimResult>)>,
    pub text: String,
}

impl Fig8 {
    /// Column averages.
    pub fn averages(&self) -> [f64; 4] {
        let mut avg = [0.0; 4];
        for (_, r) in &self.rows {
            for k in 0..4 {
                avg[k] += r[k];
            }
        }
        for a in &mut avg {
            *a /= self.rows.len() as f64;
        }
        avg
    }

    /// MFLUSH throughput relative to FLUSH-S100 (paper: ≈ 0.98).
    pub fn mflush_vs_s100(&self) -> f64 {
        let a = self.averages();
        a[3] / a[2]
    }
}

/// Reproduce Fig. 8: the four evaluated policies on every 4-, 6- and
/// 8-thread workload.
pub fn fig8(cycles: u64, workers: usize, journal: Option<&Path>) -> Fig8 {
    let policies = PolicyKind::fig8_set();
    let workloads: Vec<&Workload> = [4usize, 6, 8]
        .iter()
        .flat_map(|&s| Workload::of_size(s))
        .collect();
    let results = sweep_workloads(
        &workloads,
        &policies,
        cycles,
        workers,
        journal_file(journal, "fig8"),
    );
    let mut rows = Vec::new();
    let mut text = String::new();
    let _ = writeln!(text, "== Fig. 8: Throughput results ==");
    let _ = write!(text, "{:<8}", "wl");
    for p in &policies {
        let _ = write!(text, "{:>12}", p.label());
    }
    let _ = writeln!(text);
    for (name, rs) in &results {
        let mut row = [0.0; 4];
        let _ = write!(text, "{name:<8}");
        for (k, r) in rs.iter().enumerate() {
            row[k] = r.throughput();
            let _ = write!(text, "{:>12.4}", row[k]);
        }
        let _ = writeln!(text);
        rows.push((name.clone(), row));
    }
    let fig = Fig8 {
        rows,
        results,
        text,
    };
    let avg = fig.averages();
    let mut fig = fig;
    let _ = writeln!(
        fig.text,
        "{:<8}{:>12.4}{:>12.4}{:>12.4}{:>12.4}   (MFLUSH/FLUSH-S100 = {:.3})",
        "avg", avg[0], avg[1], avg[2], avg[3],
        fig.mflush_vs_s100()
    );
    fig
}

// ----------------------------------------------------------------
// Extension study — beyond the paper's four policies
// ----------------------------------------------------------------

/// Extension-policy comparison data (not a paper figure).
pub struct ExtStudy {
    /// (policy label, avg IPC over the 8-thread workloads,
    /// avg wasted energy).
    pub rows: Vec<(String, f64, f64)>,
    pub text: String,
}

/// Compare the paper's four policies against the extension set (RR,
/// DCRA, ADTS, STALL-S30, FLUSH-ADAPT, FLUSH-LMP) on the 8-thread
/// workloads: adaptivity-in-priority vs adaptivity-in-threshold vs
/// adaptivity-in-prediction.
pub fn extension_study(cycles: u64, workers: usize, journal: Option<&Path>) -> ExtStudy {
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::Icount,
        PolicyKind::Brcount,
        PolicyKind::Adts,
        PolicyKind::Dcra,
        PolicyKind::StallSpec(30),
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::FlushNonSpec,
        PolicyKind::FlushAdaptive,
        PolicyKind::FlushMissPredict,
        PolicyKind::Mflush,
    ];
    let workloads = Workload::of_size(8);
    let data = sweep_workloads(
        &workloads,
        &policies,
        cycles,
        workers,
        journal_file(journal, "extensions"),
    );
    let mut rows = Vec::new();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "== Extension study: all policies, 8-thread workloads =="
    );
    let _ = writeln!(text, "{:<14}{:>12}{:>16}", "policy", "avg IPC", "avg wasted eu");
    for (k, p) in policies.iter().enumerate() {
        let ipc = data.iter().map(|(_, r)| r[k].throughput()).sum::<f64>()
            / data.len() as f64;
        let eu = data.iter().map(|(_, r)| r[k].wasted_energy()).sum::<f64>()
            / data.len() as f64;
        let _ = writeln!(text, "{:<14}{ipc:>12.4}{eu:>16.1}", p.label());
        rows.push((p.label(), ipc, eu));
    }
    ExtStudy { rows, text }
}

// ----------------------------------------------------------------
// Figs. 9 & 10 — the energy model tables
// ----------------------------------------------------------------

/// Render Fig. 9: energy distribution per hardware resource.
pub fn fig9() -> String {
    format!(
        "== Fig. 9: Energy consumption distribution ==\n{}",
        energy_report::resource_table()
    )
}

/// Render Fig. 10: the Energy Consumption Factor table.
pub fn fig10() -> String {
    format!(
        "== Fig. 10: Energy Consumption Factor ==\n{}",
        energy_report::ecf_table()
    )
}

// ----------------------------------------------------------------
// Fig. 11 — FLUSH wasted energy
// ----------------------------------------------------------------

/// Fig. 11 data.
pub struct Fig11 {
    /// (workload, [FLUSH-S30, FLUSH-S100, MFLUSH] wasted energy units).
    pub rows: Vec<(String, [f64; 3])>,
    pub text: String,
}

impl Fig11 {
    /// Total wasted energy per policy.
    pub fn totals(&self) -> [f64; 3] {
        let mut t = [0.0; 3];
        for (_, r) in &self.rows {
            for k in 0..3 {
                t[k] += r[k];
            }
        }
        t
    }

    /// MFLUSH waste relative to FLUSH-S100 (paper: ≈ 0.8, a 20 %
    /// saving).
    pub fn mflush_vs_s100(&self) -> f64 {
        let t = self.totals();
        t[2] / t[1]
    }
}

/// Reproduce Fig. 11: the wasted (refetch) energy of each flushing
/// policy on the Fig. 8 workloads.
pub fn fig11(cycles: u64, workers: usize, journal: Option<&Path>) -> Fig11 {
    let policies = [
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::Mflush,
    ];
    let workloads: Vec<&Workload> = [4usize, 6, 8]
        .iter()
        .flat_map(|&s| Workload::of_size(s))
        .collect();
    let results = sweep_workloads(
        &workloads,
        &policies,
        cycles,
        workers,
        journal_file(journal, "fig11"),
    );
    let mut rows = Vec::new();
    let mut text = String::new();
    let _ = writeln!(text, "== Fig. 11: FLUSH wasted energy (energy units) ==");
    let _ = writeln!(
        text,
        "{:<8}{:>14}{:>14}{:>14}",
        "wl", "FLUSH-S30", "FLUSH-S100", "MFLUSH"
    );
    for (name, rs) in &results {
        let row = [
            rs[0].wasted_energy(),
            rs[1].wasted_energy(),
            rs[2].wasted_energy(),
        ];
        let _ = writeln!(
            text,
            "{name:<8}{:>14.1}{:>14.1}{:>14.1}",
            row[0], row[1], row[2]
        );
        rows.push((name.clone(), row));
    }
    let fig = Fig11 { rows, text };
    let t = fig.totals();
    let mut fig = fig;
    let _ = writeln!(
        fig.text,
        "{:<8}{:>14.1}{:>14.1}{:>14.1}   (MFLUSH/FLUSH-S100 = {:.3})",
        "total", t[0], t[1], t[2],
        fig.mflush_vs_s100()
    );
    fig
}
