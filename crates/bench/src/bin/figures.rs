//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p smtsim-bench --bin figures -- all
//! cargo run --release -p smtsim-bench --bin figures -- fig8 --cycles 300000
//! ```

use smtsim_bench as figs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut cycles = 0u64;
    let mut workers = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cycles N");
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N");
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }
    let all = which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);

    if want("fig1") {
        println!("{}", figs::fig1());
    }
    if want("fig2") {
        println!("{}", figs::fig2(cycles, workers).text);
    }
    if want("fig3") {
        println!("{}", figs::fig3(cycles, workers).text);
    }
    if want("fig4") {
        println!("{}", figs::fig4(cycles, workers).text);
    }
    if want("fig5") {
        println!("{}", figs::fig5(cycles, workers).text);
    }
    if want("fig6") {
        println!("{}", figs::fig6());
    }
    if want("fig7") {
        println!("{}", figs::fig7());
    }
    if want("fig8") {
        println!("{}", figs::fig8(cycles, workers).text);
    }
    if want("fig9") {
        println!("{}", figs::fig9());
    }
    if want("fig10") {
        println!("{}", figs::fig10());
    }
    if want("fig11") {
        println!("{}", figs::fig11(cycles, workers).text);
    }
    // Beyond the paper: pass `extensions` explicitly (not part of `all`).
    if which.iter().any(|w| w == "extensions") {
        println!("{}", figs::extension_study(cycles, workers).text);
    }
}
