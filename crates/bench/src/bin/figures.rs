//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p smtsim-bench --bin figures -- all
//! cargo run --release -p smtsim-bench --bin figures -- fig8 --cycles 300000
//! cargo run --release -p smtsim-bench --bin figures -- all --journal out/journals
//! ```
//!
//! With `--journal DIR`, every sweep appends finished jobs to a file
//! under DIR; re-running the same command after an interruption skips
//! the recorded jobs and produces byte-identical figures.

use smtsim_bench as figs;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut cycles = 0u64;
    let mut workers = 0usize;
    let mut journal_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cycles N");
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N");
            }
            "--journal" => {
                journal_dir = Some(PathBuf::from(it.next().expect("--journal DIR")));
            }
            other => which.push(other.to_string()),
        }
    }
    if let Some(dir) = &journal_dir {
        std::fs::create_dir_all(dir).expect("create --journal directory");
    }
    let journal = journal_dir.as_deref();
    if which.is_empty() {
        which.push("all".into());
    }
    let all = which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);

    if want("fig1") {
        println!("{}", figs::fig1());
    }
    if want("fig2") {
        println!("{}", figs::fig2(cycles, workers, journal).text);
    }
    if want("fig3") {
        println!("{}", figs::fig3(cycles, workers, journal).text);
    }
    if want("fig4") {
        println!("{}", figs::fig4(cycles, workers, journal).text);
    }
    if want("fig5") {
        println!("{}", figs::fig5(cycles, workers, journal).text);
    }
    if want("fig6") {
        println!("{}", figs::fig6());
    }
    if want("fig7") {
        println!("{}", figs::fig7());
    }
    if want("fig8") {
        println!("{}", figs::fig8(cycles, workers, journal).text);
    }
    if want("fig9") {
        println!("{}", figs::fig9());
    }
    if want("fig10") {
        println!("{}", figs::fig10());
    }
    if want("fig11") {
        println!("{}", figs::fig11(cycles, workers, journal).text);
    }
    // Beyond the paper: pass `extensions` explicitly (not part of `all`).
    if which.iter().any(|w| w == "extensions") {
        println!("{}", figs::extension_study(cycles, workers, journal).text);
    }
}
