//! `bench_ablations` — plain timing runs for the design-choice
//! ablations DESIGN.md calls out:
//!
//! * MCReg history length / reducer (paper §4.1: "more complex
//!   configurations, involving queues … and more complex functions");
//! * the Preventive State on/off;
//! * the MT term on/off in the Barrier;
//! * STALL vs FLUSH response actions;
//! * L2 bank-count and cluster-count sensitivity of the contention
//!   model;
//! * next-line prefetching.
//!
//! With `--report`, the binary ALSO prints the measured throughput of
//! each variant at a larger cycle budget, leaving an ablation record
//! next to the timings (what the criterion bench used to print once).
//!
//! ```text
//! bench_ablations [--iters N] [--report]
//! ```

use smtsim_bench::timing::{measure, print_report, Measurement};
use smtsim_core::{SimConfig, Simulator, Workload};
use smtsim_policy::mflush::McRegReducer;
use smtsim_policy::PolicyKind;
use std::hint::black_box;

const CYCLES: u64 = 4_000;
const REPORT_CYCLES: u64 = 40_000;

fn run(workload: &str, policy: PolicyKind, cycles: u64) -> f64 {
    let w = Workload::by_name(workload).unwrap();
    Simulator::build(&SimConfig::for_workload(w, policy).with_cycles(cycles))
        .expect("valid ablation config")
        .run()
        .expect("ablation run makes forward progress")
        .throughput()
}

fn run_banks(workload: &str, banks: u32, cycles: u64) -> f64 {
    let w = Workload::by_name(workload).unwrap();
    let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount).with_cycles(cycles);
    cfg.mem.l2_banks = banks;
    Simulator::build(&cfg)
        .expect("valid ablation config")
        .run()
        .expect("ablation run makes forward progress")
        .throughput()
}

fn run_clusters(workload: &str, clusters: u32, policy: PolicyKind, cycles: u64) -> f64 {
    let w = Workload::by_name(workload).unwrap();
    let mut cfg = SimConfig::for_workload(w, policy).with_cycles(cycles);
    cfg.mem.l2_clusters = clusters;
    Simulator::build(&cfg)
        .expect("valid ablation config")
        .run()
        .expect("ablation run makes forward progress")
        .throughput()
}

fn run_prefetch(workload: &str, policy: PolicyKind, cycles: u64) -> f64 {
    let w = Workload::by_name(workload).unwrap();
    let mut cfg = SimConfig::for_workload(w, policy).with_cycles(cycles);
    cfg.mem.next_line_prefetch = true;
    Simulator::build(&cfg)
        .expect("valid ablation config")
        .run()
        .expect("ablation run makes forward progress")
        .throughput()
}

fn mcreg(history: usize, reducer: McRegReducer) -> PolicyKind {
    PolicyKind::MflushCustom {
        mcreg_history: history,
        mcreg_reducer: reducer,
        preventive: true,
        mt_enabled: true,
    }
}

fn print_ablation_record() {
    println!("== Ablation report ({REPORT_CYCLES}-cycle runs on 8W3) ==");
    println!(
        "MCReg history 1/Last (paper): {:.4}",
        run("8W3", PolicyKind::Mflush, REPORT_CYCLES)
    );
    println!(
        "MCReg history 4/Mean:         {:.4}",
        run("8W3", mcreg(4, McRegReducer::Mean), REPORT_CYCLES)
    );
    println!(
        "MCReg history 4/Max:          {:.4}",
        run("8W3", mcreg(4, McRegReducer::Max), REPORT_CYCLES)
    );
    println!(
        "MFLUSH w/o preventive state:  {:.4}",
        run(
            "8W3",
            PolicyKind::MflushCustom {
                mcreg_history: 1,
                mcreg_reducer: McRegReducer::Last,
                preventive: false,
                mt_enabled: true,
            },
            REPORT_CYCLES
        )
    );
    println!(
        "MFLUSH w/o MT term:           {:.4}",
        run(
            "8W3",
            PolicyKind::MflushCustom {
                mcreg_history: 1,
                mcreg_reducer: McRegReducer::Last,
                preventive: true,
                mt_enabled: false,
            },
            REPORT_CYCLES
        )
    );
    println!(
        "STALL-S30 vs FLUSH-S30:       {:.4} vs {:.4}",
        run("8W3", PolicyKind::StallSpec(30), REPORT_CYCLES),
        run("8W3", PolicyKind::FlushSpec(30), REPORT_CYCLES)
    );
    for banks in [1u32, 2, 4, 8] {
        println!(
            "ICOUNT with {banks} L2 bank(s):     {:.4}",
            run_banks("8W3", banks, REPORT_CYCLES)
        );
    }
    println!(
        "ADTS adaptive (related work): {:.4}",
        run("8W3", PolicyKind::Adts, REPORT_CYCLES)
    );
    println!(
        "DCRA (related work [3]):      {:.4}",
        run("8W3", PolicyKind::Dcra, REPORT_CYCLES)
    );
    println!(
        "FLUSH-ADAPT (hill-climbed):   {:.4}",
        run("8W3", PolicyKind::FlushAdaptive, REPORT_CYCLES)
    );
    println!(
        "FLUSH-LMP (miss predictor):   {:.4}",
        run("8W3", PolicyKind::FlushMissPredict, REPORT_CYCLES)
    );
    for clusters in [1u32, 2, 4] {
        println!(
            "MFLUSH with {clusters} L2 cluster(s): {:.4}",
            run_clusters("8W3", clusters, PolicyKind::Mflush, REPORT_CYCLES)
        );
    }
    println!(
        "ICOUNT + next-line prefetch:  {:.4} (vs {:.4})",
        run_prefetch("8W3", PolicyKind::Icount, REPORT_CYCLES),
        run("8W3", PolicyKind::Icount, REPORT_CYCLES)
    );
    println!();
}

fn main() {
    let mut iters: u32 = 5;
    let mut report = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => report = true,
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("bad or missing --iters value");
                        std::process::exit(2);
                    })
            }
            _ => {
                eprintln!("usage: bench_ablations [--iters N] [--report]");
                std::process::exit(2);
            }
        }
    }

    if report {
        print_ablation_record();
    }

    let mut rows: Vec<Measurement> = Vec::new();
    rows.push(measure("mcreg/history1_last", iters, CYCLES, || {
        black_box(run("8W3", PolicyKind::Mflush, CYCLES));
    }));
    rows.push(measure("mcreg/history4_mean", iters, CYCLES, || {
        black_box(run("8W3", mcreg(4, McRegReducer::Mean), CYCLES));
    }));
    rows.push(measure("no_preventive", iters, CYCLES, || {
        black_box(run(
            "8W3",
            PolicyKind::MflushCustom {
                mcreg_history: 1,
                mcreg_reducer: McRegReducer::Last,
                preventive: false,
                mt_enabled: true,
            },
            CYCLES,
        ));
    }));
    rows.push(measure("no_mt", iters, CYCLES, || {
        black_box(run(
            "8W3",
            PolicyKind::MflushCustom {
                mcreg_history: 1,
                mcreg_reducer: McRegReducer::Last,
                preventive: true,
                mt_enabled: false,
            },
            CYCLES,
        ));
    }));
    rows.push(measure("stall_vs_flush", iters, 2 * CYCLES, || {
        black_box((
            run("8W3", PolicyKind::StallSpec(30), CYCLES),
            run("8W3", PolicyKind::FlushSpec(30), CYCLES),
        ));
    }));
    for banks in [2u32, 4, 8] {
        rows.push(measure(&format!("l2_banks/{banks}"), iters, CYCLES, || {
            black_box(run_banks("8W3", banks, CYCLES));
        }));
    }
    for clusters in [1u32, 2] {
        rows.push(measure(
            &format!("l2_clusters/{clusters}"),
            iters,
            CYCLES,
            || {
                black_box(run_clusters("8W3", clusters, PolicyKind::Mflush, CYCLES));
            },
        ));
    }
    rows.push(measure("next_line_prefetch", iters, CYCLES, || {
        black_box(run_prefetch("8W3", PolicyKind::Icount, CYCLES));
    }));

    print_report(
        &format!("Ablation timings ({CYCLES}-cycle budgets, {iters} iterations)"),
        &rows,
    );
}
