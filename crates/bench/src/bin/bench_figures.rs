//! `bench_figures` — plain timing runs, one scenario per paper figure.
//!
//! Replaces the criterion `figures` bench: each scenario measures the
//! cost of regenerating (a scaled-down version of) the corresponding
//! figure, and doubles as a performance regression record for the
//! simulator itself. The printed figures come from the `figures`
//! binary; these scenarios exercise identical code.
//!
//! ```text
//! bench_figures [--iters N]    # default 5 timed iterations/scenario
//! ```

use smtsim_bench as figs;
use smtsim_bench::timing::{measure, print_report, Measurement};
use smtsim_core::{SimConfig, Simulator, Workload};
use smtsim_policy::PolicyKind;
use std::hint::black_box;

/// Cycle budget per simulation in timed scenarios (small but
/// non-trivial; the `figures` binary uses the full default).
const BENCH_CYCLES: u64 = 4_000;

fn parse_iters() -> u32 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.as_slice() {
        [] => 5,
        [flag, n] if flag == "--iters" => n.parse().unwrap_or_else(|_| {
            eprintln!("bad --iters value {n}");
            std::process::exit(2);
        }),
        _ => {
            eprintln!("usage: bench_figures [--iters N]");
            std::process::exit(2);
        }
    }
}

fn main() {
    let iters = parse_iters();
    let mut rows: Vec<Measurement> = Vec::new();

    // Raw simulator runs at the three machine sizes, baseline vs MFLUSH.
    for (wl, label) in [("2W1", "1core"), ("4W1", "2core"), ("8W1", "4core")] {
        for (pname, p) in [("icount", PolicyKind::Icount), ("mflush", PolicyKind::Mflush)] {
            let w = Workload::by_name(wl).unwrap();
            rows.push(measure(
                &format!("simulator/{pname}/{label}"),
                iters,
                BENCH_CYCLES,
                || {
                    black_box(
                        Simulator::build(
                            &SimConfig::for_workload(w, p).with_cycles(BENCH_CYCLES),
                        )
                        .expect("valid bench config")
                        .run()
                        .expect("bench run makes forward progress"),
                    );
                },
            ));
        }
    }

    // Figure regenerations (multi-simulation sweeps; no single cycle
    // budget, so no sim-cyc/s column).
    rows.push(measure("fig2_singlecore", iters, 0, || {
        black_box(figs::fig2(BENCH_CYCLES, 0, None));
    }));
    rows.push(measure("fig3_multicore", iters, 0, || {
        black_box(figs::fig3(BENCH_CYCLES, 0, None));
    }));
    rows.push(measure("fig4_l2hit", iters, 0, || {
        black_box(figs::fig4(BENCH_CYCLES, 0, None));
    }));
    rows.push(measure("fig5_dm_sweep", iters, 0, || {
        black_box(figs::fig5(BENCH_CYCLES, 0, None));
    }));
    rows.push(measure("fig8_throughput", iters, 0, || {
        black_box(figs::fig8(BENCH_CYCLES, 0, None));
    }));
    rows.push(measure("fig11_energy", iters, 0, || {
        black_box(figs::fig11(BENCH_CYCLES, 0, None));
    }));

    // Static renders (Figs 1, 6, 7, 9, 10): cheap, but recorded too.
    rows.push(measure("fig1_parameters", iters, 0, || {
        black_box(figs::fig1());
    }));
    rows.push(measure("fig6_operational_env", iters, 0, || {
        black_box(figs::fig6());
    }));
    rows.push(measure("fig7_mcreg", iters, 0, || {
        black_box(figs::fig7());
    }));
    rows.push(measure("fig9_energy_distribution", iters, 0, || {
        black_box(figs::fig9());
    }));
    rows.push(measure("fig10_ecf", iters, 0, || {
        black_box(figs::fig10());
    }));

    print_report(
        &format!("Figure regeneration timings ({BENCH_CYCLES}-cycle budgets, {iters} iterations)"),
        &rows,
    );
}
