//! `bench_profile` — host-time breakdown of one simulator run by
//! driver pipeline phase (build / simulate / snapshot / trace collect
//! / trace export), with tracing and interval metrics enabled so the
//! observability layer's own cost is visible.
//!
//! ```text
//! bench_profile [--workload 4W3] [--policy mflush] [--cycles N]
//! ```

use smtsim_bench::profile::profile_run;
use smtsim_core::{SimConfig, Simulator, Workload};
use smtsim_policy::PolicyKind;

fn main() {
    let mut workload = String::from("4W3");
    let mut policy = String::from("mflush");
    let mut cycles: u64 = smtsim_core::config::DEFAULT_CYCLES;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let usage = || -> ! {
        eprintln!("usage: bench_profile [--workload <xWy>] [--policy <p>] [--cycles N]");
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for --{name}");
                usage();
            })
        };
        match a.as_str() {
            "--workload" => workload = next("workload"),
            "--policy" => policy = next("policy"),
            "--cycles" => {
                cycles = next("cycles").parse().unwrap_or_else(|_| {
                    eprintln!("bad --cycles value");
                    usage();
                })
            }
            _ => usage(),
        }
    }
    let w = Workload::by_name(&workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload} (try `smtsim workloads`)");
        std::process::exit(2);
    });
    // Reuse the simulator's policy grammar by building a probe config:
    // only a handful of spellings exist, so parse the simple ones here.
    let policy_kind = match policy.as_str() {
        "icount" => PolicyKind::Icount,
        "mflush" => PolicyKind::Mflush,
        "flush-ns" => PolicyKind::FlushNonSpec,
        "stall-ns" => PolicyKind::StallNonSpec,
        "dcra" => PolicyKind::Dcra,
        other => {
            if let Some(x) = other.strip_prefix("flush-s").and_then(|x| x.parse().ok()) {
                PolicyKind::FlushSpec(x)
            } else if let Some(x) = other.strip_prefix("stall-s").and_then(|x| x.parse().ok()) {
                PolicyKind::StallSpec(x)
            } else {
                eprintln!("unknown policy {other}");
                std::process::exit(2);
            }
        }
    };
    let cfg = SimConfig::for_workload(w, policy_kind).with_cycles(cycles);
    if let Err(e) = Simulator::build(&cfg) {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    match profile_run(&cfg) {
        Ok((prof, result)) => {
            print!(
                "{}",
                prof.report(&format!(
                    "Host-time per pipeline phase ({workload}/{policy}, {cycles} cycles)"
                ))
            );
            println!(
                "throughput {:.4} IPC ({} committed)",
                result.throughput(),
                result.total_committed()
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
