//! `bench_profile` — host-time breakdown of one simulator run by
//! driver pipeline phase (build / simulate / snapshot / trace collect
//! / trace export), with tracing and interval metrics enabled so the
//! observability layer's own cost is visible.
//!
//! ```text
//! bench_profile [--workload 4W3] [--policy mflush] [--cycles N]
//!               [--fidelity mem=fast,core=approx]
//!               [--plain] [--json] [--baseline BENCH_baseline.json]
//! ```
//!
//! `--fidelity` selects the reduced-fidelity components (same grammar
//! as `smtsim run`); `--plain` turns the observability layer off so
//! the measurement isolates the *model* cost (per-event tracing scales
//! with committed instructions, taxing high-IPC reduced-fidelity runs
//! disproportionately); `--json` emits one machine-readable record (the
//! format stored in `BENCH_baseline.json`); `--baseline` compares the
//! measured host time against the matching recorded entry and prints
//! the delta. The comparison is informational — host times are
//! machine-dependent, so CI prints it but never gates on it.

use smtsim_bench::profile::{profile_run, profile_run_plain};
use smtsim_core::json::parse_json;
use smtsim_core::{Fidelity, SimConfig, Simulator, Workload};
use smtsim_policy::PolicyKind;

fn main() {
    let mut workload = String::from("4W3");
    let mut policy = String::from("mflush");
    let mut cycles: u64 = smtsim_core::config::DEFAULT_CYCLES;
    let mut fidelity = Fidelity::detailed();
    let mut json = false;
    let mut plain = false;
    let mut baseline: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let usage = || -> ! {
        eprintln!(
            "usage: bench_profile [--workload <xWy>] [--policy <p>] [--cycles N]\n\
             \x20                    [--fidelity mem=<detailed|fast>,core=<detailed|approx>]\n\
             \x20                    [--plain] [--json] [--baseline FILE]"
        );
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for --{name}");
                usage();
            })
        };
        match a.as_str() {
            "--workload" => workload = next("workload"),
            "--policy" => policy = next("policy"),
            "--cycles" => {
                cycles = next("cycles").parse().unwrap_or_else(|_| {
                    eprintln!("bad --cycles value");
                    usage();
                })
            }
            "--fidelity" => {
                fidelity = Fidelity::parse(&next("fidelity")).unwrap_or_else(|e| {
                    eprintln!("bad value for --fidelity: {e}");
                    usage();
                })
            }
            "--json" => json = true,
            "--plain" => plain = true,
            "--baseline" => baseline = Some(next("baseline")),
            _ => usage(),
        }
    }
    let w = Workload::by_name(&workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload} (try `smtsim workloads`)");
        std::process::exit(2);
    });
    // Reuse the simulator's policy grammar by building a probe config:
    // only a handful of spellings exist, so parse the simple ones here.
    let policy_kind = match policy.as_str() {
        "icount" => PolicyKind::Icount,
        "mflush" => PolicyKind::Mflush,
        "flush-ns" => PolicyKind::FlushNonSpec,
        "stall-ns" => PolicyKind::StallNonSpec,
        "dcra" => PolicyKind::Dcra,
        other => {
            if let Some(x) = other.strip_prefix("flush-s").and_then(|x| x.parse().ok()) {
                PolicyKind::FlushSpec(x)
            } else if let Some(x) = other.strip_prefix("stall-s").and_then(|x| x.parse().ok()) {
                PolicyKind::StallSpec(x)
            } else {
                eprintln!("unknown policy {other}");
                std::process::exit(2);
            }
        }
    };
    let cfg = SimConfig::for_workload(w, policy_kind)
        .with_cycles(cycles)
        .with_fidelity(fidelity);
    if let Err(e) = Simulator::build(&cfg) {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    let label = fidelity.label();
    let run = if plain { profile_run_plain } else { profile_run };
    match run(&cfg) {
        Ok((prof, result)) => {
            let seconds = prof.total().as_secs_f64();
            if json {
                println!(
                    "{{\"workload\": \"{workload}\", \"policy\": \"{policy}\", \
                     \"cycles\": {cycles}, \"fidelity\": \"{label}\", \
                     \"host_seconds\": {seconds:.4}, \"ipc\": {:.4}}}",
                    result.throughput()
                );
            } else {
                print!(
                    "{}",
                    prof.report(&format!(
                        "Host-time per pipeline phase ({workload}/{policy}/{label}, {cycles} cycles)"
                    ))
                );
                println!(
                    "throughput {:.4} IPC ({} committed)",
                    result.throughput(),
                    result.total_committed()
                );
            }
            if let Some(path) = baseline {
                compare_baseline(&path, &workload, &policy, cycles, &label, seconds);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Print the host-time delta against the matching `BENCH_baseline.json`
/// entry, or say why no comparison was possible. Never exits nonzero:
/// host time depends on the machine, so this is a trend indicator.
fn compare_baseline(
    path: &str,
    workload: &str,
    policy: &str,
    cycles: u64,
    fidelity: &str,
    seconds: f64,
) {
    let doc = match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|s| parse_json(&s)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("baseline {path}: unreadable ({e}); skipping comparison");
            return;
        }
    };
    let entries = doc.get("entries").and_then(|v| v.as_arr()).unwrap_or(&[]);
    let found = entries.iter().find(|e| {
        e.get("workload").and_then(|v| v.as_str()) == Some(workload)
            && e.get("policy").and_then(|v| v.as_str()) == Some(policy)
            && e.get("cycles").and_then(|v| v.as_u64()) == Some(cycles)
            && e.get("fidelity").and_then(|v| v.as_str()) == Some(fidelity)
    });
    match found.and_then(|e| e.get("host_seconds").and_then(|v| v.as_f64())) {
        Some(base) if base > 0.0 => {
            let delta = 100.0 * (seconds - base) / base;
            println!(
                "baseline {workload}/{policy}/{fidelity}: {base:.3}s recorded, \
                 {seconds:.3}s now ({delta:+.1}%; informational, not a gate)"
            );
        }
        _ => println!(
            "baseline {path}: no entry for {workload}/{policy}/{fidelity} @ {cycles} cycles"
        ),
    }
}
