//! `bench_cycleloop` — throughput benchmark for the stall skip-ahead
//! cycle loop (DESIGN.md §16).
//!
//! For each tracked Fig. 1 workload the benchmark runs the detailed
//! simulator twice per repetition — once with `skip_ahead` disabled
//! (the pre-overhaul cycle loop) and once enabled — and records:
//!
//! * **deterministic fields** (`workload`, `policy`, `cycles`,
//!   `committed`, `ipc`, `skipped_cycles`, `skip_pct`): identical on
//!   every machine, gated byte-exactly by `--check` in CI;
//! * **informational fields** (`sim_seconds_skip_off`,
//!   `sim_seconds_skip_on`, `speedup`): best-of-3 host times from the
//!   same machine and build, so the recorded speedup is an honest
//!   same-run comparison — but still machine-dependent, so CI never
//!   gates on them.
//!
//! Every repetition also asserts the whole-`SimResult` JSON is
//! byte-identical between the two modes: the skip-ahead speedup is
//! only admissible because it changes nothing observable.
//!
//! ```text
//! bench_cycleloop                       # regenerate BENCH_cycleloop.json on stdout
//! bench_cycleloop --check FILE          # re-run sims, fail on deterministic drift
//! bench_cycleloop --table FILE          # render FILE as the PERFORMANCE.md table
//! bench_cycleloop --workload 2W3 --cycles 100000   # probe one ad-hoc config
//! ```

use smtsim_bench::profile::PhaseProfile;
use smtsim_core::json::{parse_json, JsonValue, ToJson};
use smtsim_core::{SimConfig, Simulator, Workload};
use smtsim_policy::PolicyKind;

/// Tracked `(workload, cycles)` configurations. All run under MFLUSH —
/// the paper's own policy and the one whose gate/resume behaviour the
/// skip-ahead horizon has to model exactly. The list deliberately
/// mixes memory-bound workloads where skip-ahead engages heavily
/// (mcf/art/lucas-class threads block all contexts at once) with a
/// high-ILP control (`4W3`) where it rarely does, so the recorded
/// speedups show both ends of the mechanism honestly.
const TRACKED: &[(&str, u64)] = &[
    ("2W1", 300_000),
    ("2W2", 300_000),
    ("2W3", 300_000),
    ("2W5", 300_000),
    ("4W3", 300_000),
];

const BEST_OF: usize = 3;
const POLICY_NAME: &str = "mflush";

struct Measurement {
    workload: String,
    cycles: u64,
    committed: u64,
    ipc: f64,
    skipped: u64,
    secs_off: f64,
    secs_on: f64,
}

impl Measurement {
    fn skip_pct(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.skipped as f64 / self.cycles as f64
        }
    }

    fn speedup(&self) -> f64 {
        if self.secs_on > 0.0 {
            self.secs_off / self.secs_on
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"policy\": \"{POLICY_NAME}\", \"cycles\": {}, \
             \"committed\": {}, \"ipc\": {:.4}, \"skipped_cycles\": {}, \"skip_pct\": {:.1}, \
             \"sim_seconds_skip_off\": {:.4}, \"sim_seconds_skip_on\": {:.4}, \
             \"speedup\": {:.2}}}",
            self.workload,
            self.cycles,
            self.committed,
            self.ipc,
            self.skipped,
            self.skip_pct(),
            self.secs_off,
            self.secs_on,
            self.speedup(),
        )
    }
}

/// One simulation: returns (simulate-phase host seconds, result JSON,
/// committed, ipc, skipped cycles). Host time covers the `step` loop
/// only — build/snapshot cost is what `bench_profile` measures.
fn run_once(cfg: &SimConfig) -> (f64, String, u64, f64, u64) {
    let mut prof = PhaseProfile::new();
    let mut sim = Simulator::build(cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot build {}: {e}", cfg.benchmarks.join("+"));
        std::process::exit(1);
    });
    prof.time("simulate", || sim.step(cfg.cycles)).unwrap_or_else(|e| {
        eprintln!("error: simulation failed: {e}");
        std::process::exit(1);
    });
    let result = sim.snapshot();
    (
        prof.total().as_secs_f64(),
        result.to_json(),
        result.total_committed(),
        result.throughput(),
        sim.skipped_cycles(),
    )
}

fn measure(workload: &str, cycles: u64, best_of: usize) -> Measurement {
    let w = Workload::by_name(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload} (try `smtsim workloads`)");
        std::process::exit(2);
    });
    let base = SimConfig::for_workload(w, PolicyKind::Mflush).with_cycles(cycles);
    let off_cfg = base.clone().with_skip_ahead(false);
    let on_cfg = base.with_skip_ahead(true);

    // Repetitions alternate off/on so both modes sample the same host
    // conditions — on a machine whose clock throttles over seconds,
    // running all `off` reps first would bias the recorded speedup.
    let mut secs_off = f64::INFINITY;
    let mut secs_on = f64::INFINITY;
    let mut committed = 0;
    let mut ipc = 0.0;
    let mut skipped = 0;
    for rep in 0..best_of {
        let (s_off, off_json, _, _, off_skipped) = run_once(&off_cfg);
        assert_eq!(off_skipped, 0, "skip_ahead=false must never skip");
        secs_off = secs_off.min(s_off);
        let (s_on, on_json, c, i, k) = run_once(&on_cfg);
        // The admissibility bar for the whole overhaul: the skipped
        // run must be byte-identical to the cycle-by-cycle run.
        assert_eq!(
            on_json, off_json,
            "{workload}: SimResult JSON differs between skip_ahead off/on"
        );
        if rep == 0 {
            committed = c;
            ipc = i;
            skipped = k;
        }
        secs_on = secs_on.min(s_on);
    }

    Measurement {
        workload: workload.to_string(),
        cycles,
        committed,
        ipc,
        skipped,
        secs_off,
        secs_on,
    }
}

fn regenerate(entries: &[(&str, u64)], best_of: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"note\": \"Stall skip-ahead benchmark (bench_cycleloop). Fields workload/policy/cycles/committed/ipc/skipped_cycles/skip_pct are deterministic and gated byte-exactly by `bench_cycleloop --check` in ci.sh (BLESS=1 regenerates); sim_seconds_* and speedup are best-of-3 host times from one machine, informational only.\",\n",
    );
    out.push_str("  \"entries\": [\n");
    for (i, (w, cycles)) in entries.iter().enumerate() {
        let m = measure(w, *cycles, best_of);
        eprintln!(
            "{w}: skip {:.1}% of cycles, {:.4}s -> {:.4}s ({:.2}x)",
            m.skip_pct(),
            m.secs_off,
            m.secs_on,
            m.speedup()
        );
        out.push_str("    ");
        out.push_str(&m.json());
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compare the deterministic fields of `path` against a fresh run.
/// Exits 1 on drift with a BLESS hint; informational fields are
/// ignored (host time is machine-dependent).
fn check(path: &str) {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|s| parse_json(&s))
        .unwrap_or_else(|e| {
            eprintln!("{path}: unreadable ({e})");
            std::process::exit(1);
        });
    let entries = doc.get("entries").and_then(JsonValue::as_arr).unwrap_or(&[]);
    let mut drift = Vec::new();
    for e in entries {
        let w = e.get("workload").and_then(JsonValue::as_str).unwrap_or("?");
        let cycles = e.get("cycles").and_then(JsonValue::as_u64).unwrap_or(0);
        let m = measure(w, cycles, 1);
        let field_u64 = |k: &str| e.get(k).and_then(JsonValue::as_u64);
        let field_str =
            |k: &str| e.get(k).and_then(JsonValue::as_f64).map(|v| format!("{v:.4}"));
        let mut expect = |name: &str, recorded: String, now: String| {
            if recorded != now {
                drift.push(format!("{w}/{name}: recorded {recorded}, measured {now}"));
            }
        };
        expect(
            "committed",
            format!("{:?}", field_u64("committed")),
            format!("{:?}", Some(m.committed)),
        );
        expect(
            "skipped_cycles",
            format!("{:?}", field_u64("skipped_cycles")),
            format!("{:?}", Some(m.skipped)),
        );
        expect(
            "ipc",
            format!("{:?}", field_str("ipc")),
            format!("{:?}", Some(format!("{:.4}", m.ipc))),
        );
    }
    if drift.is_empty() {
        println!("bench_cycleloop --check: {} entries match {path}", entries.len());
    } else {
        eprintln!("bench_cycleloop --check: deterministic drift against {path}:");
        for d in &drift {
            eprintln!("  {d}");
        }
        eprintln!("regenerate with: BLESS=1 scripts/ci.sh  (or: target/release/bench_cycleloop > {path})");
        std::process::exit(1);
    }
}

/// Render `path` as the markdown table embedded in PERFORMANCE.md
/// (pure formatting of the committed file — no simulation — so the
/// output is deterministic and CI can diff it against the doc).
fn table(path: &str) {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|s| parse_json(&s))
        .unwrap_or_else(|e| {
            eprintln!("{path}: unreadable ({e})");
            std::process::exit(1);
        });
    let entries = doc.get("entries").and_then(JsonValue::as_arr).unwrap_or(&[]);
    println!("| workload | policy | cycles | IPC | skipped | skip % | sim s (off) | sim s (on) | speedup |");
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for e in entries {
        let s = |k: &str| e.get(k).and_then(JsonValue::as_str).unwrap_or("?").to_string();
        let u = |k: &str| e.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
        let f = |k: &str, p: usize| {
            e.get(k)
                .and_then(JsonValue::as_f64)
                .map(|v| format!("{v:.p$}"))
                .unwrap_or_else(|| "?".to_string())
        };
        println!(
            "| {} | {} | {} | {} | {} | {}% | {} | {} | {}x |",
            s("workload"),
            s("policy"),
            u("cycles"),
            f("ipc", 4),
            u("skipped_cycles"),
            f("skip_pct", 1),
            f("sim_seconds_skip_off", 4),
            f("sim_seconds_skip_on", 4),
            f("speedup", 2),
        );
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let mut check_path: Option<String> = None;
    let mut table_path: Option<String> = None;
    let mut probe_workload: Option<String> = None;
    let mut probe_cycles: u64 = 300_000;
    let usage = || -> ! {
        eprintln!(
            "usage: bench_cycleloop [--check FILE | --table FILE]\n\
             \x20                      [--workload <xWy>] [--cycles N]"
        );
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for --{name}");
                usage();
            })
        };
        match a.as_str() {
            "--check" => check_path = Some(next("check")),
            "--table" => table_path = Some(next("table")),
            "--workload" => probe_workload = Some(next("workload")),
            "--cycles" => {
                probe_cycles = next("cycles").parse().unwrap_or_else(|_| {
                    eprintln!("bad --cycles value");
                    usage();
                })
            }
            _ => usage(),
        }
    }
    if let Some(p) = check_path {
        check(&p);
    } else if let Some(p) = table_path {
        table(&p);
    } else if let Some(w) = probe_workload {
        let m = measure(&w, probe_cycles, BEST_OF);
        println!("{}", m.json());
    } else {
        print!("{}", regenerate(TRACKED, BEST_OF));
    }
}
