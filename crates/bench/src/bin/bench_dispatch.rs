//! `bench_dispatch` — measures the dispatch mechanism behind
//! [`smtsim_mem::MemoryModel`]: closed-enum `match` dispatch (what the
//! facade ships) against `Box<dyn Trait>` virtual dispatch (the
//! alternative the pluggable-fidelity design rejected), over the same
//! two concrete models and the same deterministic access stream.
//!
//! ```text
//! bench_dispatch [--accesses N]
//! ```
//!
//! The loop mirrors the simulator's hot sequence — one access plus one
//! tick per iteration, completions drained every 64 — so the numbers
//! are representative, not a micro-benchmark of a bare virtual call.
//! Results belong in DESIGN.md §13; re-run this tool when revisiting
//! the facade design.

use smtsim_bench::timing::format_duration;
use smtsim_mem::{AccessKind, AccessResult, Completion, FastMemory, MemConfig, MemoryModel, MemorySystem};
use std::time::Instant;

/// The facade surface the hot loop actually exercises.
trait MemLike {
    fn access(&mut self, core: u32, kind: AccessKind, addr: u64, now: u64) -> AccessResult;
    fn tick(&mut self, now: u64);
    fn drain_completions(&mut self, core: u32) -> Vec<Completion>;
}

impl MemLike for MemorySystem {
    fn access(&mut self, core: u32, kind: AccessKind, addr: u64, now: u64) -> AccessResult {
        MemorySystem::access(self, core, kind, addr, now)
    }
    fn tick(&mut self, now: u64) {
        MemorySystem::tick(self, now)
    }
    fn drain_completions(&mut self, core: u32) -> Vec<Completion> {
        MemorySystem::drain_completions(self, core)
    }
}

impl MemLike for FastMemory {
    fn access(&mut self, core: u32, kind: AccessKind, addr: u64, now: u64) -> AccessResult {
        FastMemory::access(self, core, kind, addr, now)
    }
    fn tick(&mut self, now: u64) {
        FastMemory::tick(self, now)
    }
    fn drain_completions(&mut self, core: u32) -> Vec<Completion> {
        FastMemory::drain_completions(self, core)
    }
}

/// Deterministic address stream: mostly-L1-resident with a strided
/// escape, the same shape every run (no host entropy).
fn addr_of(i: u64) -> u64 {
    if i.is_multiple_of(17) {
        (0x10_0000 + i.wrapping_mul(2654435761) % (4 << 20)) & !7
    } else {
        0x4000 + (i % 512) * 8
    }
}

// lint: allow(D5) -- crates/bench is the one sanctioned wall-clock user
#[allow(clippy::disallowed_methods)]
fn drive_enum(mut m: MemoryModel, n: u64) -> (f64, u64) {
    let start = Instant::now();
    let mut sink = 0u64;
    for i in 0..n {
        m.tick(i);
        if let AccessResult::Miss { req, .. } = m.access(0, AccessKind::Load, addr_of(i), i) {
            sink = sink.wrapping_add(req as u64);
        }
        if i % 64 == 0 {
            sink = sink.wrapping_add(m.drain_completions(0).len() as u64);
        }
    }
    (start.elapsed().as_secs_f64(), sink)
}

// lint: allow(D5) -- crates/bench is the one sanctioned wall-clock user
#[allow(clippy::disallowed_methods)]
fn drive_dyn(m: &mut dyn MemLike, n: u64) -> (f64, u64) {
    let start = Instant::now();
    let mut sink = 0u64;
    for i in 0..n {
        m.tick(i);
        if let AccessResult::Miss { req, .. } = m.access(0, AccessKind::Load, addr_of(i), i) {
            sink = sink.wrapping_add(req as u64);
        }
        if i % 64 == 0 {
            sink = sink.wrapping_add(m.drain_completions(0).len() as u64);
        }
    }
    (start.elapsed().as_secs_f64(), sink)
}

fn main() {
    let mut accesses: u64 = 4_000_000;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--accesses" => {
                accesses = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("usage: bench_dispatch [--accesses N]");
                        std::process::exit(2);
                    })
            }
            _ => {
                eprintln!("usage: bench_dispatch [--accesses N]");
                std::process::exit(2);
            }
        }
    }
    let cfg = MemConfig::paper(1);
    println!("== MemoryModel dispatch: enum match vs Box<dyn> ({accesses} accesses) ==");
    for (name, fast) in [("detailed", false), ("fast", true)] {
        // Best of 3 per mechanism: the comparison needs the noise floor
        // below the few-ns/call difference it is trying to resolve.
        let mut enum_s = f64::MAX;
        let mut dyn_s = f64::MAX;
        let mut sinks = (0, 0);
        for _ in 0..3 {
            let (s, k) = if fast {
                drive_enum(MemoryModel::fast(cfg), accesses)
            } else {
                drive_enum(MemoryModel::detailed(cfg), accesses)
            };
            if s < enum_s {
                enum_s = s;
                sinks.0 = k;
            }
            let (s, k) = if fast {
                let mut m: Box<dyn MemLike> = Box::new(FastMemory::new(cfg));
                drive_dyn(m.as_mut(), accesses)
            } else {
                let mut m: Box<dyn MemLike> = Box::new(MemorySystem::new(cfg));
                drive_dyn(m.as_mut(), accesses)
            };
            if s < dyn_s {
                dyn_s = s;
                sinks.1 = k;
            }
        }
        assert_eq!(sinks.0, sinks.1, "both mechanisms must do identical work");
        let per = 1e9 / accesses as f64;
        println!(
            "{name:<9} enum {:>9} ({:>6.2} ns/op)   dyn {:>9} ({:>6.2} ns/op)   dyn/enum {:.3}",
            format_duration(std::time::Duration::from_secs_f64(enum_s)),
            enum_s * per,
            format_duration(std::time::Duration::from_secs_f64(dyn_s)),
            dyn_s * per,
            dyn_s / enum_s,
        );
    }
}
