//! `bench_serve` — host-time cost of a served answer: cold (first
//! request, simulates) vs cache hit (repeat request, replays the
//! journal). The gap is the whole point of the fingerprint cache, so
//! CI prints this record informationally (host time never gates).
//!
//! ```text
//! bench_serve [--workload 2W2] [--policy mflush] [--cycles N] [--hits N]
//! ```
//!
//! Output is one JSON record per run, the format stored in
//! `BENCH_serve.json`.

use std::time::Instant;

use smtsim_serve::server::{Server, ServerConfig};
use smtsim_serve::{http_post, ClientResponse};

// lint: allow(D5) -- crates/bench is the one sanctioned wall-clock user
#[allow(clippy::disallowed_methods)]
fn timed_post(addr: &str, body: &str) -> (f64, ClientResponse) {
    let start = Instant::now();
    let resp = http_post(addr, "/run", body, 0).unwrap_or_else(|e| {
        eprintln!("error: request failed: {e}");
        std::process::exit(1);
    });
    (start.elapsed().as_secs_f64() * 1e3, resp)
}

fn main() {
    let mut workload = String::from("2W2");
    let mut policy = String::from("mflush");
    let mut cycles: u64 = smtsim_core::config::DEFAULT_CYCLES;
    let mut hits: u32 = 5;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let usage = || -> ! {
        eprintln!("usage: bench_serve [--workload <xWy>] [--policy <p>] [--cycles N] [--hits N]");
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        let mut next = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for --{name}");
                usage();
            })
        };
        match a.as_str() {
            "--workload" => workload = next("workload"),
            "--policy" => policy = next("policy"),
            "--cycles" => {
                cycles = next("cycles").parse().unwrap_or_else(|_| {
                    eprintln!("bad --cycles value");
                    usage();
                })
            }
            "--hits" => {
                hits = next("hits").parse().unwrap_or_else(|_| {
                    eprintln!("bad --hits value");
                    usage();
                })
            }
            _ => usage(),
        }
    }

    let handle = Server::launch(ServerConfig::default()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let addr = handle.bound_addr();
    let body =
        format!("{{\"workload\":\"{workload}\",\"policy\":\"{policy}\",\"cycles\":{cycles}}}");

    let (cold_ms, cold) = timed_post(&addr, &body);
    if cold.status != 200 {
        eprintln!("error: cold request answered {}", cold.status);
        std::process::exit(1);
    }

    // Best-of-N for the hit path: it is microseconds of cache lookup
    // plus the HTTP round-trip, so scheduler noise dominates the mean.
    let mut hit_ms = f64::INFINITY;
    for _ in 0..hits.max(1) {
        let (ms, r) = timed_post(&addr, &body);
        assert_eq!(r.body, cold.body, "cache replay must be byte-identical");
        hit_ms = hit_ms.min(ms);
    }
    handle.begin_drain();
    handle.wait_for_drain();

    println!(
        "{{\"bench\":\"serve\",\"workload\":\"{workload}\",\"policy\":\"{policy}\",\"cycles\":{cycles},\"cold_ms\":{cold_ms:.3},\"hit_ms\":{hit_ms:.3},\"speedup\":{:.1}}}",
        cold_ms / hit_ms.max(0.001)
    );
}
