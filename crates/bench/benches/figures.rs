//! Criterion benchmarks: one per paper table/figure.
//!
//! Each benchmark measures the cost of regenerating (a scaled-down
//! version of) the corresponding figure, and doubles as a performance
//! regression guard for the simulator itself. The printed figures come
//! from the `figures` binary; these benches exercise identical code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smtsim_bench as figs;
use smtsim_core::{SimConfig, Simulator, Workload};
use smtsim_policy::PolicyKind;

/// Cycle budget for benchmarked figure regenerations (small but
/// non-trivial; the binary uses the full default).
const BENCH_CYCLES: u64 = 4_000;

fn bench_single_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for (wl, label) in [("2W1", "1core"), ("4W1", "2core"), ("8W1", "4core")] {
        g.bench_with_input(BenchmarkId::new("icount", label), &wl, |b, wl| {
            let w = Workload::by_name(wl).unwrap();
            b.iter(|| {
                Simulator::build(
                    &SimConfig::for_workload(w, PolicyKind::Icount).with_cycles(BENCH_CYCLES),
                )
                .run()
            })
        });
        g.bench_with_input(BenchmarkId::new("mflush", label), &wl, |b, wl| {
            let w = Workload::by_name(wl).unwrap();
            b.iter(|| {
                Simulator::build(
                    &SimConfig::for_workload(w, PolicyKind::Mflush).with_cycles(BENCH_CYCLES),
                )
                .run()
            })
        });
    }
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_singlecore", |b| {
        b.iter(|| figs::fig2(BENCH_CYCLES, 0))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_multicore", |b| b.iter(|| figs::fig3(BENCH_CYCLES, 0)));
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_l2hit", |b| b.iter(|| figs::fig4(BENCH_CYCLES, 0)));
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_dm_sweep", |b| b.iter(|| figs::fig5(BENCH_CYCLES, 0)));
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_throughput", |b| b.iter(|| figs::fig8(BENCH_CYCLES, 0)));
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_energy", |b| b.iter(|| figs::fig11(BENCH_CYCLES, 0)));
}

fn bench_static_tables(c: &mut Criterion) {
    // Figs 1, 6, 7, 9, 10 are static renders; cheap, but guarded too.
    c.bench_function("fig1_parameters", |b| b.iter(figs::fig1));
    c.bench_function("fig6_operational_env", |b| b.iter(figs::fig6));
    c.bench_function("fig7_mcreg", |b| b.iter(figs::fig7));
    c.bench_function("fig9_energy_distribution", |b| b.iter(figs::fig9));
    c.bench_function("fig10_ecf", |b| b.iter(figs::fig10));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_runs, bench_fig2, bench_fig3, bench_fig4,
              bench_fig5, bench_fig8, bench_fig11, bench_static_tables
}
criterion_main!(benches);
