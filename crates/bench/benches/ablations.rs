//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * MCReg history length / reducer (paper §4.1: "more complex
//!   configurations, involving queues … and more complex functions");
//! * the Preventive State on/off;
//! * the MT term on/off in the Barrier;
//! * STALL vs FLUSH response actions;
//! * L2 bank-count sensitivity of the contention model.
//!
//! Each bench ALSO prints the measured throughput of its variants once,
//! so `cargo bench` leaves an ablation record next to the timings.

use criterion::{criterion_group, criterion_main, Criterion};
use smtsim_core::{SimConfig, Simulator, Workload};
use smtsim_policy::mflush::McRegReducer;
use smtsim_policy::PolicyKind;
use std::sync::Once;

const CYCLES: u64 = 4_000;
const REPORT_CYCLES: u64 = 40_000;

fn run(workload: &str, policy: PolicyKind, cycles: u64) -> f64 {
    let w = Workload::by_name(workload).unwrap();
    Simulator::build(&SimConfig::for_workload(w, policy).with_cycles(cycles))
        .run()
        .throughput()
}

fn run_banks(workload: &str, banks: u32, cycles: u64) -> f64 {
    let w = Workload::by_name(workload).unwrap();
    let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount).with_cycles(cycles);
    cfg.mem.l2_banks = banks;
    Simulator::build(&cfg).run().throughput()
}

fn run_clusters(workload: &str, clusters: u32, policy: PolicyKind, cycles: u64) -> f64 {
    let w = Workload::by_name(workload).unwrap();
    let mut cfg = SimConfig::for_workload(w, policy).with_cycles(cycles);
    cfg.mem.l2_clusters = clusters;
    Simulator::build(&cfg).run().throughput()
}

fn run_prefetch(workload: &str, policy: PolicyKind, cycles: u64) -> f64 {
    let w = Workload::by_name(workload).unwrap();
    let mut cfg = SimConfig::for_workload(w, policy).with_cycles(cycles);
    cfg.mem.next_line_prefetch = true;
    Simulator::build(&cfg).run().throughput()
}

static REPORT: Once = Once::new();

fn print_report() {
    REPORT.call_once(|| {
        println!("\n== Ablation report ({REPORT_CYCLES}-cycle runs on 8W3) ==");
        let mcreg = |history, reducer| PolicyKind::MflushCustom {
            mcreg_history: history,
            mcreg_reducer: reducer,
            preventive: true,
            mt_enabled: true,
        };
        println!(
            "MCReg history 1/Last (paper): {:.4}",
            run("8W3", PolicyKind::Mflush, REPORT_CYCLES)
        );
        println!(
            "MCReg history 4/Mean:         {:.4}",
            run("8W3", mcreg(4, McRegReducer::Mean), REPORT_CYCLES)
        );
        println!(
            "MCReg history 4/Max:          {:.4}",
            run("8W3", mcreg(4, McRegReducer::Max), REPORT_CYCLES)
        );
        println!(
            "MFLUSH w/o preventive state:  {:.4}",
            run(
                "8W3",
                PolicyKind::MflushCustom {
                    mcreg_history: 1,
                    mcreg_reducer: McRegReducer::Last,
                    preventive: false,
                    mt_enabled: true,
                },
                REPORT_CYCLES
            )
        );
        println!(
            "MFLUSH w/o MT term:           {:.4}",
            run(
                "8W3",
                PolicyKind::MflushCustom {
                    mcreg_history: 1,
                    mcreg_reducer: McRegReducer::Last,
                    preventive: true,
                    mt_enabled: false,
                },
                REPORT_CYCLES
            )
        );
        println!(
            "STALL-S30 vs FLUSH-S30:       {:.4} vs {:.4}",
            run("8W3", PolicyKind::StallSpec(30), REPORT_CYCLES),
            run("8W3", PolicyKind::FlushSpec(30), REPORT_CYCLES)
        );
        for banks in [1u32, 2, 4, 8] {
            println!(
                "ICOUNT with {banks} L2 bank(s):     {:.4}",
                run_banks("8W3", banks, REPORT_CYCLES)
            );
        }
        println!(
            "ADTS adaptive (related work): {:.4}",
            run("8W3", PolicyKind::Adts, REPORT_CYCLES)
        );
        println!(
            "DCRA (related work [3]):      {:.4}",
            run("8W3", PolicyKind::Dcra, REPORT_CYCLES)
        );
        println!(
            "FLUSH-ADAPT (hill-climbed):   {:.4}",
            run("8W3", PolicyKind::FlushAdaptive, REPORT_CYCLES)
        );
        println!(
            "FLUSH-LMP (miss predictor):   {:.4}",
            run("8W3", PolicyKind::FlushMissPredict, REPORT_CYCLES)
        );
        for clusters in [1u32, 2, 4] {
            println!(
                "MFLUSH with {clusters} L2 cluster(s): {:.4}",
                run_clusters("8W3", clusters, PolicyKind::Mflush, REPORT_CYCLES)
            );
        }
        println!(
            "ICOUNT + next-line prefetch:  {:.4} (vs {:.4})",
            run_prefetch("8W3", PolicyKind::Icount, REPORT_CYCLES),
            run("8W3", PolicyKind::Icount, REPORT_CYCLES)
        );
        println!();
    });
}

fn ablation_mcreg(c: &mut Criterion) {
    print_report();
    let mut g = c.benchmark_group("ablation_mcreg");
    g.bench_function("history1_last", |b| {
        b.iter(|| run("8W3", PolicyKind::Mflush, CYCLES))
    });
    g.bench_function("history4_mean", |b| {
        b.iter(|| {
            run(
                "8W3",
                PolicyKind::MflushCustom {
                    mcreg_history: 4,
                    mcreg_reducer: McRegReducer::Mean,
                    preventive: true,
                    mt_enabled: true,
                },
                CYCLES,
            )
        })
    });
    g.finish();
}

fn ablation_preventive(c: &mut Criterion) {
    c.bench_function("ablation_no_preventive", |b| {
        b.iter(|| {
            run(
                "8W3",
                PolicyKind::MflushCustom {
                    mcreg_history: 1,
                    mcreg_reducer: McRegReducer::Last,
                    preventive: false,
                    mt_enabled: true,
                },
                CYCLES,
            )
        })
    });
}

fn ablation_mt(c: &mut Criterion) {
    c.bench_function("ablation_no_mt", |b| {
        b.iter(|| {
            run(
                "8W3",
                PolicyKind::MflushCustom {
                    mcreg_history: 1,
                    mcreg_reducer: McRegReducer::Last,
                    preventive: true,
                    mt_enabled: false,
                },
                CYCLES,
            )
        })
    });
}

fn ablation_stall(c: &mut Criterion) {
    c.bench_function("ablation_stall_vs_flush", |b| {
        b.iter(|| {
            (
                run("8W3", PolicyKind::StallSpec(30), CYCLES),
                run("8W3", PolicyKind::FlushSpec(30), CYCLES),
            )
        })
    });
}

fn ablation_clusters(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_l2_clusters");
    for clusters in [1u32, 2] {
        g.bench_function(format!("{clusters}clusters"), |b| {
            b.iter(|| run_clusters("8W3", clusters, PolicyKind::Mflush, CYCLES))
        });
    }
    g.finish();
}

fn ablation_prefetch(c: &mut Criterion) {
    c.bench_function("ablation_next_line_prefetch", |b| {
        b.iter(|| run_prefetch("8W3", PolicyKind::Icount, CYCLES))
    });
}

fn ablation_banks(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_l2_banks");
    for banks in [2u32, 4, 8] {
        g.bench_function(format!("{banks}banks"), |b| {
            b.iter(|| run_banks("8W3", banks, CYCLES))
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_mcreg, ablation_preventive, ablation_mt,
              ablation_stall, ablation_banks, ablation_clusters,
              ablation_prefetch
}
criterion_main!(ablations);
