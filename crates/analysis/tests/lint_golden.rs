//! End-to-end linter tests against checked-in data.
//!
//! Three gates live here:
//!
//! 1. **Golden fixture** — the fixture workspace under
//!    `tests/fixtures/fixture_ws/` exercises every rule; its `--json`
//!    report must match `tests/fixtures/lint.golden.json` byte for
//!    byte, and repeated runs must agree byte for byte (set `BLESS=1`
//!    to regenerate the golden after an intentional change).
//! 2. **Seeded mutation** — deleting one real `.field("flushes", …)`
//!    emission from `crates/core/src/json.rs` in an in-memory copy of
//!    the workspace must produce exactly one new D4 finding. This
//!    proves the cross-reference is live, not vacuously green.
//! 3. **Self-gate** — the real workspace lints clean (0 unwaived), the
//!    same check `scripts/ci.sh` enforces.

use smtsim_analysis::{collect_files, lint_files, lint_root, Baseline, Rule};
use smtsim_core::json::ToJson;
use std::path::{Path, PathBuf};

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fixture_ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn fixture_report_matches_golden_and_is_byte_stable() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint.golden.json");
    let report = lint_root(&fixture_ws(), &Baseline::default());
    let json = report.to_json();

    // Byte-identity across repeated runs is the acceptance criterion
    // for the linter's own determinism.
    for _ in 0..3 {
        let again = lint_root(&fixture_ws(), &Baseline::default()).to_json();
        assert_eq!(json, again, "lint --json output differs between runs");
    }

    if std::env::var("BLESS").is_ok() {
        std::fs::write(&golden_path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden fixture missing; run with BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "fixture lint report drifted from tests/fixtures/lint.golden.json; \
         if the change is intentional, regenerate with BLESS=1"
    );
}

#[test]
fn fixture_findings_cover_every_rule() {
    let report = lint_root(&fixture_ws(), &Baseline::default());
    for rule in smtsim_analysis::ALL_RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "fixture workspace produced no {} finding",
            rule.id()
        );
    }
    // One D3 and one D9 are waived inline; everything else is raw.
    assert_eq!(report.waived_count(), 2);
    assert!(report.unwaived_count() > 0);
    // The sanctioned wall-clock user and test regions stay silent
    // (the bench tree still gets D9 findings — its figure drivers are
    // exactly where that rule bites).
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == Rule::D2 && f.path.starts_with("crates/bench/")),
        "crates/bench must be exempt from D2"
    );
}

#[test]
fn seeded_d4_mutation_is_caught() {
    let root = workspace_root();
    let mut files = collect_files(&root);
    assert!(
        files.iter().any(|(rel, _)| rel == "crates/core/src/json.rs"),
        "workspace walk must reach crates/core/src/json.rs"
    );

    let baseline = Baseline::default();
    let clean = lint_files(&files, &baseline);
    assert!(
        !clean.findings.iter().any(|f| f.rule == Rule::D4),
        "unmutated workspace must have zero D4 findings"
    );

    // Seed the defect: stop emitting ThreadStats.flushes.
    let dropped = ".field(\"flushes\", &self.flushes)";
    let json_rs = files
        .iter_mut()
        .find(|(rel, _)| rel == "crates/core/src/json.rs")
        .expect("json.rs present");
    assert!(
        json_rs.1.contains(dropped),
        "mutation anchor {dropped:?} not found in json.rs; update this test"
    );
    json_rs.1 = json_rs.1.replacen(dropped, "", 1);

    let mutated = lint_files(&files, &baseline);
    let d4: Vec<_> = mutated
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D4)
        .collect();
    assert_eq!(d4.len(), 1, "expected exactly one D4 finding, got {d4:?}");
    assert_eq!(d4[0].symbol, "ThreadStats.flushes");
    assert!(!d4[0].waived);
    assert!(
        mutated.unwaived_count() > clean.unwaived_count(),
        "the seeded defect must fail the gate"
    );
}

#[test]
fn seeded_d10_mutation_is_caught_with_its_chain() {
    let root = workspace_root();
    let mut files = collect_files(&root);
    let baseline = Baseline::default();
    let clean = lint_files(&files, &baseline);
    assert!(
        !clean.unwaived().any(|f| f.rule == Rule::D10),
        "unmutated workspace must have zero unwaived D10 findings"
    );

    // Seed the defect: a fresh allocation inside `try_issue_one`,
    // three frames below `DetailedCore::tick` in the cycle loop.
    let anchor = "let (class, addr, queue, addr_pc, wrong_path) = {";
    let detailed = files
        .iter_mut()
        .find(|(rel, _)| rel == "crates/cpu/src/detailed.rs")
        .expect("detailed.rs present");
    assert!(
        detailed.1.contains(anchor),
        "mutation anchor {anchor:?} not found in detailed.rs; update this test"
    );
    detailed.1 = detailed.1.replacen(
        anchor,
        "let _mutant: Vec<u64> = Vec::new();\n        let (class, addr, queue, addr_pc, wrong_path) = {",
        1,
    );

    let mutated = lint_files(&files, &baseline);
    let planted: Vec<_> = mutated
        .findings
        .iter()
        .filter(|f| {
            f.rule == Rule::D10 && f.path == "crates/cpu/src/detailed.rs" && f.symbol == "Vec::new"
        })
        .collect();
    assert_eq!(planted.len(), 1, "expected the planted D10, got {planted:?}");
    let f = planted[0];
    assert!(!f.waived);
    // The chain must walk from a cycle root down to the planted site's
    // function through its one real caller.
    assert_eq!(f.chain.last().map(String::as_str), Some("DetailedCore::try_issue_one"));
    assert!(
        f.chain.contains(&"DetailedCore::issue".to_string()),
        "chain must pass through the only caller: {:?}",
        f.chain
    );
    assert!(
        mutated.unwaived_count() > clean.unwaived_count(),
        "the seeded defect must fail the gate"
    );
}

#[test]
fn real_workspace_lints_clean() {
    let root = workspace_root();
    let baseline_path = root.join("scripts/lint-baseline.txt");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    };
    let report = lint_root(&root, &baseline);
    let stray: Vec<String> = report.unwaived().map(|f| f.render()).collect();
    assert!(
        stray.is_empty(),
        "workspace has unwaived lint findings:\n{}",
        stray.join("\n")
    );
}
