//! Fixture: a golden-figure driver that reaches for the fast models.

pub fn fig1(cfg: SimConfig) -> SimResult {
    // D9: figures must come from the detailed models.
    let cfg = cfg.with_fidelity(Fidelity::fast());
    run(cfg)
}

pub fn fig2_waived(cfg: SimConfig) -> SimResult {
    // lint: allow(D9) -- sanity overlay comparing fast-model trends, not published numbers
    let fast = FastMemory::new(cfg.mem);
    overlay(fast)
}
