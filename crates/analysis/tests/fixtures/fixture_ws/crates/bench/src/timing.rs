//! Fixture: crates/bench is the sanctioned wall-clock user — no D2
//! finding for this file. But when simulator code *calls into* bench
//! (see `Simulator::run` in the fixture sim.rs), D12 flags the
//! nondeterminism sources here with the reaching chain.

pub fn measure() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

/// D12 (hash order): only a finding because the run path reaches it.
pub fn dedup_count(xs: &[u64]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}
