//! Fixture: crates/bench is the sanctioned wall-clock user — no D2
//! finding for this file.

pub fn measure() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
