//! Fixture: the call-graph rules (D10–D12, and D3's graph scope).
//! `Simulator::step` is the cycle root and `Simulator::run` the run
//! root; every case below is pinned by its distance from those roots.

pub struct Simulator {
    pub cycle: u64,
    pub horizon: u64,
    pub ready: Vec<u64>,
}

impl Simulator {
    pub fn step(&mut self, core: &mut FixtureCore, q: &mut Vec<u64>) -> u64 {
        self.cycle += 1;
        // graph-D3 sees through this call: FixtureCore::step's unwraps
        // in crates/cpu/src/core.rs get chains rooted here.
        let head = core.step(q);
        self.issue_stage(head)
    }

    fn issue_stage(&mut self, head: u64) -> u64 {
        // D10: allocates every cycle, one frame below the cycle root.
        let order: Vec<u64> = self.ready.iter().copied().collect();
        // D13 (graph): the cycle loop reaching a serve-defined
        // function (crates/serve/src/server.rs) inverts the layering.
        let backlog = poll_socket_backlog(&mut self.srv);
        order.first().copied().unwrap_or(head + backlog)
    }

    pub fn run(mut self, core: &mut FixtureCore, q: &mut Vec<u64>) -> u64 {
        let mut last = 0;
        while self.cycle < self.horizon {
            last = self.step(core, q);
        }
        // D12: the run path reaches into crates/bench — a wall-clock
        // read and a hash collection, each flagged with its chain.
        let _spent = measure();
        let _uniq = dedup_count(q);
        finish(last)
    }
}

/// D11: aborting the run via a macro — flagged even in a hot file
/// (method-shaped unwraps in hot files are graph-D3's business).
fn finish(last: u64) -> u64 {
    if last == u64::MAX {
        panic!("impossible commit count");
    }
    last
}
