//! Fixture: the serialisation side of the D4 check.

impl ToJson for FixtureStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("committed", &self.committed)
            .field("flushes", &self.flushes);
        // `dropped_tally` is missing on purpose; `scratch` is private.
        o.end();
    }
}
