//! Fixture: D13's lexical form — `std::net` spellings and socket-type
//! idents outside `crates/serve/` are findings wherever they appear
//! (the graph form is exercised from `sim.rs`, whose cycle root calls
//! into the serve fixture file).

use std::net::TcpStream;

pub struct NetPoller {
    pub polls: u64,
}

impl NetPoller {
    /// D13 (lexical): a socket type mentioned in simulator code.
    pub fn connect_upstream(&mut self) -> Option<TcpStream> {
        self.polls += 1;
        None
    }
}
