//! Fixture: the one blessed `catch_unwind` site. D7 must stay silent
//! here — this path (crates/core/src/sweep.rs) is the sweep runner's
//! panic-isolation boundary.

use std::panic::catch_unwind;

pub fn isolate(job: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    catch_unwind(job).is_ok()
}
