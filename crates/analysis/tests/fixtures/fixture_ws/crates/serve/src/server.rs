//! Fixture: the serve side of D13. Socket types *inside*
//! `crates/serve/` are the sanctioned use and must stay silent; the
//! function below only becomes a finding when simulator code reaches
//! it (see `crates/core/src/netloop.rs` in this fixture workspace).

use std::net::TcpListener;

pub struct FixtureServer {
    pub bound: bool,
}

/// Called (wrongly) from the fixture's cycle loop: D13's graph form
/// flags this definition with the chain that reaches it.
pub fn poll_socket_backlog(srv: &mut FixtureServer) -> u64 {
    let _ = TcpListener::bind("127.0.0.1:0");
    srv.bound = true;
    1
}
