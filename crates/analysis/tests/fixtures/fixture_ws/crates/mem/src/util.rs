//! Fixture: D1/D2/D5 cases plus the literal/comment camouflage the
//! lexer must see through.

// D1: hash collections in simulator code.
use std::collections::HashMap;

// D5: clippy allow without a waiver.
#[allow(clippy::needless_range_loop)]
pub fn touch(m: &mut HashMap<u64, u64>) {
    // D2: wall-clock type in simulator code.
    let _stamp = std::time::SystemTime::now();
    m.insert(1, 2);
}

// D7: panic isolation outside the blessed sweep boundary.
pub fn swallow() -> bool {
    std::panic::catch_unwind(|| {}).is_ok()
}

// None of these may produce findings: the names only occur inside
// comments and literals. /* Instant::now() in a /* nested */ comment */
// catch_unwind in a comment is fine too.
pub fn camouflage() -> (&'static str, &'static str, char) {
    let a = "HashMap in a plain string";
    let b = r#"SystemTime in a raw "quoted" string"#;
    let c = 'x'; // b'y' and 'a' vs &'a str disambiguation live in lexer tests
    (a, b, c)
}
