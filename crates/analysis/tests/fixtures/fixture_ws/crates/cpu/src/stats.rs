//! Fixture: a stats struct whose `ToJson` impl (in
//! `crates/core/src/json.rs`) forgets one field — the D4 case.

pub struct FixtureStats {
    pub committed: u64,
    pub flushes: u64,
    /// Never serialized: D4 must flag this.
    pub dropped_tally: u64,
    /// Private fields are exempt from D4.
    scratch: u64,
}

impl FixtureStats {
    pub fn scratch(&self) -> u64 {
        self.scratch
    }
}
