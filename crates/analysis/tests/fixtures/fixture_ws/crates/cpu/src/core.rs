//! Fixture: a pretend cycle-loop file. Every construct here is chosen
//! to pin one linter behaviour in the golden report.

pub struct FixtureCore {
    pub total_cycles: u64,
    /// D6 (declaration): a counter must not be floating point.
    pub busy_cycles: f64,
}

impl FixtureCore {
    pub fn step(&mut self, q: &mut Vec<u64>) -> u64 {
        // D3: bare unwrap in a hot file.
        let head = q.pop().unwrap();
        // Waived D3: suppressed, still counted as a waived finding.
        // lint: allow(D3) -- fixture waiver: q is non-empty by construction
        let next = q.last().unwrap();
        // D6 (accumulation): float flows into a counter.
        self.busy_cycles += head as f64 * 0.5;
        head + next
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        // No D3 here: test regions are exempt.
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
