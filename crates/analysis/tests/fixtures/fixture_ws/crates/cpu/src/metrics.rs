//! Fixture: D8 registration extraction. One documented registration,
//! one the fixture METRICS.md forgot, and one inside a test region
//! that must not count.

pub struct MetricSpec {
    pub name: &'static str,
    pub unit: &'static str,
}

pub const DOCUMENTED: MetricSpec = MetricSpec {
    name: "fix.documented_rate",
    unit: "events",
};

pub const UNDOCUMENTED: MetricSpec = MetricSpec {
    name: "fix.undocumented_rate",
    unit: "events",
};

#[cfg(test)]
mod tests {
    use super::MetricSpec;

    #[test]
    fn test_registrations_are_ignored() {
        let m = MetricSpec {
            name: "fix.test_only_rate",
            unit: "events",
        };
        assert_eq!(m.name, "fix.test_only_rate");
    }
}
