//! The lexer's hard cases: the constructs that defeat naive (regex or
//! line-based) scanning and would make the linter lie — raw strings,
//! char literals vs lifetimes, nested block comments, byte strings.
//! Each case asserts both the token shapes *and* that rule-relevant
//! identifiers inside literals/comments stay invisible.

use smtsim_analysis::lexer::{lex, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .into_iter()
        .map(|t| (t.kind, t.text.to_string()))
        .collect()
}

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.to_string())
        .collect()
}

#[test]
fn raw_strings_swallow_quotes_and_hashes() {
    let src = r####"let s = r#"says "HashMap" here \ no escape"#; next"####;
    let toks = kinds(src);
    let raw = toks
        .iter()
        .find(|(k, _)| *k == TokKind::RawStrLit)
        .expect("raw string token");
    assert!(raw.1.contains("HashMap"));
    assert!(raw.1.ends_with("\"#"));
    assert_eq!(idents(src), vec!["let", "s", "next"]);
}

#[test]
fn raw_strings_with_more_hashes() {
    // `"#` inside must NOT terminate an `r##`-string.
    let src = r#####"r##"inner "# still inside"## after"#####;
    let toks = kinds(src);
    assert_eq!(toks[0].0, TokKind::RawStrLit);
    assert!(toks[0].1.contains("still inside"));
    assert_eq!(toks[1], (TokKind::Ident, "after".into()));
}

#[test]
fn raw_identifier_is_not_a_raw_string() {
    let toks = kinds("let r#match = 1;");
    assert!(toks.contains(&(TokKind::Ident, "r#match".into())));
}

#[test]
fn char_literal_vs_lifetime() {
    // `'a'` is a char; `'a` in `&'a str` is a lifetime.
    let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
    let toks = kinds(src);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Lifetime)
        .collect();
    let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::CharLit).collect();
    assert_eq!(lifetimes.len(), 2, "{toks:?}");
    assert!(lifetimes.iter().all(|(_, t)| t == "'a"));
    assert_eq!(chars.len(), 1);
    assert_eq!(chars[0].1, "'a'");
}

#[test]
fn static_lifetime_and_escaped_chars() {
    let src = r"let x: &'static str = y; let q = '\''; let n = '\n'; let u = '\u{1F600}';";
    let toks = kinds(src);
    assert!(toks.contains(&(TokKind::Lifetime, "'static".into())));
    let chars: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::CharLit)
        .map(|(_, t)| t.clone())
        .collect();
    assert_eq!(chars, vec![r"'\''", r"'\n'", r"'\u{1F600}'"]);
}

#[test]
fn nested_block_comments() {
    // Identifiers inside nested comments must stay invisible; code
    // after the outermost close must reappear.
    let src = "/* outer /* HashMap inner */ still comment */ Instant";
    let toks = kinds(src);
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].0, TokKind::BlockComment);
    assert!(toks[0].1.contains("inner"));
    assert_eq!(toks[1], (TokKind::Ident, "Instant".into()));
}

#[test]
fn unterminated_block_comment_does_not_hang_or_panic() {
    let toks = kinds("code /* never closed /* deeper ");
    assert_eq!(toks[0], (TokKind::Ident, "code".into()));
    assert_eq!(toks[1].0, TokKind::BlockComment);
}

#[test]
fn byte_strings_and_byte_literals() {
    let src = r##"let a = b"bytes with HashMap"; let b = br#"raw bytes"#; let c = b'x';"##;
    let toks = kinds(src);
    assert!(toks.contains(&(TokKind::StrLit, r#"b"bytes with HashMap""#.into())));
    assert!(toks.contains(&(TokKind::RawStrLit, r##"br#"raw bytes"#"##.into())));
    assert!(toks.contains(&(TokKind::CharLit, "b'x'".into())));
    assert!(!idents(src).contains(&"HashMap".to_string()));
}

#[test]
fn numbers_floats_ranges_and_method_calls() {
    let toks = kinds("1.5 1..2 1.max(2) 0xff 1e9 2.5e-3 7f64 3_000");
    let floats: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::FloatLit)
        .map(|(_, t)| t.clone())
        .collect();
    let ints: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::IntLit)
        .map(|(_, t)| t.clone())
        .collect();
    assert_eq!(floats, vec!["1.5", "1e9", "2.5e-3", "7f64"]);
    assert_eq!(ints, vec!["1", "2", "1", "2", "0xff", "3_000"]);
    // `1.max(2)` keeps `max` as a real identifier.
    assert!(toks.contains(&(TokKind::Ident, "max".into())));
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "a\n/* two\nlines */\nr#\"raw\nstring\"#\nz";
    let toks = lex(src);
    let z = toks.iter().find(|t| t.is_ident("z")).expect("z token");
    assert_eq!(z.line, 6);
}

#[test]
fn string_escapes_do_not_leak_tokens() {
    // An escaped quote must not end the string early and fabricate an
    // `unwrap` identifier for D3 to trip on.
    let src = r#"let s = "prefix \" unwrap() suffix"; done"#;
    assert_eq!(idents(src), vec!["let", "s", "done"]);
}
