//! LINTS.md drift gate.
//!
//! LINTS.md at the workspace root is *generated* from the `Rule`
//! metadata (`smtsim_analysis::lints_doc::lints_markdown`). This test
//! byte-compares the checked-in file against the generator, so drift
//! in either direction fails:
//!
//! * a new or reworded rule without a regenerated doc;
//! * a doc section whose rule was renamed or removed;
//! * hand edits to the generated file.
//!
//! Regenerate after an intentional rule change with
//! `BLESS=1 cargo test -p smtsim-analysis --test lints_doc`.

use smtsim_analysis::lints_doc::lints_markdown;
use std::path::{Path, PathBuf};

fn lints_md_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../LINTS.md")
}

#[test]
fn lints_md_matches_the_rule_metadata() {
    let path = lints_md_path();
    let want = lints_markdown();
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &want).expect("write LINTS.md");
        return;
    }
    let have = std::fs::read_to_string(&path)
        .expect("LINTS.md missing; create it with BLESS=1 cargo test -p smtsim-analysis --test lints_doc");
    assert_eq!(
        have, want,
        "LINTS.md drifted from the Rule metadata; \
         regenerate with BLESS=1 cargo test -p smtsim-analysis --test lints_doc"
    );
}

#[test]
fn generator_catches_synthetic_drift_both_ways() {
    let doc = lints_markdown();
    // Removing any line breaks the byte-compare (stale doc)…
    let without_last_line = {
        let mut lines: Vec<&str> = doc.lines().collect();
        lines.pop();
        lines.join("\n")
    };
    assert_ne!(doc, without_last_line);
    // …and so does an extra row (overpromising doc).
    let with_extra_row = format!("{doc}| D99 | file | no such rule |\n");
    assert_ne!(doc, with_extra_row);
}

#[test]
fn explain_text_matches_the_doc_sections() {
    // `smtsim-lint --explain D<n>` and LINTS.md must tell one story.
    let doc = lints_markdown();
    for rule in smtsim_analysis::ALL_RULES {
        assert!(
            doc.contains(rule.explain()),
            "{} --explain text missing from LINTS.md",
            rule.id()
        );
    }
}
