//! Rule D8: the metric registry and METRICS.md must agree, in both
//! directions.
//!
//! The observability layer's contract (DESIGN.md §12) is that every
//! sampled stat has exactly one registration — a `MetricSpec { name:
//! "…", … }` literal — and one documentation row in METRICS.md. This
//! module extracts the registrations from the token stream (so strings
//! in comments, doctests and `#[cfg(test)]` regions don't count) and
//! the backticked dotted metric names from METRICS.md, then flags:
//!
//! * a registration whose name METRICS.md never mentions (the doc
//!   went stale), reported at the registration site;
//! * a documented name no crate registers (the doc overpromises),
//!   reported at `METRICS.md`.
//!
//! When the caller has no METRICS.md to offer (in-memory lint runs,
//! trees without the file) the rule is skipped entirely — D8 judges
//! the *pair*, not either side alone.

use crate::findings::{Finding, Rule};
use crate::lexer::{Tok, TokKind};
use crate::rules::{in_regions, test_regions, FileClass};

/// One `MetricSpec { name: "…" }` literal found in non-test code.
#[derive(Debug, Clone)]
pub struct Registration {
    /// Root-relative path of the registering file.
    pub path: String,
    /// 1-based line of the `MetricSpec` token.
    pub line: u32,
    /// The registered metric name (string contents, quotes stripped).
    pub name: String,
}

/// Strip the surrounding quotes from a string-literal token.
fn str_contents(text: &str) -> &str {
    text.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(text)
}

/// Collect every `MetricSpec { … name: "…" … }` construction in
/// `toks`, skipping test files, `#[cfg(test)]`/`#[test]` regions and
/// the `struct MetricSpec { … }` definition itself (its `name` field
/// has a type, not a string literal).
pub fn collect_registrations(rel: &str, toks: &[Tok<'_>], out: &mut Vec<Registration>) {
    if FileClass::of(rel).test_file {
        return;
    }
    let regions = test_regions(toks);
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("MetricSpec")
            && toks[i + 1].is_punct('{')
            && !(i > 0 && toks[i - 1].is_ident("struct"))
            && !in_regions(&regions, i)
        {
            let line = toks[i].line;
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && toks[j].is_ident("name")
                    && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::StrLit)
                {
                    out.push(Registration {
                        path: rel.to_string(),
                        line,
                        name: str_contents(toks[j + 2].text).to_string(),
                    });
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// File extensions that keep a backticked dotted token from being read
/// as a metric name (`` `trace.jsonl` `` is a file, not a metric).
const NON_METRIC_EXTENSIONS: &[&str] = &[
    "rs", "md", "sh", "toml", "json", "jsonl", "txt", "py", "yml", "yaml", "lock", "csv",
];

/// Does `tok` look like a metric name? Dotted lowercase
/// (`cpu.thread.ipc` shape): only `[a-z0-9_.]`, at least one interior
/// dot, and not ending in a known file extension.
fn is_metric_token(tok: &str) -> bool {
    if !tok.contains('.') || tok.starts_with('.') || tok.ends_with('.') {
        return false;
    }
    if !tok
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
    {
        return false;
    }
    let last = tok.rsplit('.').next().unwrap_or("");
    !NON_METRIC_EXTENSIONS.contains(&last)
}

/// Extract `(name, line)` for every backticked metric-shaped token in
/// the METRICS.md text, first occurrence per name.
pub fn doc_metric_names(doc: &str) -> Vec<(String, u32)> {
    let mut names: Vec<(String, u32)> = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            let tok = &after[..close];
            if is_metric_token(tok) && !names.iter().any(|(n, _)| n == tok) {
                names.push((tok.to_string(), lineno as u32 + 1));
            }
            rest = &after[close + 1..];
        }
    }
    names
}

/// Cross-check registrations against the METRICS.md text (rule D8).
/// `doc` is `None` when the lint run has no METRICS.md — the rule is
/// skipped so in-memory engine tests and bare file sets stay valid.
pub fn check_metrics_doc(
    registrations: &[Registration],
    doc: Option<&str>,
    findings: &mut Vec<Finding>,
) {
    let Some(doc) = doc else { return };
    let documented = doc_metric_names(doc);
    for r in registrations {
        if !documented.iter().any(|(n, _)| n == &r.name) {
            findings.push(Finding {
                rule: Rule::D8,
                path: r.path.clone(),
                line: r.line,
                symbol: r.name.clone(),
                message: format!(
                    "registered metric `{}` is missing from METRICS.md; regenerate it \
                     (BLESS=1 cargo test -p smtsim-core --test metrics_doc)",
                    r.name
                ),
                chain: Vec::new(),
                waived: false,
            });
        }
    }
    for (name, line) in &documented {
        if !registrations.iter().any(|r| &r.name == name) {
            findings.push(Finding {
                rule: Rule::D8,
                path: "METRICS.md".to_string(),
                line: *line,
                symbol: name.clone(),
                message: format!(
                    "METRICS.md documents `{name}` but no crate registers it; \
                     remove the row or restore the registration"
                ),
                chain: Vec::new(),
                waived: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regs(rel: &str, src: &str) -> Vec<Registration> {
        let toks = lex(src);
        let mut out = Vec::new();
        collect_registrations(rel, &toks, &mut out);
        out
    }

    #[test]
    fn collects_literal_registrations_only() {
        let src = r#"
pub struct MetricSpec {
    pub name: &'static str,
}
pub const A: MetricSpec = MetricSpec {
    name: "x.alpha",
};
pub const B: MetricSpec = MetricSpec { name: "x.beta" };
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = super::MetricSpec { name: "x.test_only" };
    }
}
"#;
        let found = regs("crates/cpu/src/metrics.rs", src);
        let names: Vec<&str> = found.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["x.alpha", "x.beta"]);
    }

    #[test]
    fn test_files_and_comments_do_not_register() {
        let src = "// MetricSpec { name: \"x.commented\" }\n";
        assert!(regs("crates/cpu/src/metrics.rs", src).is_empty());
        let src = "pub const A: MetricSpec = MetricSpec { name: \"x.alpha\" };\n";
        assert!(regs("crates/cpu/tests/some_test.rs", src).is_empty());
    }

    #[test]
    fn doc_tokens_filter_shape_and_extensions() {
        let doc = "| `cpu.thread.ipc` | see `trace.jsonl` and `obs.rs` |\n\
                   prose `NotAMetric.Name` and `plain` and `mem.dram.round_trips`\n";
        let names: Vec<String> = doc_metric_names(doc).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["cpu.thread.ipc", "mem.dram.round_trips"]);
    }

    #[test]
    fn both_drift_directions_are_findings() {
        let registrations = regs(
            "crates/cpu/src/metrics.rs",
            "pub const A: MetricSpec = MetricSpec { name: \"x.alpha\" };\n\
             pub const B: MetricSpec = MetricSpec { name: \"x.beta\" };\n",
        );
        let doc = "| `x.alpha` |\n| `x.orphan` |\n";
        let mut findings = Vec::new();
        check_metrics_doc(&registrations, Some(doc), &mut findings);
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .any(|f| f.symbol == "x.beta" && f.path == "crates/cpu/src/metrics.rs"));
        assert!(findings
            .iter()
            .any(|f| f.symbol == "x.orphan" && f.path == "METRICS.md" && f.line == 2));
        findings.clear();
        check_metrics_doc(&registrations, None, &mut findings);
        assert!(findings.is_empty(), "no doc, no D8");
    }
}
