//! The per-file determinism rules (D1, D2, D3, D5, D6, D7, D9, D13).
//!
//! Each rule is a pass over one file's token stream. Rules never look
//! inside comments or string literals (the lexer already separated
//! them), and most skip `#[cfg(test)]` / `#[test]` regions — test code
//! may use hash maps and panic freely; only the simulator's replayed
//! state is held to the determinism bar.
//!
//! D4 (JSON field coverage) is cross-file and lives in [`crate::coverage`].

use crate::findings::{Finding, Rule};
use crate::lexer::{Tok, TokKind};

/// Path-based classification of one file (paths are `/`-separated and
/// relative to the lint root).
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Inside a simulator crate's `src/` (or the root facade `src/`):
    /// code that runs during a simulation and therefore must replay.
    pub simulator: bool,
    /// Inside `crates/bench` — the one sanctioned wall-clock user.
    pub bench: bool,
    /// An integration-test or example file (`tests/`, `examples/`).
    pub test_file: bool,
    /// One of the cycle-loop files D3 applies to.
    pub hot_path: bool,
    /// A golden-figure driver: reproduces the paper's figures, so it
    /// must run the detailed models (D9's scope).
    pub golden_figure: bool,
}

/// The files whose code runs once per simulated cycle (or per fetched
/// instruction): D3's scope. Kept explicit so adding a hot file is a
/// reviewed decision.
const HOT_PATH_FILES: &[&str] = &[
    "crates/cpu/src/core.rs",
    "crates/cpu/src/detailed.rs",
    "crates/cpu/src/approx.rs",
    "crates/cpu/src/rob.rs",
    "crates/cpu/src/thread.rs",
    "crates/cpu/src/regfile.rs",
    "crates/cpu/src/bpred.rs",
    "crates/cpu/src/btb.rs",
    "crates/cpu/src/ras.rs",
    "crates/mem/src/model.rs",
    "crates/mem/src/fastmem.rs",
    "crates/mem/src/system.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/bus.rs",
    "crates/mem/src/dram.rs",
    "crates/mem/src/l2bank.rs",
    "crates/mem/src/mshr.rs",
    "crates/mem/src/tlb.rs",
    "crates/mem/src/histogram.rs",
    "crates/trace/src/fastgen.rs",
    "crates/core/src/sim.rs",
];

/// The files that regenerate the paper's figures and tables. They
/// exist to reproduce published numbers, so referencing a
/// reduced-fidelity component from one is assumed to be a mistake
/// unless waived inline (D9). A fidelity *study* belongs in its own
/// driver, not in the golden-figure path.
const GOLDEN_FIGURE_FILES: &[&str] = &[
    "crates/bench/src/figures.rs",
    "crates/bench/src/bin/figures.rs",
    "crates/bench/src/bin/bench_figures.rs",
    "crates/core/src/calibration.rs",
];

/// Identifiers that select a reduced-fidelity model. `with_fidelity`
/// is included because even `Fidelity::detailed()` passed explicitly
/// in a figure driver deserves a stated reason.
const REDUCED_FIDELITY_IDENTS: &[&str] = &[
    "FastMemory",
    "IpcApproxCore",
    "FastTraceGenerator",
    "IpcApprox",
    "with_fidelity",
];

/// Crates whose `src/` trees count as simulator code for D1/D6.
const SIM_CRATES: &[&str] = &["cpu", "mem", "policy", "trace", "core", "energy", "obs"];

impl FileClass {
    /// Classify a root-relative path.
    pub fn of(rel: &str) -> FileClass {
        let bench = rel.starts_with("crates/bench/");
        let test_file = rel.starts_with("tests/")
            || rel.starts_with("examples/")
            || rel.contains("/tests/")
            || rel.contains("/examples/");
        let simulator = !test_file
            && (rel.starts_with("src/")
                || SIM_CRATES
                    .iter()
                    .any(|c| rel.starts_with(&format!("crates/{c}/src/"))));
        let hot_path = HOT_PATH_FILES.contains(&rel)
            || (rel.starts_with("crates/policy/src/") && !test_file);
        let golden_figure = GOLDEN_FIGURE_FILES.contains(&rel);
        FileClass {
            simulator,
            bench,
            test_file,
            hot_path,
            golden_figure,
        }
    }
}

/// Token-index spans of `#[cfg(test)]` items and `#[test]` functions.
///
/// Detection is syntactic: the attribute, then any further attributes,
/// then the item's body braces. `mod tests;` (no body) contributes no
/// span. Nested braces are tracked, so a test module's full extent is
/// covered.
pub fn test_regions(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attr(toks, i) {
            // Skip any further attributes.
            let mut j = after_attr;
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attr(toks, j);
            }
            // Find the body: first `{` before a `;` ends the item header.
            let mut k = j;
            while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                k += 1;
            }
            if k < toks.len() && toks[k].is_punct('{') {
                let end = match_brace(toks, k);
                regions.push((i, end));
                i = end + 1;
                continue;
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Is the token at `idx` inside any of `regions`?
pub fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx <= e)
}

/// If `toks[i..]` starts `#[cfg(test)]` or `#[test]`, return the index
/// just past the closing `]`.
fn match_test_attr(toks: &[Tok<'_>], i: usize) -> Option<usize> {
    if !toks.get(i)?.is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let end = skip_attr(toks, i);
    let inner = &toks[i + 2..end.saturating_sub(1)];
    let is_test = match inner {
        [t] if t.is_ident("test") => true,
        [c, ..] if c.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    if is_test {
        Some(end)
    } else {
        None
    }
}

/// Given `toks[i]` == `#`, return the index just past the attribute's
/// closing `]`. Handles both outer (`#[...]`) and inner (`#![...]`)
/// attributes.
pub(crate) fn skip_attr(toks: &[Tok<'_>], i: usize) -> usize {
    let mut j = i + 1; // at `[`, or `!` for inner attributes
    if toks.get(j).map(|t| t.is_punct('!')) == Some(true) {
        j += 1;
    }
    if toks.get(j).map(|t| t.is_punct('[')) != Some(true) {
        return i + 1; // `#` not introducing an attribute
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Given `toks[open]` == `{`, return the index of its matching `}` (or
/// the last token on imbalance).
pub(crate) fn match_brace(toks: &[Tok<'_>], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Counter-ish field names D6 protects: anything holding a cycle count
/// or an event tally must be integral, or same-seed replays drift by
/// accumulated rounding.
fn is_counter_name(name: &str) -> bool {
    name == "cycles"
        || name == "cycle"
        || name == "committed"
        || name == "fetched"
        || [
            "_cycles", "_count", "_counts", "_stalls", "_misses", "_hits", "_retries",
            "_flushes", "_merges", "_writebacks", "_prefetches", "_forwards", "_issued",
            "_executed", "_squashed",
        ]
        .iter()
        .any(|s| name.ends_with(s))
}

/// The single file allowed to call `catch_unwind`: the sweep's job
/// isolation boundary. Anywhere else, a swallowed panic hides a bug
/// from the determinism replay tests — D7's scope is absolute (test
/// code included; tests assert panics with `#[should_panic]` instead).
const PANIC_BOUNDARY_FILE: &str = "crates/core/src/sweep.rs";

/// The one crate allowed to touch the network: the serving layer.
/// Like D7, D13's scope is absolute (test code included) — a test
/// elsewhere that opens a socket couples the determinism suite to the
/// host network stack.
const NET_BOUNDARY_PREFIX: &str = "crates/serve/";

/// Socket types whose mere mention outside the serve crate is a D13
/// finding (mirrors REDUCED_FIDELITY_IDENTS' mention-based form: an
/// import alone already creates the dependency the rule exists to
/// forbid).
const NET_IDENTS: &[&str] = &["TcpListener", "TcpStream", "UdpSocket"];

/// Run D1, D2, D3, D5, D6 and D7 over one file. Waivers are applied
/// later by the engine; this emits raw findings.
pub fn check_file(rel: &str, toks: &[Tok<'_>], out: &mut Vec<Finding>) {
    let class = FileClass::of(rel);
    let regions = test_regions(toks);
    let sig: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();

    let push = |out: &mut Vec<Finding>, rule, tok: &Tok<'_>, symbol: &str, message: String| {
        out.push(Finding {
            rule,
            path: rel.to_string(),
            line: tok.line,
            symbol: symbol.to_string(),
            message,
            chain: Vec::new(),
            waived: false,
        });
    };

    for (si, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        let in_test = in_regions(&regions, i);
        let prev = si.checked_sub(1).map(|p| &toks[sig[p]]);
        let next = sig.get(si + 1).map(|&n| &toks[n]);

        // D1: hash collections in simulator code.
        if class.simulator
            && !class.test_file
            && !in_test
            && t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            push(
                out,
                Rule::D1,
                t,
                t.text,
                format!(
                    "{} has per-process random iteration order; use BTreeMap/BTreeSet, a sorted Vec, or mem::util's slab",
                    t.text
                ),
            );
        }

        // D2: wall-clock reads outside crates/bench.
        if !class.bench && t.kind == TokKind::Ident {
            if t.text == "SystemTime" {
                push(
                    out,
                    Rule::D2,
                    t,
                    "SystemTime",
                    "wall-clock time must not reach simulator state; only crates/bench may read the clock".into(),
                );
            }
            if t.text == "Instant" {
                // Flag the `Instant::now` call, not a mere type mention.
                let colons = sig.get(si + 1).map(|&n| &toks[n]).map(|t| t.is_punct(':')) == Some(true)
                    && sig.get(si + 2).map(|&n| &toks[n]).map(|t| t.is_punct(':')) == Some(true);
                let then_now =
                    sig.get(si + 3).map(|&n| &toks[n]).map(|t| t.is_ident("now")) == Some(true);
                if colons && then_now {
                    push(
                        out,
                        Rule::D2,
                        t,
                        "Instant::now",
                        "wall-clock reads are nondeterministic; only crates/bench may call Instant::now".into(),
                    );
                }
            }
        }

        // D3: unwrap/expect in cycle-loop files.
        if class.hot_path
            && !in_test
            && t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && prev.map(|p| p.is_punct('.')) == Some(true)
            && next.map(|n| n.is_punct('(')) == Some(true)
        {
            push(
                out,
                Rule::D3,
                t,
                t.text,
                format!(
                    "{}() in a cycle-loop file: document the invariant with a waiver, restructure, or use debug_assert!",
                    t.text
                ),
            );
        }

        // D5: #[allow(clippy::...)] / #![allow(clippy::...)] anywhere.
        if t.is_punct('#')
            && next.map(|n| n.is_punct('[') || n.is_punct('!')) == Some(true)
        {
            let end = skip_attr(toks, i);
            let inner = &toks[i..end];
            let is_allow = inner.iter().any(|t| t.is_ident("allow"));
            let names_clippy = inner.iter().any(|t| t.is_ident("clippy"));
            if is_allow && names_clippy {
                let lint = inner
                    .iter()
                    .skip_while(|t| !t.is_ident("clippy"))
                    .find(|t| t.kind == TokKind::Ident && !t.is_ident("clippy"))
                    .map(|t| t.text)
                    .unwrap_or("lint");
                push(
                    out,
                    Rule::D5,
                    t,
                    lint,
                    format!("#[allow(clippy::{lint})] silences a defense-in-depth lint; state why with a waiver"),
                );
            }
        }

        // D9: reduced-fidelity components in golden-figure drivers.
        // Not test-exempt: a figure driver's tests pin published
        // numbers, which only the detailed models produce.
        if class.golden_figure
            && t.kind == TokKind::Ident
            && REDUCED_FIDELITY_IDENTS.contains(&t.text)
        {
            push(
                out,
                Rule::D9,
                t,
                t.text,
                format!(
                    "`{}` in a golden-figure driver: published figures come from the detailed models; move fidelity studies to a separate driver or waive with a stated reason",
                    t.text
                ),
            );
        }

        // D7: catch_unwind anywhere but the sweep's isolation boundary.
        // Deliberately NOT test-exempt: a test that swallows panics can
        // mask nondeterminism; assert with #[should_panic] instead.
        if rel != PANIC_BOUNDARY_FILE
            && t.kind == TokKind::Ident
            && t.text == "catch_unwind"
        {
            push(
                out,
                Rule::D7,
                t,
                "catch_unwind",
                format!(
                    "catch_unwind outside {PANIC_BOUNDARY_FILE}: panic isolation has one blessed boundary (the sweep runner); swallowing panics elsewhere hides replay-breaking bugs"
                ),
            );
        }

        // D13 (lexical form): std::net outside the serve crate. Two
        // triggers: a socket-type ident, or the path `std :: net`
        // (catches `use std::net::…` spellings that never name a
        // type). Deliberately NOT test-exempt, like D7.
        if !rel.starts_with(NET_BOUNDARY_PREFIX) && t.kind == TokKind::Ident {
            if NET_IDENTS.contains(&t.text) {
                push(
                    out,
                    Rule::D13,
                    t,
                    t.text,
                    format!(
                        "`{}` outside {NET_BOUNDARY_PREFIX}: sockets are nondeterministic host input; only the serving layer may touch std::net",
                        t.text
                    ),
                );
            }
            if t.text == "std"
                && next.map(|n| n.is_punct(':')) == Some(true)
                && sig.get(si + 2).map(|&n| toks[n].is_punct(':')) == Some(true)
                && sig.get(si + 3).map(|&n| toks[n].is_ident("net")) == Some(true)
            {
                push(
                    out,
                    Rule::D13,
                    t,
                    "std::net",
                    format!(
                        "`std::net` outside {NET_BOUNDARY_PREFIX}: sockets are nondeterministic host input; only the serving layer may touch std::net"
                    ),
                );
            }
        }

        // D6 (accumulation form): `.counter += <float stuff>;`
        if class.simulator
            && !in_test
            && t.kind == TokKind::Ident
            && is_counter_name(t.text)
            && prev.map(|p| p.is_punct('.')) == Some(true)
            && next.map(|n| n.is_punct('+')) == Some(true)
            && sig.get(si + 2).map(|&n| toks[n].is_punct('=')) == Some(true)
        {
            // Scan the RHS up to the statement's `;`.
            let mut float_rhs = false;
            for &k in &sig[si + 3..] {
                let rt = &toks[k];
                if rt.is_punct(';') {
                    break;
                }
                if rt.kind == TokKind::FloatLit
                    || rt.is_ident("f64")
                    || rt.is_ident("f32")
                {
                    float_rhs = true;
                    break;
                }
            }
            if float_rhs {
                push(
                    out,
                    Rule::D6,
                    t,
                    t.text,
                    format!("floating-point accumulation into counter `{}`: rounding drifts across replays; accumulate integers and derive ratios at report time", t.text),
                );
            }
        }
    }

    // D6 (declaration form): counter-named struct fields typed f32/f64.
    if class.simulator && !class.test_file {
        check_float_counter_fields(rel, toks, &regions, &sig, out);
    }
}

/// Walk `struct` bodies looking for `counter_name: f64` declarations.
fn check_float_counter_fields(
    rel: &str,
    toks: &[Tok<'_>],
    regions: &[(usize, usize)],
    sig: &[usize],
    out: &mut Vec<Finding>,
) {
    let mut si = 0;
    while si < sig.len() {
        let i = sig[si];
        if !toks[i].is_ident("struct") || in_regions(regions, i) {
            si += 1;
            continue;
        }
        // Find the body `{` (tuple/unit structs hit `(`/`;` first).
        let mut k = si + 1;
        while k < sig.len() {
            let t = &toks[sig[k]];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct(';') {
                break;
            }
            k += 1;
        }
        if k >= sig.len() || !toks[sig[k]].is_punct('{') {
            si = k + 1;
            continue;
        }
        let body_end = match_brace(toks, sig[k]);
        // Within the body: `name : f64` at brace depth 1, followed by
        // `,` or `}`.
        let mut depth = 0i32;
        let mut m = k;
        while m < sig.len() && sig[m] <= body_end {
            let t = &toks[sig[m]];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if depth == 1
                && t.kind == TokKind::Ident
                && is_counter_name(t.text)
                && toks.get(sig.get(m + 1).copied().unwrap_or(usize::MAX)).map(|n| n.is_punct(':'))
                    == Some(true)
            {
                if let Some(&ty_i) = sig.get(m + 2) {
                    let ty = &toks[ty_i];
                    let term = sig
                        .get(m + 3)
                        .map(|&x| toks[x].is_punct(',') || toks[x].is_punct('}'))
                        == Some(true);
                    if (ty.is_ident("f64") || ty.is_ident("f32")) && term {
                        out.push(Finding {
                            rule: Rule::D6,
                            path: rel.to_string(),
                            line: t.line,
                            symbol: t.text.to_string(),
                            message: format!(
                                "counter field `{}` declared as {}: cycle/event tallies must be integers",
                                t.text, ty.text
                            ),
                            chain: Vec::new(),
                            waived: false,
                        });
                    }
                }
            }
            m += 1;
        }
        si = m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let mut out = Vec::new();
        check_file(rel, &toks, &mut out);
        out
    }

    #[test]
    fn file_classes() {
        assert!(FileClass::of("crates/cpu/src/core.rs").simulator);
        assert!(FileClass::of("crates/cpu/src/core.rs").hot_path);
        assert!(!FileClass::of("crates/cpu/tests/pipeline.rs").simulator);
        assert!(FileClass::of("crates/bench/src/timing.rs").bench);
        assert!(FileClass::of("crates/policy/src/mflush.rs").hot_path);
        assert!(FileClass::of("src/lib.rs").simulator);
        assert!(FileClass::of("examples/quickstart.rs").test_file);
    }

    #[test]
    fn d1_flags_hash_collections_outside_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n}\n";
        let f = findings("crates/mem/src/cache.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D1);
        assert_eq!(f[0].symbol, "HashMap");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn d1_ignores_strings_comments_and_test_files() {
        let src = "// HashMap in a comment\nlet s = \"HashMap\";\n";
        assert!(findings("crates/mem/src/cache.rs", src).is_empty());
        assert!(findings("crates/mem/tests/stress.rs", "use std::collections::HashMap;").is_empty());
    }

    #[test]
    fn d2_flags_wall_clock_outside_bench() {
        let f = findings("crates/core/src/sweep.rs", "let t = Instant::now();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].symbol, "Instant::now");
        assert!(findings("crates/bench/src/timing.rs", "let t = Instant::now();").is_empty());
        let f = findings("crates/trace/src/gen.rs", "use std::time::SystemTime;");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn d3_only_in_hot_files_outside_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n#[test]\nfn t() { z.unwrap(); }\n";
        let f = findings("crates/cpu/src/core.rs", src);
        assert_eq!(f.len(), 2);
        assert!(findings("crates/trace/src/gen.rs", src).is_empty());
    }

    #[test]
    fn d5_flags_clippy_allows() {
        let f = findings("crates/trace/src/spec.rs", "#[allow(clippy::too_many_arguments)]\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].symbol, "too_many_arguments");
        // Non-clippy allows are rustc business, not ours.
        assert!(findings("crates/trace/src/spec.rs", "#[allow(dead_code)]\nfn f() {}\n").is_empty());
    }

    #[test]
    fn d7_flags_catch_unwind_everywhere_but_the_sweep() {
        let src = "use std::panic::catch_unwind;\nfn f() { let _ = catch_unwind(|| {}); }\n";
        let f = findings("crates/core/src/sim.rs", src);
        assert_eq!(f.len(), 2, "the use and the call both flag");
        assert!(f.iter().all(|f| f.rule == Rule::D7));
        // Not even test regions are exempt...
        let in_test = "#[test]\nfn t() { let _ = std::panic::catch_unwind(|| {}); }\n";
        assert_eq!(findings("tests/property.rs", in_test).len(), 1);
        // ...but the sweep runner is the blessed boundary.
        assert!(findings("crates/core/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn d9_flags_reduced_fidelity_in_figure_drivers() {
        let src = "fn f(cfg: SimConfig) { run(cfg.with_fidelity(Fidelity::fast())); }\n";
        let f = findings("crates/bench/src/figures.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D9);
        assert_eq!(f[0].symbol, "with_fidelity");
        // The same code is fine anywhere that is not a figure driver.
        assert!(findings("crates/bench/src/bin/bench_profile.rs", src).is_empty());
        // A mention inside a comment or string never flags.
        assert!(findings(
            "crates/bench/src/figures.rs",
            "// FastMemory is documented here\nlet s = \"IpcApproxCore\";\n"
        )
        .is_empty());
    }

    #[test]
    fn d6_flags_float_counters() {
        let f = findings(
            "crates/cpu/src/stats.rs",
            "pub struct S { pub busy_cycles: f64, pub ok_cycles: u64, pub rate: f64 }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].symbol, "busy_cycles");

        let f = findings("crates/cpu/src/core.rs", "fn f(&mut self) { self.total_cycles += dt as f64; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D6);
        assert!(findings("crates/cpu/src/core.rs", "fn f(&mut self) { self.total_cycles += 1; }").is_empty());
    }
}
