//! A small hand-rolled Rust lexer.
//!
//! The linter's rules only need a *token* view of each source file —
//! enough to tell an identifier in code from the same word inside a
//! string, comment or doc comment, and to know which line everything is
//! on. A full parser would be overkill; a regex would be wrong (raw
//! strings, nested block comments and lifetimes all defeat line-based
//! matching). This lexer handles the hard cases of real Rust:
//!
//! * line (`//`, `///`, `//!`) and block (`/* .. */`) comments, with
//!   block-comment **nesting**;
//! * string literals with escapes, raw strings `r#"..."#` with any
//!   number of `#`s, byte strings `b"..."`, raw byte strings
//!   `br#"..."#`, byte literals `b'x'`;
//! * char literals vs lifetimes (`'a'` vs `&'a str`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`);
//! * raw identifiers (`r#match`) vs raw strings (`r#"..."#`);
//! * numeric literals with `_` separators, `0x`/`0o`/`0b` prefixes,
//!   float detection (`1.5`, `1e9`, `2.`) without misreading ranges
//!   (`1..2`) or method calls (`1.max(2)`);
//! * everything else as one-character punctuation tokens.
//!
//! Unterminated constructs (EOF inside a string or comment) terminate
//! the token at EOF rather than panicking: the linter must never crash
//! on the code it is judging.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fetch`, `struct`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`), *without* a trailing quote.
    Lifetime,
    /// Char literal (`'a'`, `'\''`) or byte literal (`b'x'`).
    CharLit,
    /// String literal, including `b"..."` byte strings.
    StrLit,
    /// Raw string literal (`r"..."`, `r#"..."#`, `br#"..."#`).
    RawStrLit,
    /// Integer literal (`42`, `0xff`, `1_000`).
    IntLit,
    /// Floating-point literal (`1.5`, `1e9`, `2.`).
    FloatLit,
    /// `// ...` comment (includes doc comments).
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
    /// A single punctuation character (`.`, `:`, `{`, `<`, …).
    Punct,
}

/// One token: kind, source text, and 1-based line of its first byte.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

impl<'a> Tok<'a> {
    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'a> {
    src: &'a str,
    /// Byte offset of the next unread char.
    pos: usize,
    /// 1-based line of `pos`.
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consume chars while `f` holds.
    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !f(c) {
                break;
            }
            self.bump();
        }
    }
}

/// Lex `src` into tokens (whitespace dropped, comments kept).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut cur = Cursor { src, pos: 0, line: 1 };
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let kind = match c {
            '/' if cur.peek2() == Some('/') => {
                cur.eat_while(|c| c != '\n');
                TokKind::LineComment
            }
            '/' if cur.peek2() == Some('*') => {
                lex_block_comment(&mut cur);
                TokKind::BlockComment
            }
            '"' => {
                lex_string(&mut cur);
                TokKind::StrLit
            }
            'r' if cur.peek2() == Some('"') || cur.peek2() == Some('#') => {
                // `r"..."`, `r#"..."#`, or the raw ident `r#match`.
                match try_lex_raw_string(&mut cur, 1) {
                    Some(k) => k,
                    None => {
                        lex_ident(&mut cur);
                        TokKind::Ident
                    }
                }
            }
            'b' if cur.peek2() == Some('"') => {
                cur.bump(); // b
                lex_string(&mut cur);
                TokKind::StrLit
            }
            'b' if cur.peek2() == Some('\'') => {
                cur.bump(); // b
                lex_char_literal(&mut cur);
                TokKind::CharLit
            }
            'b' if cur.peek2() == Some('r')
                && (cur.peek3() == Some('"') || cur.peek3() == Some('#')) =>
            {
                match try_lex_raw_string(&mut cur, 2) {
                    Some(k) => k,
                    None => {
                        lex_ident(&mut cur);
                        TokKind::Ident
                    }
                }
            }
            '\'' => lex_char_or_lifetime(&mut cur),
            c if is_ident_start(c) => {
                lex_ident(&mut cur);
                TokKind::Ident
            }
            c if c.is_ascii_digit() => lex_number(&mut cur),
            _ => {
                cur.bump();
                TokKind::Punct
            }
        };
        toks.push(Tok {
            kind,
            text: &src[start..cur.pos],
            line,
        });
    }
    toks
}

fn lex_ident(cur: &mut Cursor) {
    // Raw-ident prefix `r#` (only reached when not a raw string).
    if cur.peek() == Some('r') && cur.peek2() == Some('#') {
        cur.bump();
        cur.bump();
    }
    cur.eat_while(is_ident_continue);
}

fn lex_block_comment(cur: &mut Cursor) {
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1u32;
    while depth > 0 {
        match cur.peek() {
            None => break, // unterminated: stop at EOF
            Some('/') if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            Some('*') if cur.peek2() == Some('/') => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening "
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // whatever is escaped, including " and \
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Try `r"..."` / `r#"..."#` / `br#"..."#`. `prefix_len` is 1 for `r`,
/// 2 for `br`. Returns `None` when the `#`s are not followed by a quote
/// (i.e. this is a raw identifier like `r#match`), leaving the cursor
/// untouched.
fn try_lex_raw_string(cur: &mut Cursor, prefix_len: usize) -> Option<TokKind> {
    let save_pos = cur.pos;
    let save_line = cur.line;
    for _ in 0..prefix_len {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        cur.pos = save_pos;
        cur.line = save_line;
        return None;
    }
    cur.bump(); // "
    // Scan to `"` followed by `hashes` `#`s.
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            let rest = &cur.src[cur.pos..];
            let mut seen = 0usize;
            for rc in rest.chars() {
                if rc == '#' && seen < hashes {
                    seen += 1;
                } else {
                    break;
                }
            }
            if seen == hashes {
                for _ in 0..hashes {
                    cur.bump();
                }
                break 'outer;
            }
        }
    }
    Some(TokKind::RawStrLit)
}

fn lex_char_literal(cur: &mut Cursor) {
    cur.bump(); // opening '
    match cur.bump() {
        Some('\\') => {
            // Escape: consume the escaped char, then anything up to the
            // closing quote (covers \u{...} and \x4A).
            cur.bump();
            while let Some(c) = cur.peek() {
                if c == '\'' {
                    cur.bump();
                    return;
                }
                if c == '\n' {
                    return; // malformed; don't run across lines
                }
                cur.bump();
            }
        }
        _ => {
            if cur.peek() == Some('\'') {
                cur.bump();
            }
        }
    }
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime).
fn lex_char_or_lifetime(cur: &mut Cursor) -> TokKind {
    match cur.peek2() {
        // `'\n'`, `'\''`, `'\u{..}'` — an escape is always a char literal.
        Some('\\') => {
            lex_char_literal(cur);
            TokKind::CharLit
        }
        Some(c) if is_ident_start(c) => {
            // Scan the identifier after the quote; a trailing `'` makes
            // it a char literal (`'a'`), otherwise it is a lifetime
            // (`'a`, `'static`).
            let mut probe = cur.pos + 1; // past the opening '
            for pc in cur.src[probe..].chars() {
                if is_ident_continue(pc) {
                    probe += pc.len_utf8();
                } else {
                    break;
                }
            }
            if cur.src[probe..].starts_with('\'') {
                cur.bump(); // '
                while cur.pos < probe {
                    cur.bump();
                }
                cur.bump(); // closing '
                TokKind::CharLit
            } else {
                cur.bump(); // '
                cur.eat_while(is_ident_continue);
                TokKind::Lifetime
            }
        }
        // `'+'`, `'9'`, `'界'` — single non-ident char.
        Some(_) => {
            lex_char_literal(cur);
            TokKind::CharLit
        }
        None => {
            cur.bump();
            TokKind::Punct
        }
    }
}

fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut is_float = false;
    if cur.peek() == Some('0')
        && matches!(cur.peek2(), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
    {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_hexdigit() || c == '_');
    } else {
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        // A `.` makes a float only when NOT starting a range (`1..2`)
        // or a method/field access (`1.max(2)`).
        if cur.peek() == Some('.') {
            match cur.peek2() {
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    is_float = true;
                    cur.bump(); // .
                    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some('e' | 'E')) {
            let (p2, p3) = (cur.peek2(), cur.peek3());
            let exp_digits = matches!(p2, Some(c) if c.is_ascii_digit())
                || (matches!(p2, Some('+' | '-'))
                    && matches!(p3, Some(c) if c.is_ascii_digit()));
            if exp_digits {
                is_float = true;
                cur.bump(); // e
                if matches!(cur.peek(), Some('+' | '-')) {
                    cur.bump();
                }
                cur.eat_while(|c| c.is_ascii_digit() || c == '_');
            }
        }
    }
    // Type suffix (`u64`, `f64`, …) glued onto the literal.
    let suffix_start = cur.pos;
    cur.eat_while(is_ident_continue);
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    if is_float {
        TokKind::FloatLit
    } else {
        TokKind::IntLit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("let x = y;"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Ident, "y"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(
            toks.iter().map(|t| (t.text, t.line)).collect::<Vec<_>>(),
            vec![("a", 1), ("b", 2), ("c", 4)]
        );
    }

    #[test]
    fn strings_hide_identifiers() {
        let toks = kinds(r#"let s = "HashMap inside";"#);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::StrLit && t.contains("HashMap")));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "HashMap"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(toks[0], (TokKind::StrLit, r#""a\"b""#));
        assert_eq!(toks[1], (TokKind::Ident, "x"));
    }
}
