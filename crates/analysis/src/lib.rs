#![forbid(unsafe_code)]
//! # smtsim-analysis — the workspace's determinism linter
//!
//! The reproduction's results are only trustworthy because same-seed
//! runs are **byte-identical** (DESIGN.md §9). That contract is easy to
//! break silently: one `HashMap` iteration, one wall-clock read, one
//! stats field that never reaches the JSON report. This crate is the
//! static gate that keeps those out: a hand-rolled Rust lexer
//! ([`lexer`]) feeding a rule engine ([`rules`], [`coverage`],
//! [`metrics_doc`]) that walks every `.rs` file in the workspace and
//! enforces eight rules:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | D1 | no `HashMap`/`HashSet` in non-test simulator code |
//! | D2 | no wall-clock (`Instant::now`, `SystemTime`) outside `crates/bench` |
//! | D3 | no `unwrap()`/`expect()` in cycle-loop files without a waiver |
//! | D4 | every `pub` stats field must reach its `ToJson` impl |
//! | D5 | no `#[allow(clippy::…)]` without a waiver |
//! | D6 | no floating-point cycle/counter fields or accumulation |
//! | D7 | no `catch_unwind` outside the sweep's panic boundary |
//! | D8 | the metric registry and METRICS.md must agree, both ways |
//! | D9 | golden-figure drivers must not use reduced-fidelity components |
//! | D10 | no heap allocation reachable from the cycle-loop roots |
//! | D11 | no panic site reachable from a run/sweep entry point |
//! | D12 | no nondeterminism source reachable from sim state (graph D1/D2) |
//! | D13 | no `std::net` outside `crates/serve`, no serve code reachable from sim state |
//!
//! D10–D13 (and D3's graph scope) come from a light parser
//! ([`parse`]) and a whole-workspace call graph ([`callgraph`]) built
//! over the same token stream; their findings carry the full call
//! chain from the root (`Simulator::step → … → Vec::new`). See the
//! generated LINTS.md for every rule's scope and waiver syntax.
//!
//! Violations can be suppressed with an inline
//! `// lint: allow(<rule>) -- <reason>` waiver ([`waiver`]) or a
//! checked-in baseline file; everything else fails the build — the
//! `smtsim-lint` binary exits nonzero and `scripts/ci.sh` gates on it.
//! The linter's own `--json` report goes through
//! [`smtsim_core::json::ToJson`] and is itself byte-stable (a golden
//! fixture pins it), because a flaky linter would be a poor instrument
//! for enforcing determinism.
//!
//! Std-only like the rest of the workspace: no syn, no regex, no
//! walkdir — see DESIGN.md §9/§10.

pub mod callgraph;
pub mod coverage;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod lints_doc;
pub mod metrics_doc;
pub mod parse;
pub mod rules;
pub mod waiver;

pub use engine::{collect_files, find_workspace_root, lint_files, lint_files_doc, lint_root};
pub use findings::{Finding, LintReport, Rule, ALL_RULES};
pub use waiver::Baseline;
