//! A light item/function parser over the lexer's tokens.
//!
//! The call-graph rules (D10–D12, and D3's graph scope) need to know
//! *which function* each token belongs to and *which functions that
//! function calls* — nothing more. This module extracts exactly that
//! from the [`crate::lexer`] token stream: every `fn` item (free,
//! inherent/trait method, or nested), its owner type, and the call
//! sites inside its body. It is deliberately not a full Rust parser;
//! DESIGN.md §14 documents what it resolves and what it
//! over-approximates.
//!
//! What it handles:
//!
//! * `impl Type`, `impl<T> Type<T>`, `impl Trait for Type` (the type
//!   after `for` wins), `where` clauses, lifetimes;
//! * `trait` blocks (default method bodies are owned by the trait);
//! * nested `fn` items (they become their own [`FnDef`]; their bodies
//!   are excluded from the enclosing function's call list);
//! * closures (their bodies belong to the enclosing function);
//! * macro invocation arguments (`dispatch!(…, tick(now, mem))` still
//!   yields a `tick` call site; `$x` fragment variables are skipped);
//! * turbofish (`collect::<Vec<_>>()` is a `collect` call);
//! * path *references* without a call (`map(Self::helper)`) — kept as
//!   weak edges so passing a function by name still marks it reachable.
//!
//! What it deliberately does not do: type inference. Method calls
//! resolve by name (see [`crate::callgraph`]), which over-approximates
//! — the safe direction for a reachability lint.

use crate::lexer::{Tok, TokKind};
use crate::rules::{in_regions, match_brace, skip_attr, test_regions};

/// How a call site was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(x)` — a bare name.
    Plain,
    /// `recv.m(x)`; `on_self` when the receiver is literally `self`.
    Method { on_self: bool },
    /// `Qualifier::m(x)` (or a `Qualifier::m` path reference).
    Qualified { qualifier: String },
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    /// The called name (`tick`, `unwrap`, `format` for `format!`).
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// One `fn` item and everything the graph needs to know about it.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Lint-root-relative path of the defining file.
    pub file: String,
    /// `impl`/`trait` owner type name, `None` for free functions.
    pub owner: Option<String>,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Every call site in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Watch-list identifier mentions (`HashMap`, `HashSet`,
    /// `SystemTime`) that are not call sites — D12's raw material.
    pub type_refs: Vec<(String, u32)>,
}

impl FnDef {
    /// Display label: `Owner::name` or bare `name`.
    pub fn label(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}", o, self.name),
            None => self.name.clone(),
        }
    }
}

/// Identifiers that are expression keywords, not callables: `while (…)`
/// etc. must not become call sites.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "let",
    "move", "ref", "mut", "as", "unsafe", "async", "await", "dyn", "where", "impl", "fn",
];

/// Idents D12 watches even when they are not call sites.
const TYPE_WATCHLIST: &[&str] = &["HashMap", "HashSet", "SystemTime"];

/// Parse one file into its function definitions.
pub fn parse_file(rel: &str, toks: &[Tok<'_>]) -> Vec<FnDef> {
    // Work on a comment-free token vector; all the brace/attr helpers
    // operate identically on it, and call-pattern lookbehind gets
    // simpler when comments cannot sit between tokens.
    let st: Vec<Tok<'_>> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .copied()
        .collect();
    let regions = test_regions(&st);
    let mut out = Vec::new();
    scan_items(rel, &st, 0, st.len(), None, &regions, &mut out);
    out
}

/// Scan an item-level token range (module body, impl body, trait body).
fn scan_items(
    rel: &str,
    st: &[Tok<'_>],
    lo: usize,
    hi: usize,
    owner: Option<&str>,
    regions: &[(usize, usize)],
    out: &mut Vec<FnDef>,
) {
    let mut i = lo;
    while i < hi {
        let t = &st[i];
        if t.is_punct('#') {
            i = skip_attr(st, i);
            continue;
        }
        if t.is_ident("impl") {
            if let Some((body, impl_owner)) = parse_impl_header(st, i, hi) {
                let end = match_brace(st, body);
                scan_items(rel, st, body + 1, end, impl_owner.as_deref(), regions, out);
                i = end + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("trait") {
            // `trait Name … {` — default method bodies belong to the
            // trait name.
            let name = st.get(i + 1).filter(|n| n.kind == TokKind::Ident).map(|n| n.text);
            let mut j = i + 1;
            while j < hi && !st[j].is_punct('{') && !st[j].is_punct(';') {
                j += 1;
            }
            if j < hi && st[j].is_punct('{') {
                let end = match_brace(st, j);
                scan_items(rel, st, j + 1, end, name, regions, out);
                i = end + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        if t.is_ident("fn") {
            i = scan_fn(rel, st, i, hi, owner, regions, out);
            continue;
        }
        i += 1;
    }
}

/// `st[i]` is `impl`. Return `(body_brace_index, owner_type)`; the
/// owner is the last path segment at angle-depth 0 — reset at `for`, so
/// `impl Trait for Type` yields `Type` — stopping at `where`.
fn parse_impl_header(st: &[Tok<'_>], i: usize, hi: usize) -> Option<(usize, Option<String>)> {
    let mut angle = 0i32;
    let mut last: Option<&str> = None;
    let mut j = i + 1;
    while j < hi {
        let t = &st[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(j > 0 && st[j - 1].is_punct('-')) {
            angle = (angle - 1).max(0);
        } else if angle == 0 {
            if t.is_ident("for") {
                last = None; // the implemented-for type wins
            } else if t.is_ident("where") {
                // Generic bounds name types we must not mistake for
                // the owner; scan on for the body brace only.
                while j < hi && !st[j].is_punct('{') && !st[j].is_punct(';') {
                    j += 1;
                }
                break;
            } else if t.kind == TokKind::Ident
                && !matches!(t.text, "dyn" | "mut" | "const" | "unsafe" | "async")
            {
                last = Some(t.text);
            } else if t.is_punct('{') {
                break;
            } else if t.is_punct(';') {
                return None;
            }
        }
        if t.is_punct('{') && angle == 0 {
            break;
        }
        j += 1;
    }
    if j < hi && st[j].is_punct('{') {
        Some((j, last.map(str::to_string)))
    } else {
        None
    }
}

/// `st[i]` is `fn`. Parse the item; returns the index to resume at.
fn scan_fn(
    rel: &str,
    st: &[Tok<'_>],
    i: usize,
    hi: usize,
    owner: Option<&str>,
    regions: &[(usize, usize)],
    out: &mut Vec<FnDef>,
) -> usize {
    let Some(name_tok) = st.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
        return i + 1; // `fn(u64) -> u64` — a function-pointer type
    };
    // Scan the signature for the body `{` (or `;`: a bodyless trait
    // method / extern decl, which defines nothing callable here).
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut j = i + 2;
    while j < hi {
        let t = &st[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !st[j - 1].is_punct('-') {
            angle = (angle - 1).max(0);
        } else if t.is_punct('{') && paren == 0 && bracket == 0 && angle == 0 {
            break;
        } else if t.is_punct(';') && paren == 0 && bracket == 0 && angle == 0 {
            return j + 1;
        }
        j += 1;
    }
    if j >= hi || !st[j].is_punct('{') {
        return j;
    }
    let end = match_brace(st, j);
    let mut def = FnDef {
        file: rel.to_string(),
        owner: owner.map(str::to_string),
        name: name_tok.text.to_string(),
        line: st[i].line,
        in_test: in_regions(regions, i),
        calls: Vec::new(),
        type_refs: Vec::new(),
    };
    scan_body(rel, st, j + 1, end, &mut def, regions, out);
    out.push(def);
    end + 1
}

/// Scan a function body: collect call sites into `def`, spin nested
/// `fn` items off into their own defs.
fn scan_body(
    rel: &str,
    st: &[Tok<'_>],
    lo: usize,
    hi: usize,
    def: &mut FnDef,
    regions: &[(usize, usize)],
    out: &mut Vec<FnDef>,
) {
    let mut i = lo;
    while i < hi {
        let t = &st[i];
        if t.is_punct('#') {
            i = skip_attr(st, i);
            continue;
        }
        if t.is_ident("fn") {
            // Nested item: its body is *not* part of `def`'s calls.
            i = scan_fn(rel, st, i, hi, None, regions, out);
            continue;
        }
        if t.kind == TokKind::Ident {
            if i > 0 && st[i - 1].is_punct('$') {
                i += 1; // `$frag` inside a macro_rules body
                continue;
            }
            if TYPE_WATCHLIST.contains(&t.text) {
                def.type_refs.push((t.text.to_string(), t.line));
            }
            // Macro invocation: `name!(…)`. The delimited arguments are
            // real expression tokens; keep scanning linearly so calls
            // inside them are still collected.
            let bang = st.get(i + 1).map(|n| n.is_punct('!')) == Some(true);
            let delim = st
                .get(i + 2)
                .map(|d| d.is_punct('(') || d.is_punct('[') || d.is_punct('{'))
                == Some(true);
            if bang && delim {
                def.calls.push(CallSite {
                    kind: CallKind::Macro,
                    name: t.text.to_string(),
                    line: t.line,
                });
                i += 2; // land on the delimiter; its contents get scanned
                continue;
            }
            if !EXPR_KEYWORDS.contains(&t.text) {
                // Turbofish: `name::<…>(…)` still calls `name`.
                let mut k = i + 1;
                if st.get(k).map(|x| x.is_punct(':')) == Some(true)
                    && st.get(k + 1).map(|x| x.is_punct(':')) == Some(true)
                    && st.get(k + 2).map(|x| x.is_punct('<')) == Some(true)
                {
                    k = skip_angles(st, k + 2);
                }
                let is_call = st.get(k).map(|x| x.is_punct('(')) == Some(true);
                let kind = call_kind(st, i);
                match (is_call, &kind) {
                    (true, _) => def.calls.push(CallSite {
                        kind,
                        name: t.text.to_string(),
                        line: t.line,
                    }),
                    // A `Path::name` mention without a call — a
                    // function passed by name. Weak edge.
                    (false, CallKind::Qualified { .. }) => def.calls.push(CallSite {
                        kind,
                        name: t.text.to_string(),
                        line: t.line,
                    }),
                    _ => {}
                }
            }
        }
        i += 1;
    }
}

/// Classify the call at ident `st[i]` from its left context.
fn call_kind(st: &[Tok<'_>], i: usize) -> CallKind {
    if i >= 1 && st[i - 1].is_punct('.') {
        let on_self = i >= 2 && st[i - 2].is_ident("self");
        return CallKind::Method { on_self };
    }
    if i >= 2 && st[i - 1].is_punct(':') && st[i - 2].is_punct(':') {
        return CallKind::Qualified {
            qualifier: qualifier_before(st, i.saturating_sub(3)),
        };
    }
    CallKind::Plain
}

/// The path segment ending at `st[q]`, walking back over one
/// `::<…>` turbofish group if present (`Vec::<u64>::new`).
fn qualifier_before(st: &[Tok<'_>], q: usize) -> String {
    let mut q = q;
    if st.get(q).map(|t| t.is_punct('>')) == Some(true) {
        // Walk back to the matching `<`, then past `::` to the ident.
        let mut depth = 0i32;
        while q > 0 {
            if st[q].is_punct('>') {
                depth += 1;
            } else if st[q].is_punct('<') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            q -= 1;
        }
        q = q.saturating_sub(1);
        while st.get(q).map(|t| t.is_punct(':')) == Some(true) {
            q = q.saturating_sub(1);
        }
    }
    match st.get(q) {
        Some(t) if t.kind == TokKind::Ident => t.text.to_string(),
        _ => String::new(),
    }
}

/// `st[open]` is `<`; return the index just past its matching `>`.
fn skip_angles(st: &[Tok<'_>], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < st.len() {
        if st[j].is_punct('<') {
            depth += 1;
        } else if st[j].is_punct('>') && !st[j - 1].is_punct('-') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    st.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnDef> {
        parse_file("crates/x/src/lib.rs", &lex(src))
    }

    fn find<'a>(defs: &'a [FnDef], label: &str) -> &'a FnDef {
        defs.iter()
            .find(|d| d.label() == label)
            .unwrap_or_else(|| panic!("no fn {label} in {:?}", defs.iter().map(|d| d.label()).collect::<Vec<_>>()))
    }

    fn call_names(d: &FnDef) -> Vec<&str> {
        d.calls.iter().map(|c| c.name.as_str()).collect()
    }

    #[test]
    fn free_and_method_fns() {
        let defs = parse(
            "fn free() { helper(); }\nimpl Core { fn tick(&mut self) { self.fetch(); } }\n",
        );
        assert_eq!(call_names(find(&defs, "free")), ["helper"]);
        let tick = find(&defs, "Core::tick");
        assert_eq!(tick.calls[0].kind, CallKind::Method { on_self: true });
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let defs = parse("impl ToJson for Finding { fn write_json(&self) { go(); } }\n");
        assert_eq!(find(&defs, "Finding::write_json").owner.as_deref(), Some("Finding"));
    }

    #[test]
    fn generics_and_where_clauses() {
        let defs = parse(
            "impl<T: Clone> Ring<T> where T: Default {\n fn push<U>(&mut self, x: U) -> Option<T> where U: Into<T> { self.grow() }\n}\n",
        );
        let p = find(&defs, "Ring::push");
        assert_eq!(call_names(p), ["grow"]);
    }

    #[test]
    fn trait_default_methods_belong_to_the_trait() {
        let defs = parse("trait Policy {\n fn name(&self) -> &str;\n fn reset(&mut self) { self.clear(); }\n}\n");
        assert_eq!(find(&defs, "Policy::reset").owner.as_deref(), Some("Policy"));
        // The bodyless `name` declares nothing callable.
        assert!(defs.iter().all(|d| d.name != "name"));
    }

    #[test]
    fn nested_fns_are_separate_defs() {
        let defs = parse("fn outer() {\n fn inner() { deep(); }\n inner();\n}\n");
        assert_eq!(call_names(find(&defs, "outer")), ["inner"]);
        assert_eq!(call_names(find(&defs, "inner")), ["deep"]);
    }

    #[test]
    fn macro_args_still_yield_calls() {
        let defs = parse("fn f() { dispatch!(&mut self.backend, tick(now, mem)); }\n");
        let f = find(&defs, "f");
        let names = call_names(f);
        assert!(names.contains(&"dispatch"));
        assert!(names.contains(&"tick"));
        assert_eq!(f.calls[0].kind, CallKind::Macro);
    }

    #[test]
    fn macro_rules_fragments_are_not_calls() {
        let defs = parse("fn f() { m!($x, $m(1)); }\n");
        let names = call_names(find(&defs, "f"));
        assert!(!names.contains(&"x"));
        assert!(!names.contains(&"m") || names.iter().filter(|n| **n == "m").count() == 1);
    }

    #[test]
    fn turbofish_and_qualified_calls() {
        let defs = parse("fn f() { let v = it.collect::<Vec<_>>(); let b = Vec::<u8>::new(); let c = Vec::new(); }\n");
        let f = find(&defs, "f");
        let collect = f.calls.iter().find(|c| c.name == "collect").unwrap();
        assert_eq!(collect.kind, CallKind::Method { on_self: false });
        let news: Vec<_> = f.calls.iter().filter(|c| c.name == "new").collect();
        assert_eq!(news.len(), 2);
        for n in news {
            assert_eq!(n.kind, CallKind::Qualified { qualifier: "Vec".into() }, "{n:?}");
        }
    }

    #[test]
    fn path_reference_without_call_is_a_weak_edge() {
        let defs = parse("fn f(xs: &[u64]) { xs.iter().map(Self::helper); }\n");
        let f = find(&defs, "f");
        assert!(f
            .calls
            .iter()
            .any(|c| c.name == "helper" && c.kind == CallKind::Qualified { qualifier: "Self".into() }));
    }

    #[test]
    fn keywords_and_fn_pointer_types_are_not_calls() {
        let defs = parse("fn f(g: fn(u64) -> u64) { if cond() { while check() {} } match x { _ => {} } }\n");
        let names = call_names(find(&defs, "f"));
        assert_eq!(names, ["cond", "check"]);
    }

    #[test]
    fn test_regions_are_marked() {
        let defs = parse("fn prod() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn t() {}\n}\n");
        assert!(!find(&defs, "prod").in_test);
        assert!(find(&defs, "helper").in_test);
        assert!(find(&defs, "t").in_test);
    }

    #[test]
    fn same_name_methods_on_different_types_stay_distinct() {
        let defs = parse("impl A { fn tick(&self) { one(); } }\nimpl B { fn tick(&self) { two(); } }\n");
        assert_eq!(call_names(find(&defs, "A::tick")), ["one"]);
        assert_eq!(call_names(find(&defs, "B::tick")), ["two"]);
    }

    #[test]
    fn watchlist_type_refs_are_recorded() {
        let defs = parse("fn f() { let m: HashMap<u64, u64> = make(); }\n");
        let f = find(&defs, "f");
        assert_eq!(f.type_refs[0].0, "HashMap");
    }

    #[test]
    fn arrow_in_return_type_does_not_unbalance_angles() {
        let defs = parse("fn f<T: Iterator<Item = u64>>(it: T) -> Vec<u64> { g() }\n");
        assert_eq!(call_names(find(&defs, "f")), ["g"]);
    }
}
