//! Inline waivers and the checked-in baseline.
//!
//! Two suppression mechanisms, both requiring a stated reason:
//!
//! * **Inline waiver** — a comment of the form
//!   `// lint: allow(D3) -- <reason>` (several rules:
//!   `allow(D1, D3)`). It suppresses matching findings on the
//!   comment's own line and on the line directly below it, so both
//!   styles work:
//!
//!   ```text
//!   let e = rob.find_mut(t).expect("x"); // lint: allow(D3) -- reason
//!   // lint: allow(D3) -- reason
//!   let e = rob.find_mut(t).expect("x");
//!   ```
//!
//!   A waiver without the ` -- reason` part is ignored: undocumented
//!   suppressions are exactly what the linter exists to prevent.
//!
//! * **Baseline file** — one fingerprint per line
//!   (`<rule> <path> <symbol>`, `#` comments allowed), for grandfathered
//!   findings that predate a rule. Fingerprints deliberately omit line
//!   numbers so unrelated edits don't invalidate them.

use crate::findings::Rule;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Inline waivers of one file: (line, rule) pairs that are suppressed.
#[derive(Debug, Default)]
pub struct Waivers {
    covered: BTreeSet<(u32, Rule)>,
}

impl Waivers {
    /// Collect waivers from a file's comment tokens.
    pub fn collect(toks: &[Tok<'_>]) -> Waivers {
        let mut w = Waivers::default();
        for t in toks {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            for rule in parse_waiver_comment(t.text) {
                w.covered.insert((t.line, rule));
                w.covered.insert((t.line + 1, rule));
            }
        }
        w
    }

    /// Is `rule` waived on `line`?
    pub fn allows(&self, line: u32, rule: Rule) -> bool {
        self.covered.contains(&(line, rule))
    }
}

/// Parse one comment's text; returns the waived rules (empty when the
/// comment is not a well-formed waiver).
fn parse_waiver_comment(text: &str) -> Vec<Rule> {
    let Some(at) = text.find("lint: allow(") else {
        return Vec::new();
    };
    let rest = &text[at + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    // Reason is mandatory: ` -- ` followed by at least one word.
    let after = &rest[close + 1..];
    let Some(dash) = after.find("--") else {
        return Vec::new();
    };
    if after[dash + 2..].trim().is_empty() {
        return Vec::new();
    }
    rest[..close]
        .split(',')
        .filter_map(|s| Rule::parse(s.trim()))
        .collect()
}

/// The parsed baseline file: a set of finding fingerprints.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeSet<String>,
}

impl Baseline {
    /// Parse baseline text (`<rule> <path> <symbol>` lines; `#`
    /// comments and blank lines ignored).
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Normalise interior whitespace to single spaces so the
            // file can be column-aligned by hand.
            let fp: Vec<&str> = line.split_whitespace().collect();
            if fp.len() == 3 && Rule::parse(fp[0]).is_some() {
                entries.insert(fp.join(" "));
            }
        }
        Baseline { entries }
    }

    /// Does the baseline contain this fingerprint?
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.entries.contains(fingerprint)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn waiver_covers_own_and_next_line() {
        let src = "// lint: allow(D3) -- invariant documented\nfoo.unwrap();\nbar.unwrap();\n";
        let w = Waivers::collect(&lex(src));
        assert!(w.allows(1, Rule::D3));
        assert!(w.allows(2, Rule::D3));
        assert!(!w.allows(3, Rule::D3));
        assert!(!w.allows(2, Rule::D1));
    }

    #[test]
    fn waiver_requires_reason() {
        let w = Waivers::collect(&lex("// lint: allow(D3)\nfoo.unwrap();\n"));
        assert!(!w.allows(2, Rule::D3));
        let w = Waivers::collect(&lex("// lint: allow(D3) -- \nfoo.unwrap();\n"));
        assert!(!w.allows(2, Rule::D3));
    }

    #[test]
    fn waiver_accepts_multiple_rules() {
        let w = Waivers::collect(&lex("x(); // lint: allow(D1, D2) -- test scaffolding\n"));
        assert!(w.allows(1, Rule::D1));
        assert!(w.allows(1, Rule::D2));
        assert!(!w.allows(1, Rule::D3));
    }

    #[test]
    fn baseline_parses_and_matches() {
        let b = Baseline::parse(
            "# grandfathered\nD1 crates/x/src/a.rs HashMap\n\nD3  crates/y/src/b.rs   unwrap\nnot a line\n",
        );
        assert!(b.contains("D1 crates/x/src/a.rs HashMap"));
        assert!(b.contains("D3 crates/y/src/b.rs unwrap"));
        assert!(!b.contains("D2 crates/x/src/a.rs SystemTime"));
    }
}
