//! The whole-workspace call graph and its reachability rules
//! (D10–D12, plus D3's graph scope).
//!
//! Nodes are the [`FnDef`]s the parser extracted; edges are
//! name-resolved calls. Resolution is heuristic — there is no type
//! inference — and every heuristic errs toward *more* edges, because a
//! reachability lint that under-approximates is silently useless:
//!
//! * `Qualifier::name` resolves to `Qualifier`'s method of that name
//!   (`Self` maps to the calling function's owner); when the qualifier
//!   is not a known type (a module path, `std` types), it falls back
//!   to free functions of that name.
//! * `recv.name(…)` resolves to the receiver's own method when the
//!   receiver is literally `self` and the owner defines `name`;
//!   otherwise to **every** method of that name in the workspace (this
//!   is what makes `dispatch!`-style macro forwarding and trait-object
//!   calls visible, at the cost of over-approximation between
//!   same-named methods on unrelated types).
//! * `name(…)` resolves to a free function of that name — same file
//!   preferred — falling back to methods of that name (macro bodies
//!   take this path).
//!
//! Test functions (and whole `tests/`/`examples/` files) are excluded
//! from the graph: they may allocate and panic freely, and nothing in
//! them can make *simulator* code hot.
//!
//! Traversal honours **function-scope waivers**: a
//! `// lint: allow(D10) -- reason` comment directly above a `fn`
//! prunes that rule's traversal at the function — the fn and
//! everything only-reachable through it is accepted, with one stated
//! reason, instead of demanding a waiver at every leaf. DESIGN.md §14
//! documents the design; LINTS.md documents every rule's scope.

use crate::findings::{Finding, Rule};
use crate::parse::{CallKind, CallSite, FnDef};
use crate::rules::FileClass;
use crate::waiver::Waivers;
use std::collections::{BTreeMap, VecDeque};

/// Cycle-loop roots: `(owner, name)` pairs whose bodies run every
/// simulated cycle. D10's and graph-D3's entry set.
const CYCLE_ROOTS: &[(&str, &str)] = &[
    ("Simulator", "step"),
    ("SmtCore", "tick"),
    ("DetailedCore", "tick"),
    ("IpcApproxCore", "tick"),
    ("MemoryModel", "tick"),
    ("MemorySystem", "tick"),
    ("FastMemory", "tick"),
];

/// Run/sweep entry points: D11's root set (methods by `(owner, name)`,
/// free functions by name).
const RUN_METHOD_ROOTS: &[(&str, &str)] = &[("Simulator", "run")];
const RUN_FREE_ROOTS: &[&str] = &["run_sweep", "run_sweep_journaled", "run_sweep_ok"];

/// D10's allocation vocabulary, by call shape.
const ALLOC_METHODS: &[&str] = &["clone", "to_string", "collect", "to_vec", "to_owned"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_QUALIFIERS: &[&str] = &["Vec", "VecDeque", "String", "Box", "BTreeMap", "BTreeSet"];
const ALLOC_QUALIFIED_NAMES: &[&str] = &["new", "from", "with_capacity"];

/// D11's panic vocabulary.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method names that are ~always std calls (`.collect()`, `.clone()`):
/// the by-name fallback must not resolve them to same-named workspace
/// methods (`Waivers::collect`!) — they are detection *leaves*, not
/// edges. Explicit `Type::collect(…)` qualification still resolves.
const STD_METHOD_STOPLIST: &[&str] = &[
    "clone", "collect", "to_string", "to_vec", "to_owned", "unwrap", "expect", "parse",
];

/// The workspace call graph.
pub struct Graph {
    nodes: Vec<FnDef>,
    /// `(owner, name)` → node ids (an owner can appear in several
    /// files, and `impl` blocks can repeat).
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
    /// Free functions by name.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Free functions by `(file, name)` — same-file resolution wins.
    free_by_file_name: BTreeMap<(String, String), Vec<usize>>,
    /// All methods (owner != None) by bare name.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Known owner type names (for qualifier-vs-module disambiguation).
    owners: BTreeMap<String, ()>,
}

impl Graph {
    /// Build the graph from every parsed function. Test functions and
    /// functions in test/example files are dropped here, once.
    pub fn build(defs: Vec<FnDef>) -> Graph {
        let nodes: Vec<FnDef> = defs
            .into_iter()
            .filter(|d| !d.in_test && !FileClass::of(&d.file).test_file)
            .collect();
        let mut g = Graph {
            nodes,
            by_owner_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
            free_by_file_name: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            owners: BTreeMap::new(),
        };
        for (id, d) in g.nodes.iter().enumerate() {
            match &d.owner {
                Some(o) => {
                    g.by_owner_name
                        .entry((o.clone(), d.name.clone()))
                        .or_default()
                        .push(id);
                    g.methods_by_name.entry(d.name.clone()).or_default().push(id);
                    g.owners.insert(o.clone(), ());
                }
                None => {
                    g.free_by_name.entry(d.name.clone()).or_default().push(id);
                    g.free_by_file_name
                        .entry((d.file.clone(), d.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        g
    }

    pub fn nodes(&self) -> &[FnDef] {
        &self.nodes
    }

    /// Resolve one call site from `caller` to target node ids.
    fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        match &call.kind {
            CallKind::Macro => Vec::new(),
            CallKind::Qualified { qualifier } => {
                let q = if qualifier == "Self" {
                    match &self.nodes[caller].owner {
                        Some(o) => o.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    qualifier.clone()
                };
                if let Some(ids) = self.by_owner_name.get(&(q.clone(), call.name.clone())) {
                    return ids.clone();
                }
                if self.owners.contains_key(&q) {
                    // A known type without that method: a std-trait or
                    // derived method (`Config::clone`) — no edge.
                    return Vec::new();
                }
                // Module-qualified free function (`util::helper()`).
                self.free_by_name.get(&call.name).cloned().unwrap_or_default()
            }
            CallKind::Method { on_self } => {
                if *on_self {
                    if let Some(o) = &self.nodes[caller].owner {
                        if let Some(ids) = self.by_owner_name.get(&(o.clone(), call.name.clone())) {
                            return ids.clone();
                        }
                    }
                }
                if STD_METHOD_STOPLIST.contains(&call.name.as_str()) {
                    return Vec::new();
                }
                self.methods_by_name.get(&call.name).cloned().unwrap_or_default()
            }
            CallKind::Plain => {
                let file = self.nodes[caller].file.clone();
                if let Some(ids) = self.free_by_file_name.get(&(file, call.name.clone())) {
                    return ids.clone();
                }
                if let Some(ids) = self.free_by_name.get(&call.name) {
                    return ids.clone();
                }
                // Macro-forwarded method calls (`dispatch!(…, tick(…))`)
                // surface as Plain; fall back to methods by name.
                self.methods_by_name.get(&call.name).cloned().unwrap_or_default()
            }
        }
    }

    /// Node ids matching the cycle-loop root set.
    pub fn cycle_roots(&self) -> Vec<usize> {
        self.method_roots(CYCLE_ROOTS)
    }

    /// Node ids matching the run/sweep root set.
    pub fn run_roots(&self) -> Vec<usize> {
        let mut ids = self.method_roots(RUN_METHOD_ROOTS);
        for name in RUN_FREE_ROOTS {
            if let Some(more) = self.free_by_name.get(*name) {
                ids.extend(more.iter().copied());
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn method_roots(&self, set: &[(&str, &str)]) -> Vec<usize> {
        let mut ids = Vec::new();
        for (owner, name) in set {
            if let Some(found) = self.by_owner_name.get(&(owner.to_string(), name.to_string())) {
                ids.extend(found.iter().copied());
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// BFS from `roots`, skipping traversal out of any node `prune`
    /// accepts (function-scope waivers). Returns the parent map:
    /// `parents[id] = Some(predecessor)` for reached non-root nodes,
    /// roots point to themselves.
    pub fn reach(&self, roots: &[usize], prune: &dyn Fn(usize) -> bool) -> Vec<Option<usize>> {
        let mut parents: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if parents[r].is_none() {
                parents[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            if prune(id) {
                continue;
            }
            for call in &self.nodes[id].calls {
                for tgt in self.resolve(id, call) {
                    if parents[tgt].is_none() {
                        parents[tgt] = Some(id);
                        queue.push_back(tgt);
                    }
                }
            }
        }
        parents
    }

    /// Root-to-`id` label chain from a parent map.
    pub fn chain(&self, parents: &[Option<usize>], id: usize) -> Vec<String> {
        let mut rev = vec![id];
        let mut cur = id;
        while let Some(p) = parents[cur] {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.iter().rev().map(|&n| self.nodes[n].label()).collect()
    }
}

/// Is this call site a D10 allocation?
fn alloc_symbol(call: &CallSite) -> Option<String> {
    match &call.kind {
        CallKind::Method { .. } if ALLOC_METHODS.contains(&call.name.as_str()) => {
            Some(call.name.clone())
        }
        CallKind::Macro if ALLOC_MACROS.contains(&call.name.as_str()) => {
            Some(format!("{}!", call.name))
        }
        CallKind::Qualified { qualifier }
            if ALLOC_QUALIFIERS.contains(&qualifier.as_str())
                && ALLOC_QUALIFIED_NAMES.contains(&call.name.as_str()) =>
        {
            Some(format!("{}::{}", qualifier, call.name))
        }
        _ => None,
    }
}

/// Is this call site a D11 panic site? Returns the symbol.
fn panic_symbol(call: &CallSite, hot_file: bool) -> Option<String> {
    match &call.kind {
        // unwrap/expect in hot files is D3's jurisdiction.
        CallKind::Method { .. } if !hot_file && PANIC_METHODS.contains(&call.name.as_str()) => {
            Some(call.name.clone())
        }
        CallKind::Macro if PANIC_MACROS.contains(&call.name.as_str()) => {
            Some(format!("{}!", call.name))
        }
        _ => None,
    }
}

/// Run the call-graph rules over the built graph, appending findings.
///
/// * graph-D3: `unwrap`/`expect` in hot-path files, reachable from a
///   cycle root. The caller removes the lexical D3 findings first when
///   this scope is active (see [`crate::engine`]).
/// * D10: allocation sites reachable from a cycle root.
/// * D11: panic sites reachable from a run root.
/// * D12: nondeterminism sources D1/D2 exempt, reachable from either.
pub fn check_graph(
    graph: &Graph,
    waivers: &BTreeMap<&str, Waivers>,
    out: &mut Vec<Finding>,
) {
    let fn_waived = |rule: Rule| {
        move |id: usize| {
            let d = &graph.nodes()[id];
            waivers
                .get(d.file.as_str())
                .map(|w| w.allows(d.line, rule))
                .unwrap_or(false)
        }
    };
    let cycle = graph.cycle_roots();
    let run = graph.run_roots();

    if !cycle.is_empty() {
        // D10 — allocation in the cycle loop.
        let prune = fn_waived(Rule::D10);
        let parents = graph.reach(&cycle, &prune);
        for (id, d) in graph.nodes().iter().enumerate() {
            if parents[id].is_none() || prune(id) {
                continue;
            }
            let chain = graph.chain(&parents, id);
            for call in &d.calls {
                if let Some(symbol) = alloc_symbol(call) {
                    out.push(Finding {
                        rule: Rule::D10,
                        path: d.file.clone(),
                        line: call.line,
                        message: format!(
                            "`{symbol}` allocates inside the cycle loop (reached from `{}`): hoist into a reusable scratch buffer",
                            chain[0]
                        ),
                        symbol,
                        chain: chain.clone(),
                        waived: false,
                    });
                }
            }
        }

        // graph-D3 — unwrap/expect in hot files, cycle-reachable.
        let prune = fn_waived(Rule::D3);
        let parents = graph.reach(&cycle, &prune);
        for (id, d) in graph.nodes().iter().enumerate() {
            if parents[id].is_none() || prune(id) || !FileClass::of(&d.file).hot_path {
                continue;
            }
            let chain = graph.chain(&parents, id);
            for call in &d.calls {
                if matches!(call.kind, CallKind::Method { .. })
                    && PANIC_METHODS.contains(&call.name.as_str())
                {
                    out.push(Finding {
                        rule: Rule::D3,
                        path: d.file.clone(),
                        line: call.line,
                        symbol: call.name.clone(),
                        message: format!(
                            "{}() reachable from the cycle loop (`{}`): document the invariant with a waiver, restructure, or use debug_assert!",
                            call.name, chain[0]
                        ),
                        chain: chain.clone(),
                        waived: false,
                    });
                }
            }
        }
    }

    if !run.is_empty() {
        // D11 — panic sites on the run path.
        let prune = fn_waived(Rule::D11);
        let parents = graph.reach(&run, &prune);
        for (id, d) in graph.nodes().iter().enumerate() {
            if parents[id].is_none() || prune(id) {
                continue;
            }
            let hot = FileClass::of(&d.file).hot_path;
            let chain = graph.chain(&parents, id);
            for call in &d.calls {
                if let Some(symbol) = panic_symbol(call, hot) {
                    out.push(Finding {
                        rule: Rule::D11,
                        path: d.file.clone(),
                        line: call.line,
                        message: format!(
                            "`{symbol}` can abort a run (reached from `{}`): return a SimError instead, or waive with the invariant stated",
                            chain[0]
                        ),
                        symbol,
                        chain: chain.clone(),
                        waived: false,
                    });
                }
            }
        }
    }

    if !cycle.is_empty() || !run.is_empty() {
        // D12 — nondeterminism outside D1/D2's file scopes.
        let mut roots = cycle.clone();
        roots.extend(run.iter().copied());
        roots.sort_unstable();
        roots.dedup();
        let prune = fn_waived(Rule::D12);
        let parents = graph.reach(&roots, &prune);
        for (id, d) in graph.nodes().iter().enumerate() {
            if parents[id].is_none() || prune(id) {
                continue;
            }
            let class = FileClass::of(&d.file);
            let chain = graph.chain(&parents, id);
            // Clock reads: D2 covers every non-bench file already.
            if class.bench {
                for call in &d.calls {
                    if let CallKind::Qualified { qualifier } = &call.kind {
                        if call.name == "now"
                            && (qualifier == "Instant" || qualifier == "SystemTime")
                        {
                            let symbol = format!("{}::now", qualifier);
                            out.push(Finding {
                                rule: Rule::D12,
                                path: d.file.clone(),
                                line: call.line,
                                message: format!(
                                    "wall-clock read reachable from sim state (`{}`): bench-only code must stay off the simulator's call paths",
                                    chain[0]
                                ),
                                symbol,
                                chain: chain.clone(),
                                waived: false,
                            });
                        }
                    }
                }
            }
            // Hash collections: D1 covers non-test simulator src/.
            if !class.simulator {
                for (name, line) in &d.type_refs {
                    if name == "HashMap" || name == "HashSet" {
                        out.push(Finding {
                            rule: Rule::D12,
                            path: d.file.clone(),
                            line: *line,
                            symbol: name.clone(),
                            message: format!(
                                "{name} reachable from sim state (`{}`): iteration order is per-process random",
                                chain[0]
                            ),
                            chain: chain.clone(),
                            waived: false,
                        });
                    }
                }
            }
        }

        // D13 — the simulator must never reach the serving layer.
        // Lexical D13 bans std::net outside crates/serve; this half
        // bans the inverted dependency: any function *defined* in
        // crates/serve that a cycle/run root can reach means sim code
        // is calling up into the server (host I/O in the replay path).
        let prune = fn_waived(Rule::D13);
        let parents = graph.reach(&roots, &prune);
        for (id, d) in graph.nodes().iter().enumerate() {
            if parents[id].is_none() || prune(id) {
                continue;
            }
            if d.file.starts_with("crates/serve/") {
                let chain = graph.chain(&parents, id);
                out.push(Finding {
                    rule: Rule::D13,
                    path: d.file.clone(),
                    line: d.line,
                    symbol: d.label(),
                    message: format!(
                        "serve-layer function reachable from sim state (`{}`): the server drives the simulator, never the reverse",
                        chain[0]
                    ),
                    chain,
                    waived: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn graph(files: &[(&str, &str)]) -> Graph {
        let mut defs = Vec::new();
        for (rel, src) in files {
            defs.extend(parse_file(rel, &lex(src)));
        }
        Graph::build(defs)
    }

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let g = graph(files);
        let mut waivers = BTreeMap::new();
        for (rel, src) in files {
            // Leak is fine in tests; keys must outlive the map.
            let toks = lex(src);
            waivers.insert(*rel, Waivers::collect(&toks));
        }
        let mut out = Vec::new();
        check_graph(&g, &waivers, &mut out);
        out
    }

    #[test]
    fn d10_follows_the_chain_from_step() {
        let f = findings(&[(
            "crates/core/src/sim.rs",
            "impl Simulator {\n pub fn step(&mut self) { self.issue_stage(); }\n fn issue_stage(&mut self) { self.grow_buf(); }\n fn grow_buf(&mut self) { let mut v: Vec<u64> = Vec::new(); v.push(1); }\n}\n",
        )]);
        let d10: Vec<_> = f.iter().filter(|f| f.rule == Rule::D10).collect();
        assert_eq!(d10.len(), 1);
        assert_eq!(d10[0].symbol, "Vec::new");
        assert_eq!(
            d10[0].chain,
            ["Simulator::step", "Simulator::issue_stage", "Simulator::grow_buf"]
        );
    }

    #[test]
    fn unreachable_allocations_do_not_flag() {
        let f = findings(&[(
            "crates/core/src/sim.rs",
            "impl Simulator {\n pub fn step(&mut self) {}\n pub fn snapshot(&self) -> Vec<u64> { let v = Vec::new(); v }\n}\n",
        )]);
        assert!(f.iter().all(|f| f.rule != Rule::D10));
    }

    #[test]
    fn d11_reaches_through_free_functions() {
        let f = findings(&[(
            "crates/core/src/sweep.rs",
            "pub fn run_sweep(jobs: &[Job]) { worker(jobs) }\nfn worker(jobs: &[Job]) { jobs.first().unwrap(); }\n",
        )]);
        let d11: Vec<_> = f.iter().filter(|f| f.rule == Rule::D11).collect();
        assert_eq!(d11.len(), 1);
        assert_eq!(d11[0].chain, ["run_sweep", "worker"]);
    }

    #[test]
    fn d11_skips_hot_files_for_unwrap_but_not_macros() {
        let f = findings(&[
            (
                "crates/core/src/sim.rs",
                "impl Simulator { pub fn run(self) { self.helper(); } fn helper(&self) { x.unwrap(); panic!(\"boom\"); } }\n",
            ),
        ]);
        // sim.rs is a hot file: unwrap is D3's business (but `run` is
        // not a cycle root, so no D3 either); panic! still flags.
        assert!(f.iter().all(|f| f.rule != Rule::D3));
        let d11: Vec<_> = f.iter().filter(|f| f.rule == Rule::D11).collect();
        assert_eq!(d11.len(), 1);
        assert_eq!(d11[0].symbol, "panic!");
    }

    #[test]
    fn graph_d3_flags_cycle_reachable_unwrap_with_chain() {
        let f = findings(&[(
            "crates/cpu/src/detailed.rs",
            "impl DetailedCore {\n pub fn tick(&mut self) { self.commit(); }\n fn commit(&mut self) { self.rob.head().unwrap(); }\n pub fn new() { cfg.validate().expect(\"bad\"); }\n}\n",
        )]);
        let d3: Vec<_> = f.iter().filter(|f| f.rule == Rule::D3).collect();
        assert_eq!(d3.len(), 1, "{f:?}");
        assert_eq!(d3[0].symbol, "unwrap");
        assert_eq!(d3[0].chain, ["DetailedCore::tick", "DetailedCore::commit"]);
    }

    #[test]
    fn d12_flags_reachable_bench_clock_and_foreign_hashmap() {
        let f = findings(&[
            (
                "crates/core/src/sim.rs",
                "impl Simulator { pub fn step(&mut self) { profile_phase(); tally(); } }\n",
            ),
            (
                "crates/bench/src/profile.rs",
                "pub fn profile_phase() { let t = Instant::now(); }\npub fn tally() { let m: HashMap<u64,u64> = make(); }\n",
            ),
        ]);
        let d12: Vec<_> = f.iter().filter(|f| f.rule == Rule::D12).collect();
        assert_eq!(d12.len(), 2, "{f:?}");
        assert!(d12.iter().any(|f| f.symbol == "Instant::now"));
        assert!(d12.iter().any(|f| f.symbol == "HashMap"));
    }

    #[test]
    fn fn_scope_waiver_prunes_the_subtree() {
        let f = findings(&[(
            "crates/core/src/sim.rs",
            "impl Simulator {\n pub fn step(&mut self) { self.diagnose(); }\n // lint: allow(D10) -- cold abort diagnostics, runs at most once\n fn diagnose(&self) { self.deep(); }\n fn deep(&self) { let s = x.to_string(); }\n}\n",
        )]);
        assert!(f.iter().all(|f| f.rule != Rule::D10), "{f:?}");
    }

    #[test]
    fn test_functions_are_outside_the_graph() {
        let f = findings(&[(
            "crates/core/src/sim.rs",
            "impl Simulator { pub fn step(&mut self) {} }\n#[cfg(test)]\nmod tests {\n fn helper() { let v: Vec<u64> = Vec::new(); }\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dispatch_macro_plain_calls_resolve_to_methods() {
        let f = findings(&[
            (
                "crates/cpu/src/core.rs",
                "impl SmtCore { pub fn tick(&mut self, now: u64) { dispatch!(&mut self.backend, tick(now)) } }\n",
            ),
            (
                "crates/cpu/src/detailed.rs",
                "impl DetailedCore { pub fn tick(&mut self, now: u64) { self.buf.clone(); } }\n",
            ),
        ]);
        let d10: Vec<_> = f.iter().filter(|f| f.rule == Rule::D10).collect();
        assert!(
            d10.iter().any(|f| f.path.ends_with("detailed.rs") && f.symbol == "clone"),
            "{f:?}"
        );
    }
}
