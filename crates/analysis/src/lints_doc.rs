//! LINTS.md generation.
//!
//! LINTS.md at the workspace root is *generated* from the [`Rule`]
//! metadata ([`Rule::describe`], [`Rule::explain`]) so the rule
//! reference can never drift from the rules themselves. A byte-drift
//! test (`crates/analysis/tests/lints_doc.rs`) compares the checked-in
//! file against [`lints_markdown`], mirroring the METRICS.md gate;
//! regenerate with `BLESS=1 cargo test -p smtsim-analysis --test
//! lints_doc`.

use crate::findings::{Rule, ALL_RULES};

/// How a rule decides what code it judges.
pub fn scope_kind(rule: Rule) -> &'static str {
    match rule {
        Rule::D1 | Rule::D2 | Rule::D5 | Rule::D6 | Rule::D7 | Rule::D9 => "file",
        Rule::D4 => "cross-file",
        Rule::D8 => "registry/doc pair",
        Rule::D3 | Rule::D10 | Rule::D11 | Rule::D12 => "call-graph",
        Rule::D13 => "file + call-graph",
    }
}

/// Render the full LINTS.md text.
pub fn lints_markdown() -> String {
    let mut out = String::new();
    out.push_str(
        "# Lint rules reference\n\n\
Every rule the determinism linter (`smtsim-lint`, crate\n\
`smtsim-analysis`) enforces. **Generated** from the `Rule` metadata by\n\
`lints_markdown()` in `crates/analysis/src/lints_doc.rs` — edit the\n\
metadata, then regenerate with\n\
`BLESS=1 cargo test -p smtsim-analysis --test lints_doc`.\n\
`smtsim-lint --explain D<n>` prints the same text per rule.\n\n\
File-scoped rules judge tokens by the file's path class; call-graph\n\
rules judge functions by *reachability* from the simulator's entry\n\
points and report the full call chain from the root (DESIGN.md §14).\n\n\
| Rule | Scope | Invariant |\n\
|------|-------|-----------|\n",
    );
    for r in ALL_RULES {
        out.push_str(&format!("| {} | {} | {} |\n", r.id(), scope_kind(r), r.describe()));
    }
    out.push_str(
        "\n## Waivers\n\n\
Findings are suppressed with a stated reason, never silently:\n\n\
* **Inline site waiver** — `// lint: allow(D3) -- <reason>` (several\n\
  rules: `allow(D1, D3)`) on the finding's line or the line directly\n\
  above it. The ` -- <reason>` part is mandatory; a reasonless waiver\n\
  is ignored.\n\
* **Function-scope waiver** (call-graph rules) — the same comment\n\
  placed directly above a `fn` declaration prunes that rule's graph\n\
  traversal at the function: the body and everything reachable *only*\n\
  through it is accepted with one stated reason. Used for cold\n\
  diagnostic subtrees (e.g. the watchdog's abort report) that hang off\n\
  hot roots.\n\
* **Baseline file** — `<rule> <path> <symbol>` lines (see\n\
  `scripts/lint-baseline.txt`), for grandfathered findings that\n\
  predate a rule. Kept empty; prefer inline waivers.\n\n\
## Rules\n\n",
    );
    for r in ALL_RULES {
        out.push_str(&format!("### {} — {}\n\n{}\n\n", r.id(), r.describe(), r.explain()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_table_row_and_a_section() {
        let doc = lints_markdown();
        for r in ALL_RULES {
            assert!(
                doc.contains(&format!("| {} |", r.id())),
                "{} missing from table",
                r.id()
            );
            assert!(
                doc.contains(&format!("### {} —", r.id())),
                "{} missing a section",
                r.id()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(lints_markdown(), lints_markdown());
    }
}
