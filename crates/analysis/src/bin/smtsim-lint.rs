//! `smtsim-lint` — gate the workspace on its determinism invariants.
//!
//! ```text
//! smtsim-lint [--root DIR] [--baseline FILE] [--json] [--list-rules]
//!             [--explain D<n>]
//! ```
//!
//! Walks every `.rs` file under the workspace root (found by searching
//! upward from the current directory unless `--root` is given), runs
//! rules D1–D12, applies inline waivers and the baseline file
//! (`scripts/lint-baseline.txt` by default), prints the findings and
//! exits nonzero when any unwaived finding remains. With `--json` the
//! full report is emitted through the workspace's `ToJson` machinery —
//! byte-identical across runs over the same tree.

use smtsim_analysis::lints_doc::scope_kind;
use smtsim_analysis::{find_workspace_root, lint_root, Baseline, Rule, ALL_RULES};
use smtsim_core::json::ToJson;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--json" => json = true,
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{}  {}", r.id(), r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("smtsim-lint: --explain needs a rule id (D1..D12)");
                    return ExitCode::from(2);
                };
                let Some(rule) = Rule::parse(&id) else {
                    eprintln!("smtsim-lint: unknown rule `{id}` (try --list-rules)");
                    return ExitCode::from(2);
                };
                println!("{} ({} scope) — {}", rule.id(), scope_kind(rule), rule.describe());
                println!();
                println!("{}", rule.explain());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: smtsim-lint [--root DIR] [--baseline FILE] [--json] [--list-rules] [--explain D<n>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("smtsim-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("smtsim-lint: no [workspace] Cargo.toml above the current directory; use --root");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("scripts/lint-baseline.txt"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(), // absent baseline = nothing grandfathered
    };

    let report = lint_root(&root, &baseline);

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            if !f.waived {
                println!("{}", f.render());
            }
        }
        println!(
            "smtsim-lint: {} files, {} findings ({} waived, {} unwaived)",
            report.files_scanned,
            report.findings.len(),
            report.waived_count(),
            report.unwaived_count()
        );
    }

    if report.unwaived_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
