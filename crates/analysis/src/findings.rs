//! Finding and report types, plus their JSON rendering.
//!
//! The linter's own output must clear the same bar it enforces: the
//! `--json` report is emitted through `smtsim_core::json::ToJson`
//! (declaration-ordered fields, pinned float/string formatting, no
//! insignificant whitespace) and findings are sorted by
//! `(path, line, rule, symbol)`, so repeated runs over the same tree
//! are byte-identical.

use smtsim_core::json::{JsonObject, ToJson};

/// The determinism rules (DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in non-test simulator code.
    D1,
    /// No wall-clock (`Instant::now`, `SystemTime`) outside `crates/bench`.
    D2,
    /// No `unwrap()`/`expect()` in cycle-loop files without a waiver.
    D3,
    /// Every `pub` field of a stats struct must reach its `ToJson` impl.
    D4,
    /// No `#[allow(clippy::...)]` without a waiver.
    D5,
    /// No floating-point cycle/counter fields or accumulation.
    D6,
    /// No `catch_unwind` outside the sweep's panic-isolation boundary.
    D7,
    /// Every registered metric must be documented in METRICS.md, and
    /// METRICS.md must not document metrics that no longer exist.
    D8,
    /// No reduced-fidelity components in golden-figure drivers.
    D9,
}

/// All rules, in id order.
pub const ALL_RULES: [Rule; 9] = [
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::D4,
    Rule::D5,
    Rule::D6,
    Rule::D7,
    Rule::D8,
    Rule::D9,
];

impl Rule {
    /// Stable id used in findings, waivers and the baseline file.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::D8 => "D8",
            Rule::D9 => "D9",
        }
    }

    /// One-line description (for `--list-rules` and docs).
    pub fn describe(&self) -> &'static str {
        match self {
            Rule::D1 => "no HashMap/HashSet in non-test simulator code (iteration order is per-process random)",
            Rule::D2 => "no wall-clock reads (Instant::now, SystemTime) outside crates/bench",
            Rule::D3 => "no unwrap()/expect() in cycle-loop files without an inline waiver",
            Rule::D4 => "every pub field of a stats struct must be serialized by its ToJson impl",
            Rule::D5 => "no #[allow(clippy::...)] without an inline waiver",
            Rule::D6 => "no floating-point cycle/counter struct fields or float accumulation into counters",
            Rule::D7 => "no catch_unwind outside crates/core/src/sweep.rs (panic isolation has one blessed boundary)",
            Rule::D8 => "every registered MetricSpec name must appear in METRICS.md, and METRICS.md must not list unregistered metrics",
            Rule::D9 => "no reduced-fidelity components (FastMemory, IpcApproxCore, FastTraceGenerator, with_fidelity) in golden-figure drivers without an inline waiver",
        }
    }

    /// Parse a rule id (`"D1"`).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == s)
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Path relative to the lint root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The offending symbol (`HashMap`, `unwrap`, a field name, …);
    /// part of the baseline fingerprint, so it must not contain line
    /// numbers or other churn-prone detail.
    pub symbol: String,
    pub message: String,
    /// Suppressed by an inline waiver or a baseline entry.
    pub waived: bool,
}

impl Finding {
    /// Baseline fingerprint: stable across unrelated edits to the file.
    pub fn fingerprint(&self) -> String {
        format!("{} {} {}", self.rule.id(), self.path, self.symbol)
    }

    /// Human-readable one-liner (the non-JSON output format).
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {} [{}]",
            self.path,
            self.line,
            self.rule.id(),
            self.message,
            self.symbol
        )
    }
}

impl ToJson for Finding {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("rule", &self.rule.id())
            .field("path", &self.path)
            .field("line", &(self.line as u64))
            .field("symbol", &self.symbol)
            .field("message", &self.message)
            .field("waived", &self.waived);
        o.end();
    }
}

/// The complete result of one lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Every finding, waived ones included, sorted.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Sort findings into the pinned report order.
    pub fn normalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule, &a.symbol).cmp(&(&b.path, b.line, b.rule, &b.symbol)));
    }

    /// Findings not suppressed by a waiver or baseline entry.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    pub fn unwaived_count(&self) -> u64 {
        self.unwaived().count() as u64
    }

    pub fn waived_count(&self) -> u64 {
        self.findings.iter().filter(|f| f.waived).count() as u64
    }
}

impl ToJson for LintReport {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("version", &1u64)
            .field("files_scanned", &self.files_scanned)
            .field("total", &(self.findings.len() as u64))
            .field("waived", &self.waived_count())
            .field("unwaived", &self.unwaived_count())
            .field("findings", &self.findings);
        o.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_roundtrip() {
        for r in ALL_RULES {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        assert_eq!(Rule::parse("D10"), None);
    }

    #[test]
    fn report_json_is_sorted_and_stable() {
        let f = |path: &str, line, rule| Finding {
            rule,
            path: path.into(),
            line,
            symbol: "x".into(),
            message: "m".into(),
            waived: false,
        };
        let mut r = LintReport {
            files_scanned: 2,
            findings: vec![f("b.rs", 3, Rule::D1), f("a.rs", 9, Rule::D2), f("a.rs", 1, Rule::D5)],
        };
        r.normalize();
        let j1 = r.to_json();
        r.normalize();
        assert_eq!(j1, r.to_json());
        let pa = j1.find("a.rs").unwrap();
        let pb = j1.find("b.rs").unwrap();
        assert!(pa < pb);
        assert!(j1.starts_with("{\"version\":1,\"files_scanned\":2,"));
    }
}
