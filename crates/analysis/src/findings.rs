//! Finding and report types, plus their JSON rendering.
//!
//! The linter's own output must clear the same bar it enforces: the
//! `--json` report is emitted through `smtsim_core::json::ToJson`
//! (declaration-ordered fields, pinned float/string formatting, no
//! insignificant whitespace) and findings are sorted by
//! `(path, line, rule, symbol)`, so repeated runs over the same tree
//! are byte-identical.

use smtsim_core::json::{JsonObject, ToJson};

/// The determinism rules (DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in non-test simulator code.
    D1,
    /// No wall-clock (`Instant::now`, `SystemTime`) outside `crates/bench`.
    D2,
    /// No `unwrap()`/`expect()` in cycle-loop files without a waiver.
    D3,
    /// Every `pub` field of a stats struct must reach its `ToJson` impl.
    D4,
    /// No `#[allow(clippy::...)]` without a waiver.
    D5,
    /// No floating-point cycle/counter fields or accumulation.
    D6,
    /// No `catch_unwind` outside the sweep's panic-isolation boundary.
    D7,
    /// Every registered metric must be documented in METRICS.md, and
    /// METRICS.md must not document metrics that no longer exist.
    D8,
    /// No reduced-fidelity components in golden-figure drivers.
    D9,
    /// No heap allocation reachable from the cycle-loop roots
    /// (call-graph scope).
    D10,
    /// No panic site reachable from a run/sweep entry point
    /// (call-graph scope).
    D11,
    /// No nondeterminism source reachable from simulator state
    /// (call-graph scope; the graph upgrade of D1/D2).
    D12,
    /// No `std::net` outside `crates/serve` (lexical), and no serve
    /// function reachable from a simulator root (call-graph scope).
    D13,
}

/// All rules, in id order.
pub const ALL_RULES: [Rule; 13] = [
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::D4,
    Rule::D5,
    Rule::D6,
    Rule::D7,
    Rule::D8,
    Rule::D9,
    Rule::D10,
    Rule::D11,
    Rule::D12,
    Rule::D13,
];

impl Rule {
    /// Stable id used in findings, waivers and the baseline file.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::D8 => "D8",
            Rule::D9 => "D9",
            Rule::D10 => "D10",
            Rule::D11 => "D11",
            Rule::D12 => "D12",
            Rule::D13 => "D13",
        }
    }

    /// One-line description (for `--list-rules` and docs).
    pub fn describe(&self) -> &'static str {
        match self {
            Rule::D1 => "no HashMap/HashSet in non-test simulator code (iteration order is per-process random)",
            Rule::D2 => "no wall-clock reads (Instant::now, SystemTime) outside crates/bench",
            Rule::D3 => "no unwrap()/expect() in cycle-loop files without an inline waiver",
            Rule::D4 => "every pub field of a stats struct must be serialized by its ToJson impl",
            Rule::D5 => "no #[allow(clippy::...)] without an inline waiver",
            Rule::D6 => "no floating-point cycle/counter struct fields or float accumulation into counters",
            Rule::D7 => "no catch_unwind outside crates/core/src/sweep.rs (panic isolation has one blessed boundary)",
            Rule::D8 => "every registered MetricSpec name must appear in METRICS.md, and METRICS.md must not list unregistered metrics",
            Rule::D9 => "no reduced-fidelity components (FastMemory, IpcApproxCore, FastTraceGenerator, with_fidelity) in golden-figure drivers without an inline waiver",
            Rule::D10 => "no heap allocation (Vec::new, vec!, Box::new, clone, format!, to_string, collect, ...) in functions reachable from the cycle-loop roots",
            Rule::D11 => "no panic site (unwrap/expect outside D3's hot files, panic!, unreachable!) in functions reachable from a run/sweep entry point",
            Rule::D12 => "no nondeterminism source (wall-clock call, hash-ordered collection) reachable from sim state where D1/D2 do not already apply",
            Rule::D13 => "no std::net (TcpListener, TcpStream, UdpSocket) outside crates/serve, and no serve-layer function reachable from a simulator root",
        }
    }

    /// Long-form explanation: scope, rationale, and how to fix or
    /// waive. Feeds `smtsim-lint --explain` and the generated LINTS.md.
    pub fn explain(&self) -> &'static str {
        match self {
            Rule::D1 => "HashMap/HashSet iterate in per-process random order, so any simulator \
state or output derived from iterating one diverges between same-seed runs. Scope: every \
non-test token in simulator crates' src/ trees. Fix: BTreeMap/BTreeSet, a sorted Vec, or an \
index-keyed slab. Graph-scoped follow-up: D12 catches hash collections *outside* this scope \
that the cycle loop can still reach.",
            Rule::D2 => "Wall-clock reads (Instant::now, SystemTime) are nondeterministic input. \
Only crates/bench — host-time measurement, explicitly outside the replay bar — may read the \
clock. Scope: every file outside crates/bench. Graph-scoped follow-up: D12 catches clock reads \
*inside* crates/bench that simulator code can reach.",
            Rule::D3 => "unwrap()/expect() in the cycle loop turns a recoverable model bug into \
a process abort mid-sweep. Scope: call-graph — unwrap/expect sites in the declared hot-path \
file list, inside functions reachable from a cycle-loop root (Simulator::step and the \
tick-protocol entry points); when the linted file set defines no such root, the rule falls \
back to flagging the whole hot file. Fix: restructure to Result, debug_assert!, or waive with \
the invariant stated.",
            Rule::D4 => "A pub counter on a stats struct that never reaches the ToJson impl is \
a number the paper pipeline silently drops. Scope: structs whose name ends in Stats, \
cross-checked against their write_json field list. Fix: serialize the field or demote its \
visibility.",
            Rule::D5 => "#[allow(clippy::...)] disables a defense-in-depth lint for everyone \
who edits the file later; the waiver comment records why that is safe. Scope: every file. \
Fix: state the reason in a `// lint: allow(D5) -- reason` waiver on the same or previous line.",
            Rule::D6 => "Floating-point cycle/event counters accumulate rounding that drifts \
across replays and platforms. Scope: counter-named struct fields and `+=` accumulations in \
simulator code. Fix: count in integers; derive ratios at report time.",
            Rule::D7 => "catch_unwind swallows panics, which hides replay-breaking bugs. The \
sweep runner (crates/core/src/sweep.rs) is the one blessed isolation boundary. Scope: every \
other file, test code included (tests assert panics with #[should_panic]).",
            Rule::D8 => "METRICS.md is generated from the metric registry; drift in either \
direction means the docs lie. Scope: the registry/doc pair. Fix: re-bless METRICS.md \
(BLESS=1) or remove the stale doc row.",
            Rule::D9 => "Golden-figure drivers reproduce published numbers, which only the \
detailed models produce; a reduced-fidelity component there is assumed to be a mistake. \
Scope: the declared golden-figure file list. Fix: move fidelity studies to their own driver \
or waive with the stated reason.",
            Rule::D10 => "A heap allocation inside the cycle loop costs allocator traffic \
every simulated cycle — the single biggest obstacle to the cycles/sec target (ROADMAP item \
1). Scope: call-graph — allocation sites (Vec::new, vec!, Box::new, .clone(), format!, \
to_string, collect, String::from, to_vec, to_owned, with_capacity) inside non-test functions \
transitively reachable from a cycle-loop root: Simulator::step, SmtCore::tick, \
DetailedCore::tick, IpcApproxCore::tick, MemoryModel::tick, MemorySystem::tick, \
FastMemory::tick. Findings print the full call chain from the root. Fix: hoist into a \
reusable scratch buffer on the owning struct; for cold diagnostic paths, waive at the site \
or put a function-scope waiver on the subtree's entry fn.",
            Rule::D11 => "A panic reachable from a run/sweep entry point can kill a job \
mid-sweep; failure must be a value (SimError), not an abort. Scope: call-graph — \
unwrap()/expect() sites outside D3's hot-file list, plus panic!/unreachable!/todo!/\
unimplemented! anywhere, inside non-test functions reachable from Simulator::run, run_sweep, \
run_sweep_journaled or run_sweep_ok. unwrap/expect inside the hot-file list is D3's \
jurisdiction (tighter, cycle-rooted scope). Fix: return Result, or waive with the invariant \
stated.",
            Rule::D12 => "The graph upgrade of D1/D2: nondeterminism sources in code those \
file-scoped rules exempt (clock reads inside crates/bench, hash collections outside \
simulator src/) are still defects when the simulator can actually reach them. Scope: \
call-graph — Instant::now/SystemTime::now calls in crates/bench and HashMap/HashSet uses \
outside D1's scope, inside non-test functions reachable from a cycle-loop or run root. Fix: \
keep clock reads and hash collections out of anything the simulator calls.",
            Rule::D13 => "The network is nondeterministic input and the serving layer is the one \
blessed place to touch it: a socket read inside the simulator would put host I/O timing in the \
replay path, and a sim-to-serve call would invert the dependency the workspace is layered \
around (serve drives the simulator, never the reverse). Scope: lexical — the idents \
TcpListener/TcpStream/UdpSocket and the path `std::net` in any file outside crates/serve, test \
code included; call-graph — functions defined in crates/serve reachable from a cycle-loop or \
run root. Fix: keep socket code in crates/serve and hand it plain strings/bytes across the \
boundary.",
        }
    }

    /// Parse a rule id (`"D1"`).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == s)
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Path relative to the lint root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The offending symbol (`HashMap`, `unwrap`, a field name, …);
    /// part of the baseline fingerprint, so it must not contain line
    /// numbers or other churn-prone detail.
    pub symbol: String,
    pub message: String,
    /// For call-graph rules (D3 graph scope, D10–D12): the shortest
    /// call chain from a root to the function containing the site,
    /// root first (`["Simulator::step", "DetailedCore::tick", …]`).
    /// Empty for file-scoped rules.
    pub chain: Vec<String>,
    /// Suppressed by an inline waiver or a baseline entry.
    pub waived: bool,
}

impl Finding {
    /// Baseline fingerprint: stable across unrelated edits to the file.
    pub fn fingerprint(&self) -> String {
        format!("{} {} {}", self.rule.id(), self.path, self.symbol)
    }

    /// Human-readable one-liner (the non-JSON output format). Graph
    /// findings append the root-to-site call chain.
    pub fn render(&self) -> String {
        let via = if self.chain.is_empty() {
            String::new()
        } else {
            format!(" (via {} \u{2192} {})", self.chain.join(" \u{2192} "), self.symbol)
        };
        format!(
            "{}:{}: {}: {}{} [{}]",
            self.path,
            self.line,
            self.rule.id(),
            self.message,
            via,
            self.symbol
        )
    }
}

impl ToJson for Finding {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("rule", &self.rule.id())
            .field("path", &self.path)
            .field("line", &(self.line as u64))
            .field("symbol", &self.symbol)
            .field("message", &self.message)
            .field("chain", &self.chain)
            .field("waived", &self.waived);
        o.end();
    }
}

/// The complete result of one lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Every finding, waived ones included, sorted.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Sort findings into the pinned report order.
    pub fn normalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule, &a.symbol).cmp(&(&b.path, b.line, b.rule, &b.symbol)));
    }

    /// Findings not suppressed by a waiver or baseline entry.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    pub fn unwaived_count(&self) -> u64 {
        self.unwaived().count() as u64
    }

    pub fn waived_count(&self) -> u64 {
        self.findings.iter().filter(|f| f.waived).count() as u64
    }
}

impl ToJson for LintReport {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("version", &1u64)
            .field("files_scanned", &self.files_scanned)
            .field("total", &(self.findings.len() as u64))
            .field("waived", &self.waived_count())
            .field("unwaived", &self.unwaived_count())
            .field("findings", &self.findings);
        o.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_roundtrip() {
        for r in ALL_RULES {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        assert_eq!(Rule::parse("D14"), None);
    }

    #[test]
    fn report_json_is_sorted_and_stable() {
        let f = |path: &str, line, rule| Finding {
            rule,
            path: path.into(),
            line,
            symbol: "x".into(),
            message: "m".into(),
            chain: Vec::new(),
            waived: false,
        };
        let mut r = LintReport {
            files_scanned: 2,
            findings: vec![f("b.rs", 3, Rule::D1), f("a.rs", 9, Rule::D2), f("a.rs", 1, Rule::D5)],
        };
        r.normalize();
        let j1 = r.to_json();
        r.normalize();
        assert_eq!(j1, r.to_json());
        let pa = j1.find("a.rs").unwrap();
        let pb = j1.find("b.rs").unwrap();
        assert!(pa < pb);
        assert!(j1.starts_with("{\"version\":1,\"files_scanned\":2,"));
    }
}
